//! Shape checks for the headline reproduction claims: the ratios the
//! paper reports must hold in band when the experiments run (docs/PAPER_MAP.md "Claim bands"). These pin the *qualitative* results so a regression in any crate
//! surfaces as a failed claim, not just a changed number.

use procrustes::core::{masks, MaskGenConfig, NetworkEval};
use procrustes::nn::arch;
use procrustes::sim::{area, ArchConfig, BalanceMode, Mapping, Phase};

/// Fig 17/19 headline: sparse training on VGG-S saves 2–4× energy and
/// 1.5–4.5× latency over the dense baseline under K,N.
#[test]
fn vgg_energy_and_speedup_bands() {
    let net = arch::vgg_s();
    let hw = ArchConfig::procrustes_16x16();
    let eval = NetworkEval::new(&net, &hw);
    let dense = eval.run_dense(Mapping::KN);
    let sparse = eval.run_sparse(Mapping::KN, &MaskGenConfig::paper_default(5.2), 42);
    let e = dense.totals().energy_j() / sparse.totals().energy_j();
    let s = dense.totals().cycles as f64 / sparse.totals().cycles as f64;
    assert!((2.0..4.0).contains(&e), "energy saving {e:.2} out of band");
    assert!((1.5..4.5).contains(&s), "speedup {s:.2} out of band");
}

/// §VI-D: K,N is the fastest mapping; P,Q the slowest (checked on two
/// networks with very different shapes).
#[test]
fn kn_fastest_pq_slowest() {
    let hw = ArchConfig::procrustes_16x16();
    for (net, factor) in [(arch::vgg_s(), 5.2), (arch::densenet(), 3.9)] {
        let eval = NetworkEval::new(&net, &hw);
        let cfg = MaskGenConfig::paper_default(factor);
        let cycles: Vec<(Mapping, u64)> = Mapping::ALL
            .iter()
            .map(|&m| (m, eval.run_sparse(m, &cfg, 7).totals().cycles))
            .collect();
        let kn = cycles.iter().find(|(m, _)| *m == Mapping::KN).unwrap().1;
        let pq = cycles.iter().find(|(m, _)| *m == Mapping::PQ).unwrap().1;
        for &(m, c) in &cycles {
            assert!(kn <= c, "{}: KN {kn} slower than {m:?} {c}", net.name);
        }
        assert!(pq >= kn, "{}: PQ should not beat KN", net.name);
    }
}

/// Fig 18's observation: energy varies far less across mappings than
/// latency does (dataflow choice is "overrated" for energy).
#[test]
fn energy_varies_less_than_latency_across_mappings() {
    let net = arch::vgg_s();
    let hw = ArchConfig::procrustes_16x16();
    let eval = NetworkEval::new(&net, &hw);
    let cfg = MaskGenConfig::paper_default(5.2);
    let runs: Vec<_> = Mapping::ALL
        .iter()
        .map(|&m| eval.run_sparse(m, &cfg, 3))
        .collect();
    let e: Vec<f64> = runs.iter().map(|r| r.totals().energy_j()).collect();
    let c: Vec<f64> = runs.iter().map(|r| r.totals().cycles as f64).collect();
    let spread = |v: &[f64]| {
        v.iter().cloned().fold(f64::MIN, f64::max) / v.iter().cloned().fold(f64::MAX, f64::min)
    };
    assert!(
        spread(&e) < spread(&c),
        "energy spread {:.2} should be below latency spread {:.2}",
        spread(&e),
        spread(&c)
    );
    assert!(
        spread(&e) < 1.6,
        "energy spread {:.2} too large",
        spread(&e)
    );
}

/// Figs 5 vs 13: half-tile balancing cuts both the mean and the worst
/// working-set overhead by a large factor.
#[test]
fn balancing_improves_imbalance_distribution() {
    let net = arch::vgg_s();
    let hw = ArchConfig::procrustes_16x16();
    let eval = NetworkEval::new(&net, &hw);
    let wl = masks::generate(&net, &MaskGenConfig::paper_default(5.2), 16, 42);
    let collect = |balance: BalanceMode| -> Vec<f32> {
        eval.run_with_workloads(Mapping::KN, &wl, balance)
            .layers
            .iter()
            .filter(|c| matches!(c.phase, Phase::Forward | Phase::Backward))
            .flat_map(|c| c.wave_overheads.iter().copied())
            .collect()
    };
    let unbal = collect(BalanceMode::None);
    let bal = collect(BalanceMode::HalfTile);
    let mean = |v: &[f32]| v.iter().map(|&x| f64::from(x)).sum::<f64>() / v.len() as f64;
    let worst = |v: &[f32]| v.iter().cloned().fold(0.0f32, f32::max) as f64;
    assert!(worst(&unbal) > 0.5, "unbalanced worst {:.2}", worst(&unbal));
    assert!(
        mean(&bal) < mean(&unbal) / 3.0,
        "mean {:.3} -> {:.3}",
        mean(&unbal),
        mean(&bal)
    );
    assert!(
        worst(&bal) < worst(&unbal) / 2.0,
        "worst {:.3} -> {:.3}",
        worst(&unbal),
        worst(&bal)
    );
}

/// Fig 20: quadrupling the PEs scales K,N latency ≥2.5× (batch 32) while
/// energy stays within ±25%.
#[test]
fn scalability_band() {
    let net = arch::resnet18();
    let cfg = MaskGenConfig::paper_default(11.7);
    let small = NetworkEval::new(&net, &ArchConfig::procrustes_16x16())
        .with_batch(32)
        .run_sparse(Mapping::KN, &cfg, 4);
    let big = NetworkEval::new(&net, &ArchConfig::procrustes_32x32())
        .with_batch(32)
        .run_sparse(Mapping::KN, &cfg, 4);
    let scaling = small.totals().cycles as f64 / big.totals().cycles as f64;
    assert!((2.5..4.2).contains(&scaling), "scaling {scaling:.2}");
    let e_ratio = big.totals().energy_j() / small.totals().energy_j();
    assert!((0.75..1.25).contains(&e_ratio), "energy ratio {e_ratio:.2}");
}

/// Table II geometry: dense sizes match the paper and generated masks hit
/// each target factor within 10%.
#[test]
fn table2_sparsity_factors() {
    for (net, factor) in [
        (arch::densenet(), 3.9),
        (arch::wrn_28_10(), 4.3),
        (arch::vgg_s(), 5.2),
        (arch::mobilenet_v2(), 10.0),
        (arch::resnet18(), 11.7),
    ] {
        let wl = masks::generate(&net, &MaskGenConfig::paper_default(factor), 1, 9);
        let dense: u64 = wl.iter().map(|(t, _)| t.weights() as u64).sum();
        let nnz: u64 = wl.iter().map(|(_, sp)| sp.total_nnz()).sum();
        let achieved = dense as f64 / nnz as f64;
        assert!(
            (achieved / factor - 1.0).abs() < 0.10,
            "{}: achieved {achieved:.2} vs target {factor}",
            net.name
        );
    }
}

/// Table III: area and power overheads land in the paper's neighbourhood
/// (14% / 11%).
#[test]
fn table3_overheads() {
    let (a, p) = area::overheads(256);
    assert!((0.10..0.20).contains(&a), "area overhead {a:.3}");
    assert!((0.08..0.16).contains(&p), "power overhead {p:.3}");
}

/// Fig 1: the idealized configuration bounds the realistic one from
/// below on both metrics.
#[test]
fn ideal_bounds_realistic() {
    let net = arch::vgg_s();
    let cfg = MaskGenConfig::paper_default(5.2);
    let real =
        NetworkEval::new(&net, &ArchConfig::procrustes_16x16()).run_sparse(Mapping::KN, &cfg, 5);
    let ideal = NetworkEval::new(&net, &ArchConfig::ideal_16x16()).run_sparse(Mapping::KN, &cfg, 5);
    assert!(ideal.totals().cycles <= real.totals().cycles);
    assert!(ideal.totals().energy_j() <= real.totals().energy_j() * 1.0001);
}
