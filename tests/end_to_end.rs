//! Cross-crate integration: the full pipeline from sparse training to
//! accelerator evaluation.

use procrustes::core::{masks, CoSim, LoadBalancer, NetworkEval};
use procrustes::dropback::{ProcrustesConfig, ProcrustesTrainer, Trainer};
use procrustes::nn::data::SyntheticImages;
use procrustes::nn::{BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential};
use procrustes::prng::Xorshift64;
use procrustes::sim::{ArchConfig, BalanceMode, Mapping, Phase};
use procrustes::sparse::CsbTensor;

fn micro_model(seed: u64) -> Sequential {
    let mut rng = Xorshift64::new(seed);
    let mut m = Sequential::new();
    m.push(Conv2d::new(3, 16, 3, 1, 1, false, &mut rng));
    m.push(BatchNorm2d::new(16));
    m.push(ReLU::new());
    m.push(MaxPool2d::new(2, 2));
    m.push(Conv2d::new(16, 32, 3, 1, 1, false, &mut rng));
    m.push(ReLU::new());
    m.push(MaxPool2d::new(2, 2));
    m.push(Flatten::new());
    m.push(Linear::new(32 * 4 * 4, 4, true, &mut rng));
    m
}

/// Train sparsely, extract the REAL masks from the model, and verify the
/// accelerator model converts them into savings — the complete loop the
/// paper describes.
#[test]
fn trained_masks_yield_accelerator_savings() {
    let data = SyntheticImages::new(4, 16, 16, 0.25, 3);
    let mut rng = Xorshift64::new(5);
    let mut trainer = ProcrustesTrainer::new(
        micro_model(1),
        ProcrustesConfig {
            sparsity_factor: 8.0,
            lambda: 0.6, // fast decay: reach exact zeros quickly
            ..ProcrustesConfig::default()
        },
        11,
    );
    let horizon = trainer.wr().zero_iteration().unwrap();
    for _ in 0..=horizon + 10 {
        let (x, labels) = data.batch(4, &mut rng);
        trainer.train_step(&x, &labels);
    }

    // Extract real masks and evaluate per-layer against the dense case.
    let workloads = masks::from_model(trainer.model_mut(), 16, 0.5);
    assert!(!workloads.is_empty());
    // The budget is global: individual layers may stay denser (learning
    // pressure concentrates tracked weights in early layers), but the
    // whole model must respect the 8x budget.
    let total_w: u64 = workloads.iter().map(|(t, _)| t.weights() as u64).sum();
    let total_nnz: u64 = workloads.iter().map(|(_, sp)| sp.total_nnz()).sum();
    let global_density = total_nnz as f64 / total_w as f64;
    assert!(global_density < 0.20, "global density {global_density}");
    let hw = ArchConfig::procrustes_16x16();
    for (task, sp) in &workloads {
        let density = sp.weight_density(task);
        assert!(density < 0.95, "{}: density {density}", task.name);
        let dense_sp = procrustes::sim::SparsityInfo::dense(task);
        for phase in Phase::ALL {
            let d = procrustes::sim::evaluate_layer(
                &hw,
                task,
                phase,
                Mapping::KN,
                &dense_sp,
                BalanceMode::None,
            );
            let s = procrustes::sim::evaluate_layer(
                &hw,
                task,
                phase,
                Mapping::KN,
                sp,
                BalanceMode::HalfTile,
            );
            assert!(
                s.energy.total() < d.energy.total(),
                "{}/{phase:?}: sparse energy not below dense",
                task.name
            );
        }
    }
}

/// The WR unit invariant across the whole stack: after training, every
/// pruned (zero) weight is recomputable, and tracked weights differ from
/// their initializations.
#[test]
fn pruned_weights_are_exactly_zero_after_horizon() {
    let data = SyntheticImages::new(4, 16, 16, 0.25, 7);
    let mut rng = Xorshift64::new(2);
    let mut trainer = ProcrustesTrainer::new(
        micro_model(2),
        ProcrustesConfig {
            sparsity_factor: 10.0,
            lambda: 0.6,
            ..ProcrustesConfig::default()
        },
        13,
    );
    let horizon = trainer.wr().zero_iteration().unwrap();
    let mut final_sparsity = 0.0;
    for _ in 0..=horizon {
        let (x, labels) = data.batch(2, &mut rng);
        final_sparsity = trainer.train_step(&x, &labels).weight_sparsity;
    }
    assert!(
        final_sparsity > 0.85,
        "sparsity {final_sparsity} after horizon {horizon}"
    );
}

/// Co-simulation ties the trainer to CSB compression and the balancer;
/// its invariants must hold over a real training run.
#[test]
fn cosim_balancing_invariants_hold_during_training() {
    let data = SyntheticImages::new(4, 16, 16, 0.25, 9);
    let mut rng = Xorshift64::new(3);
    let mut cosim = CoSim::new(
        micro_model(3),
        ProcrustesConfig {
            sparsity_factor: 8.0,
            lambda: 0.6,
            ..ProcrustesConfig::default()
        },
        21,
        8,
    );
    for _ in 0..30 {
        let (x, labels) = data.batch(2, &mut rng);
        let r = cosim.step(&x, &labels);
        assert!(r.worst_balanced <= r.worst_unbalanced + 1e-9);
        assert!(r.threshold > 0.0);
    }
    // The CSB snapshots round-trip and the balancer conserves their work.
    for csb in cosim.csb_snapshots() {
        let balancer = LoadBalancer::new(8);
        let schedule = balancer.balance(&csb);
        assert_eq!(schedule.total_work(), csb.nnz() as u64);
    }
}

/// CSB compression of a trained model's conv weights is lossless, and the
/// rotated fetch matches the dense rotation (backward-pass access).
#[test]
fn csb_roundtrip_on_trained_weights() {
    let data = SyntheticImages::new(4, 16, 16, 0.25, 11);
    let mut rng = Xorshift64::new(4);
    let mut trainer = ProcrustesTrainer::new(
        micro_model(4),
        ProcrustesConfig {
            sparsity_factor: 6.0,
            lambda: 0.6,
            ..ProcrustesConfig::default()
        },
        31,
    );
    for _ in 0..50 {
        let (x, labels) = data.batch(2, &mut rng);
        trainer.train_step(&x, &labels);
    }
    use procrustes::nn::{Layer, ParamKind};
    trainer.model_mut().visit_params(&mut |p| {
        if p.kind == ParamKind::Prunable && p.values.shape().rank() == 4 {
            let csb = CsbTensor::from_dense_conv(p.values);
            assert_eq!(&csb.to_dense(), &*p.values);
            let rot = p.values.rotate180();
            let (k, c) = (p.values.shape().dim(0), p.values.shape().dim(1));
            let s = p.values.shape().dim(3);
            for ki in (0..k).step_by(5) {
                for ci in (0..c).step_by(3) {
                    let fetched = csb.block_dense_rotated180(ki, ci);
                    for (idx, v) in fetched.iter().enumerate() {
                        assert_eq!(*v, rot.at(&[ki, ci, idx / s, idx % s]));
                    }
                }
            }
        }
    });
}

/// Full-network evaluation is deterministic: same seeds, same numbers.
#[test]
fn network_eval_is_deterministic() {
    use procrustes::core::MaskGenConfig;
    use procrustes::nn::arch;
    let net = arch::densenet();
    let hw = ArchConfig::procrustes_16x16();
    let run = || {
        let eval = NetworkEval::new(&net, &hw);
        let c = eval.run_sparse(Mapping::KN, &MaskGenConfig::paper_default(3.9), 77);
        (c.totals().cycles, c.totals().energy_j())
    };
    assert_eq!(run(), run());
}
