//! Cross-crate integration tests for the unified `Scenario`/`Sweep`/
//! `Engine` evaluation API, including the acceptance sweep: the full
//! Fig 17–20-style evaluation (5 networks × 4 mappings × dense+sparse)
//! expressed as one `Sweep` must reproduce the exact `NetworkCost`
//! totals of the legacy per-figure `NetworkEval` loops.

use procrustes::core::{
    masks, Engine, MaskGenConfig, NetworkEval, Scenario, SparsityGen, Sweep, PAPER_NETWORKS,
};
use procrustes::nn::arch;
use procrustes::sim::{ArchConfig, BalanceMode, Mapping};

/// `Scenario` documents survive a JSON round trip through the facade.
#[test]
fn scenario_json_roundtrip() {
    let scenario = Scenario::builder("ResNet18")
        .arch(ArchConfig::procrustes_32x32())
        .mapping(Mapping::CN)
        .batch(32)
        .sparsity(SparsityGen::Synthetic {
            cfg: MaskGenConfig::paper_default(11.7),
            seed: 0xFEED_FACE_DEAD_BEEF,
        })
        .balance(BalanceMode::HalfTile)
        .build()
        .unwrap();
    let text = scenario.to_json();
    assert_eq!(Scenario::from_json(&text).unwrap(), scenario);
    // Extracted workloads (real masks) round-trip too.
    let net = arch::vgg_s();
    let workloads = masks::generate(&net, &MaskGenConfig::paper_default(5.2), 4, 9);
    let extracted = Scenario::builder("VGG-S")
        .batch(4)
        .sparsity(SparsityGen::Extracted(workloads))
        .build()
        .unwrap();
    assert_eq!(
        Scenario::from_json(&extracted.to_json()).unwrap(),
        extracted
    );
}

/// `Sweep` cardinality is the product of its axis lengths, with unset
/// axes defaulting to one value.
#[test]
fn sweep_cardinality() {
    let sweep = Sweep::new()
        .networks(PAPER_NETWORKS)
        .mappings(Mapping::ALL)
        .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 1 }]);
    assert_eq!(sweep.cardinality(), 5 * 4 * 2);
    assert_eq!(sweep.build().unwrap().len(), 40);
    assert_eq!(Sweep::new().networks(["VGG-S"]).cardinality(), 1);
}

/// Same seeds ⇒ identical results regardless of thread count: the engine
/// only parallelizes scheduling, never the math.
#[test]
fn run_all_is_deterministic_across_thread_counts() {
    let scenarios = Sweep::new()
        .networks(["VGG-S", "DenseNet"])
        .mappings([Mapping::KN, Mapping::CK])
        .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 7 }])
        .build()
        .unwrap();
    let serial = Engine::with_threads(1).run_all(&scenarios).unwrap();
    for threads in [2, 4, 8] {
        let parallel = Engine::with_threads(threads).run_all(&scenarios).unwrap();
        assert_eq!(serial, parallel, "thread count {threads} changed results");
    }
}

/// The `NetworkEval` compatibility shim and the engine agree exactly on
/// the same scenario.
#[test]
fn network_eval_shim_matches_engine() {
    let net = arch::densenet();
    let hw = ArchConfig::procrustes_16x16();
    let eval = NetworkEval::new(&net, &hw);
    let cfg = MaskGenConfig::paper_default(3.9);
    let engine = Engine::serial();

    let legacy_sparse = eval.run_sparse(Mapping::KN, &cfg, 13);
    let engine_sparse = engine
        .run(
            &Scenario::builder("DenseNet")
                .synthetic(cfg, 13)
                .build()
                .unwrap(),
        )
        .unwrap();
    assert_eq!(engine_sparse.cost, legacy_sparse);

    let legacy_dense = eval.run_dense(Mapping::PQ);
    let engine_dense = engine
        .run(
            &Scenario::builder("DenseNet")
                .mapping(Mapping::PQ)
                .build()
                .unwrap(),
        )
        .unwrap();
    assert_eq!(engine_dense.cost, legacy_dense);
}

/// Acceptance: the full Fig 17–20 sweep as ONE `Sweep` declaration
/// reproduces the totals of the legacy per-figure loops (same mask seed).
#[test]
fn full_figure_sweep_matches_legacy_loops() {
    const SEED: u64 = 2; // the historical fig18 seed
    let scenarios = Sweep::new()
        .networks(PAPER_NETWORKS)
        .mappings(Mapping::ALL)
        .sparsities([
            SparsityGen::Dense,
            SparsityGen::PaperSynthetic { seed: SEED },
        ])
        .build()
        .unwrap();
    assert_eq!(scenarios.len(), 40);
    let results = Engine::default().run_all(&scenarios).unwrap();

    // The seed's per-figure loop: NetworkEval per network × mapping.
    for result in &results {
        let net = procrustes::core::resolve_network(&result.scenario.network).unwrap();
        let hw = ArchConfig::procrustes_16x16();
        let eval = NetworkEval::new(&net, &hw);
        let legacy = if result.scenario.sparsity.is_dense() {
            eval.run_dense(result.scenario.mapping)
        } else {
            let factor = procrustes::core::paper_sparsity_factor(&result.scenario.network).unwrap();
            eval.run_sparse(
                result.scenario.mapping,
                &MaskGenConfig::paper_default(factor),
                SEED,
            )
        };
        assert_eq!(
            result.cost,
            legacy,
            "{} / {:?} / {}",
            result.scenario.network,
            result.scenario.mapping,
            result.scenario.sparsity.label()
        );
    }
}

/// Memoization pays off across a sweep: the dense KN evaluation shares
/// layer costs across batches of the same network, and identical layers
/// within a network are costed once.
#[test]
fn memoization_shares_layer_costs_across_scenarios() {
    let scenarios = Sweep::new()
        .networks(["ResNet18"])
        .mappings([Mapping::KN])
        .sparsities([SparsityGen::Dense])
        .batches([16])
        .build()
        .unwrap();
    let engine = Engine::serial();
    let first = engine.run_all(&scenarios).unwrap();
    let cached = engine.cached_layer_costs();
    // ResNet18 repeats identical block shapes, so the distinct-cost count
    // is below layers × phases.
    assert!(cached > 0 && cached < first[0].cost.layers.len());
    // Re-running the same sweep adds no cache entries and changes nothing.
    let second = engine.run_all(&scenarios).unwrap();
    assert_eq!(engine.cached_layer_costs(), cached);
    assert_eq!(first, second);
}
