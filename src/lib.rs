//! # Procrustes — sparse DNN training, end to end
//!
//! A from-scratch Rust reproduction of *“Procrustes: a Dataflow and
//! Accelerator for Sparse Deep Neural Network Training”* (MICRO 2020).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`prng`] — deterministic xorshift generators (the WR unit's source);
//! * [`tensor`] — dense f32 tensors with conv/fc forward, backward, and
//!   weight-update kernels;
//! * [`sparse`] — the compressed sparse block (CSB) weight format;
//! * [`quantile`] — DUMIQUE streaming quantile estimation;
//! * [`nn`] — a small DNN training framework plus the paper's five network
//!   geometries;
//! * [`dropback`] — dense SGD, original Dropback, and the hardware-friendly
//!   Procrustes training algorithm;
//! * [`sim`] — the Timeloop/Accelergy-class analytical accelerator model;
//! * [`core`] — the Procrustes system: load-balanced minibatch-spatial
//!   dataflows, mask synthesis, and whole-network evaluation.
//!
//! # Quickstart
//!
//! ```
//! use procrustes::core::{MaskGenConfig, NetworkEval};
//! use procrustes::nn::arch;
//! use procrustes::sim::{ArchConfig, Mapping};
//!
//! // Evaluate one training iteration of VGG-S on a 16x16 accelerator,
//! // dense vs. Procrustes-sparse, with the paper's K,N dataflow.
//! let net = arch::vgg_s();
//! let arch_cfg = ArchConfig::procrustes_16x16();
//! let eval = NetworkEval::new(&net, &arch_cfg);
//! let dense = eval.run_dense(Mapping::KN);
//! let sparse = eval.run_sparse(Mapping::KN, &MaskGenConfig::paper_default(5.2), 42);
//! assert!(sparse.totals().energy_j() < dense.totals().energy_j());
//! ```

pub use procrustes_core as core;
pub use procrustes_dropback as dropback;
pub use procrustes_nn as nn;
pub use procrustes_prng as prng;
pub use procrustes_quantile as quantile;
pub use procrustes_sim as sim;
pub use procrustes_sparse as sparse;
pub use procrustes_tensor as tensor;
