//! # Procrustes — sparse DNN training, end to end
//!
//! A from-scratch Rust reproduction of *“Procrustes: a Dataflow and
//! Accelerator for Sparse Deep Neural Network Training”* (MICRO 2020).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`prng`] — deterministic xorshift generators (the WR unit's source);
//! * [`tensor`] — dense f32 tensors with conv/fc forward, backward, and
//!   weight-update kernels;
//! * [`sparse`] — the compressed sparse block (CSB) weight format and the
//!   CSB-consuming conv/fc compute kernels (work ∝ stored nonzeros,
//!   results bitwise-equal to the dense kernels);
//! * [`quantile`] — DUMIQUE streaming quantile estimation;
//! * [`nn`] — a small DNN training framework plus the paper's five network
//!   geometries; conv/fc layers dispatch between dense and CSB execution
//!   through a `ComputeBackend` knob;
//! * [`dropback`] — dense SGD, original Dropback, and the hardware-friendly
//!   Procrustes training algorithm;
//! * [`sim`] — the Timeloop/Accelergy-class accelerator model, with two
//!   latency fidelities: the closed-form analytic bound and a tile-timed
//!   wave simulator that replays the actual per-PE schedule;
//! * [`core`] — the Procrustes system: load-balanced minibatch-spatial
//!   dataflows, mask synthesis, and the `Scenario`/`Sweep`/`Engine`
//!   evaluation API behind every paper figure;
//! * [`search`] — seeded, deterministic Pareto design-space search over
//!   the engine: successive halving over a mutation/crossover loop,
//!   pluggable cycles/energy/area objectives, and a memoization-aware
//!   neighborhood, with byte-identical fronts across thread counts;
//! * [`serve`] — the sharded, cache-persistent evaluation daemon
//!   (`procrustes-serve`) and client (`procrustes-cli`) that expose the
//!   engine (including the search, via the `search` verb) over
//!   line-delimited JSON-over-TCP.
//!
//! # Quickstart
//!
//! ```
//! use procrustes::core::{Engine, Scenario, SparsityGen, Sweep};
//! use procrustes::sim::Mapping;
//!
//! // Evaluate one training iteration of VGG-S on a 16x16 accelerator,
//! // dense vs. Procrustes-sparse, with the paper's K,N dataflow. A
//! // Scenario is plain serializable data; the Engine evaluates it.
//! let engine = Engine::default();
//! let dense = engine
//!     .run(&Scenario::builder("VGG-S").mapping(Mapping::KN).build().unwrap())
//!     .unwrap();
//! let sparse = engine
//!     .run(
//!         &Scenario::builder("VGG-S")
//!             .mapping(Mapping::KN)
//!             .sparsity(SparsityGen::PaperSynthetic { seed: 42 })
//!             .build()
//!             .unwrap(),
//!     )
//!     .unwrap();
//! assert!(sparse.energy_saving_over(&dense) > 1.0);
//!
//! // Whole figure sweeps are one declaration, evaluated in parallel.
//! // Execution backend (dense vs CSB-compressed datapath) and latency
//! // fidelity (analytic bound vs tile-timed wave replay) are
//! // first-class axes, like mapping or sparsity:
//! use procrustes::core::{ComputeBackend, Fidelity};
//! let scenarios = Sweep::new()
//!     .networks(["VGG-S", "ResNet18"])
//!     .mappings(Mapping::ALL)
//!     .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 42 }])
//!     .computes([ComputeBackend::Dense, ComputeBackend::Csb])
//!     .fidelities(Fidelity::ALL)
//!     .build()
//!     .unwrap();
//! let results = engine.run_all(&scenarios).unwrap();
//! assert_eq!(results.len(), 64);
//! ```

pub use procrustes_core as core;
pub use procrustes_dropback as dropback;
pub use procrustes_nn as nn;
pub use procrustes_prng as prng;
pub use procrustes_quantile as quantile;
pub use procrustes_search as search;
pub use procrustes_serve as serve;
pub use procrustes_sim as sim;
pub use procrustes_sparse as sparse;
pub use procrustes_tensor as tensor;
