//! Dataflow exploration on the full-size ResNet18 geometry (Fig 18/19
//! style) through the declarative `Sweep`/`Engine` API: energy and
//! latency of every mapping, dense vs sparse, evaluated in parallel.
//!
//! Run with: `cargo run --release --example accelerator_sim`

use procrustes::core::report::{fmt_cycles, fmt_joules, Table};
use procrustes::core::{Engine, MaskGenConfig, SparsityGen, Sweep};
use procrustes::sim::{Mapping, Phase};

fn main() {
    // One declaration covers the whole experiment: 4 mappings × {dense,
    // sparse} on ResNet18. The engine fans the 8 scenarios out across a
    // thread pool and memoizes layer costs shared between them.
    let scenarios = Sweep::new()
        .networks(["ResNet18"])
        .mappings(Mapping::ALL)
        .sparsities([
            SparsityGen::Dense,
            SparsityGen::Synthetic {
                cfg: MaskGenConfig::paper_default(11.7),
                seed: 11,
            },
        ])
        .build()
        .expect("sweep is valid");
    println!(
        "evaluating {} scenarios (every scenario is serializable, e.g.):\n{}\n",
        scenarios.len(),
        scenarios[0].to_json()
    );
    let engine = Engine::default();
    let results = engine.run_all(&scenarios).expect("sweep runs");

    let mut t = Table::new(
        "ResNet18 (ImageNet geometry), one training iteration, batch 16",
        &[
            "mapping",
            "config",
            "fw",
            "bw",
            "wu",
            "total cycles",
            "total energy",
        ],
    );
    for r in &results {
        t.row(&[
            r.scenario.mapping.label().to_string(),
            r.scenario.sparsity.label(),
            fmt_cycles(r.cost.phase(Phase::Forward).cycles),
            fmt_cycles(r.cost.phase(Phase::Backward).cycles),
            fmt_cycles(r.cost.phase(Phase::WeightUpdate).cycles),
            fmt_cycles(r.totals().cycles),
            fmt_joules(r.totals().energy_j()),
        ]);
    }
    println!("{}", t.render());

    // Which mapping should Procrustes pick?
    let best = results
        .iter()
        .filter(|r| !r.scenario.sparsity.is_dense())
        .min_by_key(|r| r.totals().cycles)
        .unwrap();
    println!(
        "fastest sparse mapping: {} (the paper selects K,N for all phases, §VI-D)",
        best.scenario.mapping.label()
    );
}
