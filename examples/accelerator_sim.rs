//! Dataflow exploration on the full-size ResNet18 geometry (Fig 18/19
//! style): energy and latency of every mapping, dense vs sparse.
//!
//! Run with: `cargo run --release --example accelerator_sim`

use procrustes::core::report::{fmt_cycles, fmt_joules, Table};
use procrustes::core::{MaskGenConfig, NetworkEval};
use procrustes::nn::arch;
use procrustes::sim::{ArchConfig, Mapping, Phase};

fn main() {
    let net = arch::resnet18();
    let hw = ArchConfig::procrustes_16x16();
    let eval = NetworkEval::new(&net, &hw);
    let cfg = MaskGenConfig::paper_default(11.7);

    let mut t = Table::new(
        "ResNet18 (ImageNet geometry), one training iteration, batch 16",
        &["mapping", "config", "fw", "bw", "wu", "total cycles", "total energy"],
    );
    for mapping in Mapping::ALL {
        let dense = eval.run_dense(mapping);
        let sparse = eval.run_sparse(mapping, &cfg, 11);
        for (label, cost) in [("dense", &dense), ("sparse", &sparse)] {
            t.row(&[
                mapping.label().to_string(),
                label.to_string(),
                fmt_cycles(cost.phase(Phase::Forward).cycles),
                fmt_cycles(cost.phase(Phase::Backward).cycles),
                fmt_cycles(cost.phase(Phase::WeightUpdate).cycles),
                fmt_cycles(cost.totals().cycles),
                fmt_joules(cost.totals().energy_j()),
            ]);
        }
    }
    println!("{}", t.render());

    // Which mapping should Procrustes pick?
    let best = Mapping::ALL
        .iter()
        .min_by_key(|&&m| eval.run_sparse(m, &cfg, 11).totals().cycles)
        .unwrap();
    println!(
        "fastest sparse mapping: {} (the paper selects K,N for all phases, §VI-D)",
        best.label()
    );
}
