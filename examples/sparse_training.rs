//! Side-by-side training comparison: dense SGD vs exact Dropback vs the
//! Procrustes algorithm (Fig 6/7 style, condensed).
//!
//! Run with: `cargo run --release --example sparse_training`

use procrustes::core::report::Table;
use procrustes::dropback::{
    ComputeBackend, DenseSgdTrainer, DropbackConfig, DropbackExact, ProcrustesConfig,
    ProcrustesTrainer, Trainer,
};
use procrustes::nn::{arch, data::SyntheticImages};
use procrustes::prng::Xorshift64;

fn main() {
    let data = SyntheticImages::cifar_like(10, 5);
    let factor = 5.0;
    let steps = 160;
    let eval_every = 40;

    let mut trainers: Vec<(&str, Box<dyn Trainer>)> = vec![
        (
            "dense-SGD",
            Box::new(DenseSgdTrainer::new(
                arch::tiny_vgg(10, &mut Xorshift64::new(1)),
                0.05,
                0.9,
            )),
        ),
        (
            "dropback-exact",
            Box::new(DropbackExact::new(
                arch::tiny_vgg(10, &mut Xorshift64::new(1)),
                DropbackConfig {
                    sparsity_factor: factor,
                    lambda: 0.9,
                    ..DropbackConfig::default()
                },
                7,
            )),
        ),
        (
            "procrustes",
            Box::new(ProcrustesTrainer::new(
                arch::tiny_vgg(10, &mut Xorshift64::new(1)),
                ProcrustesConfig {
                    sparsity_factor: factor,
                    // The sparse fast path: layers whose weights decay
                    // below 50% density execute on CSB kernels (identical
                    // results, work proportional to the nonzeros).
                    compute: ComputeBackend::auto(),
                    ..ProcrustesConfig::default()
                },
                7,
            )),
        ),
    ];

    let (vx, vl) = data.fixed_set(128, 1234);
    let mut table = Table::new(
        format!("validation accuracy over training (sparsity {factor}x)"),
        &["step", "dense-SGD", "dropback-exact", "procrustes"],
    );

    // Identical batch stream for all trainers.
    let mut rng = Xorshift64::new(1000);
    let batches: Vec<_> = (0..steps).map(|_| data.batch(16, &mut rng)).collect();

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (ti, (_, trainer)) in trainers.iter_mut().enumerate() {
        let mut row = 0;
        for (step, (x, labels)) in batches.iter().enumerate() {
            trainer.train_step(x, labels);
            if (step + 1) % eval_every == 0 {
                let (_, acc) = trainer.evaluate(&vx, &vl);
                if ti == 0 {
                    rows.push(vec![format!("{}", step + 1), format!("{acc:.3}")]);
                } else {
                    rows[row].push(format!("{acc:.3}"));
                }
                row += 1;
            }
        }
    }
    for r in &rows {
        table.row(r);
    }
    println!("{}", table.render());
    println!(
        "the sparse trainers track only 1/{factor} of the weights; \
         procrustes additionally avoids the global sort and reaches exact-zero pruned weights"
    );
}
