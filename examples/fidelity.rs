//! The latency-fidelity axis: the same scenarios costed by the analytic
//! bound and by the tile-timed wave replay.
//!
//! Run with: `cargo run --release --example fidelity`

use procrustes::core::report::{fmt_cycles, results_table};
use procrustes::core::{Engine, Fidelity, Scenario, SparsityGen, Sweep};
use procrustes::sim::Mapping;

fn main() {
    let engine = Engine::default();

    // One sweep, both fidelities: dense + Table II sparse VGG-S under
    // the K,N dataflow.
    let scenarios = Sweep::new()
        .networks(["VGG-S", "MobileNet v2"])
        .mappings([Mapping::KN])
        .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 1 }])
        .fidelities(Fidelity::ALL)
        .build()
        .expect("fidelity sweep is valid");
    let results = engine.run_all(&scenarios).expect("fidelity sweep runs");
    println!(
        "{}",
        results_table("fidelity comparison", &results).render()
    );

    // The fidelity gap per configuration: tile-timed replays the actual
    // wave schedule, so it can only add stalls on top of the bound.
    for pair in results.chunks(2) {
        let (analytic, timed) = (&pair[0], &pair[1]);
        assert_eq!(analytic.scenario.fidelity, Fidelity::Analytic);
        assert_eq!(timed.scenario.fidelity, Fidelity::TileTimed);
        let (a, t) = (analytic.totals().cycles, timed.totals().cycles);
        assert!(t >= a, "tile-timed must never beat the analytic bound");
        println!(
            "{:12} {:22} analytic {:>12} tile-timed {:>12} (+{:.2}%)",
            analytic.scenario.network,
            analytic.scenario.sparsity.label(),
            fmt_cycles(a),
            fmt_cycles(t),
            (t - a) as f64 / a as f64 * 100.0,
        );
    }

    // Scenarios carry the axis through JSON like every other field;
    // legacy documents (no "fidelity" key) default to analytic.
    let timed = Scenario::builder("VGG-S")
        .sparsity(SparsityGen::PaperSynthetic { seed: 1 })
        .fidelity(Fidelity::TileTimed)
        .build()
        .expect("scenario is valid");
    let text = timed.to_json();
    assert!(text.contains("\"fidelity\":\"tile_timed\""));
    assert_eq!(Scenario::from_json(&text).expect("round trip"), timed);
    println!("\nscenario JSON: {text}");
}
