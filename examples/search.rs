//! Design-space search: find the cycles/energy/area Pareto front of a
//! mapping × architecture × batch grid without sweeping it exhaustively.
//!
//! The search is seeded and deterministic — the same spec produces the
//! same front byte for byte on any thread count — and rides the same
//! memoized `Engine` as every sweep. This example runs the pinned
//! small-grid oracle both ways (exhaustive and searched) and shows the
//! search recovering the exact front from a fraction of the grid, then
//! runs the identical spec through the serving daemon's `search` verb.

use procrustes::core::Engine;
use procrustes::search::oracle::{oracle_spec, oracle_sweep};
use procrustes::search::{exhaustive_front, run_search_on_engine, EngineBackend};
use procrustes::serve::{Client, ServeConfig, Server};

fn main() {
    let engine = Engine::default();
    let spec = oracle_spec();
    let grid = oracle_sweep().cardinality();

    // Ground truth: sweep all scenarios and accumulate the front.
    let truth =
        exhaustive_front(&spec, &mut EngineBackend::new(&engine)).expect("exhaustive oracle sweep");
    println!(
        "exhaustive: {grid} scenarios -> {}-point front",
        truth.len()
    );

    // The search: same front, a fraction of the evaluations.
    let outcome = run_search_on_engine(&spec, &engine, |round| {
        println!(
            "  round {}: evaluated {} (+{} -{}), front size {}",
            round.round, round.evaluated, round.added, round.removed, round.front_size
        );
    })
    .expect("seeded search");
    println!(
        "search:     {} scenarios ({:.1} % of the grid) -> {}-point front",
        outcome.evaluated,
        100.0 * outcome.evaluated as f64 / grid as f64,
        outcome.front.len()
    );
    assert_eq!(
        outcome.front.to_json(),
        truth.to_json(),
        "the pinned oracle search recovers the exact exhaustive front"
    );
    for point in outcome.front.points() {
        println!(
            "  front member {:016x}: {:?}",
            point.fingerprint, point.objectives
        );
    }

    // The same spec over the wire: the daemon's `search` verb streams
    // round updates and returns the identical canonical front.
    let server = Server::bind("127.0.0.1:0", ServeConfig::default())
        .expect("bind an ephemeral loopback port");
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect");
    let report = client.search(&spec).expect("served search");
    assert_eq!(report.evaluated, outcome.evaluated);
    assert_eq!(report.front.len(), outcome.front.len());
    for (member, point) in report.front.iter().zip(outcome.front.points()) {
        assert_eq!(member.result, point.doc, "served front is byte-identical");
    }
    println!(
        "served:     same front over the wire ({} evaluations, {} rounds)",
        report.evaluated, report.rounds
    );
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread").expect("daemon run");
}
