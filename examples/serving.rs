//! Serving: run the evaluation daemon in-process and query it.
//!
//! The real deployment runs `procrustes-serve` as its own process and
//! talks to it with `procrustes-cli` (see the README's "Serving"
//! section); the wire protocol is identical either way. This example
//! starts an ephemeral-port daemon with a persistent cache, submits a
//! sweep twice, and shows the second pass being served without any
//! recomputation.

use procrustes::core::{SparsityGen, Sweep};
use procrustes::serve::{results_csv_from_docs, Client, ServeConfig, Server, Source};

fn main() {
    let cache_dir =
        std::env::temp_dir().join(format!("procrustes-serving-example-{}", std::process::id()));
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            shards: 2,
            cache_dir: Some(cache_dir.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind an ephemeral loopback port");
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());
    println!("daemon listening on {addr}");

    // A small dense-vs-sparse sweep, expanded and evaluated server-side.
    let sweep = Sweep::new()
        .networks(["VGG-S", "MobileNet v2"])
        .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 42 }])
        .batches([2]);

    let mut client = Client::connect(addr).expect("connect");
    let first = client.sweep(&sweep).expect("first sweep");
    println!("first pass:  {} results, all computed", first.len());
    assert!(first.iter().all(|r| r.source == Source::Computed));

    // Identical scenarios are fingerprint-sharded and memoized: the
    // second pass recomputes nothing.
    let second = client.sweep(&sweep).expect("second sweep");
    println!("second pass: {} results, all from cache", second.len());
    assert!(second.iter().all(|r| r.source == Source::Memo));
    assert_eq!(
        first.iter().map(|r| &r.doc).collect::<Vec<_>>(),
        second.iter().map(|r| &r.doc).collect::<Vec<_>>(),
        "served documents are bit-identical"
    );

    // Served documents feed the same CSV report as in-process results.
    let docs: Vec<&str> = first.iter().map(|r| r.doc.as_str()).collect();
    let csv = results_csv_from_docs(&docs).expect("standard CSV");
    println!("--- results.csv ---\n{csv}");

    let status = client.status().expect("status");
    println!(
        "daemon counters: computed={} memo_hits={} disk_entries={:?}",
        status.computed, status.memo_hits, status.disk_entries
    );
    assert_eq!(status.computed, first.len() as u64);

    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("clean daemon exit");
    let _ = std::fs::remove_dir_all(&cache_dir);
    println!("daemon drained and stopped");
}
