//! The half-tile load balancer on a real CSB tensor (Fig 9/12 mechanics,
//! Fig 5/13 effect).
//!
//! Run with: `cargo run --release --example load_balancing`

use procrustes::core::report::overhead_histogram;
use procrustes::core::LoadBalancer;
use procrustes::prng::{UniformRng, Xorshift64};
use procrustes::sim::imbalance_overhead;
use procrustes::sparse::CsbTensor;
use procrustes::tensor::Tensor;

fn main() {
    // A 128-filter conv layer whose filters have very uneven density —
    // the situation Dropback training produces (Fig 5).
    let mut rng = Xorshift64::new(3);
    let mut row_keep = vec![0.0f64; 128];
    for keep in row_keep.iter_mut() {
        // Row-correlated density: e^(0.8 g) around a 20% mean.
        let g = (rng.next_f32() + rng.next_f32() + rng.next_f32() - 1.5) * 2.0;
        *keep = (0.2 * f64::from((0.8 * g).exp())).clamp(0.01, 1.0);
    }
    let w = Tensor::from_fn(&[128, 64, 3, 3], |i| {
        if rng.next_f64() < row_keep[i[0]] {
            rng.next_f32() - 0.5
        } else {
            0.0
        }
    });
    let csb = CsbTensor::from_dense_conv(&w);
    println!(
        "weight tensor: {} nonzeros of {} ({:.1}x sparsity)\n",
        csb.nnz(),
        w.len(),
        w.len() as f64 / csb.nnz() as f64
    );

    let balancer = LoadBalancer::new(16);

    // Working-set overheads before balancing (each wave = 16 filter rows).
    let halves = balancer.half_works(&csb);
    let mut before = Vec::new();
    for chunk in halves.chunks(16) {
        let works: Vec<u64> = chunk.iter().map(|&(a, b)| a + b).collect();
        before.push(imbalance_overhead(&works) as f32);
    }
    println!("{}", overhead_histogram(&before, 5, 125.0).render());

    // And after half-tile pairing.
    let schedule = balancer.balance(&csb);
    let after: Vec<f32> = schedule
        .waves
        .iter()
        .map(|wave| {
            let works: Vec<u64> = wave.iter().map(|t| t.work).collect();
            imbalance_overhead(&works) as f32
        })
        .collect();
    println!("{}", overhead_histogram(&after, 5, 125.0).render());

    let (unbal, bal) = balancer.overhead_comparison(&csb);
    println!(
        "worst working set: {:.0}% overhead unbalanced -> {:.0}% after half-tile pairing",
        unbal * 100.0,
        bal * 100.0
    );
    println!(
        "(work conserved: schedule total = {} = tensor nnz; density queries are CSB \
         pointer subtractions)",
        schedule.total_work()
    );
}
