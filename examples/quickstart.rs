//! Quickstart: sparse training plus accelerator cost in ~60 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use procrustes::core::{Engine, Scenario, SparsityGen};
use procrustes::dropback::{ComputeBackend, ProcrustesConfig, ProcrustesTrainer, Trainer};
use procrustes::nn::{arch, data::SyntheticImages, Layer};
use procrustes::prng::Xorshift64;

fn main() {
    // ----- 1. Train a small CNN sparsely with the Procrustes algorithm.
    let mut rng = Xorshift64::new(7);
    let data = SyntheticImages::cifar_like(10, 1);
    let model = arch::tiny_vgg(10, &mut rng);
    let mut trainer = ProcrustesTrainer::new(
        model,
        ProcrustesConfig {
            sparsity_factor: 10.0, // keep ~10% of weights
            lr: 0.05,
            // Fast decay so the demo reaches exact-zero pruned weights
            // within 100 steps (the paper trains for 234k iterations and
            // uses 0.9, reaching zero within its first ~0.5%).
            lambda: 0.7,
            // Run each layer on CSB-compressed kernels once decay drives
            // its density below 50% — same results, less work.
            compute: ComputeBackend::auto(),
            ..ProcrustesConfig::default()
        },
        42,
    );

    println!("training tiny-VGG with a 10x weight budget…");
    for step in 1..=160 {
        let (x, labels) = data.batch(16, &mut rng);
        let stats = trainer.train_step(&x, &labels);
        if step % 40 == 0 {
            println!(
                "  step {step:3}: loss {:.3}, tracked {}/{} budget, threshold {:.2e}, zeros {:.1}%",
                stats.loss,
                stats.tracked,
                trainer.budget(),
                stats.threshold,
                100.0 * stats.weight_sparsity,
            );
        }
    }
    let (vx, vl) = data.fixed_set(128, 99);
    let (loss, acc) = trainer.evaluate(&vx, &vl);
    println!("validation: loss {loss:.3}, accuracy {acc:.3}");
    println!(
        "layers promoted to CSB execution: {}\n",
        trainer.model_mut().csb_store_count()
    );

    // ----- 2. What does one training iteration cost on the accelerator?
    // A Scenario is plain serializable data; the Engine evaluates it.
    // Defaults: 16x16 Procrustes array, K,N dataflow, batch 16.
    let engine = Engine::default();
    let dense = engine
        .run(&Scenario::builder("VGG-S").build().unwrap())
        .unwrap();
    let sparse = engine
        .run(
            &Scenario::builder("VGG-S")
                // Table II sparsity factor (5.2x for VGG-S), seed 42.
                .sparsity(SparsityGen::PaperSynthetic { seed: 42 })
                .build()
                .unwrap(),
        )
        .unwrap();

    println!("VGG-S, one training iteration (batch 16) on 16x16 PEs, K,N dataflow:");
    println!(
        "  dense : {:>12} cycles, {:.1} mJ",
        dense.totals().cycles,
        dense.totals().energy_j() * 1e3
    );
    println!(
        "  sparse: {:>12} cycles, {:.1} mJ",
        sparse.totals().cycles,
        sparse.totals().energy_j() * 1e3
    );
    println!(
        "  -> {:.2}x speedup, {:.2}x energy saving",
        sparse.speedup_over(&dense),
        sparse.energy_saving_over(&dense)
    );
}
