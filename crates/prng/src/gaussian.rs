//! The weight-recomputation unit's Gaussian approximation.
//!
//! §V of the paper: *“\[the WR unit\] consists of 3 xorshift pseudo-random
//! generators (RNGs) whose outputs are added to produce an approximately
//! Gaussian output. Note that, unlike conventional RNG, the WR unit does not
//! contain hidden state, and is purely a function of its seed and the weight
//! index.”*
//!
//! The sum of three `U(0,1)` variables is Irwin–Hall(3): mean 1.5, variance
//! 1/4. We shift and scale to zero mean / unit variance, which is what a
//! scaling stage in hardware would fold into the Xavier/Kaiming factor.

use crate::{SplitMix64, Xorshift32};

/// Scale that turns the Irwin–Hall(3) sum into a unit-variance variable.
const IH3_SCALE: f32 = 2.0; // 1 / sqrt(3/12)

/// Streaming Gaussian generator built from three [`Xorshift32`] cores.
///
/// Mirrors the WR unit's structure: three xorshift generators whose uniform
/// outputs are summed. For the *stateless* pure-function form the hardware
/// actually implements, see [`gaussian_at`].
///
/// # Examples
///
/// ```
/// use procrustes_prng::GaussianXorshift;
/// let mut g = GaussianXorshift::new(3);
/// let mean: f32 = (0..1000).map(|_| g.next_gaussian()).sum::<f32>() / 1000.0;
/// assert!(mean.abs() < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GaussianXorshift {
    a: Xorshift32,
    b: Xorshift32,
    c: Xorshift32,
}

impl GaussianXorshift {
    /// Creates the three xorshift cores from independent mixes of `seed`.
    pub fn new(seed: u32) -> Self {
        let mut mix = SplitMix64::new(u64::from(seed));
        Self {
            a: Xorshift32::from_raw_state(mix.next_u64() as u32),
            b: Xorshift32::from_raw_state(mix.next_u64() as u32),
            c: Xorshift32::from_raw_state(mix.next_u64() as u32),
        }
    }

    /// Returns the next approximately-Gaussian sample
    /// (zero mean, unit variance, support `[-3, 3]`).
    pub fn next_gaussian(&mut self) -> f32 {
        let sum = self.a.next_f32() + self.b.next_f32() + self.c.next_f32();
        (sum - 1.5) * IH3_SCALE
    }
}

/// Stateless WR-unit output: the approximately-Gaussian initial value of the
/// weight at `index` under `seed`, before Xavier/Kaiming scaling.
///
/// This is a *pure function*: it involves no hidden state, so a PE can
/// regenerate any pruned weight's initialization on demand — the property
/// the Procrustes WR unit is built around. Scaling (and decay, Alg 3 of the
/// paper) are applied by the caller; see
/// `procrustes_dropback::WeightRecompute`.
///
/// The three per-call xorshift states are derived by hashing `(seed, index)`
/// with distinct stream constants, then each core is stepped once.
///
/// # Examples
///
/// ```
/// use procrustes_prng::gaussian_at;
/// // Pure function of (seed, index):
/// assert_eq!(gaussian_at(1, 0), gaussian_at(1, 0));
/// // Different indices give different draws:
/// assert_ne!(gaussian_at(1, 0), gaussian_at(1, 1));
/// // Bounded support of Irwin-Hall(3):
/// assert!(gaussian_at(1, 12345).abs() <= 3.0);
/// ```
pub fn gaussian_at(seed: u32, index: u64) -> f32 {
    // Three decorrelated 32-bit states from one 64-bit hash chain.
    let h0 = SplitMix64::mix(u64::from(seed) ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
    let h1 = SplitMix64::mix(h0);
    let mut a = Xorshift32::from_raw_state(h0 as u32);
    let mut b = Xorshift32::from_raw_state((h0 >> 32) as u32);
    let mut c = Xorshift32::from_raw_state(h1 as u32);
    let sum = a.next_f32() + b.next_f32() + c.next_f32();
    (sum - 1.5) * IH3_SCALE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_are_approximately_standard_normal() {
        let mut g = GaussianXorshift::new(17);
        let n = 200_000;
        let samples: Vec<f32> = (0..n).map(|_| g.next_gaussian()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn support_is_bounded_by_three_sigma() {
        let mut g = GaussianXorshift::new(2);
        for _ in 0..100_000 {
            let x = g.next_gaussian();
            assert!(x.abs() <= 3.0 + f32::EPSILON, "out of IH3 support: {x}");
        }
    }

    #[test]
    fn stateless_form_is_reproducible_and_index_sensitive() {
        let a: Vec<f32> = (0..64).map(|i| gaussian_at(11, i)).collect();
        let b: Vec<f32> = (0..64).map(|i| gaussian_at(11, i)).collect();
        assert_eq!(a, b);
        let distinct = a
            .iter()
            .zip((0..64).map(|i| gaussian_at(12, i)))
            .filter(|(x, y)| **x != *y)
            .count();
        assert!(distinct > 60, "seeds should decorrelate ({distinct}/64)");
    }

    #[test]
    fn stateless_moments() {
        let n = 100_000u64;
        let samples: Vec<f32> = (0..n).map(|i| gaussian_at(5, i)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn streaming_form_is_deterministic_per_seed() {
        let x: Vec<f32> = {
            let mut g = GaussianXorshift::new(9);
            (0..32).map(|_| g.next_gaussian()).collect()
        };
        let y: Vec<f32> = {
            let mut g = GaussianXorshift::new(9);
            (0..32).map(|_| g.next_gaussian()).collect()
        };
        assert_eq!(x, y);
    }
}
