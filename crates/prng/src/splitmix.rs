//! SplitMix64: a fast, well-distributed 64-bit mixer.
//!
//! Used as the seeding stage for all other generators so that small,
//! human-friendly seeds (0, 1, 2, …) produce well-separated streams.
//! Reference: Steele, Lea & Flood, “Fast Splittable Pseudorandom Number
//! Generators”, OOPSLA 2014 (the standard `splitmix64` constants).

use crate::UniformRng;

/// SplitMix64 generator / mixer.
///
/// # Examples
///
/// ```
/// use procrustes_prng::SplitMix64;
/// let mut s = SplitMix64::new(0);
/// // Known-answer value for seed 0 from the reference implementation.
/// assert_eq!(s.next_u64(), 0xE220_A839_7B1D_CDAF);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream starts at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Advances the state and returns the next mixed value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// One-shot stateless mix of `value` (the single SplitMix64 step).
    ///
    /// This is the hash the WR unit model uses to map `(seed, index)` pairs
    /// to independent xorshift states.
    ///
    /// # Examples
    ///
    /// ```
    /// use procrustes_prng::SplitMix64;
    /// assert_eq!(SplitMix64::mix(1), SplitMix64::mix(1));
    /// assert_ne!(SplitMix64::mix(1), SplitMix64::mix(2));
    /// ```
    pub fn mix(value: u64) -> u64 {
        SplitMix64::new(value).next_u64()
    }
}

impl UniformRng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test vector from the reference C implementation
    /// (Vigna, https://prng.di.unimi.it/splitmix64.c) with seed 0.
    #[test]
    fn known_answer_seed_zero() {
        let mut s = SplitMix64::new(0);
        assert_eq!(s.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(s.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(s.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn mix_is_pure() {
        for v in [0u64, 1, 42, u64::MAX] {
            assert_eq!(SplitMix64::mix(v), SplitMix64::mix(v));
        }
    }

    #[test]
    fn consecutive_seeds_decorrelate() {
        // The low bit of mixed outputs for consecutive seeds should look
        // like a fair coin.
        let ones = (0..10_000u64)
            .filter(|&i| SplitMix64::mix(i) & 1 == 1)
            .count();
        assert!((4_500..5_500).contains(&ones), "low-bit bias: {ones}");
    }
}
