//! Deterministic pseudo-random number generation for the Procrustes
//! reproduction.
//!
//! The Procrustes accelerator (MICRO 2020) recomputes pruned-weight initial
//! values on the fly in a per-PE *weight recomputation* (WR) unit built from
//! three [xorshift] generators whose outputs are summed to produce an
//! approximately Gaussian value (§V of the paper). This crate provides:
//!
//! * [`Xorshift32`], [`Xorshift64`], [`Xorshift128`] — Marsaglia xorshift
//!   generators, bit-faithful to the published shift triples;
//! * [`SplitMix64`] — a robust seeder/mixer used to derive independent
//!   streams;
//! * [`GaussianXorshift`] — the WR unit's number source: the sum of three
//!   xorshift uniforms, shifted and scaled to zero mean and unit variance
//!   (Irwin–Hall approximation of a Gaussian);
//! * [`gaussian_at`] — the *stateless* form used by the WR unit: a pure
//!   function of `(seed, index)`, so any PE can regenerate any weight's
//!   initial value without storing RNG state.
//!
//! Everything in this crate is deterministic and seed-stable across
//! platforms; the whole reproduction derives its randomness from here so
//! that experiments are bit-reproducible.
//!
//! # Examples
//!
//! ```
//! use procrustes_prng::{UniformRng, Xorshift32, GaussianXorshift, gaussian_at};
//!
//! let mut rng = Xorshift32::new(42);
//! let u = rng.next_f32();
//! assert!((0.0..1.0).contains(&u));
//!
//! // Stateless weight-initialization: same (seed, index) -> same value.
//! assert_eq!(gaussian_at(7, 1234), gaussian_at(7, 1234));
//!
//! let mut g = GaussianXorshift::new(7);
//! let sample = g.next_gaussian();
//! assert!(sample.abs() <= 3.0); // Irwin-Hall(3) is bounded
//! ```
//!
//! [xorshift]: https://www.jstatsoft.org/article/view/v008i14

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gaussian;
mod splitmix;
mod xorshift;

pub use gaussian::{gaussian_at, GaussianXorshift};
pub use splitmix::SplitMix64;
pub use xorshift::{Xorshift128, Xorshift32, Xorshift64};

/// Common interface for the uniform generators in this crate.
///
/// The trait is object-safe so simulations can hold `Box<dyn UniformRng>`
/// when the generator choice is a runtime configuration.
///
/// # Examples
///
/// ```
/// use procrustes_prng::{UniformRng, Xorshift64};
/// let mut rng: Box<dyn UniformRng> = Box::new(Xorshift64::new(1));
/// let x = rng.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
pub trait UniformRng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns the next raw 32-bit output of the generator.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    fn next_f32(&mut self) -> f32 {
        // 24 significant bits keeps the value exactly representable.
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// Uses the widening-multiply map, which is unbiased enough for
    /// simulation workloads (bias < 2⁻³² per draw).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Shuffles `slice` in place with a Fisher–Yates pass driven by `rng`.
///
/// # Examples
///
/// ```
/// use procrustes_prng::{shuffle, Xorshift64};
/// let mut v: Vec<u32> = (0..10).collect();
/// shuffle(&mut v, &mut Xorshift64::new(3));
/// let mut sorted = v.clone();
/// sorted.sort();
/// assert_eq!(sorted, (0..10).collect::<Vec<_>>());
/// ```
pub fn shuffle<T, R: UniformRng + ?Sized>(slice: &mut [T], rng: &mut R) {
    for i in (1..slice.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        slice.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_below_is_in_range() {
        let mut rng = Xorshift64::new(9);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Xorshift64::new(9).next_below(0);
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut v, &mut Xorshift64::new(11));
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle should permute");
        v.sort_unstable();
        assert_eq!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn f32_and_f64_are_in_unit_interval() {
        let mut rng = Xorshift32::new(5);
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x), "f32 out of range: {x}");
        }
        let mut rng = Xorshift64::new(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "f64 out of range: {x}");
        }
    }
}
