//! Marsaglia xorshift generators.
//!
//! These are the exact shift triples from G. Marsaglia, “Xorshift RNGs”,
//! *Journal of Statistical Software* 8(14), 2003 — the generator family the
//! Procrustes WR unit instantiates in hardware (Table I of the paper lists
//! “pseudo-RNG: xorshift, one per PE”).

use crate::{SplitMix64, UniformRng};

/// 32-bit xorshift generator (shift triple 13/17/5).
///
/// This is the generator the Procrustes weight-recomputation unit uses; a
/// hardware PE holds three of them (see
/// [`GaussianXorshift`](crate::GaussianXorshift)).
///
/// # Examples
///
/// ```
/// use procrustes_prng::Xorshift32;
/// let mut a = Xorshift32::new(1);
/// let mut b = Xorshift32::new(1);
/// assert_eq!(a.next(), b.next()); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xorshift32 {
    state: u32,
}

impl Xorshift32 {
    /// Creates a generator from `seed`.
    ///
    /// A zero seed would trap the generator at zero forever, so seeds are
    /// first mixed through [`SplitMix64`]; the all-zero mix output is then
    /// replaced by a fixed nonzero constant.
    pub fn new(seed: u32) -> Self {
        let mixed = SplitMix64::new(u64::from(seed)).next_u64() as u32;
        Self::from_raw_state(mixed)
    }

    /// Creates a generator with `state` used verbatim (after zero-fixup).
    ///
    /// Use this when bit-faithful correspondence with a hardware seed
    /// register is required, e.g. in the WR unit model.
    pub fn from_raw_state(state: u32) -> Self {
        Self {
            state: if state == 0 { 0x9E37_79B9 } else { state },
        }
    }

    /// Advances the generator and returns the next 32-bit value.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u32 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.state = x;
        x
    }

    /// Returns the current internal state (never zero).
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Returns a uniform `f32` in `[0, 1)` from the next output.
    pub fn next_f32(&mut self) -> f32 {
        (self.next() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformRng for Xorshift32 {
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next()) << 32) | u64::from(self.next())
    }

    fn next_u32(&mut self) -> u32 {
        self.next()
    }
}

impl Iterator for Xorshift32 {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        Some(Xorshift32::next(self))
    }
}

/// 64-bit xorshift generator (shift triple 13/7/17).
///
/// The workhorse uniform generator for workload synthesis in this
/// reproduction (dataset noise, mask sampling, shuffles).
///
/// # Examples
///
/// ```
/// use procrustes_prng::{UniformRng, Xorshift64};
/// let mut rng = Xorshift64::new(99);
/// let x: u64 = rng.next_u64();
/// let y: u64 = rng.next_u64();
/// assert_ne!(x, y);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    /// Creates a generator from `seed` (mixed through [`SplitMix64`]).
    pub fn new(seed: u64) -> Self {
        let mixed = SplitMix64::new(seed).next_u64();
        Self {
            state: if mixed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                mixed
            },
        }
    }

    /// Advances the generator and returns the next 64-bit value.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Returns the current internal state (never zero).
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl UniformRng for Xorshift64 {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl Iterator for Xorshift64 {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(Xorshift64::next(self))
    }
}

/// 128-bit xorshift generator (Marsaglia's `xor128`, period 2¹²⁸−1).
///
/// Used where a longer period matters (multi-billion-sample sweeps in the
/// analytical simulator's Monte-Carlo mask studies).
///
/// # Examples
///
/// ```
/// use procrustes_prng::Xorshift128;
/// let mut rng = Xorshift128::new(7);
/// assert_ne!(rng.next(), rng.next());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xorshift128 {
    x: u32,
    y: u32,
    z: u32,
    w: u32,
}

impl Xorshift128 {
    /// Creates a generator from `seed`; the four state words are drawn from
    /// a [`SplitMix64`] stream (never all zero).
    pub fn new(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        let a = mix.next_u64();
        let b = mix.next_u64();
        let mut s = Self {
            x: a as u32,
            y: (a >> 32) as u32,
            z: b as u32,
            w: (b >> 32) as u32,
        };
        if s.x == 0 && s.y == 0 && s.z == 0 && s.w == 0 {
            s.w = 0x9E37_79B9;
        }
        s
    }

    /// Advances the generator and returns the next 32-bit value.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u32 {
        let t = self.x ^ (self.x << 11);
        self.x = self.y;
        self.y = self.z;
        self.z = self.w;
        self.w = (self.w ^ (self.w >> 19)) ^ (t ^ (t >> 8));
        self.w
    }
}

impl UniformRng for Xorshift128 {
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next()) << 32) | u64::from(self.next())
    }

    fn next_u32(&mut self) -> u32 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference from Marsaglia's paper: seeding xor32 with 2463534242 and
    /// applying (13,17,5) must follow the published recurrence. We verify
    /// the first step by direct computation.
    #[test]
    fn xorshift32_recurrence_matches_reference() {
        let mut rng = Xorshift32::from_raw_state(2_463_534_242);
        let mut x: u32 = 2_463_534_242;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        assert_eq!(rng.next(), x);
    }

    #[test]
    fn zero_seed_does_not_stick() {
        let mut rng = Xorshift32::from_raw_state(0);
        assert_ne!(rng.next(), 0);
        let mut rng64 = Xorshift64::new(0);
        assert_ne!(rng64.next(), 0);
    }

    #[test]
    fn xorshift32_has_long_cycle_prefix() {
        // The full period is 2^32-1; just check no short cycle in 1M steps.
        let mut rng = Xorshift32::new(1);
        let first = rng.next();
        for _ in 0..1_000_000 {
            assert_ne!(rng.next(), 0);
        }
        // Coming back to the first output within 1M draws would mean a
        // catastrophically short cycle.
        let mut rng2 = Xorshift32::new(1);
        rng2.next();
        let mut seen_first_again = false;
        for _ in 0..10_000 {
            if rng2.next() == first {
                seen_first_again = true;
                break;
            }
        }
        assert!(!seen_first_again);
    }

    #[test]
    fn mean_of_uniform_outputs_is_centered() {
        let mut rng = Xorshift64::new(123);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let a: Vec<u32> = Xorshift32::new(1).take(16).collect();
        let b: Vec<u32> = Xorshift32::new(2).take(16).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn xorshift128_changes_all_state_words() {
        let mut rng = Xorshift128::new(5);
        let before = rng;
        rng.next();
        rng.next();
        rng.next();
        rng.next();
        assert_ne!(format!("{before:?}"), format!("{rng:?}"));
    }
}
