//! The Pareto-front accumulator.

use std::cmp::Ordering;
use std::fmt::Write as _;

use procrustes_core::json::Json;

/// One non-dominated design point: the scenario fingerprint (its
/// cross-process identity), the measured objective vector (one entry
/// per spec objective, all minimized), and the canonical `EvalResult`
/// JSON document it was measured from.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// [`Scenario::fingerprint`](procrustes_core::Scenario::fingerprint)
    /// of the evaluated scenario.
    pub fingerprint: u64,
    /// The objective vector, in the spec's objective order (minimized).
    pub objectives: Vec<f64>,
    /// The canonical result document (byte-identical to
    /// `EvalResult::to_json`).
    pub doc: String,
}

/// What [`ParetoFront::insert`] did with a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insert {
    /// The point joined the front, evicting `removed` newly-dominated
    /// members.
    Added {
        /// Number of previous members the new point dominated.
        removed: usize,
    },
    /// An existing member dominates (or equals, with the same
    /// fingerprint) the candidate; the front is unchanged.
    Dominated,
    /// The exact same scenario (by fingerprint) is already a member.
    Duplicate,
}

/// `true` when `a` Pareto-dominates `b` under minimization: no worse on
/// every objective and strictly better on at least one. Equal vectors
/// dominate in neither direction (ties coexist on the front).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len(), "objective vectors must align");
    let mut strictly = false;
    for (&x, &y) in a.iter().zip(b) {
        match x.total_cmp(&y) {
            Ordering::Greater => return false,
            Ordering::Less => strictly = true,
            Ordering::Equal => {}
        }
    }
    strictly
}

/// A set of mutually non-dominated points, kept in a canonical order.
///
/// # Invariants
///
/// * No member dominates another (checked on every insert).
/// * Fingerprints are unique.
/// * Members are ordered by (objective vector lexicographically via
///   `total_cmp`, then fingerprint) — a deterministic rendering order
///   that does not depend on insertion order, so two searches that
///   discover the same set of points serialize the same front byte for
///   byte.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParetoFront {
    points: Vec<ParetoPoint>,
}

impl ParetoFront {
    /// An empty front.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current members, in canonical order.
    pub fn points(&self) -> &[ParetoPoint] {
        &self.points
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the front has no members.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// `true` when the scenario is already a member.
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.points.iter().any(|p| p.fingerprint == fingerprint)
    }

    /// Offers a candidate to the front.
    pub fn insert(&mut self, point: ParetoPoint) -> Insert {
        if self.contains(point.fingerprint) {
            return Insert::Duplicate;
        }
        if self
            .points
            .iter()
            .any(|p| dominates(&p.objectives, &point.objectives))
        {
            return Insert::Dominated;
        }
        let before = self.points.len();
        self.points
            .retain(|p| !dominates(&point.objectives, &p.objectives));
        let removed = before - self.points.len();
        let at = self
            .points
            .partition_point(|p| canonical_order(p, &point) == Ordering::Less);
        self.points.insert(at, point);
        Insert::Added { removed }
    }

    /// Serializes the front as a canonical JSON array of
    /// `{"objectives": [...], "result": <doc>}` members, in canonical
    /// member order. Two fronts holding the same set of points render
    /// byte-identically regardless of how they were discovered; this is
    /// the representation the serving daemon streams and the tests pin.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let objectives = Json::Arr(p.objectives.iter().map(|&v| Json::f64(v)).collect());
            let _ = write!(out, "{{\"objectives\":{objectives},\"result\":{}}}", p.doc);
        }
        out.push(']');
        out
    }
}

/// The canonical member order (see the [`ParetoFront`] invariants).
fn canonical_order(a: &ParetoPoint, b: &ParetoPoint) -> Ordering {
    for (&x, &y) in a.objectives.iter().zip(&b.objectives) {
        match x.total_cmp(&y) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    a.fingerprint.cmp(&b.fingerprint)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(fp: u64, objectives: &[f64]) -> ParetoPoint {
        ParetoPoint {
            fingerprint: fp,
            objectives: objectives.to_vec(),
            doc: format!("{{\"fp\":{fp}}}"),
        }
    }

    #[test]
    fn dominance_law() {
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(!dominates(&[2.0, 2.0], &[1.0, 2.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal: neither
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // incomparable
    }

    #[test]
    fn insert_rejects_dominated_and_evicts() {
        let mut f = ParetoFront::new();
        assert_eq!(f.insert(pt(1, &[5.0, 5.0])), Insert::Added { removed: 0 });
        assert_eq!(f.insert(pt(2, &[6.0, 6.0])), Insert::Dominated);
        assert_eq!(f.insert(pt(3, &[4.0, 6.0])), Insert::Added { removed: 0 });
        // Dominates both members.
        assert_eq!(f.insert(pt(4, &[4.0, 5.0])), Insert::Added { removed: 2 });
        assert_eq!(f.len(), 1);
        assert_eq!(f.insert(pt(4, &[4.0, 5.0])), Insert::Duplicate);
    }

    #[test]
    fn equal_vectors_coexist() {
        let mut f = ParetoFront::new();
        assert_eq!(f.insert(pt(7, &[1.0, 2.0])), Insert::Added { removed: 0 });
        assert_eq!(f.insert(pt(8, &[1.0, 2.0])), Insert::Added { removed: 0 });
        assert_eq!(f.len(), 2);
        // Ordered by fingerprint when objectives tie.
        assert_eq!(f.points()[0].fingerprint, 7);
    }

    #[test]
    fn front_serializes_canonically() {
        let mut f = ParetoFront::new();
        f.insert(pt(8, &[1.0, 2.0]));
        f.insert(pt(7, &[1.0, 2.0]));
        assert_eq!(
            f.to_json(),
            concat!(
                "[{\"objectives\":[1.0,2.0],\"result\":{\"fp\":7}},",
                "{\"objectives\":[1.0,2.0],\"result\":{\"fp\":8}}]"
            )
        );
    }
}
