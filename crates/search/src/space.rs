//! The search space: resolved sweep axes plus the genome encoding.

use procrustes_core::{Scenario, ScenarioError, Sweep, SweepAxes};

/// Number of sweep axes a genome indexes (network, sparsity, compute,
/// fidelity, mapping, batch, arch, balance).
pub const AXES: usize = 8;

/// One candidate design point: an index into each axis domain of the
/// [`SearchSpace`], listed in the sweep's documented expansion order
/// (outermost first). Two equal genomes always name the same scenario,
/// so genome equality is the search loop's cheap de-duplication key;
/// [`Scenario::fingerprint`] stays the cross-process identity.
pub type Genome = [u32; AXES];

/// A [`Sweep`]'s cartesian grid viewed as an indexable space.
///
/// The domains come from [`Sweep::resolved_axes`], so every default the
/// sweep builder would apply is already applied here and
/// [`SearchSpace::scenario`] constructs scenarios *identical* to the
/// ones [`Sweep::build`] expands — a search that visits a genome
/// produces the same canonical result document an exhaustive sweep
/// would, byte for byte.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    axes: SweepAxes,
}

impl SearchSpace {
    /// Builds the space from a sweep declaration.
    ///
    /// # Errors
    ///
    /// Rejects a sweep that names no networks (the one axis without a
    /// default), mirroring [`Sweep::build`].
    pub fn from_sweep(sweep: &Sweep) -> Result<SearchSpace, ScenarioError> {
        let axes = sweep.resolved_axes();
        if axes.networks.is_empty() {
            return Err(ScenarioError::InvalidParam(
                "search space names no networks".into(),
            ));
        }
        Ok(SearchSpace { axes })
    }

    /// The resolved axis domains.
    pub fn axes(&self) -> &SweepAxes {
        &self.axes
    }

    /// Domain size of each axis, in genome order.
    pub fn axis_lens(&self) -> [usize; AXES] {
        [
            self.axes.networks.len(),
            self.axes.sparsities.len(),
            self.axes.computes.len(),
            self.axes.fidelities.len(),
            self.axes.mappings.len(),
            self.axes.batches.len(),
            self.axes.arches.len(),
            self.axes.balances.len(),
        ]
    }

    /// Total number of grid points (saturating, like
    /// [`Sweep::cardinality`]).
    pub fn cardinality(&self) -> usize {
        self.axis_lens()
            .into_iter()
            .fold(1usize, usize::saturating_mul)
    }

    /// Materializes the scenario a genome names, exactly as
    /// [`Sweep::build`] would construct it (same defaults, same
    /// per-sparsity balance resolution).
    ///
    /// # Errors
    ///
    /// Propagates scenario validation errors (e.g. an unknown network
    /// name in the sweep document).
    ///
    /// # Panics
    ///
    /// Panics if any genome index is out of its axis domain — genomes
    /// are produced by this module's samplers, never parsed from
    /// untrusted input.
    pub fn scenario(&self, genome: &Genome) -> Result<Scenario, ScenarioError> {
        let a = &self.axes;
        let sparsity = a.sparsities[genome[1] as usize].clone();
        let balance =
            a.balances[genome[7] as usize].unwrap_or_else(|| Scenario::default_balance(&sparsity));
        let scenario = Scenario {
            network: a.networks[genome[0] as usize].clone(),
            arch: a.arches[genome[6] as usize].clone(),
            mapping: a.mappings[genome[4] as usize],
            batch: a.batches[genome[5] as usize],
            sparsity,
            balance,
            compute: a.computes[genome[2] as usize],
            fidelity: a.fidelities[genome[3] as usize],
        };
        scenario.validate()?;
        Ok(scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use procrustes_core::SparsityGen;
    use procrustes_sim::Mapping;

    fn sweep() -> Sweep {
        Sweep::new()
            .networks(["VGG-S", "ResNet18"])
            .mappings(Mapping::ALL)
            .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 1 }])
            .batches([2, 4])
    }

    #[test]
    fn cardinality_matches_sweep() {
        let space = SearchSpace::from_sweep(&sweep()).unwrap();
        assert_eq!(space.cardinality(), sweep().cardinality());
        assert_eq!(space.cardinality(), 2 * 4 * 2 * 2);
    }

    #[test]
    fn every_genome_reproduces_the_sweep_expansion() {
        let space = SearchSpace::from_sweep(&sweep()).unwrap();
        let scenarios = sweep().build().unwrap();
        let lens = space.axis_lens();
        // Walk the grid in expansion order (outermost axis slowest) and
        // check genome construction is identical to Sweep::build.
        let mut rank = 0usize;
        let mut genome = [0u32; AXES];
        loop {
            assert_eq!(
                space.scenario(&genome).unwrap(),
                scenarios[rank],
                "genome {genome:?} diverged from expansion rank {rank}"
            );
            rank += 1;
            // Increment the innermost axis first (odometer order).
            let mut axis = AXES;
            loop {
                if axis == 0 {
                    assert_eq!(rank, scenarios.len());
                    return;
                }
                axis -= 1;
                genome[axis] += 1;
                if (genome[axis] as usize) < lens[axis] {
                    break;
                }
                genome[axis] = 0;
            }
        }
    }

    #[test]
    fn empty_networks_rejected() {
        assert!(SearchSpace::from_sweep(&Sweep::new()).is_err());
    }
}
