//! The seeded, deterministic successive-halving search loop.

use std::collections::HashSet;

use procrustes_core::json::Json;
use procrustes_core::{Engine, Scenario, Sweep};
use procrustes_prng::{shuffle, SplitMix64, UniformRng};

use crate::objectives::{measure, Objective};
use crate::pareto::{Insert, ParetoFront, ParetoPoint};
use crate::space::{Genome, SearchSpace, AXES};

/// A complete, serializable description of one search: the space (a
/// [`Sweep`] declaration — the grid is *never* materialized), the
/// minimized objective vector, the seed, and the budget knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpec {
    /// The design space, as a sweep declaration (axes with defaults).
    pub space: Sweep,
    /// Minimized objectives, in order (default `[cycles, energy]`).
    pub objectives: Vec<Objective>,
    /// PRNG seed; equal seeds reproduce the search exactly (default 0).
    pub seed: u64,
    /// Round-0 population size (default 16).
    pub population: usize,
    /// Maximum number of scenario evaluations (default 4 ×
    /// `population`); the run also stops early when the whole grid has
    /// been evaluated.
    pub budget: usize,
    /// Successive-halving rungs: the per-round batch halves this many
    /// times before settling at its floor (default 3).
    pub rungs: usize,
}

impl SearchSpec {
    /// A spec over `space` with every knob at its documented default.
    pub fn new(space: Sweep) -> SearchSpec {
        let population = 16;
        SearchSpec {
            space,
            objectives: vec![Objective::Cycles, Objective::Energy],
            seed: 0,
            population,
            budget: 4 * population,
            rungs: 3,
        }
    }

    /// Checks the knobs (the space itself is checked when the search
    /// builds its [`SearchSpace`]).
    ///
    /// # Errors
    ///
    /// Returns a message for an empty or duplicated objective vector,
    /// `population < 2`, `budget < population`, or `rungs == 0`.
    pub fn validate(&self) -> Result<(), String> {
        if self.objectives.is_empty() {
            return Err("search spec names no objectives".into());
        }
        for (i, o) in self.objectives.iter().enumerate() {
            if self.objectives[..i].contains(o) {
                return Err(format!("duplicate objective '{}'", o.label()));
            }
        }
        if self.population < 2 {
            return Err("search population must be at least 2".into());
        }
        if self.budget < self.population {
            return Err(format!(
                "search budget {} is below the population {}",
                self.budget, self.population
            ));
        }
        if self.rungs == 0 {
            return Err("search rungs must be at least 1".into());
        }
        Ok(())
    }

    /// Serializes the spec to a canonical JSON document (deterministic
    /// field order; every knob emitted explicitly).
    pub fn to_json(&self) -> String {
        let objectives: Vec<String> = self
            .objectives
            .iter()
            .map(|o| format!("\"{}\"", o.label()))
            .collect();
        format!(
            r#"{{"space":{},"objectives":[{}],"seed":{},"population":{},"budget":{},"rungs":{}}}"#,
            self.space.to_json(),
            objectives.join(","),
            self.seed,
            self.population,
            self.budget,
            self.rungs
        )
    }

    /// Deserializes a spec document. Safe for **untrusted input**:
    /// structured errors, no panics, unknown fields rejected (a typo'd
    /// knob must not silently search the wrong space). Every field
    /// except `space` is optional and defaults as documented on the
    /// struct.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on any malformed or unknown
    /// member.
    pub fn from_json(text: &str) -> Result<SearchSpec, String> {
        let v = Json::parse(text).map_err(|e| format!("malformed search spec: {e}"))?;
        Self::from_json_value(&v)
    }

    /// [`SearchSpec::from_json`] over an already-parsed [`Json`] value.
    ///
    /// # Errors
    ///
    /// See [`SearchSpec::from_json`].
    pub fn from_json_value(v: &Json) -> Result<SearchSpec, String> {
        let Json::Obj(pairs) = v else {
            return Err("search spec is not a JSON object".into());
        };
        const ALLOWED: [&str; 6] = [
            "space",
            "objectives",
            "seed",
            "population",
            "budget",
            "rungs",
        ];
        for (k, _) in pairs {
            if !ALLOWED.contains(&k.as_str()) {
                return Err(format!(
                    "unknown search spec field '{k}' (allowed: {})",
                    ALLOWED.join(", ")
                ));
            }
        }
        let space = Sweep::from_json_value(v.get("space").ok_or("search spec has no 'space'")?)
            .map_err(|e| e.to_string())?;
        let mut spec = SearchSpec::new(space);
        if let Some(objs) = v.get("objectives") {
            let arr = objs
                .as_arr()
                .ok_or("search spec 'objectives' is not an array")?;
            spec.objectives = arr
                .iter()
                .map(|o| {
                    o.as_str()
                        .ok_or_else(|| "objective entry is not a string".to_string())
                        .and_then(Objective::from_label)
                })
                .collect::<Result<_, _>>()?;
        }
        let knob = |key: &str, default: usize| -> Result<usize, String> {
            match v.get(key) {
                None => Ok(default),
                Some(j) => j
                    .as_usize()
                    .ok_or_else(|| format!("search spec '{key}' is not an integer")),
            }
        };
        spec.seed = match v.get("seed") {
            None => 0,
            Some(j) => j.as_u64().ok_or("search spec 'seed' is not an integer")?,
        };
        spec.population = knob("population", spec.population)?;
        // The budget default tracks an explicitly-set population.
        spec.budget = knob("budget", 4 * spec.population)?;
        spec.rungs = knob("rungs", spec.rungs)?;
        spec.validate()?;
        Ok(spec)
    }
}

/// Anything that can evaluate a batch of scenarios into canonical
/// `EvalResult` JSON documents (one per scenario, in input order).
///
/// The search loop itself is single-threaded and seeded; all
/// parallelism (and all caching) lives behind this trait, which is what
/// makes the population evolution independent of thread count: the
/// documents are canonical, so *where* they were computed cannot leak
/// into the search state.
pub trait EvalBackend {
    /// Evaluates every scenario, returning one canonical result
    /// document per input, in input order.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message; the search aborts on the first
    /// backend error.
    fn eval_all(&mut self, scenarios: &[Scenario]) -> Result<Vec<String>, String>;
}

/// The in-process backend: evaluates batches on an [`Engine`]
/// (inheriting its thread pool and per-layer memo cache).
pub struct EngineBackend<'a> {
    engine: &'a Engine,
}

impl<'a> EngineBackend<'a> {
    /// Wraps an engine.
    pub fn new(engine: &'a Engine) -> Self {
        Self { engine }
    }
}

impl EvalBackend for EngineBackend<'_> {
    fn eval_all(&mut self, scenarios: &[Scenario]) -> Result<Vec<String>, String> {
        let results = self.engine.run_all(scenarios).map_err(|e| e.to_string())?;
        Ok(results.iter().map(|r| r.to_json()).collect())
    }
}

/// One round's progress, reported after its batch has been folded into
/// the front. Every field is deterministic for a given spec (no
/// timings, no cache sources), so streamed updates are byte-stable
/// across thread counts and daemon restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundUpdate {
    /// 1-based round number.
    pub round: usize,
    /// Total scenarios evaluated so far.
    pub evaluated: usize,
    /// Points that joined the front this round.
    pub added: usize,
    /// Previous members evicted (newly dominated) this round.
    pub removed: usize,
    /// Front size after this round.
    pub front_size: usize,
}

/// The result of a completed search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The final Pareto front.
    pub front: ParetoFront,
    /// Scenarios evaluated (distinct; never exceeds the budget or the
    /// grid).
    pub evaluated: usize,
    /// Cardinality of the exhaustive grid the space describes.
    pub grid: usize,
    /// Rounds executed.
    pub rounds: usize,
}

/// Mutation weight per axis (genome order: network, sparsity, compute,
/// fidelity, mapping, batch, arch, balance).
///
/// The bias is memoization-aware: the engine's per-layer cost cache is
/// keyed on `(task fp, phase, mapping, balance, fidelity, arch fp,
/// sparsity fp)`, where the per-layer *task set* (and the synthesized
/// sparsity masks feeding it) is determined by network × sparsity ×
/// batch × compute. Mutating mapping/balance/fidelity/arch keeps that
/// whole workload-synthesis family intact — the neighbor shares every
/// task and mask with its parent and re-runs only the cost model — so
/// those axes get weight 3. Batch and compute perturb the task set but
/// stay within the same network/masks (weight 2); network and sparsity
/// restart workload synthesis from scratch (weight 1).
const AXIS_WEIGHTS: [u64; AXES] = [1, 1, 2, 3, 3, 2, 3, 3];

/// Runs the search over `backend`, invoking `on_round` after each
/// round's batch lands.
///
/// Determinism contract: for a fixed spec, the sequence of evaluated
/// genomes, every [`RoundUpdate`], and the final front (members *and*
/// order) are identical regardless of the backend's parallelism or
/// cache state. The loop stops when the budget (or the whole grid) has
/// been evaluated, or when the neighborhood generator cannot produce a
/// fresh candidate.
///
/// # Errors
///
/// Propagates spec/space validation errors, backend failures, and
/// malformed result documents.
pub fn run_search(
    spec: &SearchSpec,
    backend: &mut dyn EvalBackend,
    mut on_round: impl FnMut(&RoundUpdate),
) -> Result<SearchOutcome, String> {
    spec.validate()?;
    let space = SearchSpace::from_sweep(&spec.space).map_err(|e| e.to_string())?;
    let grid = space.cardinality();
    let budget = spec.budget.min(grid);
    let mut rng = SplitMix64::new(spec.seed);
    let mut seen: HashSet<Genome> = HashSet::new();
    let mut front = ParetoFront::new();
    // Evaluation history in evaluation order — the survivor selector
    // draws its second tier from here.
    let mut history: Vec<HistoryPoint> = Vec::new();
    let mut rounds = 0;

    let mut population =
        initial_population(&space, spec.population.min(budget), &mut rng, &mut seen);
    while !population.is_empty() {
        let scenarios: Vec<Scenario> = population
            .iter()
            .map(|g| space.scenario(g).map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?;
        let docs = backend.eval_all(&scenarios)?;
        if docs.len() != scenarios.len() {
            return Err(format!(
                "backend returned {} documents for {} scenarios",
                docs.len(),
                scenarios.len()
            ));
        }
        let (mut added, mut removed) = (0, 0);
        for ((genome, scenario), doc) in population.iter().zip(&scenarios).zip(docs) {
            let objectives = measure(&spec.objectives, &doc)?;
            let fingerprint = scenario.fingerprint();
            history.push(HistoryPoint {
                genome: *genome,
                fingerprint,
                objectives: objectives.clone(),
            });
            if let Insert::Added { removed: r } = front.insert(ParetoPoint {
                fingerprint,
                objectives,
                doc,
            }) {
                added += 1;
                removed += r;
            }
        }
        rounds += 1;
        on_round(&RoundUpdate {
            round: rounds,
            evaluated: history.len(),
            added,
            removed,
            front_size: front.len(),
        });
        let remaining = budget - history.len();
        if remaining == 0 {
            break;
        }
        // Successive halving: the batch (and the survivor pool it is
        // bred from) halves each round down to a floor of 2, then the
        // remaining budget is spent at that width around the front.
        let rung = spec.population >> rounds.min(spec.rungs);
        let batch = rung.max(2).min(remaining);
        let survivors = select_survivors(&history, &front, rung.max(2));
        population = next_generation(&space, &survivors, batch, &mut rng, &mut seen);
    }
    Ok(SearchOutcome {
        front,
        evaluated: history.len(),
        grid,
        rounds,
    })
}

/// Runs the search on an in-process engine (the common local case).
///
/// # Errors
///
/// See [`run_search`].
pub fn run_search_on_engine(
    spec: &SearchSpec,
    engine: &Engine,
    on_round: impl FnMut(&RoundUpdate),
) -> Result<SearchOutcome, String> {
    run_search(spec, &mut EngineBackend::new(engine), on_round)
}

/// The brute-force reference: evaluates the spec's *entire* grid
/// through `backend` and folds every result into a front — the ground
/// truth the seeded search is measured against (and what it replaces at
/// scale).
///
/// # Errors
///
/// See [`run_search`]; additionally fails when the grid itself fails to
/// build.
pub fn exhaustive_front(
    spec: &SearchSpec,
    backend: &mut dyn EvalBackend,
) -> Result<ParetoFront, String> {
    spec.validate()?;
    let scenarios = spec.space.build().map_err(|e| e.to_string())?;
    let docs = backend.eval_all(&scenarios)?;
    let mut front = ParetoFront::new();
    for (scenario, doc) in scenarios.iter().zip(docs) {
        let objectives = measure(&spec.objectives, &doc)?;
        front.insert(ParetoPoint {
            fingerprint: scenario.fingerprint(),
            objectives,
            doc,
        });
    }
    Ok(front)
}

/// Round 0: a stratified sample. Each axis gets an independently
/// shuffled cycle of its indices, and candidate `i` takes entry
/// `i % len` of each cycle — every axis value is visited as evenly as
/// the population allows (Latin-hypercube-style), which is what lets a
/// small round-0 population see the whole grid's spread. Collisions
/// (possible once a cycle wraps) fall back to uniform random fresh
/// genomes.
fn initial_population(
    space: &SearchSpace,
    size: usize,
    rng: &mut SplitMix64,
    seen: &mut HashSet<Genome>,
) -> Vec<Genome> {
    let lens = space.axis_lens();
    let cycles: Vec<Vec<u32>> = lens
        .iter()
        .map(|&len| {
            let mut idx: Vec<u32> = (0..len as u32).collect();
            shuffle(&mut idx, rng);
            idx
        })
        .collect();
    let mut population = Vec::with_capacity(size);
    for i in 0..size {
        let mut genome = [0u32; AXES];
        for (axis, cycle) in cycles.iter().enumerate() {
            genome[axis] = cycle[i % cycle.len()];
        }
        if seen.insert(genome) {
            population.push(genome);
        }
    }
    let mut attempts = 0;
    while population.len() < size && attempts < 64 * size {
        attempts += 1;
        let genome = random_genome(&lens, rng);
        if seen.insert(genome) {
            population.push(genome);
        }
    }
    population
}

/// One evaluated grid point, as the survivor selector sees it.
struct HistoryPoint {
    genome: Genome,
    fingerprint: u64,
    objectives: Vec<f64>,
}

/// The deterministic elitist pool the next generation is bred from:
/// every current front member first (in the front's canonical order —
/// the front *is* the non-dominated rank-0 set of the history, kept
/// incrementally), then dominated history points ordered by (objective
/// vector lexicographically via `total_cmp`, evaluation order) until
/// `count` genomes are collected.
fn select_survivors(history: &[HistoryPoint], front: &ParetoFront, count: usize) -> Vec<Genome> {
    let mut out: Vec<Genome> = front
        .points()
        .iter()
        .filter_map(|p| {
            history
                .iter()
                .find(|h| h.fingerprint == p.fingerprint)
                .map(|h| h.genome)
        })
        .take(count)
        .collect();
    if out.len() < count {
        let mut rest: Vec<usize> = (0..history.len())
            .filter(|&i| !front.contains(history[i].fingerprint))
            .collect();
        rest.sort_by(|&a, &b| {
            let (pa, pb) = (&history[a], &history[b]);
            pa.objectives
                .iter()
                .zip(&pb.objectives)
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| o.is_ne())
                .unwrap_or_else(|| a.cmp(&b))
        });
        out.extend(
            rest.into_iter()
                .take(count - out.len())
                .map(|i| history[i].genome),
        );
    }
    out
}

/// Breeds the next batch around the survivor pool, de-duplicated
/// against every genome ever scheduled so the budget is only spent on
/// fresh grid points.
///
/// The neighborhood is walked *systematically* rather than sampled:
/// for each survivor (front members first), every 1-step mutation is
/// enumerated with axes ordered by descending [`AXIS_WEIGHTS`] — the
/// memoization-aware bias, made deterministic. Only when the combined
/// neighborhoods run dry does the generator fall back to seeded
/// crossover between survivors and uniform restarts. Returns fewer
/// than `batch` (possibly none, ending the search) when even those are
/// exhausted.
fn next_generation(
    space: &SearchSpace,
    survivors: &[Genome],
    batch: usize,
    rng: &mut SplitMix64,
    seen: &mut HashSet<Genome>,
) -> Vec<Genome> {
    let lens = space.axis_lens();
    let mut out = Vec::with_capacity(batch);
    let mut axes: Vec<usize> = (0..AXES).filter(|&a| lens[a] > 1).collect();
    axes.sort_by_key(|&a| (std::cmp::Reverse(AXIS_WEIGHTS[a]), a));
    // Per-survivor ordered neighbor lists, merged round-robin so every
    // survivor's neighborhood opens up in parallel instead of the first
    // survivor's being exhausted before the second's is touched.
    // `seen` already holds everything scheduled in earlier rounds, so
    // re-enumerating from scratch each round resumes exactly where the
    // previous round's walk stopped.
    let neighborhoods: Vec<Vec<Genome>> = survivors
        .iter()
        .map(|parent| {
            let mut n = Vec::new();
            for &axis in &axes {
                for step in 1..lens[axis] as u64 {
                    let mut child = *parent;
                    child[axis] = ((u64::from(parent[axis]) + step) % lens[axis] as u64) as u32;
                    n.push(child);
                }
            }
            n
        })
        .collect();
    let deepest = neighborhoods.iter().map(Vec::len).max().unwrap_or(0);
    'neighbors: for depth in 0..deepest {
        for n in &neighborhoods {
            if let Some(&child) = n.get(depth) {
                if seen.insert(child) {
                    out.push(child);
                    if out.len() == batch {
                        break 'neighbors;
                    }
                }
            }
        }
    }
    let mut attempts = 0;
    let max_attempts = 256 * batch;
    while out.len() < batch && attempts < max_attempts {
        attempts += 1;
        let genome = if survivors.len() >= 2 && attempts % 3 != 0 {
            let a = survivors[rng.next_below(survivors.len() as u64) as usize];
            let b = survivors[rng.next_below(survivors.len() as u64) as usize];
            mutate(crossover(&a, &b, rng), &lens, rng)
        } else {
            random_genome(&lens, rng)
        };
        if seen.insert(genome) {
            out.push(genome);
        }
    }
    out
}

/// A uniform random grid point.
fn random_genome(lens: &[usize; AXES], rng: &mut SplitMix64) -> Genome {
    let mut genome = [0u32; AXES];
    for (axis, &len) in lens.iter().enumerate() {
        genome[axis] = rng.next_below(len as u64) as u32;
    }
    genome
}

/// Reassigns one axis of `genome` to a different value, with the axis
/// chosen by [`AXIS_WEIGHTS`] among axes that have more than one value.
/// Identity when every axis is single-valued.
fn mutate(mut genome: Genome, lens: &[usize; AXES], rng: &mut SplitMix64) -> Genome {
    let total: u64 = (0..AXES)
        .map(|a| if lens[a] > 1 { AXIS_WEIGHTS[a] } else { 0 })
        .sum();
    if total == 0 {
        return genome;
    }
    let mut pick = rng.next_below(total);
    for axis in 0..AXES {
        let w = if lens[axis] > 1 {
            AXIS_WEIGHTS[axis]
        } else {
            0
        };
        if pick < w {
            let len = lens[axis] as u64;
            let step = 1 + rng.next_below(len - 1);
            genome[axis] = ((u64::from(genome[axis]) + step) % len) as u32;
            return genome;
        }
        pick -= w;
    }
    unreachable!("weighted choice covers the total")
}

/// Uniform crossover: each axis from one parent or the other.
fn crossover(a: &Genome, b: &Genome, rng: &mut SplitMix64) -> Genome {
    let mut child = *a;
    for axis in 0..AXES {
        if rng.next_below(2) == 1 {
            child[axis] = b[axis];
        }
    }
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use procrustes_core::SparsityGen;
    use procrustes_sim::Mapping;

    fn spec() -> SearchSpec {
        let mut s = SearchSpec::new(
            Sweep::new()
                .networks(["VGG-S"])
                .mappings(Mapping::ALL)
                .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 1 }])
                .batches([2, 4]),
        );
        s.population = 4;
        s.budget = 8;
        s
    }

    #[test]
    fn spec_json_round_trips() {
        let s = spec();
        let back = SearchSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        // Defaults apply when knobs are absent.
        let minimal = SearchSpec::from_json(r#"{"space":{"networks":["VGG-S"]}}"#).unwrap();
        assert_eq!(minimal.population, 16);
        assert_eq!(minimal.budget, 64);
        assert_eq!(
            minimal.objectives,
            vec![Objective::Cycles, Objective::Energy]
        );
        // A set population moves the default budget with it.
        let scaled =
            SearchSpec::from_json(r#"{"space":{"networks":["VGG-S"]},"population":8}"#).unwrap();
        assert_eq!(scaled.budget, 32);
    }

    #[test]
    fn spec_json_rejects_hostile_documents() {
        for bad in [
            "nonsense",
            "[]",
            r#"{}"#,
            r#"{"space":{"networks":["VGG-S"]},"temperature":1}"#,
            r#"{"space":{"networks":["VGG-S"]},"objectives":["edp"]}"#,
            r#"{"space":{"networks":["VGG-S"]},"objectives":[]}"#,
            r#"{"space":{"networks":["VGG-S"]},"objectives":["cycles","cycles"]}"#,
            r#"{"space":{"networks":["VGG-S"]},"population":1}"#,
            r#"{"space":{"networks":["VGG-S"]},"population":8,"budget":4}"#,
            r#"{"space":{"networks":["VGG-S"]},"rungs":0}"#,
            r#"{"space":{"networks":["VGG-S"],"mapings":["KN"]}}"#,
        ] {
            assert!(SearchSpec::from_json(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn search_respects_the_budget_and_reports_rounds() {
        let engine = Engine::serial();
        let mut updates = Vec::new();
        let outcome = run_search_on_engine(&spec(), &engine, |u| updates.push(*u)).unwrap();
        assert!(outcome.evaluated <= 8);
        assert_eq!(outcome.grid, 16);
        assert_eq!(outcome.rounds, updates.len());
        assert!(!outcome.front.is_empty());
        let last = updates.last().unwrap();
        assert_eq!(last.evaluated, outcome.evaluated);
        assert_eq!(last.front_size, outcome.front.len());
    }

    #[test]
    fn tiny_grids_terminate_without_exhausting_attempts() {
        // A 2-point grid with an 8-eval budget: the loop must stop once
        // both points are seen, not spin.
        let mut s = SearchSpec::new(Sweep::new().networks(["VGG-S"]).batches([2, 4]));
        s.population = 2;
        s.budget = 8;
        let engine = Engine::serial();
        let outcome = run_search_on_engine(&s, &engine, |_| {}).unwrap();
        assert_eq!(outcome.evaluated, 2);
        assert_eq!(outcome.grid, 2);
    }

    #[test]
    fn mutation_changes_exactly_one_multi_valued_axis() {
        let mut rng = SplitMix64::new(1);
        let lens = [1usize, 2, 1, 1, 4, 2, 3, 1];
        for _ in 0..200 {
            let genome = random_genome(&lens, &mut rng);
            let mutated = mutate(genome, &lens, &mut rng);
            let diff: Vec<usize> = (0..AXES).filter(|&a| genome[a] != mutated[a]).collect();
            assert_eq!(diff.len(), 1);
            assert!(lens[diff[0]] > 1);
        }
    }
}
