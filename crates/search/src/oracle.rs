//! The pinned small-grid oracle: a subset of the paper's Fig 17–20
//! space small enough to sweep exhaustively, used to prove the search
//! recovers the exact Pareto front while evaluating a fraction of the
//! grid.
//!
//! The grid is 72 scenarios (VGG-S × 4 mappings × {dense, paper-sparse}
//! × 3 architectures × 3 batch sizes) with a deliberately structured
//! landscape over the `[cycles, energy, area]` objective vector:
//!
//! * the bandwidth-starved 16×16 variant is strictly dominated by the
//!   stock 16×16 (same silicon, same access counts, more stall
//!   cycles) — a trap region the search should learn to leave;
//! * larger batches scale cycles and energy together at constant area,
//!   so the front lives at the smallest batch;
//! * the 32×32 array trades area for cycles against the 16×16, keeping
//!   both architectures (under their best mappings) on the front.
//!
//! The spec's seed/population/budget are **pinned**: the bench smoke
//! and the serve restart test assert that this exact configuration
//! recovers the exhaustive front while evaluating under 25 % of the
//! grid, byte-identically across thread counts and daemon restarts. If
//! a model change legitimately moves the oracle landscape, re-tune the
//! pinned seed here and record why in the commit.

use procrustes_core::{SparsityGen, Sweep};
use procrustes_sim::{ArchConfig, Mapping};

use crate::objectives::Objective;
use crate::search::SearchSpec;

/// The pinned PRNG seed (see the module docs for the re-tuning policy).
pub const ORACLE_SEED: u64 = 3;

/// Evaluation budget of the pinned spec: under 25 % of the 72-point
/// grid.
pub const ORACLE_BUDGET: usize = 17;

/// The oracle grid as a sweep declaration (exhaustively buildable).
pub fn oracle_sweep() -> Sweep {
    // A 16×16 array behind a quarter-width GLB port and a single
    // 32-bit DRAM channel: identical silicon and access counts to the
    // stock 16×16, strictly more stall cycles.
    let starved = ArchConfig {
        glb_bw_words: 8,
        dram_bw_words: 2,
        ..ArchConfig::procrustes_16x16()
    };
    Sweep::new()
        .networks(["VGG-S"])
        .mappings(Mapping::ALL)
        .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 1 }])
        .arches([
            ArchConfig::procrustes_16x16(),
            ArchConfig::procrustes_32x32(),
            starved,
        ])
        .batches([2, 4, 8])
}

/// The pinned search spec over [`oracle_sweep`].
pub fn oracle_spec() -> SearchSpec {
    let mut spec = SearchSpec::new(oracle_sweep());
    spec.objectives = vec![Objective::Cycles, Objective::Energy, Objective::Area];
    spec.seed = ORACLE_SEED;
    spec.population = 8;
    spec.budget = ORACLE_BUDGET;
    spec.rungs = 2;
    spec
}
