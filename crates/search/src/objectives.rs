//! The pluggable objective vector measured on result documents.

use procrustes_core::json::Json;
use procrustes_core::Scenario;
use procrustes_sim::area::arch_budget;

/// One minimized objective, extracted from a canonical `EvalResult`
/// JSON document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Total end-to-end cycles (`totals.cycles`).
    Cycles,
    /// Total energy in joules (`totals.energy_j`).
    Energy,
    /// Silicon area in µm² of the scenario's architecture, from the
    /// Table III component model
    /// ([`procrustes_sim::area::arch_budget`]).
    Area,
}

impl Objective {
    /// Every objective, in documented label order.
    pub const ALL: [Objective; 3] = [Objective::Cycles, Objective::Energy, Objective::Area];

    /// The spec/wire label.
    pub fn label(self) -> &'static str {
        match self {
            Objective::Cycles => "cycles",
            Objective::Energy => "energy",
            Objective::Area => "area",
        }
    }

    /// Parses a spec label.
    ///
    /// # Errors
    ///
    /// Returns a message naming the known labels on an unknown one.
    pub fn from_label(label: &str) -> Result<Objective, String> {
        Objective::ALL
            .into_iter()
            .find(|o| o.label() == label)
            .ok_or_else(|| format!("unknown objective '{label}' (known: cycles, energy, area)"))
    }
}

/// Measures an objective vector on one canonical result document.
///
/// Cycles and energy come from the document's `totals` member
/// (`Json::f64` writes shortest-round-trip number text, so the f64 read
/// back here is the value the engine computed, exactly); area comes
/// from the embedded scenario's architecture via the Table III model.
///
/// # Errors
///
/// Returns a message when the document is not a well-formed result
/// (missing scenario/totals members).
pub fn measure(objectives: &[Objective], doc: &str) -> Result<Vec<f64>, String> {
    let v = Json::parse(doc).map_err(|e| format!("result document: {e}"))?;
    let totals = v.get("totals").ok_or("result has no 'totals' member")?;
    let scenario =
        Scenario::from_json_value(v.get("scenario").ok_or("result has no 'scenario' member")?)
            .map_err(|e| e.to_string())?;
    objectives
        .iter()
        .map(|o| match o {
            Objective::Cycles => totals
                .get("cycles")
                .and_then(Json::as_u64)
                .map(|c| c as f64)
                .ok_or_else(|| "totals.cycles missing".to_string()),
            Objective::Energy => totals
                .get("energy_j")
                .and_then(Json::as_f64)
                .ok_or_else(|| "totals.energy_j missing".to_string()),
            Objective::Area => Ok(arch_budget(&scenario.arch).area_um2),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use procrustes_core::{Engine, Scenario};

    #[test]
    fn labels_round_trip() {
        for o in Objective::ALL {
            assert_eq!(Objective::from_label(o.label()).unwrap(), o);
        }
        assert!(Objective::from_label("edp").is_err());
    }

    #[test]
    fn measure_extracts_the_engine_totals() {
        let scenario = Scenario::builder("VGG-S").batch(2).build().unwrap();
        let result = Engine::serial().run(&scenario).unwrap();
        let doc = result.to_json();
        let measured = measure(&Objective::ALL, &doc).unwrap();
        let totals = result.totals();
        assert_eq!(measured[0], totals.cycles as f64);
        assert_eq!(measured[1], totals.energy_j());
        assert_eq!(measured[2], arch_budget(&scenario.arch).area_um2);
    }

    #[test]
    fn measure_rejects_non_results() {
        assert!(measure(&[Objective::Cycles], "not json").is_err());
        assert!(measure(&[Objective::Cycles], "{}").is_err());
    }
}
