//! `procrustes-search` — seeded, deterministic Pareto design-space
//! search over the memoized
//! [`Engine`](procrustes_core::Engine).
//!
//! The paper's hardware conclusions come from exhaustive cartesian
//! sweeps, but the reproduction's axis space (mapping × arch × batch ×
//! sparsity × compute × fidelity) has grown to the point where a full
//! grid is millions of scenarios. This crate *searches* that space
//! instead of enumerating it, returning a Pareto front over a pluggable
//! objective vector — cycles, energy, and silicon area (the Table III
//! model in `procrustes-sim`):
//!
//! * [`SearchSpace`] — a [`Sweep`](procrustes_core::Sweep) declaration
//!   viewed as an indexable grid. Candidates are [`Genome`]s of
//!   per-axis indices; [`SearchSpace::scenario`] materializes exactly
//!   the scenario the sweep's own expansion would, so every result
//!   document a search produces is byte-identical to what the
//!   exhaustive sweep (or the serving daemon) would emit for the same
//!   point.
//! * [`run_search`] — a successive-halving outer loop over a
//!   mutation/crossover inner loop, seeded via `procrustes-prng`
//!   ([`SplitMix64`](procrustes_prng::SplitMix64)). The control loop is
//!   single-threaded and all parallelism lives behind [`EvalBackend`],
//!   so population evolution is **independent of thread count**: the
//!   same spec yields the same evaluations, rounds, and front whether
//!   the backend is a serial engine, a parallel one, or a remote
//!   daemon's shard pool.
//! * [`ParetoFront`] — the dominance accumulator (minimization; equal
//!   vectors coexist), kept in a canonical order so fronts serialize
//!   byte-identically regardless of discovery order.
//! * Memoization-aware neighborhood: mutations are biased toward the
//!   axes (mapping, balance, fidelity, arch) that keep the per-layer
//!   task and sparsity fingerprints of the engine's cost-cache key
//!   intact, so a mutated neighbor shares its parent's entire
//!   workload-synthesis work and exact revisits are de-duplicated
//!   before they are ever scheduled.
//!
//! # Example
//!
//! ```
//! use procrustes_core::{Engine, Sweep, SparsityGen};
//! use procrustes_search::{run_search_on_engine, SearchSpec};
//! use procrustes_sim::Mapping;
//!
//! let mut spec = SearchSpec::new(
//!     Sweep::new()
//!         .networks(["VGG-S"])
//!         .mappings(Mapping::ALL)
//!         .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 1 }])
//!         .batches([2, 4]),
//! );
//! spec.population = 4;
//! spec.budget = 8;
//! let engine = Engine::default();
//! let outcome = run_search_on_engine(&spec, &engine, |round| {
//!     eprintln!("round {}: front size {}", round.round, round.front_size);
//! })
//! .unwrap();
//! assert!(outcome.evaluated <= 8 && !outcome.front.is_empty());
//! ```
//!
//! The same spec serializes to JSON ([`SearchSpec::to_json`], unknown
//! fields rejected on the way back in) and runs remotely through
//! `procrustes-serve`'s `search` verb, riding the daemon's
//! single-flight shard pool and persistent disk cache.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod objectives;
pub mod oracle;
mod pareto;
mod search;
mod space;

pub use objectives::{measure, Objective};
pub use pareto::{dominates, Insert, ParetoFront, ParetoPoint};
pub use search::{
    exhaustive_front, run_search, run_search_on_engine, EngineBackend, EvalBackend, RoundUpdate,
    SearchOutcome, SearchSpec,
};
pub use space::{Genome, SearchSpace, AXES};
