//! Tier-1 guarantees of the search subsystem, proven on the pinned
//! small-grid oracle (see `procrustes_search::oracle`):
//!
//! * the pinned spec recovers the **exact** Pareto front of the
//!   exhaustive sweep while evaluating under 25 % of the grid;
//! * the front is byte-identical across engine thread counts (the
//!   control loop is single-threaded; parallelism lives behind the
//!   eval backend);
//! * `ParetoFront` is insertion-order independent and never retains a
//!   dominated point.

use procrustes_core::Engine;
use procrustes_prng::{shuffle, SplitMix64};
use procrustes_search::oracle::{oracle_spec, oracle_sweep};
use procrustes_search::{
    dominates, exhaustive_front, run_search, EngineBackend, ParetoFront, SearchSpace,
};

#[test]
fn pinned_oracle_recovers_the_exact_front_under_budget() {
    let engine = Engine::with_threads(2);
    let spec = oracle_spec();
    let truth = exhaustive_front(&spec, &mut EngineBackend::new(&engine)).unwrap();
    assert_eq!(truth.len(), 4, "oracle landscape moved; re-tune the seed");

    let grid = oracle_sweep().cardinality();
    let mut rounds = 0usize;
    let outcome = run_search(&spec, &mut EngineBackend::new(&engine), |_| rounds += 1).unwrap();

    assert_eq!(outcome.grid, grid);
    assert_eq!(outcome.rounds, rounds);
    assert!(
        outcome.evaluated * 4 < grid,
        "search evaluated {} of {grid} scenarios (budget must stay under 25 %)",
        outcome.evaluated
    );
    assert_eq!(
        outcome.front.to_json(),
        truth.to_json(),
        "pinned search did not recover the exhaustive front exactly"
    );
}

#[test]
fn fronts_are_byte_identical_across_thread_counts() {
    let spec = oracle_spec();
    let mut renders = Vec::new();
    for threads in [1usize, 2, 8] {
        let engine = Engine::with_threads(threads);
        let outcome = run_search(&spec, &mut EngineBackend::new(&engine), |_| {}).unwrap();
        renders.push((threads, outcome.evaluated, outcome.front.to_json()));
    }
    let (_, evaluated, reference) = renders[0].clone();
    for (threads, n, render) in &renders[1..] {
        assert_eq!(
            n, &evaluated,
            "evaluation count diverged at {threads} threads"
        );
        assert_eq!(render, &reference, "front diverged at {threads} threads");
    }
}

#[test]
fn front_is_insertion_order_independent_and_dominance_free() {
    // Evaluate the whole oracle grid once, then feed the same point set
    // to the accumulator in many shuffled orders: the rendered front
    // must not depend on discovery order, and no retained member may
    // dominate another.
    let engine = Engine::serial();
    let spec = oracle_spec();
    let space = SearchSpace::from_sweep(&spec.space).unwrap();
    let scenarios = spec.space.build().unwrap();
    let docs: Vec<String> = engine
        .run_all(&scenarios)
        .unwrap()
        .into_iter()
        .map(|r| r.to_json())
        .collect();
    let points: Vec<_> = scenarios
        .iter()
        .zip(&docs)
        .map(|(s, doc)| procrustes_search::ParetoPoint {
            fingerprint: s.fingerprint(),
            objectives: procrustes_search::measure(&spec.objectives, doc).unwrap(),
            doc: doc.clone(),
        })
        .collect();
    assert_eq!(points.len(), space.cardinality());

    let mut reference: Option<String> = None;
    let mut rng = SplitMix64::new(0xFACADE);
    for _ in 0..8 {
        let mut order: Vec<usize> = (0..points.len()).collect();
        shuffle(&mut order, &mut rng);
        let mut front = ParetoFront::new();
        for i in order {
            front.insert(points[i].clone());
        }
        for (i, a) in front.points().iter().enumerate() {
            for (j, b) in front.points().iter().enumerate() {
                if i != j {
                    assert!(
                        !dominates(&a.objectives, &b.objectives),
                        "front retained a dominated point"
                    );
                }
            }
        }
        let render = front.to_json();
        match &reference {
            None => reference = Some(render),
            Some(r) => assert_eq!(&render, r, "front depends on insertion order"),
        }
    }
}
