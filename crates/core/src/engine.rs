//! The unified evaluation API: declarative [`Scenario`]s, cartesian
//! [`Sweep`]s, and the parallel, memoizing [`Engine`].
//!
//! The paper's entire evaluation (Figs 1, 17–20, Tables II–III) is a
//! cartesian sweep over {network × architecture × mapping × sparsity ×
//! balancing}. This module makes that sweep a first-class object:
//!
//! * [`Scenario`] — a plain-data, JSON-serializable description of one
//!   evaluation (network id, [`ArchConfig`], [`Mapping`], minibatch,
//!   [`SparsityGen`], [`BalanceMode`]), with a validating
//!   [`ScenarioBuilder`];
//! * [`Sweep`] — a cartesian-product builder that expands axis lists into
//!   `Vec<Scenario>` in a documented deterministic order;
//! * [`Engine`] — the single evaluator: [`Engine::run`] for one scenario,
//!   [`Engine::run_all`] for a sweep, executed across a scoped thread
//!   pool with per-`(layer, phase, mapping, sparsity)` cost memoization
//!   so layers shared between scenarios are costed once;
//! * [`EvalResult`] — the cost of a scenario together with the scenario
//!   that produced it, plus derived-metric helpers
//!   ([`EvalResult::speedup_over`], [`EvalResult::energy_saving_over`])
//!   and JSON serialization.
//!
//! [`NetworkEval`](crate::NetworkEval) remains as a thin compatibility
//! shim over the same per-layer evaluation path.
//!
//! # Examples
//!
//! ```
//! use procrustes_core::{Engine, Scenario, SparsityGen, Sweep};
//! use procrustes_sim::Mapping;
//!
//! // One scenario…
//! let scenario = Scenario::builder("VGG-S")
//!     .mapping(Mapping::KN)
//!     .sparsity(SparsityGen::PaperSynthetic { seed: 42 })
//!     .build()
//!     .unwrap();
//! let engine = Engine::default();
//! let sparse = engine.run(&scenario).unwrap();
//!
//! // …or a sweep: dense + sparse across two mappings in one declaration.
//! let scenarios = Sweep::new()
//!     .networks(["VGG-S"])
//!     .mappings([Mapping::KN, Mapping::PQ])
//!     .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 42 }])
//!     .build()
//!     .unwrap();
//! let results = engine.run_all(&scenarios).unwrap();
//! assert_eq!(results.len(), 4);
//! let (dense_kn, sparse_kn) = (&results[0], &results[2]);
//! assert!(sparse_kn.speedup_over(dense_kn) > 1.0);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use procrustes_nn::arch::{self, NetworkArch};
use procrustes_nn::ComputeBackend;
use procrustes_sim::{
    evaluate_layer_with, ArchConfig, BalanceMode, CostSummary, EnergyTable, Fidelity, Fnv1a,
    LayerCost, LayerTask, Mapping, Phase, SparsityInfo,
};

use crate::eval::NetworkCost;
use crate::json::Json;
use crate::masks::{self, MaskGenConfig};

// ---------------------------------------------------------------------------
// Network registry
// ---------------------------------------------------------------------------

/// The five paper networks, in the figure order of Table II / Fig 17.
pub const PAPER_NETWORKS: [&str; 5] =
    ["WRN-28-10", "DenseNet", "VGG-S", "ResNet18", "MobileNet v2"];

/// Lowercases and strips punctuation so "VGG-S", "vgg_s", and "vggs" all
/// name the same network.
fn canon(id: &str) -> String {
    id.chars()
        .filter(char::is_ascii_alphanumeric)
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// Resolves a network id to its full-size geometry.
///
/// Ids are matched case-insensitively, ignoring `-`/`_`/spaces, so
/// `"VGG-S"`, `"vgg_s"`, and `"vggs"` are equivalent; common short
/// aliases (`"vgg"`, `"wrn"`, `"mobilenet"`) are accepted.
pub fn resolve_network(id: &str) -> Option<NetworkArch> {
    match canon(id).as_str() {
        "vggs" | "vgg" => Some(arch::vgg_s()),
        "resnet18" | "resnet" => Some(arch::resnet18()),
        "mobilenetv2" | "mobilenet" => Some(arch::mobilenet_v2()),
        "wrn2810" | "wrn" => Some(arch::wrn_28_10()),
        "densenet" => Some(arch::densenet()),
        _ => None,
    }
}

/// The Table II per-network weight-sparsity factor, used by
/// [`SparsityGen::PaperSynthetic`].
pub fn paper_sparsity_factor(id: &str) -> Option<f64> {
    match canon(id).as_str() {
        "vggs" | "vgg" => Some(5.2),
        "resnet18" | "resnet" => Some(11.7),
        "mobilenetv2" | "mobilenet" => Some(10.0),
        "wrn2810" | "wrn" => Some(4.3),
        "densenet" => Some(3.9),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a scenario is invalid or failed to deserialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The network id matched none of the known geometries.
    UnknownNetwork(String),
    /// A parameter is out of range (message explains which).
    InvalidParam(String),
    /// A JSON document could not be parsed into a scenario.
    Parse(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnknownNetwork(id) => {
                write!(
                    f,
                    "unknown network '{id}' (known: {})",
                    PAPER_NETWORKS.join(", ")
                )
            }
            ScenarioError::InvalidParam(msg) => write!(f, "invalid scenario parameter: {msg}"),
            ScenarioError::Parse(msg) => write!(f, "scenario parse error: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

// ---------------------------------------------------------------------------
// SparsityGen
// ---------------------------------------------------------------------------

/// How a scenario's per-layer sparsity is produced.
#[derive(Debug, Clone, PartialEq)]
pub enum SparsityGen {
    /// The dense baseline: uncompressed weights, no sparse machinery.
    Dense,
    /// Uniform weight sparsity (the idealized Fig 1 setup): every kernel
    /// keeps the same fraction of its weights.
    Uniform {
        /// Kept weight fraction in `(0, 1]`.
        keep: f64,
        /// Input-activation density in `(0, 1]`.
        act_density: f64,
    },
    /// Synthetic Dropback-like masks from [`masks::generate`],
    /// deterministic in `seed`.
    Synthetic {
        /// Generator configuration.
        cfg: MaskGenConfig,
        /// PRNG seed.
        seed: u64,
    },
    /// Synthetic masks with the Table II sparsity factor of the
    /// scenario's network (resolved via [`paper_sparsity_factor`]), so a
    /// cartesian [`Sweep`] can pair every network with its own factor.
    PaperSynthetic {
        /// PRNG seed.
        seed: u64,
    },
    /// Explicit `(task, sparsity)` pairs, e.g. masks extracted from a
    /// trained model with [`masks::from_model`].
    Extracted(Vec<(LayerTask, SparsityInfo)>),
}

impl SparsityGen {
    /// True for the dense baseline.
    pub fn is_dense(&self) -> bool {
        matches!(self, SparsityGen::Dense)
    }

    /// A short human-readable label for report tables.
    pub fn label(&self) -> String {
        match self {
            SparsityGen::Dense => "dense".into(),
            SparsityGen::Uniform { keep, .. } => format!("uniform({keep:.2})"),
            SparsityGen::Synthetic { cfg, seed } => {
                format!("sparse({:.1}x,seed={seed})", cfg.sparsity_factor)
            }
            SparsityGen::PaperSynthetic { seed } => format!("sparse(paper,seed={seed})"),
            SparsityGen::Extracted(wl) => format!("extracted({} layers)", wl.len()),
        }
    }

    fn to_json(&self) -> Json {
        match self {
            SparsityGen::Dense => Json::Obj(vec![("kind".into(), Json::str("dense"))]),
            SparsityGen::Uniform { keep, act_density } => Json::Obj(vec![
                ("kind".into(), Json::str("uniform")),
                ("keep".into(), Json::f64(*keep)),
                ("act_density".into(), Json::f64(*act_density)),
            ]),
            SparsityGen::Synthetic { cfg, seed } => Json::Obj(vec![
                ("kind".into(), Json::str("synthetic")),
                ("seed".into(), Json::u64(*seed)),
                ("cfg".into(), mask_cfg_to_json(cfg)),
            ]),
            SparsityGen::PaperSynthetic { seed } => Json::Obj(vec![
                ("kind".into(), Json::str("paper_synthetic")),
                ("seed".into(), Json::u64(*seed)),
            ]),
            SparsityGen::Extracted(workloads) => Json::Obj(vec![
                ("kind".into(), Json::str("extracted")),
                (
                    "workloads".into(),
                    Json::Arr(
                        workloads
                            .iter()
                            .map(|(t, sp)| {
                                Json::Obj(vec![
                                    ("task".into(), task_to_json(t)),
                                    ("sparsity".into(), sparsity_info_to_json(sp)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| ScenarioError::Parse("sparsity.kind missing".into()))?;
        let allowed: &[&str] = match kind {
            "dense" => &["kind"],
            "uniform" => &["kind", "keep", "act_density"],
            "synthetic" => &["kind", "seed", "cfg"],
            "paper_synthetic" => &["kind", "seed"],
            "extracted" => &["kind", "workloads"],
            _ => &["kind"],
        };
        check_keys(v, allowed, "sparsity")?;
        match kind {
            "dense" => Ok(SparsityGen::Dense),
            "uniform" => Ok(SparsityGen::Uniform {
                keep: f64_field(v, "keep")?,
                act_density: f64_field(v, "act_density")?,
            }),
            "synthetic" => Ok(SparsityGen::Synthetic {
                cfg: mask_cfg_from_json(
                    v.get("cfg")
                        .ok_or_else(|| ScenarioError::Parse("sparsity.cfg missing".into()))?,
                )?,
                seed: u64_field(v, "seed")?,
            }),
            "paper_synthetic" => Ok(SparsityGen::PaperSynthetic {
                seed: u64_field(v, "seed")?,
            }),
            "extracted" => {
                let items = v
                    .get("workloads")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ScenarioError::Parse("sparsity.workloads missing".into()))?;
                let mut workloads = Vec::with_capacity(items.len());
                for item in items {
                    check_keys(item, &["task", "sparsity"], "workload")?;
                    let task =
                        task_from_json(item.get("task").ok_or_else(|| {
                            ScenarioError::Parse("workload.task missing".into())
                        })?)?;
                    let sp = sparsity_info_from_json(item.get("sparsity").ok_or_else(|| {
                        ScenarioError::Parse("workload.sparsity missing".into())
                    })?)?;
                    workloads.push((task, sp));
                }
                Ok(SparsityGen::Extracted(workloads))
            }
            other => Err(ScenarioError::Parse(format!(
                "unknown sparsity kind '{other}'"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

/// A plain-data, fully serializable description of one evaluation: which
/// network, on which hardware, under which mapping, minibatch, sparsity,
/// and balancing.
///
/// Construct through [`Scenario::builder`] (validating) or literally;
/// [`Scenario::validate`] checks a hand-built value. Serialize with
/// [`Scenario::to_json`] / [`Scenario::from_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Network id, resolved via [`resolve_network`].
    pub network: String,
    /// Accelerator configuration.
    pub arch: ArchConfig,
    /// Spatial mapping.
    pub mapping: Mapping,
    /// Minibatch size.
    pub batch: usize,
    /// Sparsity source.
    pub sparsity: SparsityGen,
    /// Load balancing mode.
    pub balance: BalanceMode,
    /// Execution backend: whether weights run through the CSB-compressed
    /// datapath (`compressed` workloads) or the uncompressed dense one.
    pub compute: ComputeBackend,
    /// Latency model: the closed-form analytic bound (the seed
    /// evaluation's numbers) or the tile-timed wave replay.
    pub fidelity: Fidelity,
}

impl Scenario {
    /// The default execution backend: [`ComputeBackend::Auto`] with a
    /// threshold of 1, i.e. "whatever the sparsity generator chose" —
    /// dense weights run uncompressed, sparse masks run on CSB. This
    /// reproduces the seed evaluation exactly.
    pub const DEFAULT_COMPUTE: ComputeBackend = ComputeBackend::Auto { max_density: 1.0 };

    /// The default latency fidelity: the analytic model, reproducing the
    /// seed evaluation bit-for-bit. Documents from before the fidelity
    /// axis existed deserialize to this.
    pub const DEFAULT_FIDELITY: Fidelity = Fidelity::Analytic;

    /// Starts a validating builder for `network`.
    pub fn builder(network: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            network: network.into(),
            arch: ArchConfig::procrustes_16x16(),
            mapping: Mapping::KN,
            batch: crate::NetworkEval::DEFAULT_BATCH,
            sparsity: SparsityGen::Dense,
            balance: None,
            compute: Self::DEFAULT_COMPUTE,
            fidelity: Self::DEFAULT_FIDELITY,
        }
    }

    /// The balancing the seed evaluation used by default: none for the
    /// dense baseline, half-tile for every sparse configuration.
    pub fn default_balance(sparsity: &SparsityGen) -> BalanceMode {
        if sparsity.is_dense() {
            BalanceMode::None
        } else {
            BalanceMode::HalfTile
        }
    }

    /// Checks every field; a `Scenario` that validates is guaranteed to
    /// evaluate without panicking.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let net = self.resolve_network()?;
        if self.batch == 0 {
            return Err(ScenarioError::InvalidParam("batch must be positive".into()));
        }
        match &self.sparsity {
            SparsityGen::Dense => {}
            SparsityGen::Uniform { keep, act_density } => {
                if !(*keep > 0.0 && *keep <= 1.0) {
                    return Err(ScenarioError::InvalidParam(format!(
                        "uniform keep {keep} outside (0, 1]"
                    )));
                }
                if !(*act_density > 0.0 && *act_density <= 1.0) {
                    return Err(ScenarioError::InvalidParam(format!(
                        "activation density {act_density} outside (0, 1]"
                    )));
                }
            }
            SparsityGen::Synthetic { cfg, .. } => {
                // NaN must fail too, hence the negated comparison shape.
                if cfg.sparsity_factor.partial_cmp(&1.0) != Some(std::cmp::Ordering::Greater) {
                    return Err(ScenarioError::InvalidParam(format!(
                        "sparsity factor {} must exceed 1",
                        cfg.sparsity_factor
                    )));
                }
                if !(cfg.act_density > 0.0 && cfg.act_density <= 1.0) {
                    return Err(ScenarioError::InvalidParam(format!(
                        "activation density {} outside (0, 1]",
                        cfg.act_density
                    )));
                }
            }
            SparsityGen::PaperSynthetic { .. } => {
                if paper_sparsity_factor(&self.network).is_none() {
                    return Err(ScenarioError::InvalidParam(format!(
                        "no Table II sparsity factor for network '{}'",
                        self.network
                    )));
                }
            }
            SparsityGen::Extracted(workloads) => {
                if workloads.is_empty() {
                    return Err(ScenarioError::InvalidParam(
                        "extracted workload list is empty".into(),
                    ));
                }
                for (task, sp) in workloads {
                    if task.batch != self.batch {
                        return Err(ScenarioError::InvalidParam(format!(
                            "extracted task '{}' has batch {} but the scenario batch is {}",
                            task.name, task.batch, self.batch
                        )));
                    }
                    if sp.kernel_nnz.len() != task.kernels() {
                        return Err(ScenarioError::InvalidParam(format!(
                            "task '{}': {} kernel nnz entries for {} kernels",
                            task.name,
                            sp.kernel_nnz.len(),
                            task.kernels()
                        )));
                    }
                    let cap = (task.r * task.s) as u32;
                    if sp.kernel_nnz.iter().any(|&n| n > cap) {
                        return Err(ScenarioError::InvalidParam(format!(
                            "task '{}': kernel nnz exceeds dense capacity {cap}",
                            task.name
                        )));
                    }
                }
            }
        }
        // Validating the hardware uses the panicking checker; mirror its
        // conditions as errors instead.
        if self.arch.rows == 0 || self.arch.cols == 0 {
            return Err(ScenarioError::InvalidParam("empty PE array".into()));
        }
        if self.arch.rf_words == 0 || self.arch.glb_bytes == 0 {
            return Err(ScenarioError::InvalidParam("empty on-chip storage".into()));
        }
        if self.arch.glb_bw_words == 0 || self.arch.dram_bw_words == 0 {
            return Err(ScenarioError::InvalidParam("zero bandwidth".into()));
        }
        if let ComputeBackend::Auto { max_density } = self.compute {
            // `contains` is false for NaN, so NaN fails too.
            if !(0.0..=1.0).contains(&max_density) {
                return Err(ScenarioError::InvalidParam(format!(
                    "auto compute threshold {max_density} outside [0, 1]"
                )));
            }
        }
        let _ = net;
        Ok(())
    }

    /// Resolves the network id to its geometry.
    pub fn resolve_network(&self) -> Result<NetworkArch, ScenarioError> {
        resolve_network(&self.network)
            .ok_or_else(|| ScenarioError::UnknownNetwork(self.network.clone()))
    }

    /// Materializes the `(task, sparsity)` pairs this scenario evaluates.
    pub fn resolve_workloads(&self) -> Result<Vec<(LayerTask, SparsityInfo)>, ScenarioError> {
        let net = self.resolve_network()?;
        Ok(self.workloads_for(&net))
    }

    /// Workload materialization against an already-resolved geometry,
    /// with the scenario's execution backend applied: [`ComputeBackend::
    /// Dense`] forces every workload onto the uncompressed dense weight
    /// datapath, [`ComputeBackend::Csb`] forces the compressed one, and
    /// [`ComputeBackend::Auto`] keeps the generator's choice for layers
    /// whose weight density is at or below the threshold (above it, the
    /// layer falls back to dense execution).
    ///
    /// A layer on the dense datapath multiplies every weight slot, zeros
    /// included — exactly what the dense kernels in `procrustes-nn` do —
    /// so its workload is densified (full `kernel_nnz`), not merely
    /// stored uncompressed. Activation and gradient densities are left
    /// untouched: the backend axis selects the *weight* representation.
    fn workloads_for(&self, net: &NetworkArch) -> Vec<(LayerTask, SparsityInfo)> {
        let mut workloads = self.raw_workloads_for(net);
        for (task, sp) in &mut workloads {
            sp.compressed = match self.compute {
                ComputeBackend::Dense => false,
                ComputeBackend::Csb => true,
                ComputeBackend::Auto { max_density } => {
                    let slots = (sp.kernel_nnz.len() * task.r * task.s).max(1);
                    let nnz: u64 = sp.kernel_nnz.iter().map(|&n| u64::from(n)).sum();
                    let density = nnz as f64 / slots as f64;
                    sp.compressed && density <= max_density
                }
            };
            if !sp.compressed {
                sp.kernel_nnz.fill((task.r * task.s) as u32);
            }
        }
        workloads
    }

    fn raw_workloads_for(&self, net: &NetworkArch) -> Vec<(LayerTask, SparsityInfo)> {
        match &self.sparsity {
            SparsityGen::Dense => masks::dense(net, self.batch),
            SparsityGen::Uniform { keep, act_density } => masks::dense(net, self.batch)
                .into_iter()
                .map(|(task, _)| {
                    let sp = SparsityInfo::uniform(&task, *keep, *act_density);
                    (task, sp)
                })
                .collect(),
            SparsityGen::Synthetic { cfg, seed } => masks::generate(net, cfg, self.batch, *seed),
            SparsityGen::PaperSynthetic { seed } => {
                let factor =
                    paper_sparsity_factor(&self.network).expect("validated: paper factor exists");
                masks::generate(
                    net,
                    &MaskGenConfig::paper_default(factor),
                    self.batch,
                    *seed,
                )
            }
            SparsityGen::Extracted(workloads) => workloads.clone(),
        }
    }

    /// Serializes to a self-contained JSON document.
    ///
    /// The serialization is *canonical*: field order, number formatting
    /// (shortest round-trip literals), and string escaping are all
    /// deterministic, so equal scenarios always produce byte-identical
    /// documents. [`Scenario::fingerprint`] relies on this.
    pub fn to_json(&self) -> String {
        self.json_value().to_string()
    }

    /// A stable 64-bit fingerprint of the complete scenario: FNV-1a
    /// (see [`procrustes_sim::Fnv1a`]) over the UTF-8 bytes of the
    /// canonical JSON serialization ([`Scenario::to_json`]).
    ///
    /// # Stability contract
    ///
    /// Equal scenarios hash equal **across threads, processes, and
    /// restarts** — unlike `std::hash`, there is no per-process random
    /// state. `procrustes-serve` depends on this in two load-bearing
    /// ways: the fingerprint picks the worker shard (so identical
    /// scenarios always reach the same shard's memo table) and addresses
    /// the persistent on-disk result cache. Extending `Scenario` with a
    /// new *defaulted* axis changes fingerprints only for scenarios that
    /// set the new axis, provided the serializer keeps emitting existing
    /// fields unchanged; the pinned-vector test in this module and the
    /// golden fingerprints in `procrustes-sim` guard the encoding.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write(self.to_json().as_bytes());
        h.finish()
    }

    fn json_value(&self) -> Json {
        Json::Obj(vec![
            ("network".into(), Json::str(self.network.clone())),
            ("arch".into(), arch_to_json(&self.arch)),
            ("mapping".into(), Json::str(self.mapping.label())),
            ("batch".into(), Json::usize(self.batch)),
            ("sparsity".into(), self.sparsity.to_json()),
            ("balance".into(), Json::str(balance_label(self.balance))),
            ("compute".into(), compute_to_json(self.compute)),
            ("fidelity".into(), Json::str(self.fidelity.label())),
        ])
    }

    /// Deserializes a document produced by [`Scenario::to_json`].
    ///
    /// This entry point is safe for **untrusted input**: every failure is
    /// a structured [`ScenarioError`] (never a panic), and unknown fields
    /// are rejected rather than silently ignored — a typo'd axis name
    /// (`"fidelty"`) must not quietly evaluate the wrong configuration.
    /// Fields added after a document was written (e.g. `compute`,
    /// `fidelity`) may be *absent* and take their documented defaults;
    /// only *unrecognized* keys are errors.
    ///
    /// Parsing does not validate ranges; call [`Scenario::validate`] (or
    /// let [`Engine::run`] do it) before evaluating.
    pub fn from_json(text: &str) -> Result<Scenario, ScenarioError> {
        let v = Json::parse(text).map_err(ScenarioError::Parse)?;
        Self::from_json_value(&v)
    }

    /// [`Scenario::from_json`] over an already-parsed [`Json`] value
    /// (e.g. a sub-object of a larger request document).
    pub fn from_json_value(v: &Json) -> Result<Scenario, ScenarioError> {
        check_keys(
            v,
            &[
                "network", "arch", "mapping", "batch", "sparsity", "balance", "compute", "fidelity",
            ],
            "scenario",
        )?;
        Ok(Scenario {
            network: v
                .get("network")
                .and_then(Json::as_str)
                .ok_or_else(|| ScenarioError::Parse("network missing".into()))?
                .to_string(),
            arch: arch_from_json(
                v.get("arch")
                    .ok_or_else(|| ScenarioError::Parse("arch missing".into()))?,
            )?,
            mapping: mapping_from_label(
                v.get("mapping")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ScenarioError::Parse("mapping missing".into()))?,
            )?,
            batch: v
                .get("batch")
                .and_then(Json::as_usize)
                .ok_or_else(|| ScenarioError::Parse("batch missing".into()))?,
            sparsity: SparsityGen::from_json(
                v.get("sparsity")
                    .ok_or_else(|| ScenarioError::Parse("sparsity missing".into()))?,
            )?,
            balance: balance_from_label(
                v.get("balance")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ScenarioError::Parse("balance missing".into()))?,
            )?,
            // Documents from before the compute axis existed deserialize
            // to the default backend (the seed evaluation's behaviour).
            compute: match v.get("compute") {
                Some(c) => compute_from_json(c)?,
                None => Scenario::DEFAULT_COMPUTE,
            },
            // Likewise, pre-fidelity documents default to the analytic
            // model, reproducing the seed numbers bit-for-bit.
            fidelity: match v.get("fidelity") {
                Some(f) => fidelity_from_label(
                    f.as_str()
                        .ok_or_else(|| ScenarioError::Parse("fidelity not a string".into()))?,
                )?,
                None => Scenario::DEFAULT_FIDELITY,
            },
        })
    }
}

/// Builds a [`Scenario`] with the seed evaluation's defaults: the 16×16
/// Procrustes array, the `K,N` mapping, batch 16, dense weights, and
/// balancing chosen by [`Scenario::default_balance`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    network: String,
    arch: ArchConfig,
    mapping: Mapping,
    batch: usize,
    sparsity: SparsityGen,
    balance: Option<BalanceMode>,
    compute: ComputeBackend,
    fidelity: Fidelity,
}

impl ScenarioBuilder {
    /// Sets the accelerator configuration.
    pub fn arch(mut self, arch: ArchConfig) -> Self {
        self.arch = arch;
        self
    }

    /// Sets the spatial mapping.
    pub fn mapping(mut self, mapping: Mapping) -> Self {
        self.mapping = mapping;
        self
    }

    /// Sets the minibatch size.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the sparsity source.
    pub fn sparsity(mut self, sparsity: SparsityGen) -> Self {
        self.sparsity = sparsity;
        self
    }

    /// Shorthand for [`SparsityGen::Synthetic`].
    pub fn synthetic(self, cfg: MaskGenConfig, seed: u64) -> Self {
        self.sparsity(SparsityGen::Synthetic { cfg, seed })
    }

    /// Overrides the balancing mode (default: [`Scenario::default_balance`]).
    pub fn balance(mut self, balance: BalanceMode) -> Self {
        self.balance = Some(balance);
        self
    }

    /// Sets the execution backend (default: [`Scenario::DEFAULT_COMPUTE`]).
    pub fn compute(mut self, compute: ComputeBackend) -> Self {
        self.compute = compute;
        self
    }

    /// Sets the latency fidelity (default:
    /// [`Scenario::DEFAULT_FIDELITY`], the analytic model).
    pub fn fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Validates and produces the scenario.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        let balance = self
            .balance
            .unwrap_or_else(|| Scenario::default_balance(&self.sparsity));
        let scenario = Scenario {
            network: self.network,
            arch: self.arch,
            mapping: self.mapping,
            batch: self.batch,
            sparsity: self.sparsity,
            balance,
            compute: self.compute,
            fidelity: self.fidelity,
        };
        scenario.validate()?;
        Ok(scenario)
    }
}

// ---------------------------------------------------------------------------
// Sweep
// ---------------------------------------------------------------------------

/// A cartesian-product builder over scenario axes.
///
/// Unset axes fall back to the seed evaluation's defaults (one 16×16
/// array, the `K,N` mapping, batch 16, dense weights, automatic
/// balancing); `networks` must name at least one network.
///
/// Expansion order is deterministic and documented: network (outermost),
/// then sparsity, then compute backend, then fidelity, then mapping,
/// then batch, then architecture, then balance (innermost). Consumers
/// that prefer not to rely on ordering can match on each result's
/// [`EvalResult::scenario`].
///
/// # Examples
///
/// ```
/// use procrustes_core::{SparsityGen, Sweep};
/// use procrustes_sim::Mapping;
///
/// let scenarios = Sweep::new()
///     .networks(["VGG-S", "ResNet18"])
///     .mappings(Mapping::ALL)
///     .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 1 }])
///     .build()
///     .unwrap();
/// assert_eq!(scenarios.len(), 2 * 4 * 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sweep {
    networks: Vec<String>,
    arches: Vec<ArchConfig>,
    mappings: Vec<Mapping>,
    batches: Vec<usize>,
    sparsities: Vec<SparsityGen>,
    balances: Vec<Option<BalanceMode>>,
    computes: Vec<ComputeBackend>,
    fidelities: Vec<Fidelity>,
}

impl Sweep {
    /// Starts an empty sweep.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the network axis (required).
    pub fn networks<I, S>(mut self, networks: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.networks = networks.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the architecture axis (default: the 16×16 Procrustes array).
    pub fn arches(mut self, arches: impl IntoIterator<Item = ArchConfig>) -> Self {
        self.arches = arches.into_iter().collect();
        self
    }

    /// Sets the mapping axis (default: `K,N`).
    pub fn mappings(mut self, mappings: impl IntoIterator<Item = Mapping>) -> Self {
        self.mappings = mappings.into_iter().collect();
        self
    }

    /// Sets the minibatch axis (default: 16).
    pub fn batches(mut self, batches: impl IntoIterator<Item = usize>) -> Self {
        self.batches = batches.into_iter().collect();
        self
    }

    /// Sets the sparsity axis (default: dense only).
    pub fn sparsities(mut self, sparsities: impl IntoIterator<Item = SparsityGen>) -> Self {
        self.sparsities = sparsities.into_iter().collect();
        self
    }

    /// Sets explicit balancing modes (default: automatic per sparsity,
    /// see [`Scenario::default_balance`]).
    pub fn balances(mut self, balances: impl IntoIterator<Item = BalanceMode>) -> Self {
        self.balances = balances.into_iter().map(Some).collect();
        self
    }

    /// Sets the execution-backend axis (default:
    /// [`Scenario::DEFAULT_COMPUTE`]), so dense and CSB execution can be
    /// compared as a first-class sweep dimension.
    pub fn computes(mut self, computes: impl IntoIterator<Item = ComputeBackend>) -> Self {
        self.computes = computes.into_iter().collect();
        self
    }

    /// Sets the latency-fidelity axis (default:
    /// [`Scenario::DEFAULT_FIDELITY`]), so the analytic bound and the
    /// tile-timed replay can be compared on identical workloads.
    pub fn fidelities(mut self, fidelities: impl IntoIterator<Item = Fidelity>) -> Self {
        self.fidelities = fidelities.into_iter().collect();
        self
    }

    /// The number of scenarios [`Sweep::build`] will produce.
    ///
    /// Saturates at `usize::MAX` instead of overflowing, so admission
    /// checks against hostile documents (`cardinality() > limit`) are
    /// reliable even when the true product exceeds the machine word.
    pub fn cardinality(&self) -> usize {
        let axis = |len: usize| len.max(1);
        if self.networks.is_empty() {
            return 0;
        }
        [
            axis(self.sparsities.len()),
            axis(self.computes.len()),
            axis(self.fidelities.len()),
            axis(self.mappings.len()),
            axis(self.batches.len()),
            axis(self.arches.len()),
            axis(self.balances.len()),
        ]
        .into_iter()
        .fold(self.networks.len(), usize::saturating_mul)
    }

    /// The per-axis domains [`Sweep::build`] will expand, with every
    /// documented default applied (an unset axis resolves to its
    /// one-element default; `networks` has no default and is returned
    /// as-is, possibly empty).
    ///
    /// This is the introspection surface `procrustes-search` samples
    /// instead of materializing the cartesian product: a genome of
    /// per-axis indices into these domains names exactly one scenario
    /// of the grid, constructed identically to [`Sweep::build`]'s
    /// expansion (the same defaults, resolved in the same one place).
    pub fn resolved_axes(&self) -> SweepAxes {
        SweepAxes {
            networks: self.networks.clone(),
            sparsities: non_empty(&self.sparsities, SparsityGen::Dense),
            computes: non_empty(&self.computes, Scenario::DEFAULT_COMPUTE),
            fidelities: non_empty(&self.fidelities, Scenario::DEFAULT_FIDELITY),
            mappings: non_empty(&self.mappings, Mapping::KN),
            batches: non_empty(&self.batches, crate::NetworkEval::DEFAULT_BATCH),
            arches: non_empty(&self.arches, ArchConfig::procrustes_16x16()),
            balances: non_empty(&self.balances, None),
        }
    }

    /// Expands the cartesian product into validated scenarios.
    pub fn build(&self) -> Result<Vec<Scenario>, ScenarioError> {
        if self.networks.is_empty() {
            return Err(ScenarioError::InvalidParam(
                "sweep names no networks".into(),
            ));
        }
        let SweepAxes {
            networks: _,
            sparsities,
            computes,
            fidelities,
            mappings,
            batches,
            arches,
            balances,
        } = self.resolved_axes();

        let mut scenarios = Vec::with_capacity(self.cardinality());
        for network in &self.networks {
            for sparsity in &sparsities {
                for &compute in &computes {
                    for &fidelity in &fidelities {
                        for &mapping in &mappings {
                            for &batch in &batches {
                                for hw in &arches {
                                    for balance in &balances {
                                        let scenario = Scenario {
                                            network: network.clone(),
                                            arch: hw.clone(),
                                            mapping,
                                            batch,
                                            sparsity: sparsity.clone(),
                                            balance: balance.unwrap_or_else(|| {
                                                Scenario::default_balance(sparsity)
                                            }),
                                            compute,
                                            fidelity,
                                        };
                                        scenario.validate()?;
                                        scenarios.push(scenario);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(scenarios)
    }

    /// Serializes the sweep's axes to a self-contained JSON document.
    ///
    /// Only explicitly-set axes are emitted; an absent axis means "the
    /// documented default" exactly as with the builder, so the document
    /// round-trips through [`Sweep::from_json`] to an equivalent sweep.
    /// Like [`Scenario::to_json`], the serialization is canonical
    /// (deterministic field order and number formatting).
    pub fn to_json(&self) -> String {
        let mut fields: Vec<(String, Json)> = vec![(
            "networks".into(),
            Json::Arr(
                self.networks
                    .iter()
                    .map(|n| Json::str(n.as_str()))
                    .collect(),
            ),
        )];
        if !self.sparsities.is_empty() {
            fields.push((
                "sparsities".into(),
                Json::Arr(self.sparsities.iter().map(SparsityGen::to_json).collect()),
            ));
        }
        if !self.computes.is_empty() {
            fields.push((
                "computes".into(),
                Json::Arr(self.computes.iter().map(|&c| compute_to_json(c)).collect()),
            ));
        }
        if !self.fidelities.is_empty() {
            fields.push((
                "fidelities".into(),
                Json::Arr(
                    self.fidelities
                        .iter()
                        .map(|f| Json::str(f.label()))
                        .collect(),
                ),
            ));
        }
        if !self.mappings.is_empty() {
            fields.push((
                "mappings".into(),
                Json::Arr(self.mappings.iter().map(|m| Json::str(m.label())).collect()),
            ));
        }
        if !self.batches.is_empty() {
            fields.push((
                "batches".into(),
                Json::Arr(self.batches.iter().map(|&b| Json::usize(b)).collect()),
            ));
        }
        if !self.arches.is_empty() {
            fields.push((
                "arches".into(),
                Json::Arr(self.arches.iter().map(arch_to_json).collect()),
            ));
        }
        // Builder-made sweeps only hold `Some` balances; `None` entries
        // (defaulting per sparsity) are never serialized.
        let balances: Vec<Json> = self
            .balances
            .iter()
            .filter_map(|b| b.map(|m| Json::str(balance_label(m))))
            .collect();
        if !balances.is_empty() {
            fields.push(("balances".into(), Json::Arr(balances)));
        }
        Json::Obj(fields).to_string()
    }

    /// Deserializes a sweep document produced by [`Sweep::to_json`] (or
    /// written by hand: every axis except `networks` is optional).
    ///
    /// Safe for **untrusted input**, with the same guarantees as
    /// [`Scenario::from_json`]: structured errors, no panics, unknown
    /// fields rejected. Note that deserializing does not expand or
    /// validate the cartesian product — call [`Sweep::cardinality`] to
    /// bound the size *before* [`Sweep::build`] materializes it.
    pub fn from_json(text: &str) -> Result<Sweep, ScenarioError> {
        let v = Json::parse(text).map_err(ScenarioError::Parse)?;
        Self::from_json_value(&v)
    }

    /// [`Sweep::from_json`] over an already-parsed [`Json`] value.
    pub fn from_json_value(v: &Json) -> Result<Sweep, ScenarioError> {
        check_keys(
            v,
            &[
                "networks",
                "sparsities",
                "computes",
                "fidelities",
                "mappings",
                "batches",
                "arches",
                "balances",
            ],
            "sweep",
        )?;
        if !matches!(v, Json::Obj(_)) {
            return Err(ScenarioError::Parse("sweep is not an object".into()));
        }
        let axis = |key: &str| -> Result<Vec<&Json>, ScenarioError> {
            match v.get(key) {
                None => Ok(Vec::new()),
                Some(j) => Ok(j
                    .as_arr()
                    .ok_or_else(|| ScenarioError::Parse(format!("sweep.{key} is not an array")))?
                    .iter()
                    .collect()),
            }
        };
        let networks: Vec<String> = axis("networks")?
            .into_iter()
            .map(|j| {
                j.as_str().map(str::to_string).ok_or_else(|| {
                    ScenarioError::Parse("sweep.networks entry is not a string".into())
                })
            })
            .collect::<Result<_, _>>()?;
        if networks.is_empty() {
            return Err(ScenarioError::Parse(
                "sweep.networks missing or empty".into(),
            ));
        }
        let str_axis = |key: &str| -> Result<Vec<&str>, ScenarioError> {
            axis(key)?
                .into_iter()
                .map(|j| {
                    j.as_str().ok_or_else(|| {
                        ScenarioError::Parse(format!("sweep.{key} entry is not a string"))
                    })
                })
                .collect()
        };
        Ok(Sweep {
            networks,
            sparsities: axis("sparsities")?
                .into_iter()
                .map(SparsityGen::from_json)
                .collect::<Result<_, _>>()?,
            computes: axis("computes")?
                .into_iter()
                .map(compute_from_json)
                .collect::<Result<_, _>>()?,
            fidelities: str_axis("fidelities")?
                .into_iter()
                .map(fidelity_from_label)
                .collect::<Result<_, _>>()?,
            mappings: str_axis("mappings")?
                .into_iter()
                .map(mapping_from_label)
                .collect::<Result<_, _>>()?,
            batches: axis("batches")?
                .into_iter()
                .map(|j| {
                    j.as_usize().ok_or_else(|| {
                        ScenarioError::Parse("sweep.batches entry is not an integer".into())
                    })
                })
                .collect::<Result<_, _>>()?,
            arches: axis("arches")?
                .into_iter()
                .map(arch_from_json)
                .collect::<Result<_, _>>()?,
            balances: str_axis("balances")?
                .into_iter()
                .map(|l| balance_from_label(l).map(Some))
                .collect::<Result<_, _>>()?,
        })
    }
}

/// The resolved axis domains of a [`Sweep`] (see
/// [`Sweep::resolved_axes`]). Axis fields are listed in the sweep's
/// documented expansion order, outermost first: network, sparsity,
/// compute, fidelity, mapping, batch, arch, balance.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxes {
    /// Network ids (outermost axis; no default, may be empty).
    pub networks: Vec<String>,
    /// Sparsity sources.
    pub sparsities: Vec<SparsityGen>,
    /// Execution backends.
    pub computes: Vec<ComputeBackend>,
    /// Latency fidelities.
    pub fidelities: Vec<Fidelity>,
    /// Spatial mappings.
    pub mappings: Vec<Mapping>,
    /// Minibatch sizes.
    pub batches: Vec<usize>,
    /// Accelerator configurations.
    pub arches: Vec<ArchConfig>,
    /// Balancing modes; `None` means "default per sparsity" (resolved
    /// through [`Scenario::default_balance`] at scenario construction).
    pub balances: Vec<Option<BalanceMode>>,
}

fn non_empty<T: Clone>(axis: &[T], default: T) -> Vec<T> {
    if axis.is_empty() {
        vec![default]
    } else {
        axis.to_vec()
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Tuning knobs for [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineOpts {
    /// Worker threads for [`Engine::run_all`] (clamped to the scenario
    /// count; `1` means serial). Defaults to the machine's available
    /// parallelism.
    pub threads: usize,
    /// Memoize per-`(layer, phase, mapping, sparsity, arch, balance,
    /// fidelity)` costs across scenarios (default on). Results are
    /// identical either way; memoization only skips re-deriving costs
    /// for shared layers.
    pub memoize: bool,
}

impl Default for EngineOpts {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            memoize: true,
        }
    }
}

/// Memoization key: everything `evaluate_layer_with` depends on, by
/// stable fingerprint — including the latency fidelity, so analytic and
/// tile-timed costs of the same layer never alias. The task name is
/// deliberately excluded (it only labels the output) and re-applied on
/// cache hits.
type CacheKey = (u64, Phase, Mapping, BalanceMode, Fidelity, u64, u64);

/// The single evaluator behind every scenario and sweep.
///
/// `Engine` owns a cost cache shared across all `run`/`run_all` calls on
/// the same instance, so sweeps that revisit a layer under the same
/// mapping/phase/sparsity (e.g. the dense baseline across batches, or
/// identical residual blocks within one network) pay for it once.
pub struct Engine {
    opts: EngineOpts,
    cache: Mutex<HashMap<CacheKey, LayerCost>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new(EngineOpts::default())
    }
}

impl Engine {
    /// Creates an engine with explicit options.
    pub fn new(opts: EngineOpts) -> Self {
        Self {
            opts,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// A single-threaded engine (memoization still on).
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// An engine with a fixed worker-thread count.
    pub fn with_threads(threads: usize) -> Self {
        Self::new(EngineOpts {
            threads,
            ..EngineOpts::default()
        })
    }

    /// The engine's options.
    pub fn opts(&self) -> &EngineOpts {
        &self.opts
    }

    /// Number of distinct layer×phase costs currently memoized.
    pub fn cached_layer_costs(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// Evaluates one scenario.
    pub fn run(&self, scenario: &Scenario) -> Result<EvalResult, ScenarioError> {
        scenario.validate()?;
        Ok(self.run_checked(scenario))
    }

    /// Evaluates every scenario, fanning out across the engine's worker
    /// threads. Results are returned in input order and are identical for
    /// any thread count (the per-layer model is deterministic; threading
    /// only changes scheduling).
    pub fn run_all(&self, scenarios: &[Scenario]) -> Result<Vec<EvalResult>, ScenarioError> {
        // Validate everything up front so workers cannot fail mid-sweep.
        for s in scenarios {
            s.validate()?;
        }
        let threads = self.opts.threads.max(1).min(scenarios.len().max(1));
        if threads <= 1 {
            return Ok(scenarios.iter().map(|s| self.run_checked(s)).collect());
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<EvalResult>>> =
            scenarios.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= scenarios.len() {
                        break;
                    }
                    let result = self.run_checked(&scenarios[i]);
                    *slots[i].lock().unwrap() = Some(result);
                });
            }
        });
        Ok(slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every slot is filled before the scope joins")
            })
            .collect())
    }

    fn run_checked(&self, scenario: &Scenario) -> EvalResult {
        let net = scenario
            .resolve_network()
            .expect("scenario was validated before evaluation");
        let workloads = scenario.workloads_for(&net);
        let cost = self.run_workloads(
            net.name,
            &scenario.arch,
            scenario.mapping,
            &workloads,
            scenario.balance,
            scenario.fidelity,
        );
        EvalResult {
            scenario: scenario.clone(),
            cost,
        }
    }

    /// The lower-level entry point: evaluates explicit `(task, sparsity)`
    /// pairs (all layers × all three phases) under one mapping and
    /// latency fidelity. This is the loop [`crate::NetworkEval`]
    /// delegates to (at [`Fidelity::Analytic`]).
    pub fn run_workloads(
        &self,
        network: &str,
        hw: &ArchConfig,
        mapping: Mapping,
        workloads: &[(LayerTask, SparsityInfo)],
        balance: BalanceMode,
        fidelity: Fidelity,
    ) -> NetworkCost {
        let arch_fp = hw.fingerprint();
        let mut phases = [CostSummary::new(), CostSummary::new(), CostSummary::new()];
        let mut layers = Vec::with_capacity(workloads.len() * 3);
        for (task, sp) in workloads {
            let task_fp = task.fingerprint();
            let sp_fp = sp.fingerprint();
            for (pi, phase) in Phase::ALL.into_iter().enumerate() {
                let cost = if self.opts.memoize {
                    let key = (task_fp, phase, mapping, balance, fidelity, arch_fp, sp_fp);
                    let hit = self.cache.lock().unwrap().get(&key).cloned();
                    match hit {
                        Some(mut cached) => {
                            // The cache key excludes the label; restore it.
                            cached.name.clone_from(&task.name);
                            cached
                        }
                        None => {
                            let fresh = evaluate_layer_with(
                                hw, task, phase, mapping, sp, balance, fidelity,
                            );
                            self.cache.lock().unwrap().insert(key, fresh.clone());
                            fresh
                        }
                    }
                } else {
                    evaluate_layer_with(hw, task, phase, mapping, sp, balance, fidelity)
                };
                phases[pi].accumulate(&cost);
                layers.push(cost);
            }
        }
        NetworkCost {
            network: network.to_string(),
            mapping,
            phases,
            layers,
        }
    }
}

// ---------------------------------------------------------------------------
// EvalResult
// ---------------------------------------------------------------------------

/// The outcome of evaluating one [`Scenario`]: the originating scenario
/// plus the resulting [`NetworkCost`], with derived-metric helpers.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// The scenario that produced this result.
    pub scenario: Scenario,
    /// The evaluated cost (all layers × all three phases).
    pub cost: NetworkCost,
}

impl EvalResult {
    /// Totals across all phases (shorthand for `cost.totals()`).
    pub fn totals(&self) -> CostSummary {
        self.cost.totals()
    }

    /// Cycle speedup relative to `baseline` (`>1` means this result is
    /// faster).
    pub fn speedup_over(&self, baseline: &EvalResult) -> f64 {
        baseline.totals().cycles as f64 / self.totals().cycles as f64
    }

    /// Energy saving relative to `baseline` (`>1` means this result is
    /// cheaper).
    pub fn energy_saving_over(&self, baseline: &EvalResult) -> f64 {
        baseline.totals().energy_j() / self.totals().energy_j()
    }

    /// Serializes the scenario plus per-phase and total summaries to a
    /// JSON document (per-layer detail stays in [`EvalResult::cost`]).
    pub fn to_json(&self) -> String {
        let summary = |s: &CostSummary| {
            Json::Obj(vec![
                ("cycles".into(), Json::u64(s.cycles)),
                ("macs".into(), Json::u64(s.macs)),
                ("energy_j".into(), Json::f64(s.energy_j())),
                ("dram_j".into(), Json::f64(s.energy.dram_j)),
                ("glb_j".into(), Json::f64(s.energy.glb_j)),
                ("rf_j".into(), Json::f64(s.energy.rf_j)),
                ("mac_j".into(), Json::f64(s.energy.mac_j)),
                ("overhead_j".into(), Json::f64(s.energy.overhead_j)),
            ])
        };
        Json::Obj(vec![
            ("scenario".into(), self.scenario.json_value()),
            (
                "phases".into(),
                Json::Obj(
                    Phase::ALL
                        .iter()
                        .map(|&p| (p.label().to_string(), summary(self.cost.phase(p))))
                        .collect(),
                ),
            ),
            ("totals".into(), summary(&self.totals())),
        ])
        .to_string()
    }
}

// ---------------------------------------------------------------------------
// JSON helpers for the leaf types
// ---------------------------------------------------------------------------

/// Rejects unrecognized keys in an untrusted object so typos fail loudly
/// instead of silently evaluating the wrong configuration. Non-objects
/// pass through (their shape errors surface from the field accessors).
fn check_keys(v: &Json, allowed: &[&str], ctx: &str) -> Result<(), ScenarioError> {
    if let Json::Obj(pairs) = v {
        for (k, _) in pairs {
            if !allowed.contains(&k.as_str()) {
                return Err(ScenarioError::Parse(format!(
                    "unknown {ctx} field '{k}' (allowed: {})",
                    allowed.join(", ")
                )));
            }
        }
    }
    Ok(())
}

fn f64_field(v: &Json, key: &str) -> Result<f64, ScenarioError> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| ScenarioError::Parse(format!("number field '{key}' missing")))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, ScenarioError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ScenarioError::Parse(format!("integer field '{key}' missing")))
}

fn usize_field(v: &Json, key: &str) -> Result<usize, ScenarioError> {
    v.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| ScenarioError::Parse(format!("integer field '{key}' missing")))
}

fn bool_field(v: &Json, key: &str) -> Result<bool, ScenarioError> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| ScenarioError::Parse(format!("bool field '{key}' missing")))
}

/// Report/serialization label for a balancing mode.
pub fn balance_label(balance: BalanceMode) -> &'static str {
    match balance {
        BalanceMode::None => "none",
        BalanceMode::HalfTile => "half_tile",
        BalanceMode::Ideal => "ideal",
    }
}

fn balance_from_label(label: &str) -> Result<BalanceMode, ScenarioError> {
    match label {
        "none" => Ok(BalanceMode::None),
        "half_tile" => Ok(BalanceMode::HalfTile),
        "ideal" => Ok(BalanceMode::Ideal),
        other => Err(ScenarioError::Parse(format!(
            "unknown balance mode '{other}'"
        ))),
    }
}

fn fidelity_from_label(label: &str) -> Result<Fidelity, ScenarioError> {
    Fidelity::ALL
        .into_iter()
        .find(|f| f.label() == label)
        .ok_or_else(|| ScenarioError::Parse(format!("unknown fidelity '{label}'")))
}

fn compute_to_json(compute: ComputeBackend) -> Json {
    match compute {
        ComputeBackend::Dense => Json::Obj(vec![("kind".into(), Json::str("dense"))]),
        ComputeBackend::Csb => Json::Obj(vec![("kind".into(), Json::str("csb"))]),
        ComputeBackend::Auto { max_density } => Json::Obj(vec![
            ("kind".into(), Json::str("auto")),
            ("max_density".into(), Json::f64(max_density)),
        ]),
    }
}

fn compute_from_json(v: &Json) -> Result<ComputeBackend, ScenarioError> {
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| ScenarioError::Parse("compute.kind missing".into()))?;
    check_keys(
        v,
        if kind == "auto" {
            &["kind", "max_density"]
        } else {
            &["kind"]
        },
        "compute",
    )?;
    match kind {
        "dense" => Ok(ComputeBackend::Dense),
        "csb" => Ok(ComputeBackend::Csb),
        "auto" => Ok(ComputeBackend::Auto {
            max_density: f64_field(v, "max_density")?,
        }),
        other => Err(ScenarioError::Parse(format!(
            "unknown compute backend '{other}'"
        ))),
    }
}

fn mapping_from_label(label: &str) -> Result<Mapping, ScenarioError> {
    Mapping::ALL
        .into_iter()
        .find(|m| m.label() == label)
        .ok_or_else(|| ScenarioError::Parse(format!("unknown mapping '{label}'")))
}

fn arch_to_json(a: &ArchConfig) -> Json {
    Json::Obj(vec![
        ("rows".into(), Json::usize(a.rows)),
        ("cols".into(), Json::usize(a.cols)),
        ("rf_words".into(), Json::usize(a.rf_words)),
        ("glb_bytes".into(), Json::usize(a.glb_bytes)),
        ("glb_bw_words".into(), Json::usize(a.glb_bw_words)),
        ("dram_bw_words".into(), Json::usize(a.dram_bw_words)),
        ("ideal".into(), Json::Bool(a.ideal)),
        (
            "energy".into(),
            Json::Obj(vec![
                ("mac_pj".into(), Json::f64(a.energy.mac_pj)),
                ("rf_pj".into(), Json::f64(a.energy.rf_pj)),
                ("glb_pj".into(), Json::f64(a.energy.glb_pj)),
                ("dram_pj".into(), Json::f64(a.energy.dram_pj)),
                ("qe_pj".into(), Json::f64(a.energy.qe_pj)),
                ("wr_pj".into(), Json::f64(a.energy.wr_pj)),
                ("lb_pj".into(), Json::f64(a.energy.lb_pj)),
                ("mask_pj".into(), Json::f64(a.energy.mask_pj)),
            ]),
        ),
    ])
}

fn arch_from_json(v: &Json) -> Result<ArchConfig, ScenarioError> {
    check_keys(
        v,
        &[
            "rows",
            "cols",
            "rf_words",
            "glb_bytes",
            "glb_bw_words",
            "dram_bw_words",
            "ideal",
            "energy",
        ],
        "arch",
    )?;
    let e = v
        .get("energy")
        .ok_or_else(|| ScenarioError::Parse("arch.energy missing".into()))?;
    check_keys(
        e,
        &[
            "mac_pj", "rf_pj", "glb_pj", "dram_pj", "qe_pj", "wr_pj", "lb_pj", "mask_pj",
        ],
        "arch.energy",
    )?;
    Ok(ArchConfig {
        rows: usize_field(v, "rows")?,
        cols: usize_field(v, "cols")?,
        rf_words: usize_field(v, "rf_words")?,
        glb_bytes: usize_field(v, "glb_bytes")?,
        glb_bw_words: usize_field(v, "glb_bw_words")?,
        dram_bw_words: usize_field(v, "dram_bw_words")?,
        ideal: bool_field(v, "ideal")?,
        energy: EnergyTable {
            mac_pj: f64_field(e, "mac_pj")?,
            rf_pj: f64_field(e, "rf_pj")?,
            glb_pj: f64_field(e, "glb_pj")?,
            dram_pj: f64_field(e, "dram_pj")?,
            qe_pj: f64_field(e, "qe_pj")?,
            wr_pj: f64_field(e, "wr_pj")?,
            lb_pj: f64_field(e, "lb_pj")?,
            mask_pj: f64_field(e, "mask_pj")?,
        },
    })
}

fn mask_cfg_to_json(cfg: &MaskGenConfig) -> Json {
    Json::Obj(vec![
        ("sparsity_factor".into(), Json::f64(cfg.sparsity_factor)),
        ("alpha".into(), Json::f64(cfg.alpha)),
        ("spread".into(), Json::f64(cfg.spread)),
        ("row_spread".into(), Json::f64(cfg.row_spread)),
        ("act_density".into(), Json::f64(cfg.act_density)),
        ("min_keep".into(), Json::f64(cfg.min_keep)),
    ])
}

fn mask_cfg_from_json(v: &Json) -> Result<MaskGenConfig, ScenarioError> {
    check_keys(
        v,
        &[
            "sparsity_factor",
            "alpha",
            "spread",
            "row_spread",
            "act_density",
            "min_keep",
        ],
        "sparsity.cfg",
    )?;
    Ok(MaskGenConfig {
        sparsity_factor: f64_field(v, "sparsity_factor")?,
        alpha: f64_field(v, "alpha")?,
        spread: f64_field(v, "spread")?,
        row_spread: f64_field(v, "row_spread")?,
        act_density: f64_field(v, "act_density")?,
        min_keep: f64_field(v, "min_keep")?,
    })
}

fn task_to_json(t: &LayerTask) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::str(t.name.clone())),
        ("batch".into(), Json::usize(t.batch)),
        ("c".into(), Json::usize(t.c)),
        ("k".into(), Json::usize(t.k)),
        ("h".into(), Json::usize(t.h)),
        ("w".into(), Json::usize(t.w)),
        ("p".into(), Json::usize(t.p)),
        ("q".into(), Json::usize(t.q)),
        ("r".into(), Json::usize(t.r)),
        ("s".into(), Json::usize(t.s)),
        ("depthwise".into(), Json::Bool(t.depthwise)),
    ])
}

fn task_from_json(v: &Json) -> Result<LayerTask, ScenarioError> {
    check_keys(
        v,
        &[
            "name",
            "batch",
            "c",
            "k",
            "h",
            "w",
            "p",
            "q",
            "r",
            "s",
            "depthwise",
        ],
        "task",
    )?;
    Ok(LayerTask {
        name: v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ScenarioError::Parse("task.name missing".into()))?
            .to_string(),
        batch: usize_field(v, "batch")?,
        c: usize_field(v, "c")?,
        k: usize_field(v, "k")?,
        h: usize_field(v, "h")?,
        w: usize_field(v, "w")?,
        p: usize_field(v, "p")?,
        q: usize_field(v, "q")?,
        r: usize_field(v, "r")?,
        s: usize_field(v, "s")?,
        depthwise: bool_field(v, "depthwise")?,
    })
}

fn sparsity_info_to_json(sp: &SparsityInfo) -> Json {
    Json::Obj(vec![
        (
            "kernel_nnz".into(),
            Json::Arr(
                sp.kernel_nnz
                    .iter()
                    .map(|&n| Json::u64(u64::from(n)))
                    .collect(),
            ),
        ),
        ("act_in_density".into(), Json::f64(sp.act_in_density)),
        ("grad_density".into(), Json::f64(sp.grad_density)),
        ("compressed".into(), Json::Bool(sp.compressed)),
    ])
}

fn sparsity_info_from_json(v: &Json) -> Result<SparsityInfo, ScenarioError> {
    check_keys(
        v,
        &["kernel_nnz", "act_in_density", "grad_density", "compressed"],
        "workload.sparsity",
    )?;
    let nnz = v
        .get("kernel_nnz")
        .and_then(Json::as_arr)
        .ok_or_else(|| ScenarioError::Parse("sparsity.kernel_nnz missing".into()))?;
    Ok(SparsityInfo {
        kernel_nnz: nnz
            .iter()
            .map(|n| {
                n.as_u32()
                    .ok_or_else(|| ScenarioError::Parse("kernel_nnz entry not a u32".into()))
            })
            .collect::<Result<_, _>>()?,
        act_in_density: f64_field(v, "act_in_density")?,
        grad_density: f64_field(v, "grad_density")?,
        compressed: bool_field(v, "compressed")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_seed_evaluation() {
        let s = Scenario::builder("VGG-S").build().unwrap();
        assert_eq!(s.network, "VGG-S");
        assert_eq!(s.mapping, Mapping::KN);
        assert_eq!(s.batch, 16);
        assert_eq!(s.balance, BalanceMode::None); // dense → no balancing
        let sp = Scenario::builder("vgg_s")
            .sparsity(SparsityGen::PaperSynthetic { seed: 1 })
            .build()
            .unwrap();
        assert_eq!(sp.balance, BalanceMode::HalfTile);
    }

    #[test]
    fn builder_rejects_bad_scenarios() {
        assert!(matches!(
            Scenario::builder("AlexNet").build(),
            Err(ScenarioError::UnknownNetwork(_))
        ));
        assert!(matches!(
            Scenario::builder("VGG-S").batch(0).build(),
            Err(ScenarioError::InvalidParam(_))
        ));
        assert!(matches!(
            Scenario::builder("VGG-S")
                .sparsity(SparsityGen::Uniform {
                    keep: 1.5,
                    act_density: 0.5
                })
                .build(),
            Err(ScenarioError::InvalidParam(_))
        ));
        assert!(matches!(
            Scenario::builder("VGG-S")
                .sparsity(SparsityGen::Extracted(Vec::new()))
                .build(),
            Err(ScenarioError::InvalidParam(_))
        ));
    }

    #[test]
    fn network_id_aliases_resolve() {
        for id in ["VGG-S", "vgg_s", "vggs", "vgg"] {
            assert_eq!(resolve_network(id).unwrap().name, "VGG-S", "{id}");
        }
        assert_eq!(
            resolve_network("MobileNet v2").unwrap().name,
            "MobileNet v2"
        );
        assert!(resolve_network("transformer").is_none());
        for id in PAPER_NETWORKS {
            assert!(paper_sparsity_factor(id).is_some(), "{id}");
        }
    }

    #[test]
    fn sweep_cardinality_is_the_axis_product() {
        let sweep = Sweep::new()
            .networks(PAPER_NETWORKS)
            .mappings(Mapping::ALL)
            .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 1 }])
            .batches([16, 32]);
        assert_eq!(sweep.cardinality(), 5 * 4 * 2 * 2);
        assert_eq!(sweep.build().unwrap().len(), sweep.cardinality());
        // Unset axes default to one value each.
        let small = Sweep::new().networks(["VGG-S"]);
        assert_eq!(small.cardinality(), 1);
        // No networks → explicit error.
        assert!(Sweep::new().build().is_err());
    }

    #[test]
    fn sweep_order_is_documented() {
        let scenarios = Sweep::new()
            .networks(["VGG-S", "DenseNet"])
            .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 1 }])
            .mappings([Mapping::KN, Mapping::PQ])
            .build()
            .unwrap();
        // network outermost, then sparsity, then mapping.
        assert_eq!(scenarios[0].network, "VGG-S");
        assert!(scenarios[0].sparsity.is_dense());
        assert_eq!(scenarios[0].mapping, Mapping::KN);
        assert_eq!(scenarios[1].mapping, Mapping::PQ);
        assert!(!scenarios[2].sparsity.is_dense());
        assert_eq!(scenarios[4].network, "DenseNet");
    }

    #[test]
    fn scenario_json_roundtrip() {
        let scenarios = [
            Scenario::builder("VGG-S").build().unwrap(),
            Scenario::builder("ResNet18")
                .arch(ArchConfig::procrustes_32x32())
                .mapping(Mapping::CN)
                .batch(32)
                .synthetic(MaskGenConfig::paper_default(11.7), 0xDEAD_BEEF_CAFE_F00D)
                .balance(BalanceMode::Ideal)
                .build()
                .unwrap(),
            Scenario::builder("DenseNet")
                .sparsity(SparsityGen::PaperSynthetic { seed: u64::MAX })
                .build()
                .unwrap(),
        ];
        for s in &scenarios {
            let text = s.to_json();
            let back = Scenario::from_json(&text).unwrap();
            assert_eq!(&back, s, "{text}");
        }
    }

    #[test]
    fn extracted_scenario_json_roundtrip() {
        let task = LayerTask::conv("c1", 4, 2, 3, 8, 8, 3, 1, 1);
        let sp = SparsityInfo::uniform(&task, 0.5, 0.7);
        let s = Scenario::builder("VGG-S")
            .batch(4)
            .sparsity(SparsityGen::Extracted(vec![(task, sp)]))
            .build()
            .unwrap();
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(Scenario::from_json("not json").is_err());
        assert!(Scenario::from_json("{}").is_err());
        let valid = Scenario::builder("VGG-S").build().unwrap().to_json();
        let broken = valid.replace("\"KN\"", "\"XY\"");
        assert!(matches!(
            Scenario::from_json(&broken),
            Err(ScenarioError::Parse(_))
        ));
    }

    #[test]
    fn engine_matches_network_eval_shim() {
        use crate::NetworkEval;
        let net = arch::vgg_s();
        let hw = ArchConfig::procrustes_16x16();
        let eval = NetworkEval::new(&net, &hw);
        let cfg = MaskGenConfig::paper_default(5.2);
        let legacy = eval.run_sparse(Mapping::KN, &cfg, 9);
        let result = Engine::serial()
            .run(
                &Scenario::builder("VGG-S")
                    .synthetic(cfg, 9)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(result.cost, legacy);
    }

    #[test]
    fn memoization_does_not_change_results() {
        let scenario = Scenario::builder("DenseNet")
            .sparsity(SparsityGen::PaperSynthetic { seed: 3 })
            .build()
            .unwrap();
        let memo = Engine::new(EngineOpts {
            threads: 1,
            memoize: true,
        });
        let plain = Engine::new(EngineOpts {
            threads: 1,
            memoize: false,
        });
        let a = memo.run(&scenario).unwrap();
        let b = plain.run(&scenario).unwrap();
        assert_eq!(a, b);
        assert!(memo.cached_layer_costs() > 0);
        assert_eq!(plain.cached_layer_costs(), 0);
        // A second run is served from cache and stays identical.
        assert_eq!(memo.run(&scenario).unwrap(), a);
    }

    #[test]
    fn parallel_run_all_is_deterministic_and_ordered() {
        let scenarios = Sweep::new()
            .networks(["VGG-S", "DenseNet"])
            .mappings([Mapping::KN, Mapping::PQ])
            .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 5 }])
            .build()
            .unwrap();
        let serial = Engine::serial().run_all(&scenarios).unwrap();
        let parallel = Engine::with_threads(8).run_all(&scenarios).unwrap();
        assert_eq!(serial, parallel);
        for (s, r) in scenarios.iter().zip(&serial) {
            assert_eq!(&r.scenario, s);
        }
    }

    #[test]
    fn derived_metrics_orient_correctly() {
        let engine = Engine::serial();
        let dense = engine
            .run(&Scenario::builder("VGG-S").build().unwrap())
            .unwrap();
        let sparse = engine
            .run(
                &Scenario::builder("VGG-S")
                    .sparsity(SparsityGen::PaperSynthetic { seed: 1 })
                    .build()
                    .unwrap(),
            )
            .unwrap();
        assert!(sparse.speedup_over(&dense) > 1.0);
        assert!(sparse.energy_saving_over(&dense) > 1.0);
        assert!((dense.speedup_over(&dense) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_axis_roundtrips_and_defaults_to_analytic() {
        let timed = Scenario::builder("VGG-S")
            .sparsity(SparsityGen::PaperSynthetic { seed: 3 })
            .fidelity(Fidelity::TileTimed)
            .build()
            .unwrap();
        let back = Scenario::from_json(&timed.to_json()).unwrap();
        assert_eq!(back, timed);
        assert_eq!(back.fidelity, Fidelity::TileTimed);

        // A pre-fidelity document (no "fidelity" field) parses to the
        // analytic default — the seed evaluation's behaviour.
        let s = Scenario::builder("VGG-S").build().unwrap();
        let Json::Obj(fields) = Json::parse(&s.to_json()).unwrap() else {
            panic!("scenario serializes to an object");
        };
        let legacy = Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "fidelity")
                .collect(),
        )
        .to_string();
        let parsed = Scenario::from_json(&legacy).unwrap();
        assert_eq!(parsed.fidelity, Fidelity::Analytic);
        assert_eq!(parsed, s);

        // Unknown labels are a parse error, not a silent default.
        let broken = s.to_json().replace("\"analytic\"", "\"exact\"");
        assert!(matches!(
            Scenario::from_json(&broken),
            Err(ScenarioError::Parse(_))
        ));
    }

    #[test]
    fn memoization_keys_separate_fidelities() {
        // One engine, both fidelities of the same sparse scenario: the
        // cache must never serve an analytic cost to a tile-timed run.
        let engine = Engine::serial();
        let base =
            Scenario::builder("MobileNet v2").sparsity(SparsityGen::PaperSynthetic { seed: 11 });
        let analytic = engine.run(&base.clone().build().unwrap()).unwrap();
        let timed = engine
            .run(&base.clone().fidelity(Fidelity::TileTimed).build().unwrap())
            .unwrap();
        for (a, t) in analytic.cost.layers.iter().zip(&timed.cost.layers) {
            assert_eq!(a.fidelity, Fidelity::Analytic);
            assert_eq!(t.fidelity, Fidelity::TileTimed);
            assert!(t.cycles >= a.cycles, "{}", a.name);
            assert_eq!(a.macs, t.macs);
        }
        assert!(timed.totals().cycles >= analytic.totals().cycles);
        // Re-running either stays cache-consistent.
        assert_eq!(engine.run(&base.build().unwrap()).unwrap(), analytic);
    }

    #[test]
    fn non_finite_costs_serialize_without_panicking() {
        let engine = Engine::serial();
        let mut r = engine
            .run(&Scenario::builder("VGG-S").batch(2).build().unwrap())
            .unwrap();
        // Poison the cost the way a buggy model would.
        r.cost.phases[0].energy.mac_j = f64::NAN;
        let text = r.to_json(); // must not panic
        let v = Json::parse(&text).unwrap();
        let fw_mac = v
            .get("phases")
            .and_then(|p| p.get("fw"))
            .and_then(|s| s.get("mac_j"))
            .unwrap();
        assert_eq!(fw_mac, &Json::Null);
        // Finite sibling fields are untouched.
        assert!(v
            .get("totals")
            .and_then(|t| t.get("cycles"))
            .and_then(Json::as_u64)
            .is_some());
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let s = Scenario::builder("VGG-S").build().unwrap();
        // Equal scenarios hash equal; the hash is a pure function of the
        // canonical JSON, so a JSON round trip preserves it.
        assert_eq!(s.fingerprint(), s.clone().fingerprint());
        assert_eq!(
            Scenario::from_json(&s.to_json()).unwrap().fingerprint(),
            s.fingerprint()
        );
        // Every axis the engine dispatches on must move the fingerprint.
        let variants = [
            Scenario::builder("ResNet18").build().unwrap(),
            Scenario::builder("VGG-S").batch(32).build().unwrap(),
            Scenario::builder("VGG-S")
                .mapping(Mapping::PQ)
                .build()
                .unwrap(),
            Scenario::builder("VGG-S")
                .sparsity(SparsityGen::PaperSynthetic { seed: 1 })
                .build()
                .unwrap(),
            Scenario::builder("VGG-S")
                .fidelity(Fidelity::TileTimed)
                .build()
                .unwrap(),
            Scenario::builder("VGG-S")
                .compute(ComputeBackend::Csb)
                .build()
                .unwrap(),
            Scenario::builder("VGG-S")
                .balance(BalanceMode::Ideal)
                .build()
                .unwrap(),
        ];
        for v in &variants {
            assert_ne!(v.fingerprint(), s.fingerprint(), "{}", v.to_json());
        }
        // Pinned golden value: the canonical serialization (and with it
        // every on-disk cache entry ever written by procrustes-serve) is
        // a compatibility surface. If this assertion fails, the encoding
        // changed and persistent caches would silently miss — version
        // the serve cache directory instead of re-pinning casually.
        assert_eq!(s.fingerprint(), 0x70c7_d1b7_a089_54ba, "{}", s.to_json());
        let mut h = Fnv1a::new();
        h.write(s.to_json().as_bytes());
        assert_eq!(s.fingerprint(), h.finish());
    }

    #[test]
    fn sweep_json_roundtrip_preserves_expansion() {
        let sweep = Sweep::new()
            .networks(["VGG-S", "ResNet18"])
            .mappings([Mapping::KN, Mapping::PQ])
            .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 7 }])
            .computes([
                ComputeBackend::Dense,
                ComputeBackend::Auto { max_density: 0.5 },
            ])
            .fidelities(Fidelity::ALL)
            .batches([2, 4])
            .arches([ArchConfig::procrustes_16x16()])
            .balances([BalanceMode::HalfTile]);
        let back = Sweep::from_json(&sweep.to_json()).unwrap();
        assert_eq!(back.build().unwrap(), sweep.build().unwrap());
        assert_eq!(back.cardinality(), sweep.cardinality());
        // Minimal document: only networks; every other axis defaults.
        let minimal = Sweep::from_json(r#"{"networks":["VGG-S"]}"#).unwrap();
        assert_eq!(
            minimal.build().unwrap(),
            Sweep::new().networks(["VGG-S"]).build().unwrap()
        );
    }

    #[test]
    fn untrusted_documents_fail_with_structured_errors() {
        // Unknown scenario field.
        let valid = Scenario::builder("VGG-S").build().unwrap().to_json();
        let extra = valid.replacen("{\"network\"", "{\"fidelty\":\"x\",\"network\"", 1);
        let err = Scenario::from_json(&extra).unwrap_err();
        assert!(
            matches!(&err, ScenarioError::Parse(m) if m.contains("fidelty")),
            "{err}"
        );
        // Unknown sweep field.
        let err = Sweep::from_json(r#"{"networks":["VGG-S"],"mapings":["KN"]}"#).unwrap_err();
        assert!(
            matches!(&err, ScenarioError::Parse(m) if m.contains("mapings")),
            "{err}"
        );
        // Missing / empty networks.
        assert!(Sweep::from_json("{}").is_err());
        assert!(Sweep::from_json(r#"{"networks":[]}"#).is_err());
        // Wrong shapes never panic.
        assert!(Sweep::from_json(r#"{"networks":"VGG-S"}"#).is_err());
        assert!(Sweep::from_json(r#"[1,2]"#).is_err());
        assert!(Sweep::from_json(r#"{"networks":["VGG-S"],"batches":["x"]}"#).is_err());
    }

    #[test]
    fn hostile_cardinality_saturates_instead_of_overflowing() {
        let sweep = Sweep::new()
            .networks(vec!["VGG-S"; 1 << 17])
            .batches(vec![1; 1 << 17])
            .mappings(vec![Mapping::KN; 1 << 17])
            .fidelities(vec![Fidelity::Analytic; 1 << 17]);
        // 2^68 saturates rather than wrapping to something small a
        // service admission check would wave through.
        assert_eq!(sweep.cardinality(), usize::MAX);
    }

    #[test]
    fn eval_result_json_has_scenario_and_totals() {
        let engine = Engine::serial();
        let r = engine
            .run(&Scenario::builder("VGG-S").batch(2).build().unwrap())
            .unwrap();
        let v = Json::parse(&r.to_json()).unwrap();
        assert_eq!(
            v.get("scenario")
                .and_then(|s| s.get("network"))
                .and_then(Json::as_str),
            Some("VGG-S")
        );
        let cycles = v
            .get("totals")
            .and_then(|t| t.get("cycles"))
            .and_then(Json::as_u64)
            .unwrap();
        assert_eq!(cycles, r.totals().cycles);
        assert!(v.get("phases").and_then(|p| p.get("fw")).is_some());
    }
}
