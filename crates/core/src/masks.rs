//! Sparsity-mask synthesis and extraction.
//!
//! The paper extracts weight masks from PyTorch models trained with the
//! Procrustes algorithm and feeds them to the (extended) Timeloop model.
//! Here the performance model consumes the same information — per-kernel
//! nonzero counts — from either:
//!
//! * [`generate`]: a synthetic generator calibrated to Dropback-trained
//!   models: per-layer keep fractions follow a *learning-pressure* rule
//!   (parameter-heavy layers prune harder, which reproduces Table II's
//!   weights-shrink-more-than-MACs gap), and per-kernel density gets a
//!   heavy-tailed spread (which reproduces the Fig 5 load-imbalance
//!   phenomenology); or
//! * [`from_model`]: real masks read out of a `procrustes-nn` model
//!   trained with `procrustes-dropback` (exact zeros).

use procrustes_nn::arch::{LayerGeom, LayerKind, NetworkArch};
use procrustes_nn::{Layer, ParamKind, Sequential};
use procrustes_prng::{UniformRng, Xorshift64};
use procrustes_sim::{LayerTask, SparsityInfo};

/// Configuration of the synthetic mask generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaskGenConfig {
    /// Overall weight-count reduction (Table II's “sparsity” column).
    pub sparsity_factor: f64,
    /// Learning-pressure exponent: per-layer keep fraction ∝ weightsᵅ⁻.
    /// 0 = uniform sparsity; larger values protect small layers more.
    pub alpha: f64,
    /// Per-kernel density spread (lognormal-ish σ within a filter row).
    pub spread: f64,
    /// Per-output-channel density spread: Dropback training concentrates
    /// surviving weights in important filters, so whole rows of the
    /// weight tensor end up dense or sparse together. This is the term
    /// that produces the strong working-set imbalance of the paper's
    /// Fig 5 (it does not average out with channel count the way
    /// independent per-kernel noise would).
    pub row_spread: f64,
    /// Input-activation density (ReLU zeros; exploited in weight update).
    pub act_density: f64,
    /// Lower clamp on any layer's keep fraction.
    pub min_keep: f64,
}

impl MaskGenConfig {
    /// The defaults used for the paper-figure reproductions, with the
    /// per-network sparsity factor of Table II.
    ///
    /// # Panics
    ///
    /// Panics unless `sparsity_factor > 1`.
    pub fn paper_default(sparsity_factor: f64) -> Self {
        assert!(sparsity_factor > 1.0, "sparsity factor must exceed 1");
        Self {
            sparsity_factor,
            alpha: 0.35,
            spread: 0.30,
            row_spread: 0.30,
            act_density: 0.45,
            min_keep: 0.04,
        }
    }
}

/// Computes per-layer keep fractions under the learning-pressure rule,
/// normalized so the total kept weights hit the target factor.
///
/// Iterative clamping: keep fractions are proportional to `wᵅ⁻` but
/// clamped to `[min_keep, 1]`; the normalization redistributes the slack.
pub fn layer_keep_fractions(weights: &[usize], cfg: &MaskGenConfig) -> Vec<f64> {
    assert!(!weights.is_empty(), "no layers");
    let total: f64 = weights.iter().map(|&w| w as f64).sum();
    let target = total / cfg.sparsity_factor;
    // Raw preference: keep_l ∝ w_l^(-alpha).
    let pref: Vec<f64> = weights
        .iter()
        .map(|&w| (w as f64).powf(-cfg.alpha))
        .collect();
    // Find the scale s.t. Σ clamp(s·pref_l)·w_l = target by bisection.
    let kept = |scale: f64| -> f64 {
        weights
            .iter()
            .zip(&pref)
            .map(|(&w, &p)| (scale * p).clamp(cfg.min_keep, 1.0) * w as f64)
            .sum()
    };
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    // Grow hi until we overshoot (or everything is kept).
    while kept(hi) < target && hi < 1e12 {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if kept(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let scale = 0.5 * (lo + hi);
    weights
        .iter()
        .zip(&pref)
        .map(|(_, &p)| (scale * p).clamp(cfg.min_keep, 1.0))
        .collect()
}

fn geom_to_task(geom: &LayerGeom, batch: usize) -> LayerTask {
    match geom.kind {
        LayerKind::Conv => LayerTask::conv(
            geom.name.clone(),
            batch,
            geom.c,
            geom.k,
            geom.h,
            geom.w,
            geom.r,
            geom.stride,
            geom.pad,
        ),
        LayerKind::DepthwiseConv => LayerTask::depthwise(
            geom.name.clone(),
            batch,
            geom.c,
            geom.h,
            geom.w,
            geom.r,
            geom.stride,
            geom.pad,
        ),
        LayerKind::Fc => LayerTask::fc(geom.name.clone(), batch, geom.c, geom.k),
    }
}

/// Builds `(task, sparsity)` pairs for every layer of `net` at minibatch
/// `batch`, with synthetic Dropback-like masks.
///
/// Deterministic in `seed`.
pub fn generate(
    net: &NetworkArch,
    cfg: &MaskGenConfig,
    batch: usize,
    seed: u64,
) -> Vec<(LayerTask, SparsityInfo)> {
    let weights: Vec<usize> = net.layers.iter().map(LayerGeom::weights).collect();
    let keeps = layer_keep_fractions(&weights, cfg);
    let mut rng = Xorshift64::new(seed);
    net.layers
        .iter()
        .zip(&keeps)
        .map(|(geom, &keep)| {
            let task = geom_to_task(geom, batch);
            let cap = (task.r * task.s) as u32;
            // Lognormal mean correction keeps E[density] = keep despite
            // the multiplicative spreads (row-level + kernel-level).
            let var = cfg.spread * cfg.spread + cfg.row_spread * cfg.row_spread;
            let correction = (-var / 2.0).exp();
            // One shared draw per output channel (filter row) plus an
            // independent draw per kernel.
            let cols = if task.depthwise { 1 } else { task.c };
            let gaussian = |rng: &mut Xorshift64| {
                f64::from((rng.next_f32() + rng.next_f32() + rng.next_f32() - 1.5) * 2.0)
            };
            let mut row_g = 0.0f64;
            let kernel_nnz = (0..task.kernels())
                .map(|idx| {
                    if idx % cols == 0 {
                        row_g = gaussian(&mut rng);
                    }
                    let g = gaussian(&mut rng);
                    let density =
                        (keep * correction * (cfg.row_spread * row_g + cfg.spread * g).exp())
                            .clamp(0.0, 1.0);
                    stochastic_round(density * f64::from(cap), &mut rng).min(cap)
                })
                .collect();
            let sp = SparsityInfo {
                kernel_nnz,
                act_in_density: cfg.act_density,
                grad_density: 1.0,
                compressed: true,
            };
            (task, sp)
        })
        .collect()
}

/// Rounds `x` up with probability equal to its fractional part, so small
/// per-kernel keep counts do not collapse to zero everywhere.
fn stochastic_round(x: f64, rng: &mut Xorshift64) -> u32 {
    let floor = x.floor();
    let frac = x - floor;
    floor as u32 + u32::from(rng.next_f64() < frac)
}

/// Fully dense `(task, sparsity)` pairs for `net` (the baseline).
pub fn dense(net: &NetworkArch, batch: usize) -> Vec<(LayerTask, SparsityInfo)> {
    net.layers
        .iter()
        .map(|geom| {
            let task = geom_to_task(geom, batch);
            let sp = SparsityInfo::dense(&task);
            (task, sp)
        })
        .collect()
}

/// Extracts *real* masks from a trained model: one `(task, sparsity)` pair
/// per prunable tensor, with kernel nonzero counts taken from the exact
/// zeros of the materialized weights.
///
/// Activation density must be supplied (the model does not retain
/// activations).
pub fn from_model(
    model: &mut Sequential,
    batch: usize,
    act_density: f64,
) -> Vec<(LayerTask, SparsityInfo)> {
    let mut out = Vec::new();
    let mut index = 0usize;
    model.visit_params(&mut |p| {
        if p.kind != ParamKind::Prunable {
            return;
        }
        let s = p.values.shape();
        let (task, kernel_nnz) = match s.rank() {
            4 => {
                let (k, c, r, sdim) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
                // Spatial extents are unknown from weights alone; use the
                // filter-sized minimum so MAC ratios stay meaningful.
                let task = LayerTask::conv(
                    format!("layer{index}"),
                    batch,
                    c,
                    k,
                    r.max(4),
                    sdim.max(4),
                    r,
                    1,
                    r / 2,
                );
                let mut nnz = vec![0u32; k * c];
                for ki in 0..k {
                    for ci in 0..c {
                        let mut count = 0u32;
                        for ri in 0..r {
                            for si in 0..sdim {
                                if p.values.at(&[ki, ci, ri, si]) != 0.0 {
                                    count += 1;
                                }
                            }
                        }
                        nnz[ki * c + ci] = count;
                    }
                }
                (task, nnz)
            }
            2 => {
                let (o, i) = (s.dim(0), s.dim(1));
                let task = LayerTask::fc(format!("layer{index}"), batch, i, o);
                let mut nnz = vec![0u32; o * i];
                for (j, &v) in p.values.data().iter().enumerate() {
                    nnz[j] = u32::from(v != 0.0);
                }
                (task, nnz)
            }
            r => panic!("unexpected prunable tensor rank {r}"),
        };
        out.push((
            task,
            SparsityInfo {
                kernel_nnz,
                act_in_density: act_density,
                grad_density: 1.0,
                compressed: true,
            },
        ));
        index += 1;
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use procrustes_nn::arch;

    #[test]
    fn keep_fractions_hit_the_target() {
        let net = arch::vgg_s();
        let weights: Vec<usize> = net.layers.iter().map(|l| l.weights()).collect();
        let cfg = MaskGenConfig::paper_default(5.2);
        let keeps = layer_keep_fractions(&weights, &cfg);
        let kept: f64 = weights
            .iter()
            .zip(&keeps)
            .map(|(&w, &k)| w as f64 * k)
            .sum();
        let total: f64 = weights.iter().map(|&w| w as f64).sum();
        let achieved = total / kept;
        assert!(
            (achieved - 5.2).abs() < 0.15,
            "achieved factor {achieved:.2}"
        );
        // Learning pressure: the small first layer keeps more than the
        // big middle layers.
        assert!(keeps[0] > keeps[8], "{keeps:?}");
    }

    #[test]
    fn generated_masks_match_factor_and_are_uneven() {
        let net = arch::vgg_s();
        let cfg = MaskGenConfig::paper_default(5.2);
        let workloads = generate(&net, &cfg, 16, 7);
        assert_eq!(workloads.len(), net.layers.len());
        let total_w: u64 = workloads.iter().map(|(t, _)| t.weights() as u64).sum();
        let total_nnz: u64 = workloads.iter().map(|(_, sp)| sp.total_nnz()).sum();
        let factor = total_w as f64 / total_nnz as f64;
        assert!((factor - 5.2).abs() < 0.7, "factor {factor:.2}");
        // Per-kernel nnz must vary (the Fig 5 imbalance source).
        let (_, sp) = &workloads[8];
        let min = sp.kernel_nnz.iter().min().unwrap();
        let max = sp.kernel_nnz.iter().max().unwrap();
        assert!(max > min, "kernel nnz should be uneven");
        for (t, sp) in &workloads {
            sp.validate(t);
        }
    }

    #[test]
    fn mac_reduction_is_smaller_than_weight_reduction() {
        // Table II: VGG-S weights shrink 5.2x but MACs only ~2.4x, because
        // sparsity concentrates in parameter-heavy layers.
        let net = arch::vgg_s();
        let cfg = MaskGenConfig::paper_default(5.2);
        let workloads = generate(&net, &cfg, 1, 3);
        let dense_macs: u64 = workloads
            .iter()
            .map(|(t, _)| t.dense_macs(procrustes_sim::Phase::Forward))
            .sum();
        let sparse_macs: u64 = workloads
            .iter()
            .map(|(t, sp)| sp.total_nnz() * (t.p * t.q) as u64)
            .sum();
        let mac_factor = dense_macs as f64 / sparse_macs as f64;
        assert!(
            mac_factor < 4.5 && mac_factor > 1.5,
            "MAC reduction {mac_factor:.2} should lag the 5.2x weight reduction"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let net = arch::densenet();
        let cfg = MaskGenConfig::paper_default(3.9);
        let a = generate(&net, &cfg, 16, 5);
        let b = generate(&net, &cfg, 16, 5);
        assert_eq!(a.len(), b.len());
        for ((_, sa), (_, sb)) in a.iter().zip(&b) {
            assert_eq!(sa.kernel_nnz, sb.kernel_nnz);
        }
    }

    #[test]
    fn dense_generator_is_fully_dense() {
        let net = arch::densenet();
        for (t, sp) in dense(&net, 8) {
            assert_eq!(sp.weight_density(&t), 1.0);
        }
    }

    #[test]
    fn depthwise_layers_get_per_channel_kernels() {
        let net = arch::mobilenet_v2();
        let workloads = generate(&net, &MaskGenConfig::paper_default(10.0), 16, 1);
        let dw = workloads
            .iter()
            .find(|(t, _)| t.depthwise)
            .expect("mobilenet has depthwise layers");
        assert_eq!(dw.1.kernel_nnz.len(), dw.0.c);
    }

    #[test]
    fn from_model_extracts_exact_zero_masks() {
        use procrustes_nn::{Conv2d, Sequential};
        use procrustes_prng::Xorshift64;
        let mut rng = Xorshift64::new(2);
        let mut model = Sequential::new();
        model.push(Conv2d::new(2, 3, 3, 1, 1, false, &mut rng));
        // Zero out one full kernel.
        model.visit_params(&mut |p| {
            if p.kind == ParamKind::Prunable {
                for r in 0..3 {
                    for s in 0..3 {
                        p.values.set(&[1, 0, r, s], 0.0);
                    }
                }
            }
        });
        let wl = from_model(&mut model, 4, 0.5);
        assert_eq!(wl.len(), 1);
        let (task, sp) = &wl[0];
        assert_eq!(task.kernels(), 6);
        assert_eq!(sp.kernel_nnz[2], 0); // kernel (k=1, c=0)
        assert_eq!(sp.kernel_nnz[0], 9);
    }
}
