//! Functional co-simulation: the Procrustes trainer stepping on real data
//! while the accelerator's bookkeeping units are tracked per iteration.
//!
//! This ties the *algorithm* half of the paper to the *hardware* half: at
//! every training step the trainer's materialized masks are compressed to
//! CSB, the load balancer is exercised on them, and the QE/WR activity is
//! recorded — the data behind the imbalance histograms (Figs 5/13) when
//! they are driven by genuinely-trained masks rather than synthetic ones.

use procrustes_dropback::{ProcrustesConfig, ProcrustesTrainer, Trainer};
use procrustes_nn::{Layer, ParamKind, Sequential};
use procrustes_sparse::CsbTensor;
use procrustes_tensor::Tensor;

use crate::LoadBalancer;

/// Per-step co-simulation record.
#[derive(Debug, Clone, PartialEq)]
pub struct CoSimRecord {
    /// Training step index (1-based after the step executes).
    pub step: u64,
    /// Minibatch loss.
    pub loss: f32,
    /// Materialized weight sparsity (exact zeros).
    pub weight_sparsity: f64,
    /// Admission threshold ϑ.
    pub threshold: f32,
    /// Weights admitted this step (WR-unit invocations for re-seeding).
    pub admitted: usize,
    /// Weights evicted this step.
    pub evicted: usize,
    /// Worst working-set imbalance without balancing, across all conv
    /// layers (Fig 5's tail).
    pub worst_unbalanced: f64,
    /// Worst working-set imbalance after half-tile balancing (Fig 13).
    pub worst_balanced: f64,
}

/// Co-simulates Procrustes training with accelerator bookkeeping.
///
/// # Examples
///
/// ```
/// use procrustes_core::CoSim;
/// use procrustes_dropback::ProcrustesConfig;
/// use procrustes_nn::{arch, data::SyntheticImages};
/// use procrustes_prng::Xorshift64;
///
/// let mut rng = Xorshift64::new(0);
/// let model = arch::tiny_vgg(10, &mut rng);
/// let mut cosim = CoSim::new(model, ProcrustesConfig::default(), 1, 16);
/// let data = SyntheticImages::cifar_like(10, 3);
/// let (x, labels) = data.batch(4, &mut rng);
/// let record = cosim.step(&x, &labels);
/// assert!(record.loss > 0.0);
/// ```
pub struct CoSim {
    trainer: ProcrustesTrainer,
    balancer: LoadBalancer,
}

impl CoSim {
    /// Creates a co-simulation of `model` trained with `config` on a PE
    /// array with `rows` rows.
    pub fn new(model: Sequential, config: ProcrustesConfig, seed: u32, rows: usize) -> Self {
        Self {
            trainer: ProcrustesTrainer::new(model, config, seed),
            balancer: LoadBalancer::new(rows),
        }
    }

    /// The wrapped trainer.
    pub fn trainer(&self) -> &ProcrustesTrainer {
        &self.trainer
    }

    /// Mutable access to the wrapped trainer (e.g. for evaluation).
    pub fn trainer_mut(&mut self) -> &mut ProcrustesTrainer {
        &mut self.trainer
    }

    /// Compresses every conv weight tensor of the current model to CSB.
    pub fn csb_snapshots(&mut self) -> Vec<CsbTensor> {
        let mut out = Vec::new();
        self.trainer.model_mut().visit_params(&mut |p| {
            if p.kind == ParamKind::Prunable && p.values.shape().rank() == 4 {
                out.push(CsbTensor::from_dense_conv(p.values));
            }
        });
        out
    }

    /// Runs one training step and records the accelerator bookkeeping.
    pub fn step(&mut self, x: &Tensor, labels: &[usize]) -> CoSimRecord {
        let stats = self.trainer.train_step(x, labels);
        let mut worst_unbalanced = 0.0f64;
        let mut worst_balanced = 0.0f64;
        for csb in self.csb_snapshots() {
            if csb.nnz() == 0 {
                continue;
            }
            let (unbal, bal) = self.balancer.overhead_comparison(&csb);
            worst_unbalanced = worst_unbalanced.max(unbal);
            worst_balanced = worst_balanced.max(bal);
        }
        CoSimRecord {
            step: self.trainer.steps(),
            loss: stats.loss,
            weight_sparsity: stats.weight_sparsity,
            threshold: stats.threshold,
            admitted: stats.admitted,
            evicted: stats.evicted,
            worst_unbalanced,
            worst_balanced,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use procrustes_nn::data::SyntheticImages;
    use procrustes_nn::{BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, ReLU};
    use procrustes_prng::Xorshift64;

    fn micro_model(seed: u64) -> Sequential {
        let mut rng = Xorshift64::new(seed);
        let mut m = Sequential::new();
        m.push(Conv2d::new(3, 8, 3, 1, 1, false, &mut rng));
        m.push(BatchNorm2d::new(8));
        m.push(ReLU::new());
        m.push(MaxPool2d::new(2, 2));
        m.push(Conv2d::new(8, 16, 3, 1, 1, false, &mut rng));
        m.push(ReLU::new());
        m.push(MaxPool2d::new(2, 2));
        m.push(Flatten::new());
        m.push(Linear::new(16 * 4 * 4, 4, true, &mut rng));
        m
    }

    #[test]
    fn records_are_complete_and_balancing_never_hurts() {
        let data = SyntheticImages::new(4, 16, 16, 0.2, 6);
        let mut rng = Xorshift64::new(1);
        let mut cosim = CoSim::new(micro_model(2), ProcrustesConfig::default(), 3, 4);
        for step in 1..=5u64 {
            let (x, labels) = data.batch(4, &mut rng);
            let r = cosim.step(&x, &labels);
            assert_eq!(r.step, step);
            assert!(r.loss.is_finite());
            assert!(r.worst_balanced <= r.worst_unbalanced + 1e-9);
        }
    }

    #[test]
    fn sparsity_grows_as_decay_progresses() {
        let data = SyntheticImages::new(4, 16, 16, 0.2, 6);
        let mut rng = Xorshift64::new(2);
        // A fast decay (λ = 0.5) reaches the flush-to-zero horizon within
        // ~40 steps, keeping the test quick.
        let config = ProcrustesConfig {
            lambda: 0.5,
            ..ProcrustesConfig::default()
        };
        let mut cosim = CoSim::new(micro_model(3), config, 5, 4);
        let horizon = cosim.trainer().wr().zero_iteration().unwrap();
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..=horizon {
            let (x, labels) = data.batch(2, &mut rng);
            let r = cosim.step(&x, &labels);
            first.get_or_insert(r.weight_sparsity);
            last = r.weight_sparsity;
        }
        assert!(
            last > first.unwrap() && last > 0.8,
            "sparsity should grow to ~90%: {:?} -> {last}",
            first
        );
    }

    #[test]
    fn csb_snapshots_cover_conv_layers() {
        let mut cosim = CoSim::new(micro_model(4), ProcrustesConfig::default(), 7, 4);
        let snaps = cosim.csb_snapshots();
        assert_eq!(snaps.len(), 2); // two conv layers in the micro model
    }
}
