//! Plain-text table and CSV rendering for the experiment harness.

use std::fmt::Write as _;

use crate::engine::{balance_label, EvalResult};

/// A simple column-aligned table with a title, rendered as text or CSV.
///
/// # Examples
///
/// ```
/// use procrustes_core::report::Table;
/// let mut t = Table::new("demo", &["network", "energy (J)"]);
/// t.row(&["VGG-S", "0.42"]);
/// let text = t.render();
/// assert!(text.contains("VGG-S"));
/// assert!(t.to_csv().starts_with("network,energy (J)"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the header.
    pub fn row(&mut self, cells: &[impl AsRef<str>]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, header has {}",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders the table as RFC-4180 CSV (header + rows). Cells
    /// containing a comma, double quote, or line break are quoted, with
    /// embedded quotes doubled, so hostile layer/scenario names (sparsity
    /// labels already contain commas) survive a round trip instead of
    /// silently corrupting the column structure.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", csv_line(&self.headers));
        for row in &self.rows {
            let _ = writeln!(out, "{}", csv_line(row));
        }
        out
    }
}

/// Joins cells into one CSV record with RFC-4180 quoting.
fn csv_line(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| csv_field(c))
        .collect::<Vec<_>>()
        .join(",")
}

/// Quotes a single CSV field when its content requires it.
fn csv_field(cell: &str) -> String {
    if cell.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Formats joules with an engineering prefix (`1.23 mJ`).
pub fn fmt_joules(j: f64) -> String {
    let (val, unit) = if j >= 1.0 {
        (j, "J")
    } else if j >= 1e-3 {
        (j * 1e3, "mJ")
    } else if j >= 1e-6 {
        (j * 1e6, "µJ")
    } else {
        (j * 1e9, "nJ")
    };
    format!("{val:.3} {unit}")
}

/// Formats a cycle count with an engineering suffix (`4.30 Gcyc`).
pub fn fmt_cycles(c: u64) -> String {
    let c = c as f64;
    if c >= 1e9 {
        format!("{:.3} Gcyc", c / 1e9)
    } else if c >= 1e6 {
        format!("{:.3} Mcyc", c / 1e6)
    } else if c >= 1e3 {
        format!("{:.3} kcyc", c / 1e3)
    } else {
        format!("{c:.0} cyc")
    }
}

/// Formats a silicon area given in µm² at chip scale (`84.64 mm²`).
pub fn fmt_area(um2: f64) -> String {
    format!("{:.2} mm²", um2 / 1e6)
}

/// Formats power given in milliwatts (`6.71 W`, `77.17 mW`).
pub fn fmt_power(mw: f64) -> String {
    if mw >= 1e3 {
        format!("{:.2} W", mw / 1e3)
    } else {
        format!("{mw:.2} mW")
    }
}

/// Formats a count in millions (`11.7M`).
pub fn fmt_millions(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}G", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Renders engine results as one table row per scenario: identity
/// columns (network, mapping, batch, sparsity, balance, compute,
/// fidelity) followed by the totals (MACs, cycles, energy) and the
/// silicon budget of the scenario's architecture (area, power — the
/// Table III model via [`procrustes_sim::area::arch_budget`]).
///
/// # Examples
///
/// ```
/// use procrustes_core::report::results_table;
/// use procrustes_core::{Engine, Scenario};
///
/// let r = Engine::serial()
///     .run(&Scenario::builder("VGG-S").batch(2).build().unwrap())
///     .unwrap();
/// let t = results_table("demo", &[r]);
/// assert_eq!(t.len(), 1);
/// assert!(t.to_csv().contains("VGG-S"));
/// ```
pub fn results_table(title: impl Into<String>, results: &[EvalResult]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "network", "mapping", "batch", "sparsity", "balance", "compute", "fidelity", "MACs",
            "cycles", "energy", "area", "power",
        ],
    );
    for r in results {
        let totals = r.totals();
        let budget = procrustes_sim::area::arch_budget(&r.scenario.arch);
        t.row(&[
            r.scenario.network.clone(),
            r.scenario.mapping.label().to_string(),
            r.scenario.batch.to_string(),
            r.scenario.sparsity.label(),
            balance_label(r.scenario.balance).to_string(),
            r.scenario.compute.label(),
            r.scenario.fidelity.label().to_string(),
            fmt_millions(totals.macs),
            fmt_cycles(totals.cycles),
            fmt_joules(totals.energy_j()),
            fmt_area(budget.area_um2),
            fmt_power(budget.power_mw),
        ]);
    }
    t
}

/// CSV emission of [`results_table`] (header plus one row per scenario).
pub fn results_csv(results: &[EvalResult]) -> String {
    results_table("results", results).to_csv()
}

/// Builds a text histogram (Fig 5/13 style): bucketed fractions of
/// working sets by overhead percentage.
pub fn overhead_histogram(overheads: &[f32], buckets: usize, max_pct: f64) -> Table {
    assert!(buckets > 0, "need at least one bucket");
    let mut counts = vec![0usize; buckets + 1]; // +1 overflow bucket
    for &o in overheads {
        let pct = f64::from(o) * 100.0;
        let idx = ((pct / max_pct) * buckets as f64).floor() as usize;
        counts[idx.min(buckets)] += 1;
    }
    let total = overheads.len().max(1);
    let mut t = Table::new(
        "load-imbalance histogram (fraction of working sets)",
        &["overhead", "fraction", "bar"],
    );
    for (i, &c) in counts.iter().enumerate() {
        let lo = i as f64 * max_pct / buckets as f64;
        let label = if i == buckets {
            format!(">{max_pct:.0}%")
        } else {
            format!("{lo:.0}%")
        };
        let frac = c as f64 / total as f64;
        let bar = "#".repeat((frac * 50.0).round() as usize);
        t.row(&[label, format!("{:.1}%", frac * 100.0), bar]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("t", &["a", "bbbb"]);
        t.row(&["1", "2"]);
        t.row(&["333", "4"]);
        let text = t.render();
        assert!(text.contains("== t =="));
        assert!(text.lines().count() >= 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn row_length_checked() {
        Table::new("t", &["a", "b"]).row(&["only one"]);
    }

    #[test]
    fn csv_roundtrip_structure() {
        let mut t = Table::new("t", &["x", "y"]);
        t.row(&["1", "2"]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert_eq!(csv.lines().next().unwrap(), "x,y");
    }

    /// A minimal RFC-4180 reader (quoted fields, doubled quotes,
    /// embedded separators/newlines) used to prove the writer's output
    /// parses back to the original cells.
    fn parse_csv(text: &str) -> Vec<Vec<String>> {
        let mut records = vec![vec![String::new()]];
        let mut quoted = false;
        let mut chars = text.chars().peekable();
        while let Some(c) = chars.next() {
            let row = records.last_mut().unwrap();
            match c {
                '"' if quoted && chars.peek() == Some(&'"') => {
                    chars.next();
                    row.last_mut().unwrap().push('"');
                }
                '"' => quoted = !quoted,
                ',' if !quoted => row.push(String::new()),
                '\n' if !quoted => records.push(vec![String::new()]),
                '\r' if !quoted => {}
                c => row.last_mut().unwrap().push(c),
            }
        }
        records.retain(|r| !(r.len() == 1 && r[0].is_empty()));
        records
    }

    #[test]
    fn csv_quotes_hostile_cells_and_round_trips() {
        let hostile = [
            "plain",
            "comma, separated",
            "quote \"inside\"",
            "both, \"of\" them",
            "line\nbreak",
            "trailing\r",
            "sparse(paper,seed=7)", // a real sparsity label
            "\"leading quote",
        ];
        let mut t = Table::new("hostile", &["name", "value"]);
        for (i, name) in hostile.iter().enumerate() {
            t.row(&[name.to_string(), i.to_string()]);
        }
        let csv = t.to_csv();
        let parsed = parse_csv(&csv);
        assert_eq!(parsed.len(), hostile.len() + 1, "{csv}");
        assert_eq!(parsed[0], vec!["name", "value"]);
        for (i, name) in hostile.iter().enumerate() {
            assert_eq!(parsed[i + 1][0], *name, "row {i} corrupted: {csv}");
            assert_eq!(parsed[i + 1][1], i.to_string());
            assert_eq!(parsed[i + 1].len(), 2, "row {i} split: {csv}");
        }
        // Unquoted simple cells stay bare (no spurious quoting).
        assert!(csv.lines().nth(1).unwrap().starts_with("plain,0"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_joules(1.5), "1.500 J");
        assert_eq!(fmt_joules(0.0015), "1.500 mJ");
        assert_eq!(fmt_cycles(4_300_000_000), "4.300 Gcyc");
        assert_eq!(fmt_cycles(12), "12 cyc");
        assert_eq!(fmt_millions(11_700_000), "11.70M");
        assert_eq!(fmt_area(84_644_069.21), "84.64 mm²");
        assert_eq!(fmt_power(6707.0), "6.71 W");
        assert_eq!(fmt_power(77.17), "77.17 mW");
    }

    #[test]
    fn histogram_buckets_sum_to_one() {
        let overheads = vec![0.0f32, 0.05, 0.31, 0.62, 1.5];
        let t = overhead_histogram(&overheads, 4, 125.0);
        // 4 buckets + overflow
        assert_eq!(t.len(), 5);
        let csv = t.to_csv();
        let total: f64 = csv
            .lines()
            .skip(1)
            .map(|l| {
                l.split(',')
                    .nth(1)
                    .unwrap()
                    .trim_end_matches('%')
                    .parse::<f64>()
                    .unwrap()
            })
            .sum();
        assert!((total - 100.0).abs() < 0.5, "total {total}");
    }
}
