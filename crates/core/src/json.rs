//! A minimal, dependency-free JSON value type with a serializer and a
//! recursive-descent parser.
//!
//! The workspace builds offline with no external crates, so `serde` is
//! not an option; this module provides just enough JSON to round-trip
//! [`crate::Scenario`](crate::engine::Scenario) descriptions and to emit
//! machine-readable evaluation results. Numbers are kept as their literal
//! text so `u64` seeds survive the round trip without `f64` precision
//! loss.
//!
//! # Examples
//!
//! ```
//! use procrustes_core::json::Json;
//!
//! let v = Json::parse(r#"{"name": "VGG-S", "batch": 16, "ok": true}"#).unwrap();
//! assert_eq!(v.get("name").and_then(Json::as_str), Some("VGG-S"));
//! assert_eq!(v.get("batch").and_then(Json::as_u64), Some(16));
//! let text = v.to_string();
//! assert_eq!(Json::parse(&text).unwrap(), v);
//! ```

use std::fmt;

/// A JSON value. Object keys keep insertion order (serialization is
/// deterministic); numbers keep their source text.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its literal text (e.g. `"16"`, `"0.45"`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Wraps a `u64` losslessly.
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// Wraps a `usize` losslessly.
    pub fn usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    /// Wraps an `f64` with a round-trippable shortest representation.
    ///
    /// JSON cannot express NaN or infinities; non-finite values
    /// serialize as the documented sentinel [`Json::Null`] (the same
    /// convention as JavaScript's `JSON.stringify`), so a NaN leaking
    /// out of a cost model degrades a single field instead of panicking
    /// deep inside report serialization. Loaders see the missing number
    /// as an ordinary parse error (`as_f64` on `null` is `None`). Use
    /// [`Json::try_f64`] to reject non-finite values eagerly instead.
    pub fn f64(v: f64) -> Json {
        Json::try_f64(v).unwrap_or(Json::Null)
    }

    /// Wraps a finite `f64`, or reports why it cannot be represented.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending value when `v` is NaN or
    /// infinite.
    pub fn try_f64(v: f64) -> Result<Json, String> {
        if !v.is_finite() {
            return Err(format!("JSON cannot express {v}"));
        }
        // `{:?}` prints the shortest string that parses back to the same
        // f64 (and always includes a decimal point or exponent).
        Ok(Json::Num(format!("{v:?}")))
    }

    /// Wraps a string.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses the number as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Parses the number as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Parses the number as `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Parses the number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Deepest container nesting [`Json::parse`] accepts. The parser is
    /// recursive-descent, so untrusted input must be depth-bounded or a
    /// line of repeated `[` overflows the thread stack and aborts the
    /// whole process (legitimate scenario/sweep documents nest < 10
    /// levels; 128 leaves an order-of-magnitude margin).
    pub const MAX_PARSE_DEPTH: usize = 128;

    /// Parses a JSON document.
    ///
    /// Supports the standard grammar (objects, arrays, strings with
    /// escapes, numbers, booleans, null); rejects trailing garbage.
    /// Safe on untrusted input: every failure — including container
    /// nesting beyond [`Json::MAX_PARSE_DEPTH`], which would otherwise
    /// overflow the stack — is an `Err`, never a panic or abort.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(s) => f.write_str(s),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    /// Runs a container parse one nesting level down, erroring out (not
    /// recursing toward a stack overflow) past [`Json::MAX_PARSE_DEPTH`].
    fn nested(&mut self, container: fn(&mut Self) -> Result<Json, String>) -> Result<Json, String> {
        if self.depth >= Json::MAX_PARSE_DEPTH {
            return Err(format!(
                "nesting deeper than {} levels at byte {}",
                Json::MAX_PARSE_DEPTH,
                self.pos
            ));
        }
        self.depth += 1;
        let v = container(self);
        self.depth -= 1;
        v
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let mut code = self.hex4()?;
                            // RFC 8259: non-BMP characters arrive as a
                            // UTF-16 surrogate pair of \u escapes.
                            if (0xD800..=0xDBFF).contains(&code) {
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err("unpaired high surrogate".into());
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err("invalid low surrogate".into());
                                }
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            }
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8")?,
                    );
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape (cursor on the `u`),
    /// leaving the cursor on the last digit.
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or("truncated \\u escape")?;
        let code = u32::from_str_radix(std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?, 16)
            .map_err(|_| "bad \\u escape")?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // Validate by parsing; keep the literal text.
        text.parse::<f64>()
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))?;
        Ok(Json::Num(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let src = r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":[true,false]},"e":"x\"y\n"}"#;
        let v = Json::parse(src).unwrap();
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn u64_seeds_survive() {
        let seed = u64::MAX - 7;
        let v = Json::u64(seed);
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_u64(), Some(seed));
    }

    #[test]
    fn f64_shortest_roundtrip() {
        for x in [0.1f64, 5.2, 1.0 / 3.0, 1e-12, 123456.789] {
            let v = Json::f64(x);
            assert_eq!(Json::parse(&v.to_string()).unwrap().as_f64(), Some(x));
            assert_eq!(Json::try_f64(x).unwrap(), v);
        }
    }

    #[test]
    fn non_finite_floats_serialize_as_null_not_panic() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Json::f64(bad), Json::Null);
            assert!(Json::try_f64(bad).is_err(), "{bad}");
        }
        // A document holding the sentinel still parses; the number is
        // simply absent, which loaders surface as an ordinary error.
        let doc = Json::Obj(vec![("energy_j".into(), Json::f64(f64::NAN))]);
        let back = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(back.get("energy_j"), Some(&Json::Null));
        assert_eq!(back.get("energy_j").and_then(Json::as_f64), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn hostile_nesting_errors_instead_of_overflowing_the_stack() {
        // A line of repeated '[' must be a parse error, not a recursion
        // until the thread stack overflows and the process aborts.
        let bomb = "[".repeat(200_000);
        let err = Json::parse(&bomb).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        let objects = "{\"k\":".repeat(200_000);
        assert!(Json::parse(&objects).is_err());
        // Depth at the limit still parses; one past it does not.
        let deep = |n: usize| format!("{}0{}", "[".repeat(n), "]".repeat(n));
        assert!(Json::parse(&deep(Json::MAX_PARSE_DEPTH)).is_ok());
        assert!(Json::parse(&deep(Json::MAX_PARSE_DEPTH + 1)).is_err());
    }

    #[test]
    fn object_lookup_and_order() {
        let v = Json::Obj(vec![("z".into(), Json::u64(1)), ("a".into(), Json::u64(2))]);
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse(r#""µJ — ok""#).unwrap();
        assert_eq!(v.as_str(), Some("µJ — ok"));
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn surrogate_pair_escapes() {
        // RFC 8259 non-BMP escape (what e.g. Python's ensure_ascii emits).
        let v = Json::parse(r#""\ud83d\ude00 ok""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600} ok"));
        // Lone BMP escapes still work.
        assert_eq!(Json::parse(r#""\u00b5J""#).unwrap().as_str(), Some("µJ"));
        assert!(Json::parse(r#""\ud83d""#).is_err()); // unpaired high
        assert!(Json::parse(r#""\ud83dA""#).is_err()); // bad low
        assert!(Json::parse(r#""\ude00""#).is_err()); // lone low
    }
}
