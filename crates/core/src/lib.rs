//! The Procrustes system: the paper's contribution assembled over the
//! workspace substrates.
//!
//! This crate glues together the training algorithm
//! (`procrustes-dropback`), the CSB weight format (`procrustes-sparse`),
//! and the analytical accelerator model (`procrustes-sim`) into the
//! artifacts the paper evaluates:
//!
//! * [`LoadBalancer`] — the half-tile balancing of §IV-C, operating on CSB
//!   tensors through the pointer-difference density queries the format
//!   was designed for;
//! * [`MaskGenConfig`] / [`masks`] — synthetic Dropback-like sparsity
//!   masks for the paper's five full-size networks (see docs/PAPER_MAP.md "Substitutions" for
//!   the substitution rationale), plus extraction of *real* masks from
//!   trained `procrustes-nn` models;
//! * [`engine`] — the unified evaluation API: declarative [`Scenario`]s,
//!   cartesian [`Sweep`]s, and the parallel, memoizing [`Engine`] behind
//!   Figs 1 and 17–20;
//! * [`NetworkEval`] — the original per-network evaluator, kept as a thin
//!   compatibility shim over [`Engine`];
//! * [`CoSim`] — functional co-simulation of the Procrustes trainer with
//!   the accelerator's bookkeeping units (QE admissions, imbalance before
//!   and after balancing) over real training steps;
//! * [`report`] — the text-table/CSV emitters shared by the experiment
//!   harness.
//!
//! # Examples
//!
//! ```
//! use procrustes_core::{Engine, Scenario, SparsityGen};
//!
//! let engine = Engine::default();
//! let dense = engine.run(&Scenario::builder("VGG-S").build().unwrap()).unwrap();
//! let sparse = engine
//!     .run(
//!         &Scenario::builder("VGG-S")
//!             .sparsity(SparsityGen::PaperSynthetic { seed: 42 })
//!             .build()
//!             .unwrap(),
//!     )
//!     .unwrap();
//! let saving = sparse.energy_saving_over(&dense);
//! assert!(saving > 1.5, "sparse training must save energy ({saving:.2}x)");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod balancer;
mod cosim;
pub mod engine;
mod eval;
pub mod json;
pub mod masks;
pub mod report;

pub use balancer::{BalancedTile, LoadBalancer, Schedule};
pub use cosim::{CoSim, CoSimRecord};
pub use engine::{
    paper_sparsity_factor, resolve_network, Engine, EngineOpts, EvalResult, Scenario,
    ScenarioBuilder, ScenarioError, SparsityGen, Sweep, SweepAxes, PAPER_NETWORKS,
};
pub use eval::{NetworkCost, NetworkEval};
pub use masks::MaskGenConfig;
// The execution-backend axis of `Scenario`/`Sweep`; defined next to the
// layers that dispatch on it, re-exported here for scenario authors.
pub use procrustes_nn::ComputeBackend;
// The latency-fidelity axis; defined next to the simulator that
// implements both models, re-exported here for scenario authors.
pub use procrustes_sim::Fidelity;
