//! The Procrustes system: the paper's contribution assembled over the
//! workspace substrates.
//!
//! This crate glues together the training algorithm
//! (`procrustes-dropback`), the CSB weight format (`procrustes-sparse`),
//! and the analytical accelerator model (`procrustes-sim`) into the
//! artifacts the paper evaluates:
//!
//! * [`LoadBalancer`] — the half-tile balancing of §IV-C, operating on CSB
//!   tensors through the pointer-difference density queries the format
//!   was designed for;
//! * [`MaskGenConfig`] / [`masks`] — synthetic Dropback-like sparsity
//!   masks for the paper's five full-size networks (see DESIGN.md §1 for
//!   the substitution rationale), plus extraction of *real* masks from
//!   trained `procrustes-nn` models;
//! * [`NetworkEval`] — evaluates a whole network (every layer × all three
//!   training phases) on an accelerator configuration, dense or sparse,
//!   under any of the four mappings: the engine behind Figs 1, 17–20;
//! * [`CoSim`] — functional co-simulation of the Procrustes trainer with
//!   the accelerator's bookkeeping units (QE admissions, imbalance before
//!   and after balancing) over real training steps;
//! * [`report`] — the text-table/CSV emitters shared by the experiment
//!   harness.
//!
//! # Examples
//!
//! ```
//! use procrustes_core::{MaskGenConfig, NetworkEval};
//! use procrustes_nn::arch;
//! use procrustes_sim::{ArchConfig, Mapping};
//!
//! let net = arch::vgg_s();
//! let hw = ArchConfig::procrustes_16x16();
//! let eval = NetworkEval::new(&net, &hw);
//! let dense = eval.run_dense(Mapping::KN);
//! let sparse = eval.run_sparse(Mapping::KN, &MaskGenConfig::paper_default(5.2), 42);
//! let saving = dense.totals().energy_j() / sparse.totals().energy_j();
//! assert!(saving > 1.5, "sparse training must save energy ({saving:.2}x)");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balancer;
mod cosim;
mod eval;
pub mod masks;
pub mod report;

pub use balancer::{BalancedTile, LoadBalancer, Schedule};
pub use cosim::{CoSim, CoSimRecord};
pub use eval::{NetworkCost, NetworkEval};
pub use masks::MaskGenConfig;
