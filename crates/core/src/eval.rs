//! Whole-network evaluation on the accelerator model.
//!
//! [`NetworkEval`] is the original entry point, retained as a thin
//! compatibility shim: all evaluation now flows through
//! [`Engine`](crate::Engine) (see [`crate::engine`]), which adds
//! declarative [`Scenario`](crate::Scenario)s, parallel sweeps, and
//! cross-scenario memoization. Prefer the engine API in new code.

use procrustes_nn::arch::NetworkArch;
use procrustes_sim::{
    ArchConfig, BalanceMode, CostSummary, Fidelity, LayerCost, LayerTask, Mapping, Phase,
    SparsityInfo,
};

use crate::engine::Engine;
use crate::masks::{self, MaskGenConfig};

/// The cost of one full training iteration of a network (all layers ×
/// all three phases) under one mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkCost {
    /// Network name.
    pub network: String,
    /// Mapping evaluated.
    pub mapping: Mapping,
    /// Per-phase summaries (`fw`, `bw`, `wu`).
    pub phases: [CostSummary; 3],
    /// Every layer × phase cost, in execution order.
    pub layers: Vec<LayerCost>,
}

impl NetworkCost {
    /// The summary of one phase.
    pub fn phase(&self, phase: Phase) -> &CostSummary {
        match phase {
            Phase::Forward => &self.phases[0],
            Phase::Backward => &self.phases[1],
            Phase::WeightUpdate => &self.phases[2],
        }
    }

    /// Totals across all three phases.
    pub fn totals(&self) -> CostSummary {
        let mut t = CostSummary::new();
        for c in &self.layers {
            t.accumulate(c);
        }
        t
    }
}

/// Evaluates a network geometry on an accelerator configuration.
///
/// # Examples
///
/// ```
/// use procrustes_core::NetworkEval;
/// use procrustes_nn::arch;
/// use procrustes_sim::{ArchConfig, Mapping, Phase};
///
/// let net = arch::densenet();
/// let hw = ArchConfig::procrustes_16x16();
/// let cost = NetworkEval::new(&net, &hw).run_dense(Mapping::KN);
/// assert_eq!(cost.layers.len(), net.layers.len() * 3);
/// assert!(cost.phase(Phase::Forward).cycles > 0);
/// ```
pub struct NetworkEval<'a> {
    net: &'a NetworkArch,
    hw: &'a ArchConfig,
    batch: usize,
}

impl<'a> NetworkEval<'a> {
    /// The paper's evaluation minibatch (§III-B sizes its QE example at
    /// batch 16).
    pub const DEFAULT_BATCH: usize = 16;

    /// Creates an evaluator with the default minibatch.
    pub fn new(net: &'a NetworkArch, hw: &'a ArchConfig) -> Self {
        Self {
            net,
            hw,
            batch: Self::DEFAULT_BATCH,
        }
    }

    /// Overrides the minibatch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        self.batch = batch;
        self
    }

    /// Evaluates the dense (unpruned) baseline under `mapping`.
    pub fn run_dense(&self, mapping: Mapping) -> NetworkCost {
        let workloads = masks::dense(self.net, self.batch);
        self.run(mapping, &workloads, BalanceMode::None)
    }

    /// Evaluates sparse training with synthetic masks from `cfg`.
    ///
    /// Load balancing is enabled where the mapping supports it
    /// (half-tile for `K,N`/`C,N`/`C,K`; `P,Q` needs none).
    pub fn run_sparse(&self, mapping: Mapping, cfg: &MaskGenConfig, seed: u64) -> NetworkCost {
        let workloads = masks::generate(self.net, cfg, self.batch, seed);
        self.run(mapping, &workloads, BalanceMode::HalfTile)
    }

    /// Evaluates explicit `(task, sparsity)` pairs (e.g. masks extracted
    /// from a trained model) under `mapping` with the given balancing.
    ///
    /// # Contract
    ///
    /// The tasks carry their own minibatch dimension: this method
    /// evaluates the workloads exactly as given and the evaluator's own
    /// batch (set via [`NetworkEval::with_batch`]) is **not** applied to
    /// them. Callers must build the workloads at the batch they intend to
    /// evaluate; debug builds assert that every task's batch matches the
    /// evaluator's to catch accidental mismatches.
    pub fn run_with_workloads(
        &self,
        mapping: Mapping,
        workloads: &[(LayerTask, SparsityInfo)],
        balance: BalanceMode,
    ) -> NetworkCost {
        debug_assert!(
            workloads.iter().all(|(t, _)| t.batch == self.batch),
            "workload batch differs from NetworkEval batch {}: [{}]",
            self.batch,
            workloads
                .iter()
                .filter(|(t, _)| t.batch != self.batch)
                .map(|(t, _)| format!("{}={}", t.name, t.batch))
                .collect::<Vec<_>>()
                .join(", ")
        );
        self.run(mapping, workloads, balance)
    }

    fn run(
        &self,
        mapping: Mapping,
        workloads: &[(LayerTask, SparsityInfo)],
        balance: BalanceMode,
    ) -> NetworkCost {
        // Delegate to the engine's per-layer loop (serial, fresh cache)
        // so the shim and the Scenario path share one implementation. The
        // shim predates the fidelity axis and always evaluates the
        // analytic model; use `Scenario::fidelity` for tile-timed runs.
        Engine::serial().run_workloads(
            self.net.name,
            self.hw,
            mapping,
            workloads,
            balance,
            Fidelity::Analytic,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use procrustes_nn::arch;

    #[test]
    fn sparse_beats_dense_on_energy_and_cycles() {
        let net = arch::vgg_s();
        let hw = ArchConfig::procrustes_16x16();
        let eval = NetworkEval::new(&net, &hw);
        let dense = eval.run_dense(Mapping::KN);
        let sparse = eval.run_sparse(Mapping::KN, &MaskGenConfig::paper_default(5.2), 1);
        let e_saving = dense.totals().energy_j() / sparse.totals().energy_j();
        let speedup = dense.totals().cycles as f64 / sparse.totals().cycles as f64;
        assert!(e_saving > 1.3, "energy saving {e_saving:.2}");
        assert!(speedup > 1.3, "speedup {speedup:.2}");
    }

    #[test]
    fn all_layers_and_phases_present() {
        let net = arch::densenet();
        let hw = ArchConfig::procrustes_16x16();
        let cost = NetworkEval::new(&net, &hw).run_dense(Mapping::KN);
        assert_eq!(cost.layers.len(), net.layers.len() * 3);
        for phase in Phase::ALL {
            assert!(cost.phase(phase).macs > 0);
        }
        // Total = sum of phases.
        let total = cost.totals();
        let by_phase: u64 = Phase::ALL.iter().map(|&p| cost.phase(p).cycles).sum();
        assert_eq!(total.cycles, by_phase);
    }

    #[test]
    fn kn_is_fastest_mapping_for_vgg() {
        // §VI-D: "Procrustes uses the overall fastest K,N scheme".
        let net = arch::vgg_s();
        let hw = ArchConfig::procrustes_16x16();
        let eval = NetworkEval::new(&net, &hw);
        let cfg = MaskGenConfig::paper_default(5.2);
        let cycles: Vec<(Mapping, u64)> = Mapping::ALL
            .iter()
            .map(|&m| (m, eval.run_sparse(m, &cfg, 2).totals().cycles))
            .collect();
        let kn = cycles.iter().find(|(m, _)| *m == Mapping::KN).unwrap().1;
        for &(m, c) in &cycles {
            assert!(kn <= c, "KN ({kn}) should beat {m:?} ({c})");
        }
    }

    #[test]
    fn batch_scaling_scales_work() {
        let net = arch::densenet();
        let hw = ArchConfig::procrustes_16x16();
        let b16 = NetworkEval::new(&net, &hw).run_dense(Mapping::KN);
        let b32 = NetworkEval::new(&net, &hw)
            .with_batch(32)
            .run_dense(Mapping::KN);
        assert_eq!(b32.totals().macs, 2 * b16.totals().macs);
    }
}
