//! The Procrustes load balancer (§IV-C) over CSB tensors.
//!
//! The balancer works on *work tiles*: one tile per row-unit of the sparse
//! spatial dimension (e.g. one output channel `k` in the `K,N` dataflow).
//! Each tile is cut in half along the contraction dimension, tile halves
//! are ranked by density — obtained in O(1) from CSB pointer subtraction —
//! and halves are re-paired sparsest-with-densest within each full-array
//! working set (Figs 9 and 12).

use procrustes_sim::{balanced_assignment, imbalance_overhead};
use procrustes_sparse::CsbTensor;

/// One rebuilt tile: two half-tiles merged for a single PE row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalancedTile {
    /// `(row unit, half index)` of the first half.
    pub first: (usize, u8),
    /// `(row unit, half index)` of the second half.
    pub second: (usize, u8),
    /// Combined nonzero count (the tile's MAC weight per position).
    pub work: u64,
}

/// A balanced schedule: one entry per full-PE-array working set.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Rebuilt tiles per working set (each inner vec has `rows` tiles,
    /// except possibly the last).
    pub waves: Vec<Vec<BalancedTile>>,
}

impl Schedule {
    /// Total nonzeros scheduled (must equal the tensor's nnz).
    pub fn total_work(&self) -> u64 {
        self.waves
            .iter()
            .flat_map(|w| w.iter().map(|t| t.work))
            .sum()
    }

    /// Worst per-working-set imbalance overhead after balancing.
    pub fn worst_overhead(&self) -> f64 {
        self.waves
            .iter()
            .map(|w| {
                let works: Vec<u64> = w.iter().map(|t| t.work).collect();
                imbalance_overhead(&works)
            })
            .fold(0.0, f64::max)
    }
}

/// The half-tile load balancer for a PE array with `rows` rows.
///
/// # Examples
///
/// ```
/// use procrustes_core::LoadBalancer;
/// use procrustes_sparse::CsbTensor;
/// use procrustes_tensor::Tensor;
/// use procrustes_prng::{UniformRng, Xorshift64};
///
/// // A sparse 8-filter weight tensor.
/// let mut rng = Xorshift64::new(1);
/// let w = Tensor::from_fn(&[8, 4, 3, 3], |_| {
///     if rng.next_f64() < 0.2 { 1.0 } else { 0.0 }
/// });
/// let csb = CsbTensor::from_dense_conv(&w);
/// let balancer = LoadBalancer::new(4);
/// let schedule = balancer.balance(&csb);
/// // Work is conserved exactly.
/// assert_eq!(schedule.total_work(), csb.nnz() as u64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadBalancer {
    rows: usize,
}

impl LoadBalancer {
    /// Creates a balancer for a PE array with `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`.
    pub fn new(rows: usize) -> Self {
        assert!(rows > 0, "LoadBalancer: need at least one row");
        Self { rows }
    }

    /// Half-tile work values of each row unit (grid row) of `csb`,
    /// computed by pointer subtraction over the block ranges.
    pub fn half_works(&self, csb: &CsbTensor) -> Vec<(u64, u64)> {
        let (gr, gc) = csb.layout().grid();
        (0..gr)
            .map(|gi| {
                let begin = gi * gc;
                let mid = begin + gc / 2;
                let end = begin + gc;
                let first = csb.range_nnz(begin, mid) as u64;
                let second = csb.range_nnz(mid, end) as u64;
                (first, second)
            })
            .collect()
    }

    /// Builds the balanced schedule for the row units of `csb`.
    pub fn balance(&self, csb: &CsbTensor) -> Schedule {
        let halves = self.half_works(csb);
        let mut waves = Vec::new();
        for (wave_idx, chunk) in halves.chunks(self.rows).enumerate() {
            let base = wave_idx * self.rows;
            // Flatten this working set's halves with provenance.
            let mut flat: Vec<((usize, u8), u64)> = Vec::with_capacity(chunk.len() * 2);
            for (i, &(a, b)) in chunk.iter().enumerate() {
                flat.push(((base + i, 0), a));
                flat.push(((base + i, 1), b));
            }
            flat.sort_by_key(|&(_, w)| w);
            let n = flat.len();
            let tiles = (0..n / 2)
                .map(|i| BalancedTile {
                    first: flat[i].0,
                    second: flat[n - 1 - i].0,
                    work: flat[i].1 + flat[n - 1 - i].1,
                })
                .collect();
            waves.push(tiles);
        }
        Schedule { waves }
    }

    /// `(unbalanced, balanced)` worst-case working-set overheads for
    /// `csb` — the headline numbers behind Figs 5 and 13.
    pub fn overhead_comparison(&self, csb: &CsbTensor) -> (f64, f64) {
        let halves = self.half_works(csb);
        let mut worst_unbalanced = 0.0f64;
        let mut worst_balanced = 0.0f64;
        for chunk in halves.chunks(self.rows) {
            let full: Vec<u64> = chunk.iter().map(|&(a, b)| a + b).collect();
            worst_unbalanced = worst_unbalanced.max(imbalance_overhead(&full));
            let (max, mean) = balanced_assignment(chunk);
            if mean > 0.0 {
                worst_balanced = worst_balanced.max(max as f64 / mean - 1.0);
            }
        }
        (worst_unbalanced, worst_balanced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use procrustes_prng::{UniformRng, Xorshift64};
    use procrustes_tensor::Tensor;

    fn skewed_csb(k: usize, c: usize, seed: u64) -> CsbTensor {
        // Mixed-density filters: some rows dense, some nearly empty.
        let mut rng = Xorshift64::new(seed);
        let w = Tensor::from_fn(&[k, c, 3, 3], |idx| {
            let row_keep = if idx[0] % 4 == 0 { 0.9 } else { 0.1 };
            if rng.next_f64() < row_keep {
                1.0
            } else {
                0.0
            }
        });
        CsbTensor::from_dense_conv(&w)
    }

    #[test]
    fn schedule_conserves_work() {
        let csb = skewed_csb(16, 8, 1);
        let balancer = LoadBalancer::new(16);
        let schedule = balancer.balance(&csb);
        assert_eq!(schedule.total_work(), csb.nnz() as u64);
    }

    #[test]
    fn every_half_is_scheduled_exactly_once() {
        let csb = skewed_csb(32, 8, 2);
        let balancer = LoadBalancer::new(16);
        let schedule = balancer.balance(&csb);
        let mut seen = std::collections::HashSet::new();
        for wave in &schedule.waves {
            for t in wave {
                assert!(seen.insert(t.first), "half {:?} scheduled twice", t.first);
                assert!(seen.insert(t.second), "half {:?} scheduled twice", t.second);
            }
        }
        assert_eq!(seen.len(), 2 * 32);
    }

    #[test]
    fn balancing_reduces_worst_overhead() {
        let csb = skewed_csb(64, 16, 3);
        let balancer = LoadBalancer::new(16);
        let (unbal, bal) = balancer.overhead_comparison(&csb);
        assert!(unbal > 0.5, "skewed workload should be imbalanced: {unbal}");
        assert!(bal < unbal / 2.0, "balanced {bal} vs unbalanced {unbal}");
    }

    #[test]
    fn half_works_match_pointer_queries() {
        let csb = skewed_csb(8, 6, 4);
        let balancer = LoadBalancer::new(4);
        let halves = balancer.half_works(&csb);
        for (k, &(a, b)) in halves.iter().enumerate() {
            let mut first = 0u64;
            let mut second = 0u64;
            for c in 0..6 {
                let nnz = csb.block_nnz(k, c) as u64;
                if c < 3 {
                    first += nnz;
                } else {
                    second += nnz;
                }
            }
            assert_eq!((a, b), (first, second), "row {k}");
        }
    }

    #[test]
    fn pairs_stay_within_their_working_set() {
        let csb = skewed_csb(32, 8, 5);
        let balancer = LoadBalancer::new(16);
        let schedule = balancer.balance(&csb);
        for (wi, wave) in schedule.waves.iter().enumerate() {
            for t in wave {
                assert!(
                    t.first.0 / 16 == wi && t.second.0 / 16 == wi,
                    "pair {:?}/{:?} escaped working set {wi}",
                    t.first,
                    t.second
                );
            }
        }
    }

    #[test]
    fn uniform_density_needs_no_balancing() {
        let w = Tensor::ones(&[16, 4, 3, 3]);
        let csb = CsbTensor::from_dense_conv(&w);
        let (unbal, bal) = LoadBalancer::new(16).overhead_comparison(&csb);
        assert_eq!(unbal, 0.0);
        assert_eq!(bal, 0.0);
    }
}
