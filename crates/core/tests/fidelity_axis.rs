//! The latency-fidelity axis end to end: sweeping `Fidelity` produces
//! both models in results and reports, legacy JSON documents default to
//! the analytic model reproducing the seed numbers bit-for-bit, and the
//! tile-timed replay agrees with the analytic bound exactly on dense
//! uniform workloads while strictly exceeding it on a Fig-5-style
//! skewed-sparsity working set.

use procrustes_core::json::Json;
use procrustes_core::report::{results_csv, results_table};
use procrustes_core::{Engine, Fidelity, Scenario, SparsityGen, Sweep, PAPER_NETWORKS};
use procrustes_sim::{BalanceMode, LayerTask, Mapping, SparsityInfo};

#[test]
fn sweep_enumerates_fidelity_as_an_axis() {
    let sweep = Sweep::new()
        .networks(["VGG-S"])
        .sparsities([SparsityGen::PaperSynthetic { seed: 7 }])
        .fidelities(Fidelity::ALL);
    assert_eq!(sweep.cardinality(), 2);
    let scenarios = sweep.build().unwrap();
    assert_eq!(scenarios[0].fidelity, Fidelity::Analytic);
    assert_eq!(scenarios[1].fidelity, Fidelity::TileTimed);

    let results = Engine::serial().run_all(&scenarios).unwrap();

    // Both fidelities appear in the emitted JSON…
    let labels: Vec<String> = results
        .iter()
        .map(|r| {
            Json::parse(&r.to_json())
                .unwrap()
                .get("scenario")
                .and_then(|s| s.get("fidelity"))
                .and_then(Json::as_str)
                .expect("fidelity serialized")
                .to_string()
        })
        .collect();
    assert_eq!(labels, ["analytic", "tile_timed"]);

    // …and in the CSV report.
    let csv = results_csv(&results);
    let header = csv.lines().next().unwrap();
    assert!(header.contains("fidelity"), "{header}");
    assert!(csv.lines().nth(1).unwrap().contains(",analytic,"));
    assert!(csv.lines().nth(2).unwrap().contains(",tile_timed,"));
    assert_eq!(results_table("t", &results).len(), 2);
}

#[test]
fn legacy_documents_default_to_analytic_bit_for_bit() {
    // A document written before the fidelity axis existed: strip the
    // field from a current serialization.
    let s = Scenario::builder("DenseNet")
        .sparsity(SparsityGen::PaperSynthetic { seed: 2 })
        .build()
        .unwrap();
    let Json::Obj(fields) = Json::parse(&s.to_json()).unwrap() else {
        panic!("scenario serializes to an object");
    };
    let legacy = Json::Obj(
        fields
            .into_iter()
            .filter(|(k, _)| k != "fidelity")
            .collect(),
    )
    .to_string();
    let parsed = Scenario::from_json(&legacy).unwrap();
    assert_eq!(parsed.fidelity, Fidelity::Analytic);

    // Evaluating the legacy document reproduces the current default
    // evaluation exactly — every layer cost, cycle, and energy value.
    let engine = Engine::serial();
    let from_legacy = engine.run(&parsed).unwrap();
    let from_default = engine.run(&s).unwrap();
    assert_eq!(from_legacy.cost, from_default.cost);
}

/// The Fig-5-style skewed working set shared with the sim test suite:
/// a handful of dense filter rows among many decayed ones, so heavy
/// waves alternate with starved ones.
fn fig5_workload() -> (LayerTask, SparsityInfo) {
    procrustes_sim::timing::fig5_skewed_workload()
}

#[test]
fn tile_timed_agrees_on_dense_and_diverges_on_skew() {
    let engine = Engine::serial();

    // Dense uniform workload: identical cycles under both fidelities.
    let dense = |fidelity| {
        engine
            .run(
                &Scenario::builder("VGG-S")
                    .fidelity(fidelity)
                    .build()
                    .unwrap(),
            )
            .unwrap()
    };
    let a = dense(Fidelity::Analytic);
    let t = dense(Fidelity::TileTimed);
    assert_eq!(
        a.totals().cycles,
        t.totals().cycles,
        "dense uniform workloads must agree"
    );
    assert_eq!(a.totals().macs, t.totals().macs);

    // Fig-5-style skewed working set: the replay must see pipeline
    // bubbles the closed form hides — strictly more cycles.
    let (task, sp) = fig5_workload();
    let skewed = |fidelity| {
        engine
            .run(
                &Scenario::builder("VGG-S")
                    .batch(16)
                    .sparsity(SparsityGen::Extracted(vec![(task.clone(), sp.clone())]))
                    .balance(BalanceMode::None)
                    .mapping(Mapping::KN)
                    .fidelity(fidelity)
                    .build()
                    .unwrap(),
            )
            .unwrap()
    };
    let sa = skewed(Fidelity::Analytic);
    let st = skewed(Fidelity::TileTimed);
    assert!(
        st.totals().cycles > sa.totals().cycles,
        "tile-timed {} must exceed analytic {} on the skewed set",
        st.totals().cycles,
        sa.totals().cycles
    );
    // Energy and MACs are latency-fidelity independent.
    assert_eq!(sa.totals().macs, st.totals().macs);
    assert!((sa.totals().energy_j() - st.totals().energy_j()).abs() < 1e-15);
}

#[test]
fn fidelity_gap_is_one_sided_across_the_paper_sweep() {
    // Across a Fig 17–20-class sweep the tile-timed model never reports
    // fewer cycles than the analytic bound it refines.
    let scenarios = Sweep::new()
        .networks(PAPER_NETWORKS)
        .mappings([Mapping::KN, Mapping::CK])
        .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 1 }])
        .fidelities(Fidelity::ALL)
        .build()
        .unwrap();
    assert_eq!(scenarios.len(), 5 * 2 * 2 * 2);
    let results = Engine::default().run_all(&scenarios).unwrap();
    for pair in results.chunks(4) {
        // Expansion order: fidelity above mapping, so chunks of
        // (analytic KN, analytic CK, timed KN, timed CK).
        for (a, t) in pair[..2].iter().zip(&pair[2..]) {
            assert_eq!(a.scenario.fidelity, Fidelity::Analytic);
            assert_eq!(t.scenario.fidelity, Fidelity::TileTimed);
            assert_eq!(a.scenario.mapping, t.scenario.mapping);
            assert!(
                t.totals().cycles >= a.totals().cycles,
                "{} {:?}",
                a.scenario.network,
                a.scenario.mapping
            );
            assert_eq!(t.totals().macs, a.totals().macs);
        }
    }
}
