//! The execution-backend axis end to end: sweeping `ComputeBackend`
//! produces both backends in results and reports, the engine's costs
//! respond to the axis, and serialized scenarios stay backward
//! compatible.

use procrustes_core::json::Json;
use procrustes_core::report::{results_csv, results_table};
use procrustes_core::{ComputeBackend, Engine, Scenario, SparsityGen, Sweep};

#[test]
fn sweep_enumerates_compute_as_an_axis() {
    let sweep = Sweep::new()
        .networks(["VGG-S"])
        .sparsities([SparsityGen::PaperSynthetic { seed: 7 }])
        .computes([ComputeBackend::Dense, ComputeBackend::Csb]);
    assert_eq!(sweep.cardinality(), 2);
    let scenarios = sweep.build().unwrap();
    assert_eq!(scenarios[0].compute, ComputeBackend::Dense);
    assert_eq!(scenarios[1].compute, ComputeBackend::Csb);

    let results = Engine::serial().run_all(&scenarios).unwrap();

    // Both backends appear in the emitted JSON…
    let kinds: Vec<String> = results
        .iter()
        .map(|r| {
            Json::parse(&r.to_json())
                .unwrap()
                .get("scenario")
                .and_then(|s| s.get("compute"))
                .and_then(|c| c.get("kind"))
                .and_then(Json::as_str)
                .expect("compute kind serialized")
                .to_string()
        })
        .collect();
    assert_eq!(kinds, ["dense", "csb"]);

    // …and in the CSV report.
    let csv = results_csv(&results);
    let header = csv.lines().next().unwrap();
    assert!(header.contains("compute"), "{header}");
    assert!(csv.lines().nth(1).unwrap().contains(",dense,"));
    assert!(csv.lines().nth(2).unwrap().contains(",csb,"));
    assert_eq!(results_table("t", &results).len(), 2);
}

#[test]
fn csb_execution_outperforms_dense_execution_on_sparse_masks() {
    let engine = Engine::serial();
    let base = Scenario::builder("VGG-S").sparsity(SparsityGen::PaperSynthetic { seed: 3 });
    let dense_exec = engine
        .run(&base.clone().compute(ComputeBackend::Dense).build().unwrap())
        .unwrap();
    let csb_exec = engine
        .run(&base.compute(ComputeBackend::Csb).build().unwrap())
        .unwrap();
    // The dense datapath multiplies every weight slot (the workload is
    // densified), so the gap is substantial, not just format overhead.
    let speedup = csb_exec.speedup_over(&dense_exec);
    assert!(
        speedup > 1.5,
        "compressed execution must skip work on sparse masks ({speedup:.2}x)"
    );
    assert!(csb_exec.energy_saving_over(&dense_exec) > 1.5);
}

#[test]
fn default_compute_follows_the_sparsity_generator() {
    // The default backend must reproduce the pre-axis behaviour exactly:
    // identical to an explicit Auto with threshold 1.
    let engine = Engine::serial();
    let implicit = engine
        .run(
            &Scenario::builder("VGG-S")
                .sparsity(SparsityGen::PaperSynthetic { seed: 5 })
                .build()
                .unwrap(),
        )
        .unwrap();
    let explicit = engine
        .run(
            &Scenario::builder("VGG-S")
                .sparsity(SparsityGen::PaperSynthetic { seed: 5 })
                .compute(ComputeBackend::Auto { max_density: 1.0 })
                .build()
                .unwrap(),
        )
        .unwrap();
    assert_eq!(implicit.cost, explicit.cost);

    // Forcing CSB on fully-dense weights pays format overhead instead:
    // the axis is observable even without sparsity.
    let dense_default = engine
        .run(&Scenario::builder("VGG-S").build().unwrap())
        .unwrap();
    let dense_forced_csb = engine
        .run(
            &Scenario::builder("VGG-S")
                .compute(ComputeBackend::Csb)
                .build()
                .unwrap(),
        )
        .unwrap();
    assert!(dense_forced_csb.totals().energy_j() > dense_default.totals().energy_j());
}

#[test]
fn auto_threshold_demotes_high_density_layers() {
    // Uniform 90% density masks: Auto(0.5) must run them uncompressed,
    // matching forced-dense execution, not forced-CSB.
    let engine = Engine::serial();
    let sparsity = SparsityGen::Uniform {
        keep: 0.9,
        act_density: 0.6,
    };
    let auto = engine
        .run(
            &Scenario::builder("VGG-S")
                .sparsity(sparsity.clone())
                .compute(ComputeBackend::Auto { max_density: 0.5 })
                .build()
                .unwrap(),
        )
        .unwrap();
    let forced_dense = engine
        .run(
            &Scenario::builder("VGG-S")
                .sparsity(sparsity)
                .compute(ComputeBackend::Dense)
                .build()
                .unwrap(),
        )
        .unwrap();
    assert_eq!(auto.cost, forced_dense.cost);
}

#[test]
fn compute_json_roundtrip_and_backward_compatibility() {
    for compute in [
        ComputeBackend::Dense,
        ComputeBackend::Csb,
        ComputeBackend::Auto { max_density: 0.25 },
    ] {
        let s = Scenario::builder("ResNet18")
            .sparsity(SparsityGen::PaperSynthetic { seed: 1 })
            .compute(compute)
            .build()
            .unwrap();
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    // A document from before the compute axis existed (no "compute"
    // field) deserializes to the default backend.
    let s = Scenario::builder("VGG-S").build().unwrap();
    let Json::Obj(fields) = Json::parse(&s.to_json()).unwrap() else {
        panic!("scenario serializes to an object");
    };
    let legacy =
        Json::Obj(fields.into_iter().filter(|(k, _)| k != "compute").collect()).to_string();
    let back = Scenario::from_json(&legacy).unwrap();
    assert_eq!(back.compute, Scenario::DEFAULT_COMPUTE);
    assert_eq!(back, s);

    // Invalid thresholds are rejected at validation.
    assert!(Scenario::builder("VGG-S")
        .compute(ComputeBackend::Auto { max_density: 1.5 })
        .build()
        .is_err());
    assert!(Scenario::builder("VGG-S")
        .compute(ComputeBackend::Auto {
            max_density: f64::NAN
        })
        .build()
        .is_err());
}
