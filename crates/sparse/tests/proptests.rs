//! Property-based tests for the CSB weight format.

// These property tests depend on the external `proptest` crate, which is
// unavailable in offline builds. Opt in with `--features proptests` after
// adding `proptest` as a dev-dependency (see the crate manifest).
#![cfg(feature = "proptests")]

use procrustes_sparse::CsbTensor;
use procrustes_tensor::Tensor;
use proptest::prelude::*;

/// Strategy producing a sparse conv weight tensor with arbitrary geometry.
fn sparse_conv() -> impl Strategy<Value = Tensor> {
    (1usize..4, 1usize..4, 1usize..4, 1usize..4).prop_flat_map(|(k, c, r, s)| {
        proptest::collection::vec(
            prop_oneof![3 => Just(0.0f32), 1 => (-2.0f32..2.0).prop_filter("nonzero", |v| *v != 0.0)],
            k * c * r * s,
        )
        .prop_map(move |data| Tensor::from_vec(&[k, c, r, s], data))
    })
}

fn sparse_fc() -> impl Strategy<Value = (Tensor, usize)> {
    (1usize..12, 1usize..12, 1usize..6).prop_flat_map(|(o, i, edge)| {
        proptest::collection::vec(
            prop_oneof![2 => Just(0.0f32), 1 => (-2.0f32..2.0).prop_filter("nonzero", |v| *v != 0.0)],
            o * i,
        )
        .prop_map(move |data| (Tensor::from_vec(&[o, i], data), edge))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Compression is lossless for any conv geometry and sparsity pattern.
    #[test]
    fn conv_roundtrip(w in sparse_conv()) {
        let csb = CsbTensor::from_dense_conv(&w);
        prop_assert_eq!(csb.to_dense(), w);
    }

    /// Compression is lossless for fc matrices including ragged blocks.
    #[test]
    fn fc_roundtrip((w, edge) in sparse_fc()) {
        let csb = CsbTensor::from_dense_fc(&w, edge);
        prop_assert_eq!(csb.to_dense(), w);
    }

    /// nnz equals the number of dense nonzeros; density is consistent.
    #[test]
    fn nnz_matches_dense(w in sparse_conv()) {
        let csb = CsbTensor::from_dense_conv(&w);
        let dense_nnz = w.len() - w.count_zeros();
        prop_assert_eq!(csb.nnz(), dense_nnz);
        let density = csb.density();
        prop_assert!((density - dense_nnz as f64 / w.len() as f64).abs() < 1e-12);
    }

    /// Fetch-time rotation equals dense rotate180 for every block.
    #[test]
    fn rotation_consistency(w in sparse_conv()) {
        let csb = CsbTensor::from_dense_conv(&w);
        let rot = w.rotate180();
        let (k, c) = (w.shape().dim(0), w.shape().dim(1));
        let (r, s) = (w.shape().dim(2), w.shape().dim(3));
        for ki in 0..k {
            for ci in 0..c {
                let got = csb.block_dense_rotated180(ki, ci);
                for ri in 0..r {
                    for si in 0..s {
                        prop_assert_eq!(got[ri * s + si], rot.at(&[ki, ci, ri, si]));
                    }
                }
            }
        }
    }

    /// Piecewise fc transpose equals the dense transpose; double transpose
    /// is the identity.
    #[test]
    fn fc_transpose_consistency((w, edge) in sparse_fc()) {
        let csb = CsbTensor::from_dense_fc(&w, edge);
        let t = csb.transposed_fc();
        prop_assert_eq!(t.to_dense(), w.transpose2d());
        prop_assert_eq!(t.transposed_fc().to_dense(), w);
    }

    /// Pointer subtraction over any range equals the sum of block nnz.
    #[test]
    fn range_nnz_is_additive(w in sparse_conv(), split in 0usize..10) {
        let csb = CsbTensor::from_dense_conv(&w);
        let (gr, gc) = csb.layout().grid();
        let nblocks = gr * gc;
        let mid = split % (nblocks + 1);
        prop_assert_eq!(
            csb.range_nnz(0, mid) + csb.range_nnz(mid, nblocks),
            csb.nnz()
        );
    }

    /// Random access agrees with the dense tensor everywhere.
    #[test]
    fn get_matches_dense(w in sparse_conv()) {
        let csb = CsbTensor::from_dense_conv(&w);
        let dims = w.shape().dims().to_vec();
        for k in 0..dims[0] {
            for c in 0..dims[1] {
                for r in 0..dims[2] {
                    for s in 0..dims[3] {
                        prop_assert_eq!(csb.get(k, c, r, s), w.at(&[k, c, r, s]));
                    }
                }
            }
        }
    }

    /// Storage accounting: compressed data bytes = 4·nnz, and the mask
    /// overhead is exactly one bit per dense slot.
    #[test]
    fn storage_accounting((w, edge) in sparse_fc()) {
        let csb = CsbTensor::from_dense_fc(&w, edge);
        prop_assert_eq!(csb.data_bytes(), csb.nnz() * 4);
        let slot_bits: usize = {
            let (gr, gc) = csb.layout().grid();
            let mut bits = 0;
            for gi in 0..gr {
                for gj in 0..gc {
                    let (br, bc) = csb.layout().block_extent(gi, gj);
                    bits += (br * bc).div_ceil(8);
                }
            }
            bits
        };
        prop_assert_eq!(csb.mask_bytes(), slot_bits);
    }
}
