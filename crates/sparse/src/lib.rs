//! The Procrustes compressed sparse block (CSB) weight representation.
//!
//! Inference accelerators couple their sparse weight format to a single
//! dataflow (CSC in EIE, per-input-channel blocks in SCNN), which makes the
//! *other* access orders needed during training impossible to address
//! (§II-D of the paper). Procrustes instead stores weights in a
//! block-compressed format (§IV-B, Fig 8) with three decoupled components:
//!
//! * a **weight array** of variable-size packed nonzero blocks,
//! * a **pointer array** indexed by *dense* tensor coordinates, and
//! * a **mask array** with one bitmask per block identifying nonzero slots.
//!
//! Because the pointer array is indexed in the dense operation space,
//! kernel addresses are computable in any loop order; blocks are fetched at
//! filter granularity so they can be rotated 180° (backward pass) or
//! transposed (fc layers) *while being fetched*; and the density of any
//! contiguous block range is one pointer subtraction — the query the
//! load balancer builds on (§IV-C).
//!
//! This crate provides [`BitMask`] (the mask-array entry), [`CsbTensor`]
//! (the full format, for both conv kernels and blocked fc matrices), and
//! the [`kernels`] module — CSB-consuming conv/fc forward and backward
//! compute kernels whose work scales with the number of stored nonzeros
//! rather than the dense volume.
//!
//! # Examples
//!
//! ```
//! use procrustes_sparse::CsbTensor;
//! use procrustes_tensor::Tensor;
//!
//! // A 2-filter, 1-channel, 2x2-kernel weight tensor with zeros.
//! let w = Tensor::from_vec(&[2, 1, 2, 2], vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0, 4.0]);
//! let csb = CsbTensor::from_dense_conv(&w);
//! assert_eq!(csb.nnz(), 4);
//! assert_eq!(csb.block_nnz(0, 0), 2);
//! assert_eq!(csb.to_dense(), w); // lossless round-trip
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmask;
mod csb;
pub mod kernels;

pub use bitmask::{BitMask, IterOnes};
pub use csb::{CsbLayout, CsbTensor, NonzeroEntry};
pub use kernels::{
    csb_conv2d, csb_conv2d_backward_input, csb_conv2d_backward_weights_masked,
    csb_fc_backward_weights_masked, csb_fc_forward, FcDecode,
};
