//! CSB-backed compute kernels: the sparse fast path of the training loop.
//!
//! These are the software analogues of the Procrustes PE datapath: the
//! forward and backward convolutions and the fully-connected products,
//! consuming weights directly in the [`CsbTensor`] format so that every
//! elided (zero) weight is also an elided multiply-accumulate — the
//! *computation sparsity* of §III-A turned into actual work savings, the
//! same way SparseTrain exploits dataflow sparsity inside the kernels.
//!
//! # Numerical contract
//!
//! Each kernel accumulates partial products in exactly the order the
//! corresponding dense kernel in `procrustes-tensor` does (zero terms are
//! skipped, which cannot change an IEEE-754 sum), so outputs match the
//! dense path *bitwise*, not merely within a tolerance. Training under
//! either backend therefore produces identical loss curves; the
//! equivalence suite in `tests/` pins this down.

use procrustes_tensor::{conv_out_dim, Scratch, Tensor};

use crate::{CsbLayout, CsbTensor};

/// One decoded nonzero of a conv block: `(r, s, value)`.
type BlockNz = Vec<(usize, usize, f32)>;

/// Decodes every `(k, c)` block of a conv-layout tensor into its nonzero
/// `(r, s, value)` triples, in ascending `(r, s)` order.
///
/// The decode goes through [`CsbTensor::block_dense_rotated180`] — the
/// fetch-time rotation the backward pass uses (§IV-B) — and un-rotates
/// the coordinates, so both the forward and backward kernels share one
/// decode path that exercises the hardware's fetch transform.
fn decode_conv_blocks(w: &CsbTensor) -> (usize, usize, usize, usize, Vec<BlockNz>) {
    let CsbLayout::Conv { k, c, r, s } = w.layout() else {
        panic!("csb conv kernel: weights must have a conv layout");
    };
    let mut blocks = Vec::with_capacity(k * c);
    for ki in 0..k {
        for ci in 0..c {
            let rot = w.block_dense_rotated180(ki, ci);
            let mut nz: BlockNz = Vec::with_capacity(w.block_nnz(ki, ci));
            // Walking the rotated fetch backwards restores ascending
            // (r, s) order: rot[j] = w[k, c, r-1-j/s, s-1-j%s].
            for j in (0..rot.len()).rev() {
                if rot[j] != 0.0 {
                    let flat = r * s - 1 - j;
                    nz.push((flat / s, flat % s, rot[j]));
                }
            }
            blocks.push(nz);
        }
    }
    (k, c, r, s, blocks)
}

fn check_activations(x: &Tensor, c: usize) -> (usize, usize, usize) {
    assert_eq!(x.shape().rank(), 4, "csb conv: activations must be NCHW");
    assert_eq!(
        x.shape().dim(1),
        c,
        "csb conv: input channels {} != weight input channels {c}",
        x.shape().dim(1)
    );
    (x.shape().dim(0), x.shape().dim(2), x.shape().dim(3))
}

/// Forward convolution with CSB weights: the sparse counterpart of
/// `conv2d_im2col`, skipping every zero weight.
///
/// Bitwise-equal to the dense forward path for the same operands.
///
/// # Panics
///
/// Panics if `w` is not conv-layout, `x` is not `NCHW`, channels
/// mismatch, or the filter does not fit.
///
/// # Examples
///
/// ```
/// use procrustes_sparse::{csb_conv2d, CsbTensor};
/// use procrustes_tensor::{conv2d, Tensor};
///
/// let w = Tensor::from_vec(&[1, 1, 3, 3],
///     vec![0.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0]);
/// let x = Tensor::ones(&[1, 1, 3, 3]);
/// let y = csb_conv2d(&x, &CsbTensor::from_dense_conv(&w), 1, 0);
/// assert_eq!(y.data(), conv2d(&x, &w, 1, 0).data());
/// ```
pub fn csb_conv2d(x: &Tensor, w: &CsbTensor, stride: usize, pad: usize) -> Tensor {
    let (k, c, r, s, blocks) = decode_conv_blocks(w);
    let (n, h, wdt) = check_activations(x, c);
    let p = conv_out_dim(h, r, stride, pad);
    let q = conv_out_dim(wdt, s, stride, pad);
    let mut y = Tensor::zeros(&[n, k, p, q]);
    let xs = x.data();
    let ys = y.data_mut();
    // Nonzeros drive the outer loop, output positions the inner one, so
    // the work is `nnz · P · Q` with a contiguous inner walk. For any
    // fixed output element the (c, r, s) contributions still arrive in
    // ascending order — the im2col matmul's reduction order — so the
    // result stays bitwise-equal to the dense path.
    for ni in 0..n {
        for ki in 0..k {
            let yrow = &mut ys[(ni * k + ki) * p * q..(ni * k + ki + 1) * p * q];
            for ci in 0..c {
                let xplane = &xs[(ni * c + ci) * h * wdt..(ni * c + ci + 1) * h * wdt];
                for &(ri, si, v) in &blocks[ki * c + ci] {
                    // Hoist the padding bounds: the valid output range for
                    // this filter tap, so the inner loops are branch-free.
                    let (Some((p_lo, p_hi)), Some((q_lo, q_hi))) = (
                        valid_out_range(p, h, ri, stride, pad),
                        valid_out_range(q, wdt, si, stride, pad),
                    ) else {
                        continue;
                    };
                    for pi in p_lo..=p_hi {
                        let xrow = (pi * stride + ri - pad) * wdt;
                        if stride == 1 {
                            // Contiguous in qi: a slice zip the compiler
                            // can vectorize.
                            let xline = &xplane[xrow + q_lo + si - pad..=xrow + q_hi + si - pad];
                            let yline = &mut yrow[pi * q + q_lo..=pi * q + q_hi];
                            for (slot, &xv) in yline.iter_mut().zip(xline) {
                                *slot += v * xv;
                            }
                        } else {
                            for qi in q_lo..=q_hi {
                                yrow[pi * q + qi] += v * xplane[xrow + qi * stride + si - pad];
                            }
                        }
                    }
                }
            }
        }
    }
    y
}

/// Output positions `o` with `pad <= o·stride + tap < extent + pad`,
/// as an inclusive range (`None` when empty).
fn valid_out_range(
    out: usize,
    extent: usize,
    tap: usize,
    stride: usize,
    pad: usize,
) -> Option<(usize, usize)> {
    if tap >= extent + pad {
        return None;
    }
    let lo = pad.saturating_sub(tap).div_ceil(stride);
    let hi = ((extent + pad - tap - 1) / stride).min(out - 1);
    (lo <= hi).then_some((lo, hi))
}

/// Backward-input convolution with CSB weights (Fig 2b): propagates
/// `∂L/∂y` through 180°-rotated sparse filters, skipping every zero
/// weight *and* every zero upstream gradient.
///
/// The filters are decoded through the CSB fetch-time rotation
/// ([`CsbTensor::block_dense_rotated180`]); `h`/`wdt` are the input
/// spatial extents. Bitwise-equal to `conv2d_backward_input`.
///
/// # Panics
///
/// Panics if `w` is not conv-layout or `dy` is inconsistent with the
/// `(h, wdt, stride, pad)` geometry.
pub fn csb_conv2d_backward_input(
    dy: &Tensor,
    w: &CsbTensor,
    h: usize,
    wdt: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    let (k, c, r, s, blocks) = decode_conv_blocks(w);
    assert_eq!(dy.shape().rank(), 4, "csb conv bw: dy must be NKPQ");
    let (n, kd, p, q) = (
        dy.shape().dim(0),
        dy.shape().dim(1),
        dy.shape().dim(2),
        dy.shape().dim(3),
    );
    assert_eq!(
        k, kd,
        "csb conv bw: dy channels {kd} != weight out-channels {k}"
    );
    assert_eq!(
        p,
        conv_out_dim(h, r, stride, pad),
        "csb conv bw: dy height inconsistent with input geometry"
    );
    assert_eq!(
        q,
        conv_out_dim(wdt, s, stride, pad),
        "csb conv bw: dy width inconsistent with input geometry"
    );
    let mut dx = Tensor::zeros(&[n, c, h, wdt]);
    let dys = dy.data();
    let dxs = dx.data_mut();
    // Scatter form with the dense kernel's exact nesting, so each dx
    // element receives its contributions in the same order.
    for ni in 0..n {
        for ki in 0..k {
            for pi in 0..p {
                for qi in 0..q {
                    let g = dys[((ni * k + ki) * p + pi) * q + qi];
                    if g == 0.0 {
                        continue;
                    }
                    for ci in 0..c {
                        let xbase = (ni * c + ci) * h;
                        for &(ri, si, v) in &blocks[ki * c + ci] {
                            let hi = pi * stride + ri;
                            if hi < pad || hi - pad >= h {
                                continue;
                            }
                            let wi = qi * stride + si;
                            if wi < pad || wi - pad >= wdt {
                                continue;
                            }
                            dxs[(xbase + hi - pad) * wdt + wi - pad] += g * v;
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Weight-update convolution restricted to the CSB mask: accumulates
/// `∂L/∂w[k,c,r,s]` **only** at positions where `mask` stores a nonzero,
/// leaving every pruned position exactly zero.
///
/// This is the fixed-mask (SparseTrain-style) weight update; Dropback
/// training instead needs the full dense gradient (any weight may be
/// re-admitted), which the layers keep computing with the dense kernel.
/// At mask positions the result is bitwise-equal to
/// `conv2d_backward_weights`.
///
/// # Panics
///
/// Panics if `mask` is not conv-layout or the geometries are
/// inconsistent.
pub fn csb_conv2d_backward_weights_masked(
    x: &Tensor,
    dy: &Tensor,
    mask: &CsbTensor,
    stride: usize,
    pad: usize,
) -> Tensor {
    let (k, c, r, s, blocks) = decode_conv_blocks(mask);
    let (n, h, wdt) = check_activations(x, c);
    assert_eq!(dy.shape().rank(), 4, "csb conv wu: dy must be NKPQ");
    assert_eq!(
        dy.shape().dim(0),
        n,
        "csb conv wu: batch mismatch {} != {n}",
        dy.shape().dim(0)
    );
    assert_eq!(dy.shape().dim(1), k, "csb conv wu: dy channel mismatch");
    let (p, q) = (dy.shape().dim(2), dy.shape().dim(3));
    assert_eq!(
        p,
        conv_out_dim(h, r, stride, pad),
        "csb conv wu: bad dy height"
    );
    assert_eq!(
        q,
        conv_out_dim(wdt, s, stride, pad),
        "csb conv wu: bad dy width"
    );
    let mut dw = Tensor::zeros(&[k, c, r, s]);
    let xs = x.data();
    let dys = dy.data();
    let dws = dw.data_mut();
    for ni in 0..n {
        for ki in 0..k {
            for pi in 0..p {
                for qi in 0..q {
                    let g = dys[((ni * k + ki) * p + pi) * q + qi];
                    if g == 0.0 {
                        continue;
                    }
                    for ci in 0..c {
                        let xbase = (ni * c + ci) * h;
                        for &(ri, si, _) in &blocks[ki * c + ci] {
                            let hi = pi * stride + ri;
                            if hi < pad || hi - pad >= h {
                                continue;
                            }
                            let wi = qi * stride + si;
                            if wi < pad || wi - pad >= wdt {
                                continue;
                            }
                            dws[((ki * c + ci) * r + ri) * s + si] +=
                                g * xs[(xbase + hi - pad) * wdt + wi - pad];
                        }
                    }
                }
            }
        }
    }
    dw
}

/// A flat CSR-style decode of an fc-layout [`CsbTensor`]: per output
/// row, the `(column, value)` pairs in ascending column order.
///
/// The fc matvec previously rebuilt a nested per-row decode on every
/// call — a heap-allocation storm in the training hot loop. Layers now
/// build an `FcDecode` once per weight resync and run every
/// forward/backward matvec through [`FcDecode::matvec_into`] with a
/// pooled output buffer, so the steady-state sparse fc path performs no
/// allocation and no repeated mask decoding.
///
/// # Examples
///
/// ```
/// use procrustes_sparse::{CsbTensor, FcDecode};
/// use procrustes_tensor::Tensor;
///
/// let w = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
/// let decode = FcDecode::from_csb(&CsbTensor::from_dense_fc(&w, 2));
/// let mut y = [0.0f32; 2];
/// decode.matvec_into(&[10.0, 20.0, 30.0], 1, &mut y);
/// assert_eq!(y, [70.0, 60.0]);
/// ```
#[derive(Debug, Clone)]
pub struct FcDecode {
    out: usize,
    inp: usize,
    /// `row_ptr[o]..row_ptr[o+1]` indexes the entries of output row `o`.
    row_ptr: Vec<u32>,
    idx: Vec<u32>,
    val: Vec<f32>,
}

impl FcDecode {
    /// Decodes an fc-layout CSB tensor.
    ///
    /// Blocks are visited in grid order so each row's entries arrive
    /// with ascending column index — the ikj matmul's reduction order.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not fc-layout.
    pub fn from_csb(w: &CsbTensor) -> Self {
        let CsbLayout::Fc { out, inp, edge } = w.layout() else {
            panic!("FcDecode: weights must have an fc layout");
        };
        let (gr, gc) = w.layout().grid();
        let nnz = w.nnz();
        let mut counts = vec![0u32; out + 1];
        for gi in 0..gr {
            for gj in 0..gc {
                let (_, bc) = w.layout().block_extent(gi, gj);
                for slot in w.block_mask(gi, gj).iter_ones() {
                    counts[gi * edge + slot / bc + 1] += 1;
                }
            }
        }
        for o in 0..out {
            counts[o + 1] += counts[o];
        }
        let row_ptr = counts;
        let mut cursor: Vec<u32> = row_ptr[..out].to_vec();
        let mut idx = vec![0u32; nnz];
        let mut val = vec![0.0f32; nnz];
        for gi in 0..gr {
            for gj in 0..gc {
                let (_, bc) = w.layout().block_extent(gi, gj);
                let mask = w.block_mask(gi, gj);
                let vals = w.block_values(gi, gj);
                for (slot, &v) in mask.iter_ones().zip(vals) {
                    let o = gi * edge + slot / bc;
                    let at = cursor[o] as usize;
                    idx[at] = (gj * edge + slot % bc) as u32;
                    val[at] = v;
                    cursor[o] += 1;
                }
            }
        }
        Self {
            out,
            inp,
            row_ptr,
            idx,
            val,
        }
    }

    /// Output features (rows of `W`).
    pub fn out_features(&self) -> usize {
        self.out
    }

    /// Input features (columns of `W`).
    pub fn in_features(&self) -> usize {
        self.inp
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// `dst = x·Wᵀ` for row-major `x: [n, in]`, `dst: [n, out]` —
    /// allocation-free. Per output element the stored nonzeros reduce in
    /// ascending column order, so the result is bitwise-equal to the
    /// dense `x.matmul(&w.transpose2d())`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with `n` and the decode's
    /// feature counts.
    pub fn matvec_into(&self, x: &[f32], n: usize, dst: &mut [f32]) {
        assert_eq!(x.len(), n * self.inp, "FcDecode: input length mismatch");
        assert_eq!(dst.len(), n * self.out, "FcDecode: output length mismatch");
        for ni in 0..n {
            let xrow = &x[ni * self.inp..(ni + 1) * self.inp];
            let yrow = &mut dst[ni * self.out..(ni + 1) * self.out];
            for (o, slot) in yrow.iter_mut().enumerate() {
                let lo = self.row_ptr[o] as usize;
                let hi = self.row_ptr[o + 1] as usize;
                let mut acc = 0.0f32;
                for (&i, &v) in self.idx[lo..hi].iter().zip(&self.val[lo..hi]) {
                    acc += v * xrow[i as usize];
                }
                *slot = acc;
            }
        }
    }

    /// `dst = x·Wᵀ` like [`FcDecode::matvec_into`], but batched through
    /// `scratch`: the input is transposed into a pooled column-major
    /// staging buffer so each stored nonzero updates a contiguous run of
    /// `n` accumulators — the autovectorizable form of the same
    /// reduction, in place of the per-sample gather loop. Per output
    /// element the nonzeros still reduce in ascending column order from
    /// `0.0`, so the result is bitwise-identical to
    /// [`FcDecode::matvec_into`] (and to the dense
    /// `x.matmul(&w.transpose2d())`).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with `n` and the decode's
    /// feature counts.
    pub fn matvec_scratch(&self, x: &[f32], n: usize, dst: &mut [f32], scratch: &mut Scratch) {
        if n <= 1 {
            // A single sample is already column-contiguous; the scalar
            // loop is the batched loop without the staging copies.
            return self.matvec_into(x, n, dst);
        }
        assert_eq!(x.len(), n * self.inp, "FcDecode: input length mismatch");
        assert_eq!(dst.len(), n * self.out, "FcDecode: output length mismatch");
        let mut xt = scratch.take_any(n * self.inp);
        for ni in 0..n {
            let xrow = &x[ni * self.inp..(ni + 1) * self.inp];
            for (i, &v) in xrow.iter().enumerate() {
                xt[i * n + ni] = v;
            }
        }
        let mut acc = scratch.take_any(n);
        for o in 0..self.out {
            acc.fill(0.0);
            let lo = self.row_ptr[o] as usize;
            let hi = self.row_ptr[o + 1] as usize;
            for (&i, &v) in self.idx[lo..hi].iter().zip(&self.val[lo..hi]) {
                let col = &xt[i as usize * n..i as usize * n + n];
                for (slot, &xv) in acc.iter_mut().zip(col) {
                    *slot += v * xv;
                }
            }
            for (ni, &a) in acc.iter().enumerate() {
                dst[ni * self.out + o] = a;
            }
        }
        scratch.recycle_vec(acc);
        scratch.recycle_vec(xt);
    }
}

/// Fully-connected product with CSB weights: `y = x·Wᵀ` for
/// `x: [N, in]`, `W: [out, in]` in fc layout — the sparse matvec of the
/// PE decode path, skipping every zero weight.
///
/// Convenience wrapper that decodes on every call; steady-state callers
/// (the `Linear` layer) cache an [`FcDecode`] instead and use
/// [`FcDecode::matvec_scratch`] with pooled buffers.
///
/// The backward pass reuses this same kernel on the piecewise-transposed
/// tensor: `dx = csb_fc_forward(dy, &w.transposed_fc())` computes
/// `dy·W`. Bitwise-equal to the dense `x.matmul(&w.transpose2d())`.
///
/// # Panics
///
/// Panics if `w` is not fc-layout or the feature dimensions mismatch.
///
/// # Examples
///
/// ```
/// use procrustes_sparse::{csb_fc_forward, CsbTensor};
/// use procrustes_tensor::Tensor;
///
/// let w = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
/// let csb = CsbTensor::from_dense_fc(&w, 2);
/// let x = Tensor::from_vec(&[1, 3], vec![10.0, 20.0, 30.0]);
/// let y = csb_fc_forward(&x, &csb);
/// assert_eq!(y.data(), &[70.0, 60.0]);
/// // Backward: dx = dy·W through the transposed fetch.
/// let dy = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]);
/// let dx = csb_fc_forward(&dy, &csb.transposed_fc());
/// assert_eq!(dx.data(), &[1.0, 3.0, 2.0]);
/// ```
pub fn csb_fc_forward(x: &Tensor, w: &CsbTensor) -> Tensor {
    let CsbLayout::Fc { out, inp, .. } = w.layout() else {
        panic!("csb_fc_forward: weights must have an fc layout");
    };
    assert_eq!(x.shape().rank(), 2, "csb fc: input must be [N, features]");
    assert_eq!(
        x.shape().dim(1),
        inp,
        "csb fc: input features {} != weight in-features {inp}",
        x.shape().dim(1)
    );
    let n = x.shape().dim(0);
    let decode = FcDecode::from_csb(w);
    let mut y = Tensor::zeros(&[n, out]);
    decode.matvec_scratch(x.data(), n, y.data_mut(), &mut Scratch::new());
    y
}

/// Fc weight update restricted to the CSB mask: `∂L/∂w[o,i] =
/// Σ_n dy[n,o]·x[n,i]` **only** where `mask` stores a nonzero.
///
/// At mask positions the result is bitwise-equal to the dense
/// `dy.transpose2d().matmul(x)`.
///
/// # Panics
///
/// Panics if `mask` is not fc-layout or the shapes are inconsistent.
pub fn csb_fc_backward_weights_masked(x: &Tensor, dy: &Tensor, mask: &CsbTensor) -> Tensor {
    let CsbLayout::Fc { out, inp, edge } = mask.layout() else {
        panic!("csb_fc_backward_weights_masked: mask must have an fc layout");
    };
    assert_eq!(x.shape().rank(), 2, "csb fc wu: x must be [N, in]");
    assert_eq!(dy.shape().rank(), 2, "csb fc wu: dy must be [N, out]");
    let n = x.shape().dim(0);
    assert_eq!(dy.shape().dim(0), n, "csb fc wu: batch mismatch");
    assert_eq!(x.shape().dim(1), inp, "csb fc wu: in-features mismatch");
    assert_eq!(dy.shape().dim(1), out, "csb fc wu: out-features mismatch");
    let (gr, gc) = mask.layout().grid();
    let mut dw = Tensor::zeros(&[out, inp]);
    let xs = x.data();
    let dys = dy.data();
    let dws = dw.data_mut();
    for gi in 0..gr {
        for gj in 0..gc {
            let (_, bc) = mask.layout().block_extent(gi, gj);
            for slot in mask.block_mask(gi, gj).iter_ones() {
                let o = gi * edge + slot / bc;
                let i = gj * edge + slot % bc;
                let mut acc = 0.0f32;
                for ni in 0..n {
                    acc += dys[ni * out + o] * xs[ni * inp + i];
                }
                dws[o * inp + i] = acc;
            }
        }
    }
    dw
}

#[cfg(test)]
mod tests {
    use super::*;
    use procrustes_prng::{UniformRng, Xorshift64};
    use procrustes_tensor::{conv2d_backward_input, conv2d_backward_weights, conv2d_im2col};

    fn sparse_tensor(dims: &[usize], keep: f64, seed: u64) -> Tensor {
        let mut rng = Xorshift64::new(seed);
        Tensor::from_fn(dims, |_| {
            if rng.next_f64() < keep {
                rng.next_f32() * 2.0 - 1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn conv_forward_is_bitwise_equal_to_im2col() {
        for (keep, stride, pad, seed) in [
            (0.3, 1, 1, 1u64),
            (0.05, 2, 1, 2),
            (1.0, 1, 0, 3),
            (0.0, 1, 1, 4),
        ] {
            let w = sparse_tensor(&[4, 3, 3, 3], keep, seed);
            let x = sparse_tensor(&[2, 3, 8, 8], 0.7, seed + 100);
            let csb = CsbTensor::from_dense_conv(&w);
            let got = csb_conv2d(&x, &csb, stride, pad);
            let want = conv2d_im2col(&x, &w, stride, pad);
            assert_eq!(got.data(), want.data(), "keep={keep} stride={stride}");
        }
    }

    #[test]
    fn conv_backward_input_is_bitwise_equal_to_dense() {
        for (keep, stride, pad, seed) in [(0.25, 1, 1, 5u64), (0.1, 2, 1, 6), (1.0, 1, 0, 7)] {
            let w = sparse_tensor(&[3, 2, 3, 3], keep, seed);
            let csb = CsbTensor::from_dense_conv(&w);
            let (h, wdt) = (8, 8);
            let p = conv_out_dim(h, 3, stride, pad);
            let q = conv_out_dim(wdt, 3, stride, pad);
            let dy = sparse_tensor(&[2, 3, p, q], 0.6, seed + 200);
            let got = csb_conv2d_backward_input(&dy, &csb, h, wdt, stride, pad);
            let want = conv2d_backward_input(&dy, &w, h, wdt, stride, pad);
            assert_eq!(got.data(), want.data(), "keep={keep} stride={stride}");
        }
    }

    #[test]
    fn conv_masked_weight_grad_matches_dense_under_mask() {
        let w = sparse_tensor(&[3, 2, 3, 3], 0.4, 8);
        let csb = CsbTensor::from_dense_conv(&w);
        let x = sparse_tensor(&[2, 2, 6, 6], 0.8, 9);
        let dy = sparse_tensor(&[2, 3, 6, 6], 0.7, 10);
        let got = csb_conv2d_backward_weights_masked(&x, &dy, &csb, 1, 1);
        let dense = conv2d_backward_weights(&x, &dy, 3, 3, 1, 1);
        for i in 0..w.len() {
            if w.data()[i] != 0.0 {
                assert_eq!(got.data()[i], dense.data()[i], "masked position {i}");
            } else {
                assert_eq!(got.data()[i], 0.0, "pruned position {i} must stay zero");
            }
        }
    }

    #[test]
    fn fc_forward_is_bitwise_equal_to_matmul() {
        // Ragged (10x7, edge 4), exact-multiple (8x8, edge 4), edge larger
        // than the matrix, and the degenerate densities.
        for (dims, edge, keep, seed) in [
            ([10usize, 7], 4usize, 0.35, 11u64),
            ([8, 8], 4, 0.5, 12),
            ([3, 5], 8, 0.6, 13),
            ([6, 6], 3, 1.0, 14),
            ([6, 6], 3, 0.0, 15),
        ] {
            let w = sparse_tensor(&dims, keep, seed);
            let csb = CsbTensor::from_dense_fc(&w, edge);
            let x = sparse_tensor(&[3, dims[1]], 0.8, seed + 300);
            let got = csb_fc_forward(&x, &csb);
            let want = x.matmul(&w.transpose2d());
            assert_eq!(got.data(), want.data(), "dims={dims:?} edge={edge}");
        }
    }

    #[test]
    fn fc_backward_via_transpose_is_bitwise_equal() {
        for (dims, edge, seed) in [([9usize, 6], 4usize, 16u64), ([5, 11], 3, 17)] {
            let w = sparse_tensor(&dims, 0.4, seed);
            let csb = CsbTensor::from_dense_fc(&w, edge);
            let dy = sparse_tensor(&[4, dims[0]], 0.6, seed + 400);
            let got = csb_fc_forward(&dy, &csb.transposed_fc());
            let want = dy.matmul(&w);
            assert_eq!(got.data(), want.data(), "dims={dims:?}");
        }
    }

    #[test]
    fn fc_masked_weight_grad_matches_dense_under_mask() {
        let w = sparse_tensor(&[7, 5], 0.45, 18);
        let csb = CsbTensor::from_dense_fc(&w, 3);
        let x = sparse_tensor(&[4, 5], 0.9, 19);
        let dy = sparse_tensor(&[4, 7], 0.9, 20);
        let got = csb_fc_backward_weights_masked(&x, &dy, &csb);
        let dense = dy.transpose2d().matmul(&x);
        for i in 0..w.len() {
            if w.data()[i] != 0.0 {
                assert_eq!(got.data()[i], dense.data()[i], "masked position {i}");
            } else {
                assert_eq!(got.data()[i], 0.0, "pruned position {i} must stay zero");
            }
        }
    }

    #[test]
    #[should_panic(expected = "conv layout")]
    fn conv_kernel_rejects_fc_layout() {
        let w = Tensor::ones(&[4, 4]);
        let csb = CsbTensor::from_dense_fc(&w, 2);
        csb_conv2d(&Tensor::ones(&[1, 1, 4, 4]), &csb, 1, 0);
    }

    #[test]
    #[should_panic(expected = "fc layout")]
    fn fc_kernel_rejects_conv_layout() {
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let csb = CsbTensor::from_dense_conv(&w);
        csb_fc_forward(&Tensor::ones(&[1, 9]), &csb);
    }
}
