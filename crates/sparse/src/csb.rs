//! The compressed sparse block tensor (§IV-B, Fig 8 of the paper).

use std::fmt;

use procrustes_tensor::Tensor;

use crate::BitMask;

/// How the dense weight space is carved into CSB blocks.
///
/// * Conv layers: one block per `(k, c)` filter, block extent = `R×S`
///   (“blocks are sized to and retrieved on filter granularity”).
/// * Fully-connected layers: square fragments of the weight matrix; the
///   block edge is a per-layer choice (“the region size can vary on layer
///   granularity”).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsbLayout {
    /// Conv weights `KCRS`; grid = `K×C` blocks of extent `R×S`.
    Conv {
        /// Output channels.
        k: usize,
        /// Input channels.
        c: usize,
        /// Filter rows.
        r: usize,
        /// Filter columns.
        s: usize,
    },
    /// Fc weights `[out, in]`; grid of `edge×edge` square fragments
    /// (ragged at the right/bottom borders when not divisible).
    Fc {
        /// Output features (rows of the dense matrix).
        out: usize,
        /// Input features (columns of the dense matrix).
        inp: usize,
        /// Block edge length.
        edge: usize,
    },
}

impl CsbLayout {
    /// Number of blocks along (grid rows, grid cols).
    pub fn grid(&self) -> (usize, usize) {
        match *self {
            CsbLayout::Conv { k, c, .. } => (k, c),
            CsbLayout::Fc { out, inp, edge } => (out.div_ceil(edge), inp.div_ceil(edge)),
        }
    }

    /// Extent (rows, cols) of the block at grid coordinate `(gi, gj)`.
    /// Border blocks of an fc layout are ragged (smaller than `edge`)
    /// when the matrix dimension is not a multiple of the block edge.
    ///
    /// # Panics
    ///
    /// Panics if `(gi, gj)` is outside the grid. (Before this check, an
    /// out-of-grid fc coordinate underflowed `out - gi·edge` and
    /// silently produced a full-size extent in release builds.)
    pub fn block_extent(&self, gi: usize, gj: usize) -> (usize, usize) {
        let (gr, gc) = self.grid();
        assert!(
            gi < gr && gj < gc,
            "block ({gi},{gj}) out of {gr}x{gc} grid"
        );
        match *self {
            CsbLayout::Conv { r, s, .. } => (r, s),
            CsbLayout::Fc { out, inp, edge } => {
                (edge.min(out - gi * edge), edge.min(inp - gj * edge))
            }
        }
    }

    /// Total number of dense elements covered by the layout.
    pub fn dense_len(&self) -> usize {
        match *self {
            CsbLayout::Conv { k, c, r, s } => k * c * r * s,
            CsbLayout::Fc { out, inp, .. } => out * inp,
        }
    }
}

/// One nonzero weight yielded by [`CsbTensor::iter_nonzeros`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonzeroEntry {
    /// Grid row of the containing block (`k` for conv).
    pub grid_row: usize,
    /// Grid column of the containing block (`c` for conv).
    pub grid_col: usize,
    /// Row within the block (`r` for conv).
    pub in_row: usize,
    /// Column within the block (`s` for conv).
    pub in_col: usize,
    /// The weight value.
    pub value: f32,
}

/// A weight tensor in the Procrustes compressed sparse block format.
///
/// Three decoupled arrays (Fig 8): packed nonzero values (`data`), one
/// pointer per block indexed by dense grid coordinates (`ptr`, with a
/// sentinel so that block sizes are pointer differences), and one bitmask
/// per block (`masks`).
///
/// # Examples
///
/// ```
/// use procrustes_sparse::CsbTensor;
/// use procrustes_tensor::Tensor;
///
/// let w = Tensor::from_vec(&[1, 1, 3, 3],
///     vec![5.0, 0.0, 0.0, 0.0, 6.0, 0.0, 0.0, 0.0, 7.0]);
/// let csb = CsbTensor::from_dense_conv(&w);
/// assert_eq!(csb.nnz(), 3);
/// // Rotation happens at fetch, as in the backward pass:
/// let rot = csb.block_dense_rotated180(0, 0);
/// assert_eq!(rot, vec![7.0, 0.0, 0.0, 0.0, 6.0, 0.0, 0.0, 0.0, 5.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct CsbTensor {
    layout: CsbLayout,
    /// `ptr[i]` = offset of block `i`'s first packed value; `ptr` has a
    /// final sentinel so `ptr[i+1] - ptr[i]` is block `i`'s nnz.
    ptr: Vec<u32>,
    masks: Vec<BitMask>,
    data: Vec<f32>,
}

impl CsbTensor {
    /// Compresses a dense `KCRS` conv weight tensor; zeros are elided.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not rank 4.
    pub fn from_dense_conv(w: &Tensor) -> Self {
        assert_eq!(w.shape().rank(), 4, "from_dense_conv: weights must be KCRS");
        let (k, c, r, s) = (
            w.shape().dim(0),
            w.shape().dim(1),
            w.shape().dim(2),
            w.shape().dim(3),
        );
        let layout = CsbLayout::Conv { k, c, r, s };
        Self::compress(layout, |gi, gj, bi, bj| w.at(&[gi, gj, bi, bj]))
    }

    /// Compresses a dense `[out, in]` fc weight matrix with `edge`-sized
    /// square blocks.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not rank 2 or `edge == 0`.
    pub fn from_dense_fc(w: &Tensor, edge: usize) -> Self {
        assert_eq!(
            w.shape().rank(),
            2,
            "from_dense_fc: weights must be [out, in]"
        );
        assert!(edge > 0, "from_dense_fc: block edge must be positive");
        let (out, inp) = (w.shape().dim(0), w.shape().dim(1));
        let layout = CsbLayout::Fc { out, inp, edge };
        Self::compress(layout, |gi, gj, bi, bj| {
            w.at(&[gi * edge + bi, gj * edge + bj])
        })
    }

    fn compress(layout: CsbLayout, value_at: impl Fn(usize, usize, usize, usize) -> f32) -> Self {
        let (gr, gc) = layout.grid();
        let mut ptr = Vec::with_capacity(gr * gc + 1);
        let mut masks = Vec::with_capacity(gr * gc);
        let mut data = Vec::new();
        ptr.push(0u32);
        for gi in 0..gr {
            for gj in 0..gc {
                let (br, bc) = layout.block_extent(gi, gj);
                let mut mask = BitMask::zeros(br * bc);
                for bi in 0..br {
                    for bj in 0..bc {
                        let v = value_at(gi, gj, bi, bj);
                        if v != 0.0 {
                            mask.set(bi * bc + bj, true);
                            data.push(v);
                        }
                    }
                }
                masks.push(mask);
                ptr.push(u32::try_from(data.len()).expect("CSB: > 4G nonzeros"));
            }
        }
        Self {
            layout,
            ptr,
            masks,
            data,
        }
    }

    /// The layout this tensor was compressed under.
    pub fn layout(&self) -> CsbLayout {
        self.layout
    }

    /// Total number of stored (nonzero) weights.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Density = nnz / dense element count, in `(0, 1]`.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / self.layout.dense_len() as f64
    }

    fn block_index(&self, gi: usize, gj: usize) -> usize {
        let (gr, gc) = self.layout.grid();
        assert!(
            gi < gr && gj < gc,
            "block ({gi},{gj}) out of {gr}x{gc} grid"
        );
        gi * gc + gj
    }

    /// Number of nonzeros in block `(gi, gj)` — one pointer subtraction,
    /// exactly the paper's density query (§IV-B: “it suffices to subtract
    /// pointers of adjacent work tiles”).
    pub fn block_nnz(&self, gi: usize, gj: usize) -> usize {
        let b = self.block_index(gi, gj);
        (self.ptr[b + 1] - self.ptr[b]) as usize
    }

    /// Number of nonzeros in the half-open linear block range
    /// `[first, last)` (blocks in row-major grid order) — the load
    /// balancer's work-tile density query.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn range_nnz(&self, first: usize, last: usize) -> usize {
        assert!(
            first <= last && last < self.ptr.len(),
            "bad block range {first}..{last}"
        );
        (self.ptr[last] - self.ptr[first]) as usize
    }

    /// The mask of block `(gi, gj)`.
    pub fn block_mask(&self, gi: usize, gj: usize) -> &BitMask {
        &self.masks[self.block_index(gi, gj)]
    }

    /// The packed nonzero values of block `(gi, gj)`.
    pub fn block_values(&self, gi: usize, gj: usize) -> &[f32] {
        let b = self.block_index(gi, gj);
        &self.data[self.ptr[b] as usize..self.ptr[b + 1] as usize]
    }

    /// Unpacks block `(gi, gj)` to a dense row-major buffer.
    pub fn block_dense(&self, gi: usize, gj: usize) -> Vec<f32> {
        let (br, bc) = self.layout.block_extent(gi, gj);
        let mask = self.block_mask(gi, gj);
        let vals = self.block_values(gi, gj);
        let mut out = vec![0.0f32; br * bc];
        let mut next = 0;
        for (i, slot) in out.iter_mut().enumerate() {
            if mask.get(i) {
                *slot = vals[next];
                next += 1;
            }
        }
        out
    }

    /// Unpacks block `(gi, gj)` rotated by 180° — the fetch-time rotation
    /// used in the backward pass (“blocks … can be rotated while being
    /// fetched from the global buffer to the per-PE register files”).
    pub fn block_dense_rotated180(&self, gi: usize, gj: usize) -> Vec<f32> {
        let mut d = self.block_dense(gi, gj);
        d.reverse();
        d
    }

    /// Random access to the dense-space element at block `(gi, gj)`,
    /// in-block position `(bi, bj)`; zero if unset. Uses the mask's rank to
    /// locate the packed value, as the PE decode path does.
    pub fn get(&self, gi: usize, gj: usize, bi: usize, bj: usize) -> f32 {
        let (br, bc) = self.layout.block_extent(gi, gj);
        assert!(
            bi < br && bj < bc,
            "in-block index ({bi},{bj}) out of ({br},{bc})"
        );
        let mask = self.block_mask(gi, gj);
        let slot = bi * bc + bj;
        if mask.get(slot) {
            self.block_values(gi, gj)[mask.rank(slot)]
        } else {
            0.0
        }
    }

    /// Decompresses the whole tensor back to its dense form (`KCRS` for
    /// conv, `[out, in]` for fc). Lossless.
    pub fn to_dense(&self) -> Tensor {
        match self.layout {
            CsbLayout::Conv { k, c, r, s } => {
                let mut t = Tensor::zeros(&[k, c, r, s]);
                for e in self.iter_nonzeros() {
                    t.set(&[e.grid_row, e.grid_col, e.in_row, e.in_col], e.value);
                }
                t
            }
            CsbLayout::Fc { out, inp, edge } => {
                let mut t = Tensor::zeros(&[out, inp]);
                for e in self.iter_nonzeros() {
                    t.set(
                        &[e.grid_row * edge + e.in_row, e.grid_col * edge + e.in_col],
                        e.value,
                    );
                }
                t
            }
        }
    }

    /// Iterates all stored nonzeros in block (row-major grid) order.
    pub fn iter_nonzeros(&self) -> impl Iterator<Item = NonzeroEntry> + '_ {
        let (gr, gc) = self.layout.grid();
        (0..gr * gc).flat_map(move |b| {
            let gi = b / gc;
            let gj = b % gc;
            let (_, bc) = self.layout.block_extent(gi, gj);
            let vals = &self.data[self.ptr[b] as usize..self.ptr[b + 1] as usize];
            self.masks[b]
                .iter_ones()
                .zip(vals)
                .map(move |(slot, &value)| NonzeroEntry {
                    grid_row: gi,
                    grid_col: gj,
                    in_row: slot / bc,
                    in_col: slot % bc,
                    value,
                })
        })
    }

    /// Transposes an fc CSB tensor piecewise (block-by-block), producing
    /// the CSB of `Wᵀ` — the backward-pass access pattern for fc layers.
    ///
    /// # Panics
    ///
    /// Panics if the layout is not [`CsbLayout::Fc`].
    pub fn transposed_fc(&self) -> CsbTensor {
        let CsbLayout::Fc { out, inp, edge } = self.layout else {
            panic!("transposed_fc: tensor does not have an fc layout");
        };
        let layout = CsbLayout::Fc {
            out: inp,
            inp: out,
            edge,
        };
        // Piecewise: block (gi, gj) of W becomes block (gj, gi) of Wᵀ with
        // its contents transposed. Build via the generic compressor reading
        // through `get` on the source.
        let (gr, gc) = layout.grid();
        let mut ptr = Vec::with_capacity(gr * gc + 1);
        let mut masks = Vec::with_capacity(gr * gc);
        let mut data = Vec::new();
        ptr.push(0u32);
        for gi in 0..gr {
            for gj in 0..gc {
                let (br, bc) = layout.block_extent(gi, gj);
                let mut mask = BitMask::zeros(br * bc);
                for bi in 0..br {
                    for bj in 0..bc {
                        // (gi,bi) indexes Wᵀ rows = W columns.
                        let v = self.get(gj, gi, bj, bi);
                        if v != 0.0 {
                            mask.set(bi * bc + bj, true);
                            data.push(v);
                        }
                    }
                }
                masks.push(mask);
                ptr.push(u32::try_from(data.len()).expect("CSB: > 4G nonzeros"));
            }
        }
        CsbTensor {
            layout,
            ptr,
            masks,
            data,
        }
    }

    // ----- storage accounting (used by the accelerator simulator) ---------

    /// Bytes of packed weight data (4 bytes per nonzero).
    pub fn data_bytes(&self) -> usize {
        self.data.len() * 4
    }

    /// Bytes of mask storage (1 bit per dense slot).
    pub fn mask_bytes(&self) -> usize {
        self.masks.iter().map(BitMask::storage_bytes).sum()
    }

    /// Bytes of pointer storage (4 bytes per block + sentinel).
    pub fn ptr_bytes(&self) -> usize {
        self.ptr.len() * 4
    }

    /// Total compressed footprint in bytes.
    pub fn total_bytes(&self) -> usize {
        self.data_bytes() + self.mask_bytes() + self.ptr_bytes()
    }

    /// Dense footprint in bytes for comparison (4 bytes per slot).
    pub fn dense_bytes(&self) -> usize {
        self.layout.dense_len() * 4
    }
}

impl fmt::Debug for CsbTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsbTensor {{ layout: {:?}, nnz: {}, density: {:.3} }}",
            self.layout,
            self.nnz(),
            self.density()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use procrustes_prng::{UniformRng, Xorshift64};

    fn sparse_conv_weights(k: usize, c: usize, r: usize, s: usize, keep: f64, seed: u64) -> Tensor {
        let mut rng = Xorshift64::new(seed);
        Tensor::from_fn(&[k, c, r, s], |_| {
            if rng.next_f64() < keep {
                rng.next_f32() * 2.0 - 1.0
            } else {
                0.0
            }
        })
    }

    /// The worked example of the paper's Fig 8: an uncompressed block
    /// `Wa 0 Wb 0 0 Wc Wd 0 We` with mask `101001101`.
    #[test]
    fn paper_figure8_example() {
        let dense = vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 4.0, 0.0, 5.0];
        let w = Tensor::from_vec(&[1, 1, 3, 3], dense);
        let csb = CsbTensor::from_dense_conv(&w);
        // Packed weight array = [Wa, Wb, Wc, Wd, We].
        assert_eq!(csb.block_values(0, 0), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        // Mask = 101001101.
        let bits: Vec<bool> = (0..9).map(|i| csb.block_mask(0, 0).get(i)).collect();
        assert_eq!(
            bits,
            vec![true, false, true, false, false, true, true, false, true]
        );
        // Σ mask = packed size.
        assert_eq!(csb.block_mask(0, 0).count_ones(), 5);
        assert_eq!(csb.block_nnz(0, 0), 5);
    }

    #[test]
    fn conv_roundtrip_is_lossless() {
        let w = sparse_conv_weights(4, 3, 3, 3, 0.3, 1);
        let csb = CsbTensor::from_dense_conv(&w);
        assert_eq!(csb.to_dense(), w);
    }

    #[test]
    fn fc_roundtrip_with_ragged_blocks() {
        let mut rng = Xorshift64::new(5);
        let w = Tensor::from_fn(&[10, 7], |_| {
            if rng.next_f64() < 0.4 {
                rng.next_f32()
            } else {
                0.0
            }
        });
        // edge 4 does not divide 10 or 7 -> ragged border blocks.
        let csb = CsbTensor::from_dense_fc(&w, 4);
        assert_eq!(csb.to_dense(), w);
        let (gr, gc) = csb.layout().grid();
        assert_eq!((gr, gc), (3, 2));
        assert_eq!(csb.layout().block_extent(2, 1), (2, 3));
    }

    #[test]
    fn block_nnz_is_pointer_subtraction() {
        let w = sparse_conv_weights(4, 2, 3, 3, 0.5, 2);
        let csb = CsbTensor::from_dense_conv(&w);
        let mut total = 0;
        for k in 0..4 {
            for c in 0..2 {
                let nnz = csb.block_nnz(k, c);
                assert_eq!(nnz, csb.block_mask(k, c).count_ones());
                total += nnz;
            }
        }
        assert_eq!(total, csb.nnz());
        assert_eq!(csb.range_nnz(0, 8), csb.nnz());
        assert_eq!(csb.range_nnz(0, 4) + csb.range_nnz(4, 8), csb.nnz());
    }

    #[test]
    fn rotation_at_fetch_matches_dense_rotation() {
        let w = sparse_conv_weights(3, 2, 3, 3, 0.4, 3);
        let csb = CsbTensor::from_dense_conv(&w);
        let rot = w.rotate180();
        for k in 0..3 {
            for c in 0..2 {
                let got = csb.block_dense_rotated180(k, c);
                let want: Vec<f32> = (0..3)
                    .flat_map(|r| (0..3).map(move |s| (r, s)))
                    .map(|(r, s)| rot.at(&[k, c, r, s]))
                    .collect();
                assert_eq!(got, want, "block ({k},{c})");
            }
        }
    }

    #[test]
    fn fc_transpose_matches_dense_transpose() {
        let mut rng = Xorshift64::new(9);
        let w = Tensor::from_fn(&[9, 6], |_| {
            if rng.next_f64() < 0.35 {
                rng.next_f32() - 0.5
            } else {
                0.0
            }
        });
        let csb = CsbTensor::from_dense_fc(&w, 4);
        let t = csb.transposed_fc();
        assert_eq!(t.to_dense(), w.transpose2d());
        assert_eq!(t.nnz(), csb.nnz());
    }

    #[test]
    fn get_uses_rank_correctly() {
        let w = sparse_conv_weights(2, 2, 3, 3, 0.5, 4);
        let csb = CsbTensor::from_dense_conv(&w);
        for k in 0..2 {
            for c in 0..2 {
                for r in 0..3 {
                    for s in 0..3 {
                        assert_eq!(csb.get(k, c, r, s), w.at(&[k, c, r, s]));
                    }
                }
            }
        }
    }

    #[test]
    fn iter_nonzeros_yields_all_and_only_nonzeros() {
        let w = sparse_conv_weights(3, 3, 3, 3, 0.25, 6);
        let csb = CsbTensor::from_dense_conv(&w);
        let mut count = 0;
        for e in csb.iter_nonzeros() {
            assert_eq!(e.value, w.at(&[e.grid_row, e.grid_col, e.in_row, e.in_col]));
            assert_ne!(e.value, 0.0);
            count += 1;
        }
        assert_eq!(count, csb.nnz());
        assert_eq!(count, w.len() - w.count_zeros());
    }

    #[test]
    fn storage_accounting_beats_dense_at_high_sparsity() {
        let w = sparse_conv_weights(32, 32, 3, 3, 0.1, 7);
        let csb = CsbTensor::from_dense_conv(&w);
        assert!(csb.total_bytes() < csb.dense_bytes() / 2);
        assert_eq!(csb.data_bytes(), csb.nnz() * 4);
        assert_eq!(csb.mask_bytes(), 32 * 32 * 2); // 9 bits -> 2 bytes per block
        assert_eq!(csb.ptr_bytes(), (32 * 32 + 1) * 4);
    }

    #[test]
    fn density_of_all_dense_tensor_is_one() {
        let w = Tensor::ones(&[2, 2, 3, 3]);
        let csb = CsbTensor::from_dense_conv(&w);
        assert_eq!(csb.density(), 1.0);
        assert_eq!(csb.nnz(), 36);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn block_out_of_grid_panics() {
        let w = Tensor::ones(&[2, 2, 3, 3]);
        CsbTensor::from_dense_conv(&w).block_nnz(2, 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn fc_block_extent_out_of_grid_panics_instead_of_wrapping() {
        // 10 rows with edge 4 -> 3 grid rows; gi = 3 used to underflow
        // `out - gi*edge` in release builds and report a full block.
        let layout = CsbLayout::Fc {
            out: 10,
            inp: 7,
            edge: 4,
        };
        layout.block_extent(3, 0);
    }

    #[test]
    fn fc_ragged_edge_cases_round_trip() {
        let mut rng = Xorshift64::new(31);
        // (rows, cols, edge): edge bigger than both dims, edge equal to a
        // dim, prime dims, and a 1-wide ragged border.
        for (out, inp, edge) in [(3, 5, 8), (4, 4, 4), (7, 11, 3), (9, 5, 4), (1, 1, 2)] {
            let w = Tensor::from_fn(&[out, inp], |_| {
                if rng.next_f64() < 0.5 {
                    rng.next_f32() - 0.5
                } else {
                    0.0
                }
            });
            let csb = CsbTensor::from_dense_fc(&w, edge);
            assert_eq!(csb.to_dense(), w, "{out}x{inp} edge {edge}");
            let (gr, gc) = csb.layout().grid();
            assert_eq!(gr, out.div_ceil(edge));
            assert_eq!(gc, inp.div_ceil(edge));
            // Block extents tile the matrix exactly.
            let rows: usize = (0..gr).map(|gi| csb.layout().block_extent(gi, 0).0).sum();
            let cols: usize = (0..gc).map(|gj| csb.layout().block_extent(0, gj).1).sum();
            assert_eq!((rows, cols), (out, inp), "{out}x{inp} edge {edge}");
            // Transposition stays lossless on ragged grids.
            assert_eq!(csb.transposed_fc().to_dense(), w.transpose2d());
        }
    }
}
