//! Packed bitmasks — the entries of the CSB mask array.

use std::fmt;

/// A fixed-length packed bitmask with rank (prefix-popcount) queries.
///
/// One `BitMask` identifies the nonzero slots of one CSB block; `rank`
/// turns a dense in-block coordinate into an offset into the packed weight
/// array, which is exactly the decode step the Procrustes PE performs when
/// consuming masks (Fig 14 of the paper shows the per-PE mask memory).
///
/// # Examples
///
/// ```
/// use procrustes_sparse::BitMask;
/// // The paper's Fig 8 example mask: 101001101.
/// let m = BitMask::from_bits(&[true, false, true, false, false, true, true, false, true]);
/// assert_eq!(m.count_ones(), 5);
/// assert_eq!(m.rank(6), 3); // W_d is the 4th packed value (offset 3)
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMask {
    words: Vec<u64>,
    len: usize,
}

impl BitMask {
    /// Creates an all-zero mask of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a mask from explicit bits.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut m = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                m.set(i, true);
            }
        }
        m
    }

    /// Creates a mask where bit `i` is `f(i)`.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut m = Self::zeros(len);
        for i in 0..len {
            if f(i) {
                m.set(i, true);
            }
        }
        m
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the mask has zero bits of capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "BitMask::get: index {i} out of {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "BitMask::set: index {i} out of {}", self.len);
        if value {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits strictly before position `i` — the packed-array
    /// offset of the value stored at dense slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > len()` (`i == len()` is allowed and returns the total
    /// popcount).
    pub fn rank(&self, i: usize) -> usize {
        assert!(
            i <= self.len,
            "BitMask::rank: index {i} out of {}",
            self.len
        );
        let full_words = i / 64;
        let mut count: usize = self.words[..full_words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        let rem = i % 64;
        if rem > 0 {
            count += (self.words[full_words] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        count
    }

    /// Iterates over the positions of set bits, in increasing order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            next_word: 0,
            current: 0,
            base: 0,
        }
    }

    /// Storage footprint in bytes if packed at one bit per slot (the
    /// hardware mask-memory cost the simulator charges).
    pub fn storage_bytes(&self) -> usize {
        self.len.div_ceil(8)
    }
}

/// Iterator over set-bit positions (see [`BitMask::iter_ones`]): walks
/// word by word and pops bits with `trailing_zeros`, so the cost scales
/// with `words + ones` rather than the dense bit count — the decode
/// speed the compute kernels in [`crate::kernels`] rely on.
pub struct IterOnes<'a> {
    words: &'a [u64],
    next_word: usize,
    current: u64,
    base: usize,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            let &w = self.words.get(self.next_word)?;
            self.current = w;
            self.base = self.next_word * 64;
            self.next_word += 1;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.base + bit)
    }
}

impl fmt::Debug for BitMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitMask[")?;
        for i in 0..self.len.min(64) {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        if self.len > 64 {
            write!(f, "… ({} bits)", self.len)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMask::zeros(130);
        m.set(0, true);
        m.set(63, true);
        m.set(64, true);
        m.set(129, true);
        assert!(m.get(0) && m.get(63) && m.get(64) && m.get(129));
        assert!(!m.get(1) && !m.get(65));
        assert_eq!(m.count_ones(), 4);
        m.set(64, false);
        assert!(!m.get(64));
        assert_eq!(m.count_ones(), 3);
    }

    #[test]
    fn rank_counts_prefix_ones() {
        let m = BitMask::from_bits(&[true, false, true, true, false, true]);
        assert_eq!(m.rank(0), 0);
        assert_eq!(m.rank(1), 1);
        assert_eq!(m.rank(3), 2);
        assert_eq!(m.rank(6), 4);
    }

    #[test]
    fn rank_across_word_boundary() {
        let m = BitMask::from_fn(200, |i| i % 3 == 0);
        for i in [0, 1, 63, 64, 65, 127, 128, 199, 200] {
            let expect = (0..i).filter(|j| j % 3 == 0).count();
            assert_eq!(m.rank(i), expect, "rank({i})");
        }
    }

    #[test]
    fn iter_ones_matches_get() {
        let m = BitMask::from_fn(77, |i| i % 5 == 2);
        let ones: Vec<usize> = m.iter_ones().collect();
        assert_eq!(ones, (0..77).filter(|i| i % 5 == 2).collect::<Vec<_>>());
    }

    #[test]
    fn paper_figure8_mask() {
        // M1 = 101001101 from Fig 8: five nonzeros Wa..We.
        let m = BitMask::from_bits(&[true, false, true, false, false, true, true, false, true]);
        assert_eq!(m.count_ones(), 5);
        // Packed offsets of each nonzero slot:
        assert_eq!(m.rank(0), 0); // Wa
        assert_eq!(m.rank(2), 1); // Wb
        assert_eq!(m.rank(5), 2); // Wc
        assert_eq!(m.rank(6), 3); // Wd
        assert_eq!(m.rank(8), 4); // We
    }

    #[test]
    fn storage_bytes_rounds_up() {
        assert_eq!(BitMask::zeros(9).storage_bytes(), 2);
        assert_eq!(BitMask::zeros(8).storage_bytes(), 1);
        assert_eq!(BitMask::zeros(0).storage_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn get_out_of_bounds_panics() {
        BitMask::zeros(4).get(4);
    }

    #[test]
    fn debug_is_nonempty() {
        let m = BitMask::from_bits(&[true, false]);
        assert_eq!(format!("{m:?}"), "BitMask[10]");
    }
}
