//! Fully-connected, activation, and reshaping layers.

use procrustes_prng::UniformRng;
use procrustes_tensor::kernel::{self, Blueprint};
use procrustes_tensor::{Init, Scratch, Tensor};

use crate::store::{ComputeBackend, StoreLayout, WeightStore, DEFAULT_FC_EDGE};
use crate::{Layer, ParamKind, ParamTensor};

/// A fully-connected layer: `y = x·Wᵀ + b` with `x: [N, in]`,
/// `W: [out, in]`.
///
/// # Examples
///
/// ```
/// use procrustes_nn::{Layer, Linear};
/// use procrustes_prng::Xorshift64;
/// use procrustes_tensor::Tensor;
/// let mut fc = Linear::new(4, 2, true, &mut Xorshift64::new(1));
/// let y = fc.forward(&Tensor::ones(&[3, 4]), true);
/// assert_eq!(y.shape().dims(), &[3, 2]);
/// ```
pub struct Linear {
    store: WeightStore,
    backend: ComputeBackend,
    weights_dirty: bool,
    fc_edge: usize,
    dweight: Tensor,
    bias: Option<(Tensor, Tensor)>,
    cached_x: Option<Tensor>,
}

impl Linear {
    /// Creates an `in_features → out_features` layer with Xavier init.
    pub fn new<R: UniformRng + ?Sized>(
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        let weight = Init::Xavier.fc_weights(out_features, in_features, rng);
        let dweight = Tensor::zeros(weight.shape().dims());
        let bias = bias.then(|| {
            (
                Tensor::zeros(&[out_features]),
                Tensor::zeros(&[out_features]),
            )
        });
        Self {
            store: WeightStore::new(weight),
            backend: ComputeBackend::Dense,
            weights_dirty: false,
            fc_edge: DEFAULT_FC_EDGE,
            dweight,
            bias,
            cached_x: None,
        }
    }

    /// The `[out, in]` weight matrix.
    pub fn weight(&self) -> &Tensor {
        self.store.tensor()
    }

    /// Mutable weight access. Marks the compute representation stale.
    pub fn weight_mut(&mut self) -> &mut Tensor {
        self.weights_dirty = true;
        self.store.tensor_mut()
    }

    /// The weight store in its active representation.
    pub fn weight_store(&self) -> &WeightStore {
        &self.store
    }

    /// Sets the CSB block edge for this layer (the paper sizes fc
    /// regions per layer). Takes effect at the next resync.
    pub fn set_fc_edge(&mut self, edge: usize) {
        assert!(edge > 0, "fc block edge must be positive");
        self.fc_edge = edge;
        self.weights_dirty = true;
    }

    fn sync_store(&mut self) {
        if self.weights_dirty {
            self.store.sync(
                self.backend,
                StoreLayout::Fc {
                    edge: self.fc_edge,
                    transposed: true,
                },
            );
            self.weights_dirty = false;
        }
    }
}

impl Layer for Linear {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        assert_eq!(x.shape().rank(), 2, "Linear: input must be [N, features]");
        self.sync_store();
        let n = x.shape().dim(0);
        let (out, inp) = {
            let s = self.store.tensor().shape();
            (s.dim(0), s.dim(1))
        };
        let mut y = scratch.take_tensor_any(&[n, out]);
        match &self.store {
            // y = x·Wᵀ as a transposed-rhs blueprint: no materialized
            // `w.transpose2d()` round-trip, same reduction order.
            WeightStore::Dense(w) => kernel::gemm(
                &Blueprint::nt(n, inp, out).with_threads(kernel::default_threads()),
                y.data_mut(),
                x.data(),
                w.data(),
                scratch,
            ),
            WeightStore::Csb { decode, .. } => decode
                .as_ref()
                .expect("fc store always caches its decode")
                .matvec_scratch(x.data(), n, y.data_mut(), scratch),
        }
        if let Some((b, _)) = &self.bias {
            let yd = y.data_mut();
            for ni in 0..n {
                for oi in 0..out {
                    yd[ni * out + oi] += b.data()[oi];
                }
            }
        }
        if train {
            x.clone_into_slot(&mut self.cached_x);
        }
        y
    }

    fn backward_with(&mut self, dy: &Tensor, scratch: &mut Scratch) -> Tensor {
        let x = self
            .cached_x
            .as_ref()
            .expect("Linear::backward called before training-mode forward");
        let (n, o) = (dy.shape().dim(0), dy.shape().dim(1));
        let inp = x.shape().dim(1);
        // dW = dyᵀ · x (dense: any weight may be re-admitted by sparse
        // trainers) as a transposed-lhs blueprint: the kernel reads dy
        // through its [n, o] layout directly, so the old materialized
        // `transpose_into` copy is gone. Same per-element reduction
        // order, bitwise-equal result.
        let mut dw = scratch.take_any(o * inp);
        kernel::gemm(
            &Blueprint::tn(o, n, inp).with_threads(kernel::default_threads()),
            &mut dw,
            dy.data(),
            x.data(),
            scratch,
        );
        assert_eq!(dw.len(), self.dweight.len(), "Linear: dW shape drifted");
        for (a, &b) in self.dweight.data_mut().iter_mut().zip(&dw) {
            *a += b;
        }
        scratch.recycle_vec(dw);
        if let Some((_, db)) = &mut self.bias {
            for ni in 0..n {
                for oi in 0..o {
                    db.data_mut()[oi] += dy.data()[ni * o + oi];
                }
            }
        }
        // dx = dy · W through the transposed CSB fetch when the store is
        // compressed.
        let mut dx = scratch.take_tensor_any(&[n, inp]);
        match &self.store {
            WeightStore::Dense(w) => kernel::gemm(
                &Blueprint::nn(n, o, inp).with_threads(kernel::default_threads()),
                dx.data_mut(),
                dy.data(),
                w.data(),
                scratch,
            ),
            WeightStore::Csb { decode_t, .. } => decode_t
                .as_ref()
                .expect("fc store always caches its transpose")
                .matvec_scratch(dy.data(), n, dx.data_mut(), scratch),
        }
        dx
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamTensor<'_>)) {
        self.weights_dirty = true;
        visitor(ParamTensor {
            name: "fc.weight",
            kind: ParamKind::Prunable,
            values: self.store.tensor_mut(),
            grads: &mut self.dweight,
        });
        if let Some((b, db)) = &mut self.bias {
            visitor(ParamTensor {
                name: "fc.bias",
                kind: ParamKind::Auxiliary,
                values: b,
                grads: db,
            });
        }
    }

    fn set_compute_backend(&mut self, backend: ComputeBackend) {
        self.backend = backend;
        self.weights_dirty = true;
    }

    fn csb_store_count(&self) -> usize {
        usize::from(self.store.is_csb())
    }

    fn name(&self) -> String {
        let s = self.store.tensor().shape();
        format!("Linear({}→{})", s.dim(1), s.dim(0))
    }
}

/// Rectified linear unit, `y = max(x, 0)` — the activation-sparsity source
/// the weight-update phase exploits (§II-B of the paper).
#[derive(Default)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for ReLU {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        if train {
            let mask = self.mask.get_or_insert_with(Vec::new);
            mask.clear();
            mask.extend(x.data().iter().map(|&v| v > 0.0));
        }
        let mut y = scratch.take_tensor_any(x.shape().dims());
        for (o, &v) in y.data_mut().iter_mut().zip(x.data()) {
            *o = v.max(0.0);
        }
        y
    }

    fn backward_with(&mut self, dy: &Tensor, scratch: &mut Scratch) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("ReLU::backward called before training-mode forward");
        assert_eq!(mask.len(), dy.len(), "ReLU: gradient shape changed");
        let mut dx = scratch.take_tensor(dy.shape().dims());
        for ((o, &v), &keep) in dx.data_mut().iter_mut().zip(dy.data()).zip(mask) {
            if keep {
                *o = v;
            }
        }
        dx
    }

    fn name(&self) -> String {
        "ReLU".to_string()
    }
}

/// Flattens `NCHW` activations into `[N, C·H·W]` rows for fc heads.
#[derive(Default)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        let dims = x.shape().dims();
        assert!(!dims.is_empty());
        let n = dims[0];
        let rest: usize = dims[1..].iter().product();
        if train {
            let cached = self.cached_dims.get_or_insert_with(Vec::new);
            cached.clear();
            cached.extend_from_slice(dims);
        }
        // One pooled copy instead of the old clone-then-reshape
        // round-trip (the data is shared layout; only the shape view
        // changes).
        let mut y = scratch.take_any(x.len());
        y.copy_from_slice(x.data());
        Tensor::from_vec(&[n, rest], y)
    }

    fn backward_with(&mut self, dy: &Tensor, scratch: &mut Scratch) -> Tensor {
        let dims = self
            .cached_dims
            .as_ref()
            .expect("Flatten::backward called before training-mode forward");
        let mut dx = scratch.take_any(dy.len());
        dx.copy_from_slice(dy.data());
        Tensor::from_vec(dims, dx)
    }

    fn name(&self) -> String {
        "Flatten".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use procrustes_prng::Xorshift64;
    use procrustes_tensor::gradcheck;

    #[test]
    fn linear_matches_manual() {
        let mut fc = Linear::new(2, 2, true, &mut Xorshift64::new(1));
        *fc.weight_mut() = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = fc.forward(&Tensor::from_vec(&[1, 2], vec![5.0, 6.0]), false);
        // y = [5*1+6*2, 5*3+6*4] = [17, 39]
        assert_eq!(y.data(), &[17.0, 39.0]);
    }

    #[test]
    fn linear_weight_gradcheck() {
        let mut rng = Xorshift64::new(2);
        let mut fc = Linear::new(3, 2, true, &mut rng);
        let x = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let y = fc.forward(&x, true);
        fc.backward(&Tensor::ones(y.shape().dims()));
        let weight = fc.weight().clone();
        let mut grad = None;
        fc.visit_params(&mut |p| {
            if p.name == "fc.weight" {
                grad = Some(p.grads.clone());
            }
        });
        let report = gradcheck::check(&weight, &grad.unwrap(), 6, 1e-2, |w| {
            let mut probe = Linear::new(3, 2, true, &mut Xorshift64::new(2));
            *probe.weight_mut() = w.clone();
            probe.forward(&x, false).sum()
        });
        assert!(report.passes(1e-2), "err {}", report.max_rel_err);
    }

    #[test]
    fn linear_input_gradcheck() {
        let mut rng = Xorshift64::new(3);
        let mut fc = Linear::new(3, 2, false, &mut rng);
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let y = fc.forward(&x, true);
        let dx = fc.backward(&Tensor::ones(y.shape().dims()));
        let report = gradcheck::check(&x, &dx, 6, 1e-2, |xt| fc.forward(xt, false).sum());
        assert!(report.passes(1e-2), "err {}", report.max_rel_err);
    }

    #[test]
    fn relu_zeroes_negative_gradients() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(&[1, 4], vec![-2.0, -0.5, 0.5, 2.0]);
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 2.0]);
        let dx = relu.backward(&Tensor::ones(&[1, 4]));
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn relu_creates_activation_sparsity() {
        let mut relu = ReLU::new();
        let x = Tensor::randn(&[1, 1000], 1.0, &mut Xorshift64::new(4));
        let y = relu.forward(&x, false);
        // Roughly half of standard normal samples are negative.
        let sparsity = y.sparsity();
        assert!((0.4..0.6).contains(&sparsity), "sparsity {sparsity}");
    }

    #[test]
    fn flatten_roundtrip() {
        let mut fl = Flatten::new();
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| (i[0] + i[1] + i[2] + i[3]) as f32);
        let y = fl.forward(&x, true);
        assert_eq!(y.shape().dims(), &[2, 12]);
        let dx = fl.backward(&y);
        assert_eq!(dx, x);
    }
}
