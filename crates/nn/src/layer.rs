//! The module interface: forward, backward, and parameter visitation.

use procrustes_tensor::{Scratch, Tensor};

/// Classification of a parameter tensor for sparse training.
///
/// Dropback-style algorithms prune only the large weight tensors of conv
/// and fc layers; biases and normalization parameters are tiny and stay
/// dense (they are a negligible fraction of the footprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// A conv/fc weight tensor — subject to pruning.
    Prunable,
    /// Bias, batch-norm scale/shift, … — never pruned.
    Auxiliary,
}

/// A borrowed view of one parameter tensor and its gradient, yielded by
/// [`Layer::visit_params`].
#[derive(Debug)]
pub struct ParamTensor<'a> {
    /// Human-readable parameter name (diagnostics only).
    pub name: &'static str,
    /// Pruning classification.
    pub kind: ParamKind,
    /// The parameter values.
    pub values: &'a mut Tensor,
    /// The gradient accumulated by the latest `backward`.
    pub grads: &'a mut Tensor,
}

/// A differentiable module.
///
/// The contract mirrors classic define-by-run frameworks:
///
/// 1. [`forward`](Layer::forward) caches whatever the backward pass needs;
/// 2. [`backward`](Layer::backward) consumes the upstream gradient `dy`
///    and returns `dx`, accumulating parameter gradients internally;
/// 3. [`visit_params`](Layer::visit_params) exposes `(values, grads)`
///    pairs in a **deterministic order** — sparse trainers rely on this
///    order to assign stable global weight indices (the WR unit of the
///    paper regenerates initial values keyed by exactly these indices).
///
/// # Examples
///
/// ```
/// use procrustes_nn::{Layer, ReLU};
/// use procrustes_tensor::Tensor;
/// let mut relu = ReLU::new();
/// let y = relu.forward(&Tensor::from_vec(&[1, 3], vec![-1.0, 0.0, 2.0]), true);
/// assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
/// let dx = relu.backward(&Tensor::ones(&[1, 3]));
/// assert_eq!(dx.data(), &[0.0, 0.0, 1.0]);
/// ```
pub trait Layer {
    /// Computes the layer output, drawing every transient buffer — the
    /// output tensor included — from `scratch`. `train` selects training
    /// behaviour (batch statistics in
    /// [`BatchNorm2d`](crate::BatchNorm2d), caching for backward).
    ///
    /// Callers that keep a `Scratch` alive across steps (the trainers
    /// do) get an allocation-free steady state: once shapes stabilize,
    /// every buffer request is served from the pool. Recycle the
    /// returned tensor into the same scratch when done with it.
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor;

    /// Back-propagates `dy`, returning `dx` drawn from `scratch`.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before a training-mode forward.
    fn backward_with(&mut self, dy: &Tensor, scratch: &mut Scratch) -> Tensor;

    /// Computes the layer output with a throwaway workspace.
    ///
    /// Convenience wrapper over [`forward_with`](Layer::forward_with)
    /// for tests, examples, and other cold paths; hot loops should hold
    /// a [`Scratch`] and call `forward_with` so buffers are reused.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut scratch = Scratch::new();
        self.forward_with(x, train, &mut scratch)
    }

    /// Back-propagates `dy` with a throwaway workspace (see
    /// [`backward_with`](Layer::backward_with)).
    ///
    /// # Panics
    ///
    /// Implementations panic if called before a training-mode forward.
    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut scratch = Scratch::new();
        self.backward_with(dy, &mut scratch)
    }

    /// Visits every parameter tensor in a fixed, deterministic order.
    ///
    /// The default is a no-op for parameter-free layers.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamTensor<'_>)) {
        let _ = visitor;
    }

    /// Sets all parameter gradients to zero.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| {
            p.grads.map_inplace(|_| 0.0);
        });
    }

    /// Selects which compute backend the layer's weight kernels run on
    /// (see [`ComputeBackend`](crate::ComputeBackend)). Containers
    /// propagate to their children; layers without a sparse path ignore
    /// it. Results are identical under every backend — only the kernels
    /// (and their cost) change.
    fn set_compute_backend(&mut self, backend: crate::ComputeBackend) {
        let _ = backend;
    }

    /// Number of weight stores (in this layer and its children) whose
    /// compressed CSB representation is currently active — diagnostics
    /// for backend promotion, e.g. after an `Auto` resync.
    fn csb_store_count(&self) -> usize {
        0
    }

    /// A short human-readable description (for model summaries).
    fn name(&self) -> String;
}

/// Counts the parameters of a layer, split by [`ParamKind`].
///
/// Returns `(prunable, auxiliary)`.
///
/// # Examples
///
/// ```
/// use procrustes_nn::{layer_param_counts, Conv2d};
/// use procrustes_prng::Xorshift64;
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, true, &mut Xorshift64::new(0));
/// let (prunable, aux) = layer_param_counts(&mut conv);
/// assert_eq!(prunable, 8 * 3 * 3 * 3);
/// assert_eq!(aux, 8);
/// ```
pub fn layer_param_counts(layer: &mut dyn Layer) -> (usize, usize) {
    let mut prunable = 0;
    let mut aux = 0;
    layer.visit_params(&mut |p| match p.kind {
        ParamKind::Prunable => prunable += p.values.len(),
        ParamKind::Auxiliary => aux += p.values.len(),
    });
    (prunable, aux)
}
