//! NCHW tensor helpers used by composite blocks.

use procrustes_tensor::{Scratch, Tensor};

/// Concatenates NCHW tensors along the channel axis (DenseNet's join).
///
/// # Panics
///
/// Panics if `parts` is empty or batch/spatial extents disagree.
///
/// # Examples
///
/// ```
/// use procrustes_nn::concat_channels;
/// use procrustes_tensor::Tensor;
/// let a = Tensor::ones(&[1, 2, 2, 2]);
/// let b = Tensor::zeros(&[1, 1, 2, 2]);
/// let c = concat_channels(&[&a, &b]);
/// assert_eq!(c.shape().dims(), &[1, 3, 2, 2]);
/// ```
pub fn concat_channels(parts: &[&Tensor]) -> Tensor {
    concat_channels_with(parts, &mut Scratch::new())
}

/// [`concat_channels`] drawing the output from a scratch pool (the
/// hot-loop form used by `DenseBlock`).
///
/// # Panics
///
/// Same conditions as [`concat_channels`].
pub fn concat_channels_with(parts: &[&Tensor], scratch: &mut Scratch) -> Tensor {
    assert!(!parts.is_empty(), "concat_channels: no tensors given");
    let first = parts[0].shape();
    assert_eq!(first.rank(), 4, "concat_channels: tensors must be NCHW");
    let (n, h, w) = (first.dim(0), first.dim(2), first.dim(3));
    let mut c_total = 0;
    for t in parts {
        let s = t.shape();
        assert_eq!(s.rank(), 4, "concat_channels: tensors must be NCHW");
        assert!(
            s.dim(0) == n && s.dim(2) == h && s.dim(3) == w,
            "concat_channels: batch/spatial mismatch {s} vs {first}"
        );
        c_total += s.dim(1);
    }
    let mut out = scratch.take_tensor_any(&[n, c_total, h, w]);
    let plane = h * w;
    let od = out.data_mut();
    for ni in 0..n {
        let mut c_off = 0;
        for t in parts {
            let c = t.shape().dim(1);
            let src = &t.data()[ni * c * plane..(ni + 1) * c * plane];
            let dst_start = (ni * c_total + c_off) * plane;
            od[dst_start..dst_start + c * plane].copy_from_slice(src);
            c_off += c;
        }
    }
    out
}

/// Extracts channels `[from, to)` of an NCHW tensor (DenseNet's split for
/// the backward pass).
///
/// # Panics
///
/// Panics if the range is empty, reversed, or out of bounds.
///
/// # Examples
///
/// ```
/// use procrustes_nn::{concat_channels, slice_channels};
/// use procrustes_tensor::Tensor;
/// let a = Tensor::full(&[1, 2, 2, 2], 1.0);
/// let b = Tensor::full(&[1, 1, 2, 2], 2.0);
/// let c = concat_channels(&[&a, &b]);
/// assert_eq!(slice_channels(&c, 2, 3), b);
/// ```
pub fn slice_channels(x: &Tensor, from: usize, to: usize) -> Tensor {
    slice_channels_with(x, from, to, &mut Scratch::new())
}

/// [`slice_channels`] drawing the output from a scratch pool (the
/// hot-loop form used by `DenseBlock`).
///
/// # Panics
///
/// Same conditions as [`slice_channels`].
pub fn slice_channels_with(x: &Tensor, from: usize, to: usize, scratch: &mut Scratch) -> Tensor {
    let s = x.shape();
    assert_eq!(s.rank(), 4, "slice_channels: tensor must be NCHW");
    let (n, c, h, w) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
    assert!(
        from < to && to <= c,
        "slice_channels: bad range {from}..{to} of {c}"
    );
    let cs = to - from;
    let plane = h * w;
    let mut out = scratch.take_tensor_any(&[n, cs, h, w]);
    let od = out.data_mut();
    for ni in 0..n {
        let src = &x.data()[(ni * c + from) * plane..(ni * c + to) * plane];
        od[ni * cs * plane..(ni + 1) * cs * plane].copy_from_slice(src);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_then_slice_roundtrips() {
        let a = Tensor::from_fn(&[2, 3, 2, 2], |i| {
            (i[0] * 100 + i[1] * 10 + i[2] * 2 + i[3]) as f32
        });
        let b = Tensor::from_fn(&[2, 2, 2, 2], |i| -((i[0] * 100 + i[1] * 10) as f32));
        let c = concat_channels(&[&a, &b]);
        assert_eq!(slice_channels(&c, 0, 3), a);
        assert_eq!(slice_channels(&c, 3, 5), b);
    }

    #[test]
    fn concat_three_parts() {
        let parts: Vec<Tensor> = (0..3)
            .map(|i| Tensor::full(&[1, 1, 1, 1], i as f32))
            .collect();
        let refs: Vec<&Tensor> = parts.iter().collect();
        let c = concat_channels(&refs);
        assert_eq!(c.data(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "batch/spatial mismatch")]
    fn concat_rejects_mismatched_spatial() {
        let a = Tensor::ones(&[1, 1, 2, 2]);
        let b = Tensor::ones(&[1, 1, 3, 3]);
        concat_channels(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn slice_rejects_reversed_range() {
        let a = Tensor::ones(&[1, 3, 2, 2]);
        slice_channels(&a, 2, 2);
    }
}
