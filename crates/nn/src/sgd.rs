//! Stochastic gradient descent — the dense baseline optimizer
//! (the paper's “baseline (SGD)” curves).

use crate::Layer;

/// SGD with optional momentum and weight decay.
///
/// # Examples
///
/// ```
/// use procrustes_nn::{Layer, Linear, Sgd};
/// use procrustes_prng::Xorshift64;
/// use procrustes_tensor::Tensor;
///
/// let mut fc = Linear::new(2, 1, false, &mut Xorshift64::new(0));
/// let x = Tensor::ones(&[1, 2]);
/// let y = fc.forward(&x, true);
/// fc.backward(&Tensor::ones(y.shape().dims()));
/// let before = fc.weight().clone();
/// Sgd::new(0.1).step(&mut fc);
/// assert_ne!(fc.weight().data(), before.data());
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "Sgd: learning rate must be positive, got {lr}");
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Adds classical momentum.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= momentum < 1`.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        self.momentum = momentum;
        self
    }

    /// Adds L2 weight decay.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = weight_decay;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "Sgd: learning rate must be positive, got {lr}");
        self.lr = lr;
    }

    /// Applies one update step to every parameter of `model` and zeroes
    /// the gradients.
    ///
    /// Velocity slots are keyed by visitation order, which [`Layer`]
    /// guarantees to be deterministic.
    pub fn step(&mut self, model: &mut dyn Layer) {
        let lr = self.lr;
        let momentum = self.momentum;
        let weight_decay = self.weight_decay;
        let velocity = &mut self.velocity;
        let mut slot = 0usize;
        model.visit_params(&mut |p| {
            if velocity.len() <= slot {
                velocity.push(vec![0.0; p.values.len()]);
            }
            let vel = &mut velocity[slot];
            assert_eq!(
                vel.len(),
                p.values.len(),
                "Sgd: model structure changed between steps"
            );
            for ((w, g), v) in p
                .values
                .data_mut()
                .iter_mut()
                .zip(p.grads.data_mut().iter_mut())
                .zip(vel.iter_mut())
            {
                let grad = *g + weight_decay * *w;
                *v = momentum * *v + grad;
                *w -= lr * *v;
                *g = 0.0;
            }
            slot += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, SoftmaxCrossEntropy};
    use procrustes_prng::Xorshift64;
    use procrustes_tensor::Tensor;

    #[test]
    fn drives_loss_down_on_separable_problem() {
        let mut rng = Xorshift64::new(3);
        let mut fc = Linear::new(2, 2, true, &mut rng);
        let mut opt = Sgd::new(0.5).with_momentum(0.9);
        // Class 0: x = (1, 0); class 1: x = (0, 1).
        let x = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let labels = [0usize, 1];
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..50 {
            let logits = fc.forward(&x, true);
            let (loss, dlogits) = SoftmaxCrossEntropy.loss_and_grad(&logits, &labels);
            fc.backward(&dlogits);
            opt.step(&mut fc);
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(last < first.unwrap() * 0.2, "{} -> {last}", first.unwrap());
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut rng = Xorshift64::new(4);
        let mut fc = Linear::new(2, 2, false, &mut rng);
        let y = fc.forward(&Tensor::ones(&[1, 2]), true);
        fc.backward(&Tensor::ones(y.shape().dims()));
        Sgd::new(0.1).step(&mut fc);
        fc.visit_params(&mut |p| assert_eq!(p.grads.sum(), 0.0));
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut rng = Xorshift64::new(5);
        let mut fc = Linear::new(2, 2, false, &mut rng);
        let norm_before = fc.weight().norm_sq();
        // Forward in train mode but backprop zero gradient.
        let y = fc.forward(&Tensor::ones(&[1, 2]), true);
        fc.backward(&Tensor::zeros(y.shape().dims()));
        Sgd::new(0.1).with_weight_decay(0.5).step(&mut fc);
        assert!(fc.weight().norm_sq() < norm_before);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_rejected() {
        Sgd::new(0.0);
    }
}
