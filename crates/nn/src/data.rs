//! Seeded synthetic image-classification datasets.
//!
//! CIFAR-10 and ImageNet are not available in this environment, so the
//! accuracy experiments (paper Figs 6, 7, 15, 16; Table II) run on
//! procedurally generated class-conditional images instead. Each class is
//! a distinct oriented-sinusoid + Gaussian-blob texture; heavy pixel noise
//! makes the task non-trivial, yet small CNNs reach high accuracy — the
//! regime needed to compare training-algorithm variants (the point of the
//! substituted experiments; see docs/PAPER_MAP.md "Substitutions").

use procrustes_prng::{UniformRng, Xorshift64};
use procrustes_tensor::Tensor;

/// A generator of labelled synthetic RGB images.
///
/// # Examples
///
/// ```
/// use procrustes_nn::data::SyntheticImages;
/// use procrustes_prng::Xorshift64;
///
/// let data = SyntheticImages::cifar_like(10, 42);
/// let (x, labels) = data.batch(4, &mut Xorshift64::new(0));
/// assert_eq!(x.shape().dims(), &[4, 3, 32, 32]);
/// assert_eq!(labels.len(), 4);
/// assert!(labels.iter().all(|&l| l < 10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticImages {
    classes: usize,
    height: usize,
    width: usize,
    noise_std: f32,
    seed: u64,
}

impl SyntheticImages {
    /// A 32×32×3 dataset standing in for CIFAR-10.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn cifar_like(classes: usize, seed: u64) -> Self {
        Self::new(classes, 32, 32, 0.35, seed)
    }

    /// A 64×64×3 dataset standing in for (down-scaled) ImageNet.
    pub fn imagenet_like(classes: usize, seed: u64) -> Self {
        Self::new(classes, 64, 64, 0.45, seed)
    }

    /// Fully custom generator.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0` or a spatial extent is zero.
    pub fn new(classes: usize, height: usize, width: usize, noise_std: f32, seed: u64) -> Self {
        assert!(classes > 0, "SyntheticImages: need at least one class");
        assert!(height > 0 && width > 0, "SyntheticImages: empty image");
        Self {
            classes,
            height,
            width,
            noise_std,
            seed,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Image extents `(channels, height, width)`.
    pub fn image_dims(&self) -> (usize, usize, usize) {
        (3, self.height, self.width)
    }

    /// Class-conditional texture parameters, derived deterministically
    /// from the dataset seed and the class id.
    fn class_params(&self, label: usize) -> (f32, f32, f32, f32, [f32; 3]) {
        let mut rng = Xorshift64::new(self.seed ^ (label as u64).wrapping_mul(0x9E37));
        let theta = std::f32::consts::PI * rng.next_f32();
        let freq = 1.5 + 3.0 * rng.next_f32();
        let blob_h = rng.next_f32();
        let blob_w = rng.next_f32();
        let phases = [
            rng.next_f32() * std::f32::consts::TAU,
            rng.next_f32() * std::f32::consts::TAU,
            rng.next_f32() * std::f32::consts::TAU,
        ];
        (theta, freq, blob_h, blob_w, phases)
    }

    /// Writes one image of class `label` into `out` (length `3·H·W`),
    /// using `rng` for the noise.
    fn render<R: UniformRng + ?Sized>(&self, label: usize, out: &mut [f32], rng: &mut R) {
        let (theta, freq, blob_h, blob_w, phases) = self.class_params(label);
        let (h, w) = (self.height, self.width);
        let (ct, st) = (theta.cos(), theta.sin());
        let sigma2 = 2.0 * (0.15 * h as f32).powi(2);
        for c in 0..3 {
            for i in 0..h {
                for j in 0..w {
                    let u = i as f32 / h as f32;
                    let v = j as f32 / w as f32;
                    let wave = (std::f32::consts::TAU * freq * (u * ct + v * st) + phases[c]).sin();
                    let dh = (i as f32 - blob_h * h as f32).powi(2);
                    let dw = (j as f32 - blob_w * w as f32).powi(2);
                    let blob = (-(dh + dw) / sigma2).exp();
                    let noise = (rng.next_f32() + rng.next_f32() + rng.next_f32() - 1.5) * 2.0;
                    out[(c * h + i) * w + j] = 0.5 * wave + 0.8 * blob + self.noise_std * noise;
                }
            }
        }
    }

    /// Draws a batch of `n` images with uniformly random labels.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn batch<R: UniformRng + ?Sized>(&self, n: usize, rng: &mut R) -> (Tensor, Vec<usize>) {
        assert!(n > 0, "batch: need at least one sample");
        let (ch, h, w) = self.image_dims();
        let mut x = Tensor::zeros(&[n, ch, h, w]);
        let mut labels = Vec::with_capacity(n);
        let plane = ch * h * w;
        for ni in 0..n {
            let label = rng.next_below(self.classes as u64) as usize;
            labels.push(label);
            self.render(label, &mut x.data_mut()[ni * plane..(ni + 1) * plane], rng);
        }
        (x, labels)
    }

    /// A deterministic evaluation set: `n` images cycling through the
    /// classes, rendered with a noise stream derived from `eval_seed`.
    pub fn fixed_set(&self, n: usize, eval_seed: u64) -> (Tensor, Vec<usize>) {
        assert!(n > 0, "fixed_set: need at least one sample");
        let (ch, h, w) = self.image_dims();
        let mut x = Tensor::zeros(&[n, ch, h, w]);
        let mut labels = Vec::with_capacity(n);
        let plane = ch * h * w;
        let mut rng = Xorshift64::new(eval_seed);
        for ni in 0..n {
            let label = ni % self.classes;
            labels.push(label);
            self.render(
                label,
                &mut x.data_mut()[ni * plane..(ni + 1) * plane],
                &mut rng,
            );
        }
        (x, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_have_valid_labels_and_finite_pixels() {
        let data = SyntheticImages::cifar_like(10, 1);
        let (x, labels) = data.batch(16, &mut Xorshift64::new(2));
        assert_eq!(labels.len(), 16);
        assert!(labels.iter().all(|&l| l < 10));
        assert!(x.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fixed_set_is_deterministic() {
        let data = SyntheticImages::cifar_like(4, 9);
        let (a, la) = data.fixed_set(8, 3);
        let (b, lb) = data.fixed_set(8, 3);
        assert_eq!(a, b);
        assert_eq!(la, lb);
        assert_eq!(la, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Noise-free renders of different classes must differ a lot more
        // than two renders of the same class.
        let data = SyntheticImages::new(10, 16, 16, 0.0, 7);
        let mut rng = Xorshift64::new(1);
        let mut img = |label| {
            let mut buf = vec![0.0f32; 3 * 16 * 16];
            data.render(label, &mut buf, &mut rng);
            buf
        };
        let a0 = img(0);
        let a0b = img(0);
        let a1 = img(1);
        let d_same: f32 = a0.iter().zip(&a0b).map(|(x, y)| (x - y).powi(2)).sum();
        let d_diff: f32 = a0.iter().zip(&a1).map(|(x, y)| (x - y).powi(2)).sum();
        assert!(d_same < 1e-9, "same class should render identically");
        assert!(d_diff > 1.0, "classes too similar: {d_diff}");
    }

    #[test]
    fn imagenet_like_is_larger() {
        let data = SyntheticImages::imagenet_like(10, 1);
        assert_eq!(data.image_dims(), (3, 64, 64));
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_rejected() {
        SyntheticImages::cifar_like(0, 1);
    }
}
