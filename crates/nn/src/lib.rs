//! A compact DNN training framework — the workload substrate of the
//! Procrustes reproduction.
//!
//! The paper evaluates sparse training on five CNNs (VGG-S, ResNet18,
//! MobileNet v2, WRN-28-10, DenseNet) trained with PyTorch. This crate
//! replaces that substrate with a from-scratch implementation providing:
//!
//! * [`Layer`] — the forward/backward module interface, with parameter
//!   visitation ([`Layer::visit_params`]) that gives sparse-training
//!   algorithms flat, deterministic access to every prunable weight;
//! * the layer zoo the paper's networks need: [`Conv2d`],
//!   [`DepthwiseConv2d`], [`Linear`], [`BatchNorm2d`], [`ReLU`],
//!   [`MaxPool2d`], [`AvgPool2d`], [`GlobalAvgPool`], [`Flatten`], plus
//!   the composite [`Residual`], [`DenseBlock`], and [`DwSeparable`]
//!   blocks;
//! * [`Sequential`] — the container all models here are built from;
//! * [`ComputeBackend`] / [`WeightStore`] — the sparse execution path:
//!   conv and fc layers can run their weights through CSB-compressed
//!   kernels (`procrustes-sparse`) instead of dense ones, with bitwise
//!   identical results, so training-time weight sparsity becomes skipped
//!   work rather than multiplied zeros;
//! * [`SoftmaxCrossEntropy`] and [`Sgd`] — loss and baseline optimizer;
//! * [`data`] — seeded synthetic image classification datasets standing in
//!   for CIFAR-10/ImageNet (see docs/PAPER_MAP.md "Substitutions" for the
//!   rationale);
//! * [`arch`] — exact layer-geometry tables for the paper's five
//!   *full-size* networks (these feed the accelerator simulator, which
//!   needs geometry and sparsity, never trained values), plus small
//!   trainable variants of each family.
//!
//! # Examples
//!
//! Train a tiny CNN on a synthetic batch for one step:
//!
//! ```
//! use procrustes_nn::{arch, data, Layer, Sgd, SoftmaxCrossEntropy};
//! use procrustes_prng::Xorshift64;
//!
//! let mut rng = Xorshift64::new(0);
//! let mut model = arch::tiny_vgg(10, &mut rng);
//! let dataset = data::SyntheticImages::cifar_like(10, 1);
//! let (x, labels) = dataset.batch(8, &mut rng);
//!
//! let logits = model.forward(&x, true);
//! let loss = SoftmaxCrossEntropy;
//! let (value, dlogits) = loss.loss_and_grad(&logits, &labels);
//! assert!(value > 0.0);
//! model.backward(&dlogits);
//! Sgd::new(0.05).step(&mut model);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
mod batchnorm;
mod blocks;
mod conv;
pub mod data;
mod layer;
mod linear;
mod loss;
mod pool;
mod sequential;
mod sgd;
mod store;
mod util;

pub use batchnorm::BatchNorm2d;
pub use blocks::{DenseBlock, DwSeparable, Residual};
pub use conv::{Conv2d, DepthwiseConv2d};
pub use layer::{layer_param_counts, Layer, ParamKind, ParamTensor};
pub use linear::{Flatten, Linear, ReLU};
pub use loss::{accuracy, SoftmaxCrossEntropy};
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use sequential::Sequential;
pub use sgd::Sgd;
pub use store::{ComputeBackend, StoreLayout, WeightStore, DEFAULT_FC_EDGE};
pub use util::{concat_channels, concat_channels_with, slice_channels, slice_channels_with};

// The scratch workspace threaded through `Layer::forward_with` /
// `backward_with`; re-exported so trainers need not depend on
// `procrustes-tensor` directly.
pub use procrustes_tensor::Scratch;
