//! Composite blocks: residual (ResNet/WRN), dense (DenseNet), and
//! depthwise-separable (MobileNet) units.

use procrustes_prng::UniformRng;
use procrustes_tensor::{Scratch, Tensor};

use crate::util::{concat_channels_with, slice_channels_with};
use crate::{BatchNorm2d, Conv2d, DepthwiseConv2d, Layer, ParamTensor, ReLU, Sequential};

/// A residual block: `y = main(x) + shortcut(x)`.
///
/// `shortcut` is identity when `None` (requires matching shapes), or a
/// projection (1×1 strided conv + BN) for dimension changes.
///
/// # Examples
///
/// ```
/// use procrustes_nn::{Layer, Residual};
/// use procrustes_prng::Xorshift64;
/// use procrustes_tensor::Tensor;
/// let mut rng = Xorshift64::new(0);
/// let mut block = Residual::basic(8, 8, 1, &mut rng);
/// let y = block.forward(&Tensor::ones(&[1, 8, 4, 4]), true);
/// assert_eq!(y.shape().dims(), &[1, 8, 4, 4]);
/// ```
pub struct Residual {
    main: Sequential,
    shortcut: Option<Sequential>,
    post_relu: ReLU,
    saw_forward: bool,
}

impl Residual {
    /// Builds a block from explicit main/shortcut paths.
    pub fn new(main: Sequential, shortcut: Option<Sequential>) -> Self {
        Self {
            main,
            shortcut,
            post_relu: ReLU::new(),
            saw_forward: false,
        }
    }

    /// The standard ResNet/WRN basic block: two 3×3 conv+BN (ReLU between),
    /// with a projection shortcut when shape changes.
    pub fn basic<R: UniformRng + ?Sized>(
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        rng: &mut R,
    ) -> Self {
        let mut main = Sequential::new();
        main.push(Conv2d::new(in_ch, out_ch, 3, stride, 1, false, rng));
        main.push(BatchNorm2d::new(out_ch));
        main.push(ReLU::new());
        main.push(Conv2d::new(out_ch, out_ch, 3, 1, 1, false, rng));
        main.push(BatchNorm2d::new(out_ch));
        let shortcut = (in_ch != out_ch || stride != 1).then(|| {
            let mut s = Sequential::new();
            s.push(Conv2d::new(in_ch, out_ch, 1, stride, 0, false, rng));
            s.push(BatchNorm2d::new(out_ch));
            s
        });
        Self::new(main, shortcut)
    }
}

impl Layer for Residual {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        let mut main = self.main.forward_with(x, train, scratch);
        // The skip path adds straight into `main` — no x clone, no sum
        // tensor (a + b elementwise, same order as the old zip).
        match &mut self.shortcut {
            Some(s) => {
                let skip = s.forward_with(x, train, scratch);
                assert!(
                    main.shape().same_as(skip.shape()),
                    "Residual: main {} vs shortcut {} shape mismatch",
                    main.shape(),
                    skip.shape()
                );
                for (a, &b) in main.data_mut().iter_mut().zip(skip.data()) {
                    *a += b;
                }
                scratch.recycle(skip);
            }
            None => {
                assert!(
                    main.shape().same_as(x.shape()),
                    "Residual: main {} vs shortcut {} shape mismatch",
                    main.shape(),
                    x.shape()
                );
                for (a, &b) in main.data_mut().iter_mut().zip(x.data()) {
                    *a += b;
                }
            }
        }
        if train {
            self.saw_forward = true;
        }
        let y = self.post_relu.forward_with(&main, train, scratch);
        scratch.recycle(main);
        y
    }

    fn backward_with(&mut self, dy: &Tensor, scratch: &mut Scratch) -> Tensor {
        assert!(
            self.saw_forward,
            "Residual::backward called before training-mode forward"
        );
        let dsum = self.post_relu.backward_with(dy, scratch);
        let mut dmain = self.main.backward_with(&dsum, scratch);
        match &mut self.shortcut {
            Some(s) => {
                let dskip = s.backward_with(&dsum, scratch);
                for (a, &b) in dmain.data_mut().iter_mut().zip(dskip.data()) {
                    *a += b;
                }
                scratch.recycle(dskip);
            }
            None => {
                for (a, &b) in dmain.data_mut().iter_mut().zip(dsum.data()) {
                    *a += b;
                }
            }
        }
        scratch.recycle(dsum);
        dmain
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamTensor<'_>)) {
        self.main.visit_params(visitor);
        if let Some(s) = &mut self.shortcut {
            s.visit_params(visitor);
        }
    }

    fn set_compute_backend(&mut self, backend: crate::ComputeBackend) {
        self.main.set_compute_backend(backend);
        if let Some(s) = &mut self.shortcut {
            s.set_compute_backend(backend);
        }
    }

    fn csb_store_count(&self) -> usize {
        self.main.csb_store_count() + self.shortcut.as_ref().map_or(0, |s| s.csb_store_count())
    }

    fn name(&self) -> String {
        format!(
            "Residual(main: {}, shortcut: {})",
            self.main.name(),
            self.shortcut
                .as_ref()
                .map_or("identity".to_string(), |s| s.name())
        )
    }
}

/// One DenseNet *dense layer*: `y = concat(x, conv(relu(bn(x))))`.
///
/// Stacking `L` of these gives a dense block whose channel count grows by
/// the growth rate each layer.
pub struct DenseBlock {
    bn: BatchNorm2d,
    relu: ReLU,
    conv: Conv2d,
    in_ch: usize,
    growth: usize,
}

impl DenseBlock {
    /// Creates a dense layer taking `in_ch` channels and producing
    /// `in_ch + growth`.
    pub fn new<R: UniformRng + ?Sized>(in_ch: usize, growth: usize, rng: &mut R) -> Self {
        Self {
            bn: BatchNorm2d::new(in_ch),
            relu: ReLU::new(),
            conv: Conv2d::new(in_ch, growth, 3, 1, 1, false, rng),
            in_ch,
            growth,
        }
    }
}

impl Layer for DenseBlock {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        assert_eq!(x.shape().dim(1), self.in_ch, "DenseBlock: channel mismatch");
        let h = self.bn.forward_with(x, train, scratch);
        let h2 = self.relu.forward_with(&h, train, scratch);
        scratch.recycle(h);
        let new = self.conv.forward_with(&h2, train, scratch);
        scratch.recycle(h2);
        let y = concat_channels_with(&[x, &new], scratch);
        scratch.recycle(new);
        y
    }

    fn backward_with(&mut self, dy: &Tensor, scratch: &mut Scratch) -> Tensor {
        let mut dx_passthrough = slice_channels_with(dy, 0, self.in_ch, scratch);
        let dnew = slice_channels_with(dy, self.in_ch, self.in_ch + self.growth, scratch);
        let dh = self.conv.backward_with(&dnew, scratch);
        scratch.recycle(dnew);
        let dh2 = self.relu.backward_with(&dh, scratch);
        scratch.recycle(dh);
        let dx_path = self.bn.backward_with(&dh2, scratch);
        scratch.recycle(dh2);
        for (a, &b) in dx_passthrough.data_mut().iter_mut().zip(dx_path.data()) {
            *a += b;
        }
        scratch.recycle(dx_path);
        dx_passthrough
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamTensor<'_>)) {
        self.bn.visit_params(visitor);
        self.conv.visit_params(visitor);
    }

    fn set_compute_backend(&mut self, backend: crate::ComputeBackend) {
        self.conv.set_compute_backend(backend);
    }

    fn csb_store_count(&self) -> usize {
        self.conv.csb_store_count()
    }

    fn name(&self) -> String {
        format!("DenseBlock({}+{})", self.in_ch, self.growth)
    }
}

/// A depthwise-separable unit: depthwise 3×3 + BN + ReLU, then pointwise
/// 1×1 + BN + ReLU (the MobileNet building block).
pub struct DwSeparable {
    inner: Sequential,
}

impl DwSeparable {
    /// Creates an `in_ch → out_ch` separable block with the given stride
    /// on the depthwise stage.
    pub fn new<R: UniformRng + ?Sized>(
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        rng: &mut R,
    ) -> Self {
        let mut inner = Sequential::new();
        inner.push(DepthwiseConv2d::new(in_ch, 3, stride, 1, rng));
        inner.push(BatchNorm2d::new(in_ch));
        inner.push(ReLU::new());
        inner.push(Conv2d::new(in_ch, out_ch, 1, 1, 0, false, rng));
        inner.push(BatchNorm2d::new(out_ch));
        inner.push(ReLU::new());
        Self { inner }
    }
}

impl Layer for DwSeparable {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        self.inner.forward_with(x, train, scratch)
    }

    fn backward_with(&mut self, dy: &Tensor, scratch: &mut Scratch) -> Tensor {
        self.inner.backward_with(dy, scratch)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamTensor<'_>)) {
        self.inner.visit_params(visitor);
    }

    fn set_compute_backend(&mut self, backend: crate::ComputeBackend) {
        self.inner.set_compute_backend(backend);
    }

    fn csb_store_count(&self) -> usize {
        self.inner.csb_store_count()
    }

    fn name(&self) -> String {
        "DwSeparable".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice_channels;
    use procrustes_prng::Xorshift64;
    use procrustes_tensor::gradcheck;

    #[test]
    fn residual_identity_shapes() {
        let mut rng = Xorshift64::new(1);
        let mut block = Residual::basic(4, 4, 1, &mut rng);
        let x = Tensor::randn(&[2, 4, 6, 6], 1.0, &mut rng);
        let y = block.forward(&x, true);
        assert_eq!(y.shape().dims(), x.shape().dims());
        let dx = block.backward(&Tensor::ones(y.shape().dims()));
        assert_eq!(dx.shape().dims(), x.shape().dims());
    }

    #[test]
    fn residual_projection_on_stride() {
        let mut rng = Xorshift64::new(2);
        let mut block = Residual::basic(4, 8, 2, &mut rng);
        let x = Tensor::randn(&[1, 4, 8, 8], 1.0, &mut rng);
        let y = block.forward(&x, true);
        assert_eq!(y.shape().dims(), &[1, 8, 4, 4]);
    }

    #[test]
    fn residual_input_gradcheck() {
        let mut rng = Xorshift64::new(3);
        // Keep it BN-free for numeric stability: plain conv main path.
        let mut main = Sequential::new();
        main.push(Conv2d::new(2, 2, 3, 1, 1, false, &mut rng));
        let mut block = Residual::new(main, None);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let wts = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        block.forward(&x, true);
        let dy = wts.clone();
        let dx = block.backward(&dy);
        let report = gradcheck::check(&x, &dx, 8, 1e-2, |xt| {
            let y = block.forward(xt, true);
            y.data().iter().zip(wts.data()).map(|(a, b)| a * b).sum()
        });
        assert!(report.passes(2e-2), "err {}", report.max_rel_err);
    }

    #[test]
    fn dense_block_grows_channels() {
        let mut rng = Xorshift64::new(4);
        let mut block = DenseBlock::new(6, 4, &mut rng);
        let x = Tensor::randn(&[2, 6, 5, 5], 1.0, &mut rng);
        let y = block.forward(&x, true);
        assert_eq!(y.shape().dims(), &[2, 10, 5, 5]);
        // Passthrough channels are x itself.
        assert_eq!(slice_channels(&y, 0, 6), x);
        let dx = block.backward(&Tensor::ones(&[2, 10, 5, 5]));
        assert_eq!(dx.shape().dims(), &[2, 6, 5, 5]);
    }

    #[test]
    fn dw_separable_shapes_and_grads() {
        let mut rng = Xorshift64::new(5);
        let mut block = DwSeparable::new(4, 8, 2, &mut rng);
        let x = Tensor::randn(&[1, 4, 8, 8], 1.0, &mut rng);
        let y = block.forward(&x, true);
        assert_eq!(y.shape().dims(), &[1, 8, 4, 4]);
        let dx = block.backward(&Tensor::ones(y.shape().dims()));
        assert_eq!(dx.shape().dims(), &[1, 4, 8, 8]);
    }

    #[test]
    fn residual_param_visitation_covers_both_paths() {
        let mut rng = Xorshift64::new(6);
        let mut block = Residual::basic(2, 4, 2, &mut rng);
        let mut names = Vec::new();
        block.visit_params(&mut |p| names.push(p.name));
        // main: conv, bn(γ,β), conv, bn(γ,β); shortcut: conv, bn(γ,β)
        assert_eq!(names.iter().filter(|n| **n == "conv.weight").count(), 3);
        assert_eq!(names.iter().filter(|n| **n == "bn.gamma").count(), 3);
    }
}
