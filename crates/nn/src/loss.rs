//! Softmax cross-entropy loss and classification metrics.

use procrustes_tensor::{Scratch, Tensor};

/// Softmax + cross-entropy over logits `[N, classes]`.
///
/// # Examples
///
/// ```
/// use procrustes_nn::SoftmaxCrossEntropy;
/// use procrustes_tensor::Tensor;
/// let logits = Tensor::from_vec(&[1, 3], vec![2.0, 0.0, 0.0]);
/// let (loss, grad) = SoftmaxCrossEntropy.loss_and_grad(&logits, &[0]);
/// assert!(loss > 0.0 && loss < 1.0); // confident, correct prediction
/// assert_eq!(grad.shape().dims(), &[1, 3]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Mean cross-entropy loss and its gradient w.r.t. the logits.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is not `[N, classes]`, `labels.len() != N`, or a
    /// label is out of range.
    pub fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        self.loss_and_grad_with(logits, labels, &mut Scratch::new())
    }

    /// [`loss_and_grad`](Self::loss_and_grad) drawing the gradient and
    /// per-row exponent buffer from a scratch pool (the hot-loop form
    /// the trainers use; recycle the returned gradient when done).
    ///
    /// # Panics
    ///
    /// Same conditions as [`loss_and_grad`](Self::loss_and_grad).
    pub fn loss_and_grad_with(
        &self,
        logits: &Tensor,
        labels: &[usize],
        scratch: &mut Scratch,
    ) -> (f32, Tensor) {
        assert_eq!(
            logits.shape().rank(),
            2,
            "loss: logits must be [N, classes]"
        );
        let (n, classes) = (logits.shape().dim(0), logits.shape().dim(1));
        assert_eq!(
            labels.len(),
            n,
            "loss: {} labels for batch {n}",
            labels.len()
        );
        let mut grad = scratch.take_tensor_any(&[n, classes]);
        let mut exps = scratch.take_any(classes);
        let ld = logits.data();
        let gd = grad.data_mut();
        let mut total = 0.0f32;
        for (ni, &label) in labels.iter().enumerate() {
            assert!(label < classes, "loss: label {label} out of {classes}");
            let row = &ld[ni * classes..(ni + 1) * classes];
            let maxv = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            for (e, &v) in exps.iter_mut().zip(row) {
                *e = (v - maxv).exp();
            }
            let z: f32 = exps.iter().sum();
            let p_label = exps[label] / z;
            total += -p_label.max(1e-30).ln();
            for ci in 0..classes {
                let p = exps[ci] / z;
                gd[ni * classes + ci] = (p - if ci == label { 1.0 } else { 0.0 }) / n as f32;
            }
        }
        scratch.recycle_vec(exps);
        (total / n as f32, grad)
    }
}

/// Top-1 classification accuracy of `logits` against `labels`, in `[0, 1]`.
///
/// # Panics
///
/// Panics if shapes disagree.
///
/// # Examples
///
/// ```
/// use procrustes_nn::accuracy;
/// use procrustes_tensor::Tensor;
/// let logits = Tensor::from_vec(&[2, 2], vec![3.0, 1.0, 0.0, 2.0]);
/// assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
/// assert_eq!(accuracy(&logits, &[1, 1]), 0.5);
/// ```
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    assert_eq!(
        logits.shape().rank(),
        2,
        "accuracy: logits must be [N, classes]"
    );
    let (n, classes) = (logits.shape().dim(0), logits.shape().dim(1));
    assert_eq!(labels.len(), n, "accuracy: label count mismatch");
    let mut correct = 0;
    for (ni, &label) in labels.iter().enumerate() {
        let row = &logits.data()[ni * classes..(ni + 1) * classes];
        let mut best = 0;
        for (ci, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = ci;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    correct as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, _) = SoftmaxCrossEntropy.loss_and_grad(&logits, &[0, 1, 2, 3]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(&[2, 3], vec![1.0, -2.0, 0.5, 3.0, 0.0, -1.0]);
        let (_, grad) = SoftmaxCrossEntropy.loss_and_grad(&logits, &[2, 0]);
        for ni in 0..2 {
            let s: f32 = grad.data()[ni * 3..(ni + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6, "row {ni} sums to {s}");
        }
    }

    #[test]
    fn gradient_matches_numerical() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.5, -1.0, 2.0, 1.0, 1.0, -0.5]);
        let labels = [2usize, 0];
        let (_, grad) = SoftmaxCrossEntropy.loss_and_grad(&logits, &labels);
        let eps = 1e-3;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = SoftmaxCrossEntropy.loss_and_grad(&lp, &labels);
            let (fm, _) = SoftmaxCrossEntropy.loss_and_grad(&lm, &labels);
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - grad.data()[i]).abs() < 1e-3,
                "coord {i}: {num} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn loss_decreases_with_confidence() {
        let weak = Tensor::from_vec(&[1, 2], vec![0.1, 0.0]);
        let strong = Tensor::from_vec(&[1, 2], vec![5.0, 0.0]);
        let (l_weak, _) = SoftmaxCrossEntropy.loss_and_grad(&weak, &[0]);
        let (l_strong, _) = SoftmaxCrossEntropy.loss_and_grad(&strong, &[0]);
        assert!(l_strong < l_weak);
    }

    #[test]
    fn numerical_stability_with_large_logits() {
        let logits = Tensor::from_vec(&[1, 2], vec![1000.0, -1000.0]);
        let (loss, grad) = SoftmaxCrossEntropy.loss_and_grad(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(grad.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "label 5 out of 3")]
    fn out_of_range_label_panics() {
        let logits = Tensor::zeros(&[1, 3]);
        SoftmaxCrossEntropy.loss_and_grad(&logits, &[5]);
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Tensor::from_vec(&[3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-9);
    }
}
