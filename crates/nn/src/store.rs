//! Weight storage for sparse-aware layers: a dense master tensor with an
//! optional compressed-sparse-block compute representation.
//!
//! Sparse trainers (Dropback, Procrustes) rewrite the materialized weight
//! tensor every step through [`Layer::visit_params`](crate::Layer), so
//! the dense tensor stays the single source of truth; the CSB copy is a
//! *compute cache* re-derived lazily before the next forward pass
//! whenever the weights may have changed ("resyncing layout after mask
//! updates"). Layers dispatch their forward/backward kernels on the
//! active representation, so switching backends never changes results —
//! the CSB kernels are bitwise-equal to the dense ones (see
//! `procrustes_sparse::kernels`).

use procrustes_sparse::{CsbTensor, FcDecode};
use procrustes_tensor::Tensor;

/// Which kernels a sparse-aware layer runs its weights through.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ComputeBackend {
    /// Dense tensors and dense kernels (the baseline).
    #[default]
    Dense,
    /// CSB-compressed weights and sparse kernels, unconditionally.
    Csb,
    /// Per-layer choice: a layer is promoted to CSB once its weight
    /// density (fraction of nonzeros) falls to `max_density` or below,
    /// and demoted back when it rises — re-decided at every resync.
    Auto {
        /// Promotion threshold on the density, in `[0, 1]`.
        max_density: f64,
    },
}

impl ComputeBackend {
    /// The default promotion threshold for [`ComputeBackend::auto`]: CSB
    /// pays off once at least half of the weights are exact zeros.
    pub const AUTO_MAX_DENSITY: f64 = 0.5;

    /// [`ComputeBackend::Auto`] with the default threshold.
    pub fn auto() -> Self {
        ComputeBackend::Auto {
            max_density: Self::AUTO_MAX_DENSITY,
        }
    }

    /// A short label for reports and serialized scenarios.
    pub fn label(&self) -> String {
        match *self {
            ComputeBackend::Dense => "dense".to_string(),
            ComputeBackend::Csb => "csb".to_string(),
            ComputeBackend::Auto { max_density } => format!("auto({max_density:.2})"),
        }
    }

    /// Whether a weight tensor of the given density should run on CSB.
    pub fn wants_csb(&self, density: f64) -> bool {
        match *self {
            ComputeBackend::Dense => false,
            ComputeBackend::Csb => true,
            ComputeBackend::Auto { max_density } => density <= max_density,
        }
    }
}

/// How a [`WeightStore`] lays its tensor out when compressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreLayout {
    /// `KCRS` conv weights: one block per `(k, c)` filter.
    Conv,
    /// `[out, in]` fc weights in square blocks. `transposed` additionally
    /// caches the piecewise-transposed tensor for the backward pass.
    Fc {
        /// Block edge length.
        edge: usize,
        /// Also keep `Wᵀ` in CSB (fc backward needs it every step).
        transposed: bool,
    },
}

/// The default fc block edge (the paper sizes fc regions per layer; 64
/// keeps pointer overhead negligible while borders stay cheap).
pub const DEFAULT_FC_EDGE: usize = 64;

/// A layer's weight tensor in its active compute representation.
///
/// `Dense` is the plain tensor; `Csb` pairs the dense master (still the
/// mutation target for trainers) with its compressed compute copy. Use
/// [`WeightStore::sync`] to re-derive the representation after the
/// master may have changed.
// Layers hold exactly one store, so the variant size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
pub enum WeightStore {
    /// Dense master only; dense kernels.
    Dense(Tensor),
    /// CSB compute representation mirroring the dense master.
    Csb {
        /// The dense master (what `visit_params` exposes).
        master: Tensor,
        /// The compressed compute copy.
        csb: CsbTensor,
        /// The piecewise-transposed copy (fc layouts with `transposed`).
        transposed: Option<CsbTensor>,
        /// Flat matvec decode of `csb` (fc layouts): built once per
        /// resync so the per-call decode allocation leaves the hot loop.
        decode: Option<FcDecode>,
        /// Flat matvec decode of `transposed`.
        decode_t: Option<FcDecode>,
    },
}

impl WeightStore {
    /// Wraps a freshly initialized dense tensor.
    pub fn new(master: Tensor) -> Self {
        WeightStore::Dense(master)
    }

    /// The dense master tensor (always available, whatever the backend).
    pub fn tensor(&self) -> &Tensor {
        match self {
            WeightStore::Dense(t) | WeightStore::Csb { master: t, .. } => t,
        }
    }

    /// Mutable access to the dense master. After mutating, the owner
    /// must [`sync`](WeightStore::sync) before the next forward pass.
    pub fn tensor_mut(&mut self) -> &mut Tensor {
        match self {
            WeightStore::Dense(t) | WeightStore::Csb { master: t, .. } => t,
        }
    }

    /// The CSB compute copy, if the store is compressed.
    pub fn csb(&self) -> Option<&CsbTensor> {
        match self {
            WeightStore::Dense(_) => None,
            WeightStore::Csb { csb, .. } => Some(csb),
        }
    }

    /// The cached transposed CSB copy, if present.
    pub fn csb_transposed(&self) -> Option<&CsbTensor> {
        match self {
            WeightStore::Dense(_) => None,
            WeightStore::Csb { transposed, .. } => transposed.as_ref(),
        }
    }

    /// The cached flat fc matvec decode, if the store is compressed
    /// with an fc layout.
    pub fn fc_decode(&self) -> Option<&FcDecode> {
        match self {
            WeightStore::Dense(_) => None,
            WeightStore::Csb { decode, .. } => decode.as_ref(),
        }
    }

    /// The cached flat decode of the transposed copy.
    pub fn fc_decode_transposed(&self) -> Option<&FcDecode> {
        match self {
            WeightStore::Dense(_) => None,
            WeightStore::Csb { decode_t, .. } => decode_t.as_ref(),
        }
    }

    /// True when the compressed representation is active.
    pub fn is_csb(&self) -> bool {
        matches!(self, WeightStore::Csb { .. })
    }

    /// Density (fraction of nonzeros) of the master tensor.
    pub fn density(&self) -> f64 {
        1.0 - self.tensor().sparsity()
    }

    /// Re-derives the compute representation from the dense master:
    /// compresses (or decompresses) according to what `backend` wants
    /// for the master's current density.
    pub fn sync(&mut self, backend: ComputeBackend, layout: StoreLayout) {
        // Fast path for the dense steady state: `visit_params` dirties
        // the store every step, but a dense store staying dense needs no
        // work (and `Dense`/`Csb` decide without scanning the tensor).
        let wants = match backend {
            ComputeBackend::Dense => false,
            ComputeBackend::Csb => true,
            ComputeBackend::Auto { .. } => backend.wants_csb(self.density()),
        };
        if !wants {
            if let WeightStore::Dense(_) = self {
                return;
            }
        }
        let master = match std::mem::replace(self, WeightStore::Dense(Tensor::zeros(&[1]))) {
            WeightStore::Dense(t) | WeightStore::Csb { master: t, .. } => t,
        };
        *self = if wants {
            let (csb, transposed) = match layout {
                StoreLayout::Conv => (CsbTensor::from_dense_conv(&master), None),
                StoreLayout::Fc { edge, transposed } => {
                    let csb = CsbTensor::from_dense_fc(&master, edge);
                    let t = transposed.then(|| csb.transposed_fc());
                    (csb, t)
                }
            };
            let decode = matches!(layout, StoreLayout::Fc { .. }).then(|| FcDecode::from_csb(&csb));
            let decode_t = transposed.as_ref().map(FcDecode::from_csb);
            WeightStore::Csb {
                master,
                csb,
                transposed,
                decode,
                decode_t,
            }
        } else {
            WeightStore::Dense(master)
        };
    }
}

impl std::fmt::Debug for WeightStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightStore::Dense(t) => write!(f, "WeightStore::Dense({:?})", t.shape()),
            WeightStore::Csb { master, csb, .. } => write!(
                f,
                "WeightStore::Csb({:?}, nnz {})",
                master.shape(),
                csb.nnz()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_labels_and_thresholds() {
        assert_eq!(ComputeBackend::Dense.label(), "dense");
        assert_eq!(ComputeBackend::Csb.label(), "csb");
        assert_eq!(ComputeBackend::auto().label(), "auto(0.50)");
        assert!(!ComputeBackend::Dense.wants_csb(0.0));
        assert!(ComputeBackend::Csb.wants_csb(1.0));
        assert!(ComputeBackend::auto().wants_csb(0.5));
        assert!(!ComputeBackend::auto().wants_csb(0.51));
    }

    #[test]
    fn sync_promotes_and_demotes_on_density() {
        let dense = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 0.0, 0.0, 0.0]);
        let mut store = WeightStore::new(dense);
        assert!(!store.is_csb());
        store.sync(ComputeBackend::auto(), StoreLayout::Conv);
        assert!(store.is_csb(), "25% density should promote");
        assert_eq!(store.csb().unwrap().nnz(), 1);
        // Refill the master through the mutable view, resync: demotes.
        store.tensor_mut().map_inplace(|_| 1.0);
        store.sync(ComputeBackend::auto(), StoreLayout::Conv);
        assert!(!store.is_csb(), "full density should demote");
    }

    #[test]
    fn fc_sync_caches_transpose() {
        let dense = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let mut store = WeightStore::new(dense);
        store.sync(
            ComputeBackend::Csb,
            StoreLayout::Fc {
                edge: 2,
                transposed: true,
            },
        );
        let t = store.csb_transposed().expect("transpose cached");
        assert_eq!(t.to_dense(), store.tensor().transpose2d());
    }
}
