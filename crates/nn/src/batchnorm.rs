//! 2-D batch normalization.
//!
//! Batch norm matters doubly here: it is in every paper network, and it is
//! the reason the back-propagated gradient `∂L/∂y` is *dense* — §II-B:
//! “the ∂L/∂y sparsity generated from backpropagating through relu is
//! destroyed by backpropagating through the batch normalization layer.”
//! The accelerator model encodes that observation; this layer demonstrates
//! it (see `gradient_density_is_restored_by_batchnorm` below).

use procrustes_tensor::{Scratch, Tensor};

use crate::conv::ensure_cached;
use crate::{Layer, ParamKind, ParamTensor};

/// Batch normalization over the channel axis of `NCHW` activations.
///
/// # Examples
///
/// ```
/// use procrustes_nn::{BatchNorm2d, Layer};
/// use procrustes_tensor::Tensor;
/// let mut bn = BatchNorm2d::new(2);
/// let x = Tensor::from_fn(&[4, 2, 3, 3], |i| (i[0] * 7 + i[1] * 3) as f32);
/// let y = bn.forward(&x, true);
/// // Normalized: per-channel mean ~0.
/// assert!(y.mean().abs() < 1e-5);
/// ```
pub struct BatchNorm2d {
    gamma: Tensor,
    dgamma: Tensor,
    beta: Tensor,
    dbeta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    // Persistent per-step work buffers, reused in place so the training
    // hot loop stays allocation-free once shapes stabilize.
    mean: Vec<f32>,
    var: Vec<f32>,
    inv_std: Vec<f32>,
    /// `inv_std` as of the last *training* forward — backward must see
    /// the batch statistics even if an eval forward ran in between.
    cached_inv_std: Vec<f32>,
    xhat: Option<Tensor>,
    sum_dy: Vec<f32>,
    sum_dy_xhat: Vec<f32>,
    has_cache: bool,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` (γ=1, β=0, momentum 0.1).
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Tensor::ones(&[channels]),
            dgamma: Tensor::zeros(&[channels]),
            beta: Tensor::zeros(&[channels]),
            dbeta: Tensor::zeros(&[channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            mean: vec![0.0; channels],
            var: vec![0.0; channels],
            inv_std: vec![0.0; channels],
            cached_inv_std: vec![0.0; channels],
            xhat: None,
            sum_dy: vec![0.0; channels],
            sum_dy_xhat: vec![0.0; channels],
            has_cache: false,
        }
    }

    /// Fills `self.mean` / `self.var` with batch (train) or running
    /// (eval) statistics.
    fn stats(&mut self, x: &Tensor, train: bool) {
        let s = x.shape();
        let (n, c, h, w) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
        if !train {
            self.mean.copy_from_slice(&self.running_mean);
            self.var.copy_from_slice(&self.running_var);
            return;
        }
        let count = (n * h * w) as f32;
        let mean = &mut self.mean;
        let var = &mut self.var;
        mean.fill(0.0);
        var.fill(0.0);
        let xd = x.data();
        for ni in 0..n {
            for ci in 0..c {
                for v in &xd[((ni * c + ci) * h) * w..((ni * c + ci) * h + h) * w] {
                    mean[ci] += v;
                }
            }
        }
        for m in mean.iter_mut() {
            *m /= count;
        }
        for ni in 0..n {
            for ci in 0..c {
                for v in &xd[((ni * c + ci) * h) * w..((ni * c + ci) * h + h) * w] {
                    var[ci] += (v - mean[ci]).powi(2);
                }
            }
        }
        for v in var.iter_mut() {
            *v /= count;
        }
    }
}

impl Layer for BatchNorm2d {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        let s = x.shape();
        assert_eq!(s.rank(), 4, "BatchNorm2d: input must be NCHW");
        let (n, c, h, w) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
        assert_eq!(c, self.gamma.len(), "BatchNorm2d: channel mismatch");
        self.stats(x, train);
        for (o, &v) in self.inv_std.iter_mut().zip(&self.var) {
            *o = 1.0 / (v + self.eps).sqrt();
        }

        let mut y = scratch.take_tensor_any(s.dims());
        if train {
            let xhat = ensure_cached(&mut self.xhat, s.dims());
            let xd = x.data();
            let yd = y.data_mut();
            let xh = xhat.data_mut();
            for ni in 0..n {
                for ci in 0..c {
                    let g = self.gamma.data()[ci];
                    let b = self.beta.data()[ci];
                    let base = (ni * c + ci) * h * w;
                    for off in base..base + h * w {
                        let norm = (xd[off] - self.mean[ci]) * self.inv_std[ci];
                        xh[off] = norm;
                        yd[off] = g * norm + b;
                    }
                }
            }
            for ci in 0..c {
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * self.mean[ci];
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * self.var[ci];
            }
            self.cached_inv_std.copy_from_slice(&self.inv_std);
            self.has_cache = true;
        } else {
            // Eval mode never needs x̂ for backward: normalize straight
            // into the output.
            let xd = x.data();
            let yd = y.data_mut();
            for ni in 0..n {
                for ci in 0..c {
                    let g = self.gamma.data()[ci];
                    let b = self.beta.data()[ci];
                    let base = (ni * c + ci) * h * w;
                    for off in base..base + h * w {
                        yd[off] = g * ((xd[off] - self.mean[ci]) * self.inv_std[ci]) + b;
                    }
                }
            }
        }
        y
    }

    fn backward_with(&mut self, dy: &Tensor, scratch: &mut Scratch) -> Tensor {
        assert!(
            self.has_cache,
            "BatchNorm2d::backward called before training-mode forward"
        );
        let xhat = self.xhat.as_ref().expect("cache set with has_cache");
        let s = dy.shape();
        let (n, c, h, w) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
        let m = (n * h * w) as f32;

        // Standard batch-norm backward:
        // dβ_c = Σ dy ; dγ_c = Σ dy·x̂
        // dx = (γ·inv_std/m) · (m·dy − Σdy − x̂·Σ(dy·x̂))
        let sum_dy = &mut self.sum_dy;
        let sum_dy_xhat = &mut self.sum_dy_xhat;
        sum_dy.fill(0.0);
        sum_dy_xhat.fill(0.0);
        let dyd = dy.data();
        let xh = xhat.data();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for off in base..base + h * w {
                    sum_dy[ci] += dyd[off];
                    sum_dy_xhat[ci] += dyd[off] * xh[off];
                }
            }
        }
        for ci in 0..c {
            self.dbeta.data_mut()[ci] += sum_dy[ci];
            self.dgamma.data_mut()[ci] += sum_dy_xhat[ci];
        }
        let mut dx = scratch.take_tensor_any(s.dims());
        let dxd = dx.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let coeff = self.gamma.data()[ci] * self.cached_inv_std[ci] / m;
                let base = (ni * c + ci) * h * w;
                for off in base..base + h * w {
                    dxd[off] = coeff * (m * dyd[off] - sum_dy[ci] - xh[off] * sum_dy_xhat[ci]);
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamTensor<'_>)) {
        visitor(ParamTensor {
            name: "bn.gamma",
            kind: ParamKind::Auxiliary,
            values: &mut self.gamma,
            grads: &mut self.dgamma,
        });
        visitor(ParamTensor {
            name: "bn.beta",
            kind: ParamKind::Auxiliary,
            values: &mut self.beta,
            grads: &mut self.dbeta,
        });
    }

    fn name(&self) -> String {
        format!("BatchNorm2d({})", self.gamma.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use procrustes_prng::Xorshift64;
    use procrustes_tensor::gradcheck;

    #[test]
    fn normalizes_per_channel_in_train_mode() {
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::from_fn(&[8, 3, 4, 4], |i| (i[1] * 50) as f32 + (i[0] as f32));
        let y = bn.forward(&x, true);
        // per-channel mean ~0, var ~1
        for ci in 0..3 {
            let vals: Vec<f32> = (0..8)
                .flat_map(|ni| (0..16).map(move |off| (ni, off)))
                .map(|(ni, off)| y.data()[(ni * 3 + ci) * 16 + off])
                .collect();
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::full(&[4, 1, 2, 2], 10.0);
        // Before any training step, running stats are (0, 1): eval output
        // = gamma*(x-0)/1 + beta = x.
        let y = bn.forward(&x, false);
        assert!((y.data()[0] - 10.0).abs() < 1e-3, "{}", y.data()[0]);
        // Train once; running mean moves toward 10.
        bn.forward(&x, true);
        let y2 = bn.forward(&x, false);
        assert!(y2.data()[0] < 10.0);
    }

    #[test]
    fn input_gradcheck() {
        let mut rng = Xorshift64::new(1);
        let x = Tensor::randn(&[4, 2, 3, 3], 1.0, &mut rng);
        let mut bn = BatchNorm2d::new(2);
        // Non-trivial loss: weighted sum so gradient isn't uniform.
        let wts = Tensor::randn(x.shape().dims(), 1.0, &mut rng);
        let y = bn.forward(&x, true);
        let _ = y;
        let dx = bn.backward(&wts);
        let report = gradcheck::check(&x, &dx, 10, 1e-2, |xt| {
            let mut probe = BatchNorm2d::new(2);
            let yt = probe.forward(xt, true);
            yt.data().iter().zip(wts.data()).map(|(a, b)| a * b).sum()
        });
        assert!(report.passes(2e-2), "err {}", report.max_rel_err);
    }

    /// §II-B of the paper: ReLU makes gradients sparse, but propagating
    /// through batch norm densifies them again (every element couples to
    /// the batch statistics).
    #[test]
    fn gradient_density_is_restored_by_batchnorm() {
        let mut rng = Xorshift64::new(2);
        let x = Tensor::randn(&[4, 2, 4, 4], 1.0, &mut rng);
        let mut bn = BatchNorm2d::new(2);
        bn.forward(&x, true);
        // A 50%-sparse upstream gradient (as if from ReLU backward):
        let dy = Tensor::from_fn(x.shape().dims(), |i| {
            if (i[0] + i[2] + i[3]) % 2 == 0 {
                0.0
            } else {
                1.0
            }
        });
        assert!(dy.sparsity() > 0.4);
        let dx = bn.backward(&dy);
        assert!(
            dx.sparsity() < 0.05,
            "batch-norm backward should densify: sparsity {}",
            dx.sparsity()
        );
    }

    #[test]
    fn gamma_beta_gradients_accumulate() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_fn(&[2, 1, 2, 2], |i| i[3] as f32);
        bn.forward(&x, true);
        bn.backward(&Tensor::ones(x.shape().dims()));
        bn.visit_params(&mut |p| {
            if p.name == "bn.beta" {
                assert_eq!(p.grads.data()[0], 8.0); // sum of ones
            }
        });
    }
}
