//! Convolution layers: standard and depthwise.

use procrustes_prng::UniformRng;
use procrustes_sparse::{csb_conv2d, csb_conv2d_backward_input};
use procrustes_tensor::{
    conv2d_backward_input_gemm, conv2d_backward_weights_from_cols, conv2d_from_cols, conv_out_dim,
    im2col_into, Init, Scratch, Tensor,
};

use crate::store::{ComputeBackend, StoreLayout, WeightStore};
use crate::{Layer, ParamKind, ParamTensor};

/// Replaces `slot` with a fresh tensor of `dims` unless it already has
/// that shape; returns the tensor for in-place (re)filling. Allocation
/// only happens when the shape actually changes.
pub(crate) fn ensure_cached<'a>(slot: &'a mut Option<Tensor>, dims: &[usize]) -> &'a mut Tensor {
    let stale = slot.as_ref().is_none_or(|t| t.shape().dims() != dims);
    if stale {
        *slot = Some(Tensor::zeros(dims));
    }
    slot.as_mut().expect("just ensured")
}

/// A 2-D convolution layer (`NCHW` activations, `KCRS` weights).
///
/// # Examples
///
/// ```
/// use procrustes_nn::{Conv2d, Layer};
/// use procrustes_prng::Xorshift64;
/// use procrustes_tensor::Tensor;
///
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, false, &mut Xorshift64::new(7));
/// let y = conv.forward(&Tensor::ones(&[2, 3, 8, 8]), true);
/// assert_eq!(y.shape().dims(), &[2, 8, 8, 8]);
/// ```
pub struct Conv2d {
    store: WeightStore,
    backend: ComputeBackend,
    /// Set whenever the weights may have been mutated; the store resyncs
    /// its compute representation on the next forward.
    weights_dirty: bool,
    dweight: Tensor,
    bias: Option<(Tensor, Tensor)>,
    stride: usize,
    pad: usize,
    /// The im2col column matrix of the last training-mode input —
    /// cached *instead of* the raw activations: the forward GEMM
    /// consumes it directly and the weight-update GEMM (`dy·colsᵀ`)
    /// reuses it, so backward never re-unfolds (or clones) `x`. The
    /// buffer persists across steps and is refilled in place.
    cols: Option<Tensor>,
    /// `[n, c, h, w]` of the last training-mode input (backward-input
    /// geometry).
    in_dims: Option<[usize; 4]>,
}

impl Conv2d {
    /// Creates a conv layer with Kaiming-initialized weights.
    ///
    /// `in_ch → out_ch` channels, square `kernel`, symmetric `pad`,
    /// uniform `stride`; `bias` adds a per-output-channel offset (paper
    /// networks use batch norm, so most convs run bias-free).
    pub fn new<R: UniformRng + ?Sized>(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        let weight = Init::Kaiming.conv_weights(out_ch, in_ch, kernel, kernel, rng);
        let dweight = Tensor::zeros(weight.shape().dims());
        let bias = bias.then(|| (Tensor::zeros(&[out_ch]), Tensor::zeros(&[out_ch])));
        Self {
            store: WeightStore::new(weight),
            backend: ComputeBackend::Dense,
            weights_dirty: false,
            dweight,
            bias,
            stride,
            pad,
            cols: None,
            in_dims: None,
        }
    }

    /// The weight tensor (`KCRS`).
    pub fn weight(&self) -> &Tensor {
        self.store.tensor()
    }

    /// Mutable weight access (used by sparse trainers to write masked
    /// updates back). Marks the compute representation stale.
    pub fn weight_mut(&mut self) -> &mut Tensor {
        self.weights_dirty = true;
        self.store.tensor_mut()
    }

    /// The weight store in its active representation (after the last
    /// forward-pass resync).
    pub fn weight_store(&self) -> &WeightStore {
        &self.store
    }

    /// The active compute backend policy.
    pub fn compute_backend(&self) -> ComputeBackend {
        self.backend
    }

    fn dims(&self) -> (usize, usize, usize) {
        let s = self.store.tensor().shape();
        (s.dim(0), s.dim(1), s.dim(2))
    }

    fn sync_store(&mut self) {
        if self.weights_dirty {
            self.store.sync(self.backend, StoreLayout::Conv);
            self.weights_dirty = false;
        }
    }
}

impl Layer for Conv2d {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        self.sync_store();
        let s = x.shape();
        assert_eq!(s.rank(), 4, "conv: activations must be NCHW");
        let (n, c, h, wdt) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
        let (_, cw, kernel) = self.dims();
        assert_eq!(
            c, cw,
            "conv: input channels {c} != weight input channels {cw}"
        );
        let p = conv_out_dim(h, kernel, self.stride, self.pad);
        let q = conv_out_dim(wdt, kernel, self.stride, self.pad);
        let cols_dims = [c * kernel * kernel, n * p * q];
        if train {
            // Unfold once; forward consumes it and backward reuses it.
            let cols = ensure_cached(&mut self.cols, &cols_dims);
            im2col_into(x, kernel, kernel, self.stride, self.pad, cols.data_mut());
            self.in_dims = Some([n, c, h, wdt]);
        }
        let mut y = match &self.store {
            WeightStore::Dense(w) => {
                if train {
                    let cols = self.cols.as_ref().expect("cols cached above");
                    conv2d_from_cols(w, cols.data(), n, p, q, scratch)
                } else {
                    // Eval mode caches nothing: unfold into a pooled
                    // buffer and return it right away.
                    let mut tmp = scratch.take_any(cols_dims[0] * cols_dims[1]);
                    im2col_into(x, kernel, kernel, self.stride, self.pad, &mut tmp);
                    let y = conv2d_from_cols(w, &tmp, n, p, q, scratch);
                    scratch.recycle_vec(tmp);
                    y
                }
            }
            WeightStore::Csb { csb, .. } => csb_conv2d(x, csb, self.stride, self.pad),
        };
        if let Some((b, _)) = &self.bias {
            let (n, k) = (y.shape().dim(0), y.shape().dim(1));
            let plane = y.shape().dim(2) * y.shape().dim(3);
            let yd = y.data_mut();
            for ni in 0..n {
                for ki in 0..k {
                    let bk = b.data()[ki];
                    for v in &mut yd[(ni * k + ki) * plane..(ni * k + ki + 1) * plane] {
                        *v += bk;
                    }
                }
            }
        }
        y
    }

    fn backward_with(&mut self, dy: &Tensor, scratch: &mut Scratch) -> Tensor {
        let [_, c, h, w] = self
            .in_dims
            .expect("Conv2d::backward called before training-mode forward");
        let cols = self
            .cols
            .as_ref()
            .expect("Conv2d::backward called before training-mode forward");
        let (_, _, kernel) = self.dims();
        // Weight update: dy·colsᵀ over the forward pass's cached
        // columns. The gradient stays dense — Dropback-style training
        // needs ∂L/∂w at *pruned* positions too, so candidates can be
        // (re-)admitted.
        let dw = conv2d_backward_weights_from_cols(dy, cols.data(), c, kernel, kernel, scratch);
        self.dweight.axpy(1.0, &dw);
        scratch.recycle(dw);
        if let Some((_, db)) = &mut self.bias {
            let (n, k) = (dy.shape().dim(0), dy.shape().dim(1));
            let plane = dy.shape().dim(2) * dy.shape().dim(3);
            for ni in 0..n {
                for ki in 0..k {
                    let s: f32 = dy.data()[(ni * k + ki) * plane..(ni * k + ki + 1) * plane]
                        .iter()
                        .sum();
                    db.data_mut()[ki] += s;
                }
            }
        }
        // The input gradient streams the weights (rotated at fetch, Fig
        // 2b) — a GEMM against the rotated filter matrix on the dense
        // path, the CSB kernel on the sparse one; both reduce in the
        // same order.
        match &self.store {
            WeightStore::Dense(wt) => {
                conv2d_backward_input_gemm(dy, wt, h, w, self.stride, self.pad, scratch)
            }
            WeightStore::Csb { csb, .. } => {
                csb_conv2d_backward_input(dy, csb, h, w, self.stride, self.pad)
            }
        }
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamTensor<'_>)) {
        // Handing out the mutable master invalidates the compute copy.
        self.weights_dirty = true;
        visitor(ParamTensor {
            name: "conv.weight",
            kind: ParamKind::Prunable,
            values: self.store.tensor_mut(),
            grads: &mut self.dweight,
        });
        if let Some((b, db)) = &mut self.bias {
            visitor(ParamTensor {
                name: "conv.bias",
                kind: ParamKind::Auxiliary,
                values: b,
                grads: db,
            });
        }
    }

    fn set_compute_backend(&mut self, backend: ComputeBackend) {
        self.backend = backend;
        self.weights_dirty = true;
    }

    fn csb_store_count(&self) -> usize {
        usize::from(self.store.is_csb())
    }

    fn name(&self) -> String {
        let s = self.store.tensor().shape();
        format!(
            "Conv2d({}→{}, {}×{}, stride {}, pad {})",
            s.dim(1),
            s.dim(0),
            s.dim(2),
            s.dim(3),
            self.stride,
            self.pad
        )
    }
}

/// A depthwise 2-D convolution: one `R×S` filter per channel (the middle
/// stage of MobileNet's inverted bottleneck).
///
/// Weights are stored `[C, 1, R, S]`.
///
/// # Examples
///
/// ```
/// use procrustes_nn::{DepthwiseConv2d, Layer};
/// use procrustes_prng::Xorshift64;
/// use procrustes_tensor::Tensor;
/// let mut dw = DepthwiseConv2d::new(4, 3, 1, 1, &mut Xorshift64::new(1));
/// let y = dw.forward(&Tensor::ones(&[1, 4, 6, 6]), true);
/// assert_eq!(y.shape().dims(), &[1, 4, 6, 6]);
/// ```
pub struct DepthwiseConv2d {
    weight: Tensor,
    dweight: Tensor,
    stride: usize,
    pad: usize,
    cached_x: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise conv over `channels` with a square `kernel`.
    pub fn new<R: UniformRng + ?Sized>(
        channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        let weight = Init::Kaiming.conv_weights(channels, 1, kernel, kernel, rng);
        let dweight = Tensor::zeros(weight.shape().dims());
        Self {
            weight,
            dweight,
            stride,
            pad,
            cached_x: None,
        }
    }
}

impl Layer for DepthwiseConv2d {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        let s = x.shape();
        let (n, c, h, w) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
        assert_eq!(
            c,
            self.weight.shape().dim(0),
            "DepthwiseConv2d: channel mismatch"
        );
        let k = self.weight.shape().dim(2);
        let p = conv_out_dim(h, k, self.stride, self.pad);
        let q = conv_out_dim(w, k, self.stride, self.pad);
        let mut y = scratch.take_tensor_any(&[n, c, p, q]);
        let xd = x.data();
        let wd = self.weight.data();
        let yd = y.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let wbase = ci * k * k;
                for pi in 0..p {
                    for qi in 0..q {
                        let mut acc = 0.0;
                        for ri in 0..k {
                            let hi = pi * self.stride + ri;
                            if hi < self.pad || hi - self.pad >= h {
                                continue;
                            }
                            let hi = hi - self.pad;
                            for si in 0..k {
                                let wi = qi * self.stride + si;
                                if wi < self.pad || wi - self.pad >= w {
                                    continue;
                                }
                                let wi = wi - self.pad;
                                acc +=
                                    wd[wbase + ri * k + si] * xd[((ni * c + ci) * h + hi) * w + wi];
                            }
                        }
                        yd[((ni * c + ci) * p + pi) * q + qi] = acc;
                    }
                }
            }
        }
        if train {
            // In-place refresh of the persistent activation cache — no
            // per-step clone.
            x.clone_into_slot(&mut self.cached_x);
        }
        y
    }

    fn backward_with(&mut self, dy: &Tensor, scratch: &mut Scratch) -> Tensor {
        let x = self
            .cached_x
            .as_ref()
            .expect("DepthwiseConv2d::backward called before training-mode forward");
        let s = x.shape();
        let (n, c, h, w) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
        let k = self.weight.shape().dim(2);
        let (p, q) = (dy.shape().dim(2), dy.shape().dim(3));
        let mut dx = scratch.take_tensor(&[n, c, h, w]);
        let xd = x.data();
        let wd = self.weight.data();
        let dyd = dy.data();
        let dwd = self.dweight.data_mut();
        let dxd = dx.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let wbase = ci * k * k;
                for pi in 0..p {
                    for qi in 0..q {
                        let g = dyd[((ni * c + ci) * p + pi) * q + qi];
                        if g == 0.0 {
                            continue;
                        }
                        for ri in 0..k {
                            let hi = pi * self.stride + ri;
                            if hi < self.pad || hi - self.pad >= h {
                                continue;
                            }
                            let hi = hi - self.pad;
                            for si in 0..k {
                                let wi = qi * self.stride + si;
                                if wi < self.pad || wi - self.pad >= w {
                                    continue;
                                }
                                let wi = wi - self.pad;
                                let xoff = ((ni * c + ci) * h + hi) * w + wi;
                                dwd[wbase + ri * k + si] += g * xd[xoff];
                                dxd[xoff] += g * wd[wbase + ri * k + si];
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamTensor<'_>)) {
        visitor(ParamTensor {
            name: "dwconv.weight",
            kind: ParamKind::Prunable,
            values: &mut self.weight,
            grads: &mut self.dweight,
        });
    }

    fn name(&self) -> String {
        let s = self.weight.shape();
        format!(
            "DepthwiseConv2d({} ch, {}×{}, stride {})",
            s.dim(0),
            s.dim(2),
            s.dim(3),
            self.stride
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use procrustes_prng::Xorshift64;
    use procrustes_tensor::gradcheck;

    #[test]
    fn conv_forward_shapes() {
        let mut rng = Xorshift64::new(1);
        let mut conv = Conv2d::new(3, 5, 3, 2, 1, true, &mut rng);
        let y = conv.forward(&Tensor::ones(&[2, 3, 8, 8]), false);
        assert_eq!(y.shape().dims(), &[2, 5, 4, 4]);
    }

    #[test]
    fn conv_weight_gradcheck() {
        let mut rng = Xorshift64::new(2);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, true, &mut rng);
        let x = Tensor::randn(&[2, 2, 5, 5], 1.0, &mut rng);
        // loss = sum(forward(x))
        let y = conv.forward(&x, true);
        let dy = Tensor::ones(y.shape().dims());
        conv.zero_grads();
        conv.backward(&dy);
        let weight = conv.weight().clone();
        let mut analytic = None;
        conv.visit_params(&mut |p| {
            if p.name == "conv.weight" {
                analytic = Some(p.grads.clone());
            }
        });
        let analytic = analytic.unwrap();
        let report = gradcheck::check(&weight, &analytic, 8, 1e-2, |w| {
            let mut probe = Conv2d::new(2, 3, 3, 1, 1, true, &mut Xorshift64::new(2));
            *probe.weight_mut() = w.clone();
            probe.forward(&x, false).sum()
        });
        assert!(report.passes(1e-2), "max err {}", report.max_rel_err);
    }

    #[test]
    fn conv_input_gradcheck() {
        let mut rng = Xorshift64::new(3);
        let mut conv = Conv2d::new(2, 2, 3, 1, 0, false, &mut rng);
        let x = Tensor::randn(&[1, 2, 5, 5], 1.0, &mut rng);
        let y = conv.forward(&x, true);
        let dy = Tensor::ones(y.shape().dims());
        let dx = conv.backward(&dy);
        let report = gradcheck::check(&x, &dx, 8, 1e-2, |xt| conv.forward(xt, false).sum());
        assert!(report.passes(1e-2), "max err {}", report.max_rel_err);
    }

    #[test]
    fn bias_gradient_is_dy_sum() {
        let mut rng = Xorshift64::new(4);
        let mut conv = Conv2d::new(1, 2, 1, 1, 0, true, &mut rng);
        let x = Tensor::ones(&[2, 1, 3, 3]);
        conv.forward(&x, true);
        let dy = Tensor::ones(&[2, 2, 3, 3]);
        conv.backward(&dy);
        conv.visit_params(&mut |p| {
            if p.name == "conv.bias" {
                assert_eq!(p.grads.data(), &[18.0, 18.0]);
            }
        });
    }

    #[test]
    fn depthwise_matches_explicit_grouped_conv() {
        let mut rng = Xorshift64::new(5);
        let mut dw = DepthwiseConv2d::new(3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut Xorshift64::new(6));
        let y = dw.forward(&x, false);
        // Reference: per-channel standard conv with a block-diagonal kernel.
        for ci in 0..3 {
            let xc = crate::slice_channels(&x, ci, ci + 1);
            let wc = Tensor::from_fn(&[1, 1, 3, 3], |i| dw.weight.at(&[ci, 0, i[2], i[3]]));
            let yc = procrustes_tensor::conv2d(&xc, &wc, 1, 1);
            let got = crate::slice_channels(&y, ci, ci + 1);
            for (a, b) in got.data().iter().zip(yc.data()) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn depthwise_gradcheck() {
        let mut rng = Xorshift64::new(7);
        let mut dw = DepthwiseConv2d::new(2, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 5, 5], 1.0, &mut rng);
        let y = dw.forward(&x, true);
        let dx = dw.backward(&Tensor::ones(y.shape().dims()));
        let report = gradcheck::check(&x, &dx, 8, 1e-2, |xt| dw.forward(xt, false).sum());
        assert!(report.passes(1e-2), "max err {}", report.max_rel_err);
    }

    #[test]
    #[should_panic(expected = "before training-mode forward")]
    fn backward_without_forward_panics() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, false, &mut Xorshift64::new(8));
        conv.backward(&Tensor::ones(&[1, 1, 1, 1]));
    }

    #[test]
    fn zero_grads_resets() {
        let mut rng = Xorshift64::new(9);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, false, &mut rng);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = conv.forward(&x, true);
        conv.backward(&Tensor::ones(y.shape().dims()));
        conv.zero_grads();
        conv.visit_params(&mut |p| assert_eq!(p.grads.sum(), 0.0));
    }
}
