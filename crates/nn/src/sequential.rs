//! The sequential model container.

use procrustes_tensor::{Scratch, Tensor};

use crate::{Layer, ParamTensor};

/// A chain of layers applied in order; itself a [`Layer`], so blocks nest.
///
/// # Examples
///
/// ```
/// use procrustes_nn::{Conv2d, Layer, ReLU, Sequential};
/// use procrustes_prng::Xorshift64;
/// use procrustes_tensor::Tensor;
///
/// let mut rng = Xorshift64::new(0);
/// let mut model = Sequential::new();
/// model.push(Conv2d::new(3, 4, 3, 1, 1, false, &mut rng));
/// model.push(ReLU::new());
/// let y = model.forward(&Tensor::ones(&[1, 3, 8, 8]), true);
/// assert_eq!(y.shape().dims(), &[1, 4, 8, 8]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer (builder-style: returns `&mut self` for chaining).
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the container has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total prunable parameter count (conv/fc weights).
    pub fn prunable_params(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p| {
            if p.kind == crate::ParamKind::Prunable {
                count += p.values.len();
            }
        });
        count
    }

    /// Total parameter count (all kinds).
    pub fn total_params(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p| count += p.values.len());
        count
    }

    /// A multi-line human-readable summary of the model.
    pub fn summary(&self) -> String {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| format!("{i:3}: {}", l.name()))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl Layer for Sequential {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        // Each intermediate activation is recycled as soon as the next
        // layer has consumed it, so the whole chain runs out of the
        // pool. (Layers that need state for backward cache it
        // internally — nobody holds on to `cur`.)
        let mut layers = self.layers.iter_mut();
        let Some(first) = layers.next() else {
            return x.clone();
        };
        let mut cur = first.forward_with(x, train, scratch);
        for layer in layers {
            let next = layer.forward_with(&cur, train, scratch);
            scratch.recycle(cur);
            cur = next;
        }
        cur
    }

    fn backward_with(&mut self, dy: &Tensor, scratch: &mut Scratch) -> Tensor {
        let mut layers = self.layers.iter_mut().rev();
        let Some(last) = layers.next() else {
            return dy.clone();
        };
        let mut cur = last.backward_with(dy, scratch);
        for layer in layers {
            let next = layer.backward_with(&cur, scratch);
            scratch.recycle(cur);
            cur = next;
        }
        cur
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamTensor<'_>)) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }

    fn set_compute_backend(&mut self, backend: crate::ComputeBackend) {
        for layer in &mut self.layers {
            layer.set_compute_backend(backend);
        }
    }

    fn csb_store_count(&self) -> usize {
        self.layers.iter().map(|l| l.csb_store_count()).sum()
    }

    fn name(&self) -> String {
        format!("Sequential({} layers)", self.layers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Flatten, Linear, ReLU};
    use procrustes_prng::Xorshift64;

    fn small_model() -> Sequential {
        let mut rng = Xorshift64::new(1);
        let mut m = Sequential::new();
        m.push(Conv2d::new(1, 2, 3, 1, 1, false, &mut rng));
        m.push(ReLU::new());
        m.push(Flatten::new());
        m.push(Linear::new(2 * 4 * 4, 3, true, &mut rng));
        m
    }

    #[test]
    fn forward_backward_shapes() {
        let mut m = small_model();
        let x = Tensor::ones(&[2, 1, 4, 4]);
        let y = m.forward(&x, true);
        assert_eq!(y.shape().dims(), &[2, 3]);
        let dx = m.backward(&Tensor::ones(&[2, 3]));
        assert_eq!(dx.shape().dims(), &[2, 1, 4, 4]);
    }

    #[test]
    fn param_visitation_is_deterministic() {
        let collect = || {
            let mut m = small_model();
            let mut names = Vec::new();
            m.visit_params(&mut |p| names.push((p.name, p.values.len())));
            names
        };
        assert_eq!(collect(), collect());
        let names = collect();
        assert_eq!(
            names,
            vec![("conv.weight", 18), ("fc.weight", 96), ("fc.bias", 3),]
        );
    }

    #[test]
    fn param_counts() {
        let mut m = small_model();
        assert_eq!(m.prunable_params(), 18 + 96);
        assert_eq!(m.total_params(), 18 + 96 + 3);
    }

    #[test]
    fn summary_lists_layers() {
        let m = small_model();
        let s = m.summary();
        assert!(s.contains("Conv2d"));
        assert!(s.contains("Linear"));
        assert_eq!(s.lines().count(), 4);
    }
}
