//! Pooling layers.

use procrustes_tensor::{conv_out_dim, Scratch, Tensor};

use crate::Layer;

/// 2-D max pooling with a square window.
///
/// # Examples
///
/// ```
/// use procrustes_nn::{Layer, MaxPool2d};
/// use procrustes_tensor::Tensor;
/// let mut pool = MaxPool2d::new(2, 2);
/// let x = Tensor::from_fn(&[1, 1, 4, 4], |i| (i[2] * 4 + i[3]) as f32);
/// let y = pool.forward(&x, true);
/// assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
/// assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
/// ```
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (input dims, argmax offsets)
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given window and stride.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "MaxPool2d: zero kernel or stride");
        Self {
            kernel,
            stride,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        let s = x.shape();
        assert_eq!(s.rank(), 4, "MaxPool2d: input must be NCHW");
        let (n, c, h, w) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
        let p = conv_out_dim(h, self.kernel, self.stride, 0);
        let q = conv_out_dim(w, self.kernel, self.stride, 0);
        let mut y = scratch.take_tensor_any(&[n, c, p, q]);
        // Persistent cache buffers, refilled in place each training
        // step; eval mode records nothing.
        let mut argmax = if train {
            let (dims, argmax) = self.cache.get_or_insert_with(Default::default);
            dims.clear();
            dims.extend_from_slice(s.dims());
            argmax.clear();
            argmax.resize(n * c * p * q, 0);
            Some(argmax)
        } else {
            None
        };
        let xd = x.data();
        let yd = y.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                for pi in 0..p {
                    for qi in 0..q {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_off = 0;
                        for ri in 0..self.kernel {
                            for si in 0..self.kernel {
                                let off = ((ni * c + ci) * h + pi * self.stride + ri) * w
                                    + qi * self.stride
                                    + si;
                                if xd[off] > best {
                                    best = xd[off];
                                    best_off = off;
                                }
                            }
                        }
                        let yoff = ((ni * c + ci) * p + pi) * q + qi;
                        yd[yoff] = best;
                        if let Some(argmax) = argmax.as_deref_mut() {
                            argmax[yoff] = best_off;
                        }
                    }
                }
            }
        }
        y
    }

    fn backward_with(&mut self, dy: &Tensor, scratch: &mut Scratch) -> Tensor {
        let (dims, argmax) = self
            .cache
            .as_ref()
            .expect("MaxPool2d::backward called before training-mode forward");
        assert_eq!(dy.len(), argmax.len(), "MaxPool2d: gradient shape changed");
        let mut dx = scratch.take_tensor(dims);
        let dxd = dx.data_mut();
        for (yoff, &xoff) in argmax.iter().enumerate() {
            dxd[xoff] += dy.data()[yoff];
        }
        dx
    }

    fn name(&self) -> String {
        format!(
            "MaxPool2d({}×{}, stride {})",
            self.kernel, self.kernel, self.stride
        )
    }
}

/// 2-D average pooling with a square window (DenseNet transitions).
pub struct AvgPool2d {
    kernel: usize,
    stride: usize,
    cached_dims: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "AvgPool2d: zero kernel or stride");
        Self {
            kernel,
            stride,
            cached_dims: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        let s = x.shape();
        assert_eq!(s.rank(), 4, "AvgPool2d: input must be NCHW");
        let (n, c, h, w) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
        let p = conv_out_dim(h, self.kernel, self.stride, 0);
        let q = conv_out_dim(w, self.kernel, self.stride, 0);
        let norm = 1.0 / (self.kernel * self.kernel) as f32;
        let mut y = scratch.take_tensor_any(&[n, c, p, q]);
        let xd = x.data();
        let yd = y.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                for pi in 0..p {
                    for qi in 0..q {
                        let mut acc = 0.0;
                        for ri in 0..self.kernel {
                            for si in 0..self.kernel {
                                acc += xd[((ni * c + ci) * h + pi * self.stride + ri) * w
                                    + qi * self.stride
                                    + si];
                            }
                        }
                        yd[((ni * c + ci) * p + pi) * q + qi] = acc * norm;
                    }
                }
            }
        }
        if train {
            let cached = self.cached_dims.get_or_insert_with(Vec::new);
            cached.clear();
            cached.extend_from_slice(s.dims());
        }
        y
    }

    fn backward_with(&mut self, dy: &Tensor, scratch: &mut Scratch) -> Tensor {
        let dims = self
            .cached_dims
            .as_ref()
            .expect("AvgPool2d::backward called before training-mode forward");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let (p, q) = (dy.shape().dim(2), dy.shape().dim(3));
        let norm = 1.0 / (self.kernel * self.kernel) as f32;
        let mut dx = scratch.take_tensor(dims);
        let dxd = dx.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                for pi in 0..p {
                    for qi in 0..q {
                        let g = dy.data()[((ni * c + ci) * p + pi) * q + qi] * norm;
                        for ri in 0..self.kernel {
                            for si in 0..self.kernel {
                                dxd[((ni * c + ci) * h + pi * self.stride + ri) * w
                                    + qi * self.stride
                                    + si] += g;
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn name(&self) -> String {
        format!(
            "AvgPool2d({}×{}, stride {})",
            self.kernel, self.kernel, self.stride
        )
    }
}

/// Global average pooling: `NCHW → [N, C]` (ResNet/MobileNet heads).
#[derive(Default)]
pub struct GlobalAvgPool {
    cached_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        let s = x.shape();
        assert_eq!(s.rank(), 4, "GlobalAvgPool: input must be NCHW");
        let (n, c, h, w) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
        let norm = 1.0 / (h * w) as f32;
        let mut y = scratch.take_tensor_any(&[n, c]);
        let xd = x.data();
        let yd = y.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                yd[ni * c + ci] = xd[base..base + h * w].iter().sum::<f32>() * norm;
            }
        }
        if train {
            let cached = self.cached_dims.get_or_insert_with(Vec::new);
            cached.clear();
            cached.extend_from_slice(s.dims());
        }
        y
    }

    fn backward_with(&mut self, dy: &Tensor, scratch: &mut Scratch) -> Tensor {
        let dims = self
            .cached_dims
            .as_ref()
            .expect("GlobalAvgPool::backward called before training-mode forward");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let norm = 1.0 / (h * w) as f32;
        let mut dx = scratch.take_tensor(dims);
        let dxd = dx.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let g = dy.data()[ni * c + ci] * norm;
                let base = (ni * c + ci) * h * w;
                for v in &mut dxd[base..base + h * w] {
                    *v = g;
                }
            }
        }
        dx
    }

    fn name(&self) -> String {
        "GlobalAvgPool".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use procrustes_prng::Xorshift64;
    use procrustes_tensor::gradcheck;

    #[test]
    fn maxpool_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
        let y = pool.forward(&x, true);
        assert_eq!(y.data(), &[5.0]);
        let dx = pool.backward(&Tensor::from_vec(&[1, 1, 1, 1], vec![7.0]));
        assert_eq!(dx.data(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn avgpool_gradcheck() {
        let mut rng = Xorshift64::new(1);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let mut pool = AvgPool2d::new(2, 2);
        let y = pool.forward(&x, true);
        let dx = pool.backward(&Tensor::ones(y.shape().dims()));
        let report = gradcheck::check(&x, &dx, 8, 1e-2, |xt| pool.forward(xt, false).sum());
        assert!(report.passes(1e-3), "err {}", report.max_rel_err);
    }

    #[test]
    fn gap_averages_and_backprops() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_fn(&[1, 2, 2, 2], |i| if i[1] == 0 { 4.0 } else { 8.0 });
        let y = gap.forward(&x, true);
        assert_eq!(y.data(), &[4.0, 8.0]);
        let dx = gap.backward(&Tensor::from_vec(&[1, 2], vec![4.0, 8.0]));
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn maxpool_gradcheck_with_distinct_values() {
        // Use strictly distinct inputs so argmax is stable under probing.
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| (i[2] * 4 + i[3]) as f32 * 3.7 + 1.0);
        let mut pool = MaxPool2d::new(2, 2);
        let y = pool.forward(&x, true);
        let dx = pool.backward(&Tensor::ones(y.shape().dims()));
        let report = gradcheck::check(&x, &dx, 16, 1e-3, |xt| pool.forward(xt, false).sum());
        assert!(report.passes(1e-2), "err {}", report.max_rel_err);
    }

    #[test]
    #[should_panic(expected = "zero kernel or stride")]
    fn zero_kernel_rejected() {
        MaxPool2d::new(0, 1);
    }
}
