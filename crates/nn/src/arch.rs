//! Network architecture descriptors.
//!
//! Two families live here:
//!
//! 1. **Full-size geometry tables** for the five networks of the paper's
//!    evaluation (Table II): [`vgg_s`], [`resnet18`], [`mobilenet_v2`],
//!    [`wrn_28_10`], and [`densenet`]. These describe every weight layer's
//!    loop-nest dimensions (`N, C, K, P, Q, R, S` of Alg 1) and are what
//!    the accelerator simulator consumes — the performance/energy model
//!    needs geometry and sparsity, never trained weight values.
//!
//! 2. **Tiny trainable variants** of each family ([`tiny_vgg`],
//!    [`tiny_resnet`], …) used by the substituted accuracy experiments
//!    (Figs 6, 7, 15, 16) where actual training runs on the CPU.

use procrustes_prng::UniformRng;

use crate::{
    BatchNorm2d, Conv2d, DenseBlock, DwSeparable, Flatten, GlobalAvgPool, Linear, MaxPool2d, ReLU,
    Residual, Sequential,
};

/// The kind of a weight layer, which determines weight count and MAC
/// accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Standard convolution (`K·C·R·S` weights).
    Conv,
    /// Depthwise convolution (`C·R·S` weights, one filter per channel).
    DepthwiseConv,
    /// Fully-connected layer (treated as a 1×1 conv over a 1×1 map).
    Fc,
}

/// Geometry of one weight layer: the seven loop-nest extents of the
/// paper's Alg 1 plus stride/padding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerGeom {
    /// Diagnostic name, e.g. `"conv3_2"`.
    pub name: String,
    /// Layer kind.
    pub kind: LayerKind,
    /// Input channels (`C`).
    pub c: usize,
    /// Output channels (`K`).
    pub k: usize,
    /// Input spatial height (`H`).
    pub h: usize,
    /// Input spatial width (`W`).
    pub w: usize,
    /// Filter height (`R`).
    pub r: usize,
    /// Filter width (`S`).
    pub s: usize,
    /// Convolution stride.
    pub stride: usize,
    /// Symmetric zero padding.
    pub pad: usize,
}

impl LayerGeom {
    /// A standard conv layer descriptor.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        name: impl Into<String>,
        c: usize,
        k: usize,
        h: usize,
        w: usize,
        r: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::Conv,
            c,
            k,
            h,
            w,
            r,
            s: r,
            stride,
            pad,
        }
    }

    /// A depthwise conv layer descriptor (`channels` in = out).
    pub fn depthwise(
        name: impl Into<String>,
        channels: usize,
        h: usize,
        w: usize,
        r: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::DepthwiseConv,
            c: channels,
            k: channels,
            h,
            w,
            r,
            s: r,
            stride,
            pad,
        }
    }

    /// A fully-connected layer descriptor.
    pub fn fc(name: impl Into<String>, inp: usize, out: usize) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::Fc,
            c: inp,
            k: out,
            h: 1,
            w: 1,
            r: 1,
            s: 1,
            stride: 1,
            pad: 0,
        }
    }

    /// Output spatial height (`P`).
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.r) / self.stride + 1
    }

    /// Output spatial width (`Q`).
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.s) / self.stride + 1
    }

    /// Number of weights in this layer.
    pub fn weights(&self) -> usize {
        match self.kind {
            LayerKind::Conv | LayerKind::Fc => self.k * self.c * self.r * self.s,
            LayerKind::DepthwiseConv => self.c * self.r * self.s,
        }
    }

    /// Dense MAC count for a minibatch of `batch` samples (one training
    /// *forward* pass; backward and weight-update each cost the same
    /// again, cf. Fig 2).
    pub fn macs(&self, batch: usize) -> u64 {
        let per_weight = self.out_h() as u64 * self.out_w() as u64 * batch as u64;
        self.weights() as u64 * per_weight
    }
}

/// A full network: named layer-geometry list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkArch {
    /// Network name as used in the paper ("VGG-S", "ResNet18", …).
    pub name: &'static str,
    /// Input `(channels, height, width)`.
    pub input: (usize, usize, usize),
    /// Number of output classes.
    pub classes: usize,
    /// All weight layers in execution order.
    pub layers: Vec<LayerGeom>,
}

impl NetworkArch {
    /// Total weight count across all layers.
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(LayerGeom::weights).sum()
    }

    /// Total dense forward-pass MACs for a minibatch of `batch`.
    pub fn total_macs(&self, batch: usize) -> u64 {
        self.layers.iter().map(|l| l.macs(batch)).sum()
    }
}

// ---------------------------------------------------------------------------
// Full-size paper networks
// ---------------------------------------------------------------------------

/// VGG-S (Zagoruyko's CIFAR VGG: the VGG-16 conv stack with a reduced fc
/// head; ~15 M weights — Table II row 3).
pub fn vgg_s() -> NetworkArch {
    let mut layers = Vec::new();
    let mut h = 32;
    let mut c = 3;
    let plan: &[(usize, usize)] = &[(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    for (gi, &(width, convs)) in plan.iter().enumerate() {
        for li in 0..convs {
            layers.push(LayerGeom::conv(
                format!("conv{}_{}", gi + 1, li + 1),
                c,
                width,
                h,
                h,
                3,
                1,
                1,
            ));
            c = width;
        }
        h /= 2; // maxpool 2x2 after each group
    }
    layers.push(LayerGeom::fc("fc1", 512, 512));
    layers.push(LayerGeom::fc("fc2", 512, 10));
    NetworkArch {
        name: "VGG-S",
        input: (3, 32, 32),
        classes: 10,
        layers,
    }
}

/// ResNet18 for ImageNet (11.7 M weights — Table II row 5).
pub fn resnet18() -> NetworkArch {
    let mut layers = Vec::new();
    layers.push(LayerGeom::conv("conv1", 3, 64, 224, 224, 7, 2, 3));
    // After conv1 (112) and 3x3/2 maxpool: 56x56.
    let stages: &[(usize, usize, usize)] = &[
        // (in_ch, out_ch, input spatial of the stage's first block)
        (64, 64, 56),
        (64, 128, 56),
        (128, 256, 28),
        (256, 512, 14),
    ];
    for (si, &(cin, cout, hin)) in stages.iter().enumerate() {
        let stride = if si == 0 { 1 } else { 2 };
        let hout = hin / stride;
        // Block 1 (possibly strided, with projection shortcut).
        layers.push(LayerGeom::conv(
            format!("s{}b1_conv1", si + 1),
            cin,
            cout,
            hin,
            hin,
            3,
            stride,
            1,
        ));
        layers.push(LayerGeom::conv(
            format!("s{}b1_conv2", si + 1),
            cout,
            cout,
            hout,
            hout,
            3,
            1,
            1,
        ));
        if stride != 1 || cin != cout {
            layers.push(LayerGeom::conv(
                format!("s{}b1_down", si + 1),
                cin,
                cout,
                hin,
                hin,
                1,
                stride,
                0,
            ));
        }
        // Block 2.
        layers.push(LayerGeom::conv(
            format!("s{}b2_conv1", si + 1),
            cout,
            cout,
            hout,
            hout,
            3,
            1,
            1,
        ));
        layers.push(LayerGeom::conv(
            format!("s{}b2_conv2", si + 1),
            cout,
            cout,
            hout,
            hout,
            3,
            1,
            1,
        ));
    }
    layers.push(LayerGeom::fc("fc", 512, 1000));
    NetworkArch {
        name: "ResNet18",
        input: (3, 224, 224),
        classes: 1000,
        layers,
    }
}

/// MobileNet v2 for ImageNet (~3.5 M weights — Table II row 4).
pub fn mobilenet_v2() -> NetworkArch {
    let mut layers = Vec::new();
    layers.push(LayerGeom::conv("conv0", 3, 32, 224, 224, 3, 2, 1));
    // (expansion t, out channels, repeats, first stride), input resolution
    // tracked as we go. Standard MobileNet v2 table.
    let table: &[(usize, usize, usize, usize)] = &[
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut c = 32;
    let mut h = 112;
    for (bi, &(t, out, n, s)) in table.iter().enumerate() {
        for ri in 0..n {
            let stride = if ri == 0 { s } else { 1 };
            let exp = c * t;
            let tag = format!("b{}_{}", bi + 1, ri + 1);
            if t != 1 {
                layers.push(LayerGeom::conv(
                    format!("{tag}_expand"),
                    c,
                    exp,
                    h,
                    h,
                    1,
                    1,
                    0,
                ));
            }
            layers.push(LayerGeom::depthwise(
                format!("{tag}_dw"),
                exp,
                h,
                h,
                3,
                stride,
                1,
            ));
            let hout = h / stride;
            layers.push(LayerGeom::conv(
                format!("{tag}_project"),
                exp,
                out,
                hout,
                hout,
                1,
                1,
                0,
            ));
            c = out;
            h = hout;
        }
    }
    layers.push(LayerGeom::conv("conv_last", 320, 1280, 7, 7, 1, 1, 0));
    layers.push(LayerGeom::fc("fc", 1280, 1000));
    NetworkArch {
        name: "MobileNet v2",
        input: (3, 224, 224),
        classes: 1000,
        layers,
    }
}

/// WRN-28-10 for CIFAR-10 (36.5 M weights — Table II row 2).
pub fn wrn_28_10() -> NetworkArch {
    let mut layers = Vec::new();
    layers.push(LayerGeom::conv("conv0", 3, 16, 32, 32, 3, 1, 1));
    // n = (28 - 4) / 6 = 4 blocks per group; widths 160/320/640.
    let groups: &[(usize, usize, usize, usize)] = &[
        // (in_ch, out_ch, input spatial, first stride)
        (16, 160, 32, 1),
        (160, 320, 32, 2),
        (320, 640, 16, 2),
    ];
    for (gi, &(cin, cout, hin, s)) in groups.iter().enumerate() {
        let hout = hin / s;
        for bi in 0..4 {
            let (bc, bh, bs) = if bi == 0 {
                (cin, hin, s)
            } else {
                (cout, hout, 1)
            };
            layers.push(LayerGeom::conv(
                format!("g{}b{}_conv1", gi + 1, bi + 1),
                bc,
                cout,
                bh,
                bh,
                3,
                bs,
                1,
            ));
            layers.push(LayerGeom::conv(
                format!("g{}b{}_conv2", gi + 1, bi + 1),
                cout,
                cout,
                hout,
                hout,
                3,
                1,
                1,
            ));
            if bi == 0 {
                layers.push(LayerGeom::conv(
                    format!("g{}b{}_down", gi + 1, bi + 1),
                    bc,
                    cout,
                    bh,
                    bh,
                    1,
                    bs,
                    0,
                ));
            }
        }
    }
    layers.push(LayerGeom::fc("fc", 640, 10));
    NetworkArch {
        name: "WRN-28-10",
        input: (3, 32, 32),
        classes: 10,
        layers,
    }
}

/// The paper's small DenseNet: growth rate 24, 3 blocks × 10 layers,
/// plain connectivity (~2.7 M weights — Table II row 1).
pub fn densenet() -> NetworkArch {
    let growth = 24;
    let mut layers = Vec::new();
    layers.push(LayerGeom::conv("conv0", 3, 16, 32, 32, 3, 1, 1));
    let mut c = 16;
    let mut h = 32;
    for b in 0..3 {
        for l in 0..10 {
            layers.push(LayerGeom::conv(
                format!("block{}_layer{}", b + 1, l + 1),
                c,
                growth,
                h,
                h,
                3,
                1,
                1,
            ));
            c += growth;
        }
        if b < 2 {
            // Transition: 1x1 conv (same width) + 2x2 avg pool.
            layers.push(LayerGeom::conv(
                format!("trans{}", b + 1),
                c,
                c,
                h,
                h,
                1,
                1,
                0,
            ));
            h /= 2;
        }
    }
    layers.push(LayerGeom::fc("fc", c, 10));
    NetworkArch {
        name: "DenseNet",
        input: (3, 32, 32),
        classes: 10,
        layers,
    }
}

/// All five paper networks, in the order of the paper's figures
/// (WRN, DenseNet, VGG-S, ResNet18, MobileNet v2).
pub fn paper_networks() -> Vec<NetworkArch> {
    vec![wrn_28_10(), densenet(), vgg_s(), resnet18(), mobilenet_v2()]
}

// ---------------------------------------------------------------------------
// Tiny trainable variants (for the substituted accuracy experiments)
// ---------------------------------------------------------------------------

/// A small VGG-style CNN for 32×32 inputs (~120 k prunable weights).
pub fn tiny_vgg<R: UniformRng + ?Sized>(classes: usize, rng: &mut R) -> Sequential {
    let mut m = Sequential::new();
    for (cin, cout) in [(3, 16), (16, 16)] {
        m.push(Conv2d::new(cin, cout, 3, 1, 1, false, rng));
        m.push(BatchNorm2d::new(cout));
        m.push(ReLU::new());
    }
    m.push(MaxPool2d::new(2, 2)); // 16
    for (cin, cout) in [(16, 32), (32, 32)] {
        m.push(Conv2d::new(cin, cout, 3, 1, 1, false, rng));
        m.push(BatchNorm2d::new(cout));
        m.push(ReLU::new());
    }
    m.push(MaxPool2d::new(2, 2)); // 8
    m.push(Conv2d::new(32, 64, 3, 1, 1, false, rng));
    m.push(BatchNorm2d::new(64));
    m.push(ReLU::new());
    m.push(MaxPool2d::new(2, 2)); // 4
    m.push(Flatten::new());
    m.push(Linear::new(64 * 4 * 4, 64, true, rng));
    m.push(ReLU::new());
    m.push(Linear::new(64, classes, true, rng));
    m
}

/// A small ResNet for 32×32 or 64×64 inputs (~90 k prunable weights).
pub fn tiny_resnet<R: UniformRng + ?Sized>(classes: usize, rng: &mut R) -> Sequential {
    let mut m = Sequential::new();
    m.push(Conv2d::new(3, 16, 3, 1, 1, false, rng));
    m.push(BatchNorm2d::new(16));
    m.push(ReLU::new());
    m.push(Residual::basic(16, 16, 1, rng));
    m.push(Residual::basic(16, 32, 2, rng));
    m.push(Residual::basic(32, 64, 2, rng));
    m.push(GlobalAvgPool::new());
    m.push(Linear::new(64, classes, true, rng));
    m
}

/// A small WRN (widen factor 2, one block per group; ~190 k weights).
pub fn tiny_wrn<R: UniformRng + ?Sized>(classes: usize, rng: &mut R) -> Sequential {
    let mut m = Sequential::new();
    m.push(Conv2d::new(3, 16, 3, 1, 1, false, rng));
    m.push(BatchNorm2d::new(16));
    m.push(ReLU::new());
    m.push(Residual::basic(16, 32, 1, rng));
    m.push(Residual::basic(32, 64, 2, rng));
    m.push(Residual::basic(64, 128, 2, rng));
    m.push(GlobalAvgPool::new());
    m.push(Linear::new(128, classes, true, rng));
    m
}

/// A small DenseNet (growth 8, two blocks of three layers; ~25 k weights).
pub fn tiny_densenet<R: UniformRng + ?Sized>(classes: usize, rng: &mut R) -> Sequential {
    let growth = 8;
    let mut m = Sequential::new();
    m.push(Conv2d::new(3, 16, 3, 1, 1, false, rng));
    let mut c = 16;
    for _ in 0..3 {
        m.push(DenseBlock::new(c, growth, rng));
        c += growth;
    }
    m.push(Conv2d::new(c, c, 1, 1, 0, false, rng));
    m.push(MaxPool2d::new(2, 2));
    for _ in 0..3 {
        m.push(DenseBlock::new(c, growth, rng));
        c += growth;
    }
    m.push(BatchNorm2d::new(c));
    m.push(ReLU::new());
    m.push(GlobalAvgPool::new());
    m.push(Linear::new(c, classes, true, rng));
    m
}

/// A small MobileNet built from depthwise-separable blocks (~30 k weights).
pub fn tiny_mobilenet<R: UniformRng + ?Sized>(classes: usize, rng: &mut R) -> Sequential {
    let mut m = Sequential::new();
    m.push(Conv2d::new(3, 16, 3, 2, 1, false, rng));
    m.push(BatchNorm2d::new(16));
    m.push(ReLU::new());
    m.push(DwSeparable::new(16, 32, 1, rng));
    m.push(DwSeparable::new(32, 64, 2, rng));
    m.push(DwSeparable::new(64, 128, 2, rng));
    m.push(GlobalAvgPool::new());
    m.push(Linear::new(128, classes, true, rng));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layer;
    use procrustes_prng::Xorshift64;
    use procrustes_tensor::Tensor;

    /// Weight totals must match the paper's Table II dense sizes.
    #[test]
    fn paper_network_weight_counts() {
        let cases: &[(NetworkArch, f64, f64)] = &[
            // (arch, expected millions, tolerance fraction)
            (vgg_s(), 15.0, 0.02),
            (resnet18(), 11.7, 0.02),
            (mobilenet_v2(), 3.5, 0.06),
            (wrn_28_10(), 36.5, 0.02),
            (densenet(), 2.7, 0.03),
        ];
        for (arch, expect_m, tol) in cases {
            let got = arch.total_weights() as f64 / 1e6;
            assert!(
                (got - expect_m).abs() / expect_m < *tol,
                "{}: {got:.2}M weights, expected ~{expect_m}M",
                arch.name
            );
        }
    }

    /// MAC totals land in the right ballpark (paper counts single-sample
    /// forward MACs; counting conventions differ by padding treatment, so
    /// we accept a generous band while still catching geometry errors).
    #[test]
    fn paper_network_mac_counts() {
        let cases: &[(NetworkArch, f64, f64)] = &[
            (vgg_s(), 269e6, 0.35),
            (resnet18(), 1.8e9, 0.15),
            (mobilenet_v2(), 301e6, 0.15),
            (wrn_28_10(), 4.0e9, 0.5),
            (densenet(), 528e6, 0.5),
        ];
        for (arch, expect, tol) in cases {
            let got = arch.total_macs(1) as f64;
            assert!(
                (got - expect).abs() / expect < *tol,
                "{}: {:.3e} MACs, expected ~{:.3e}",
                arch.name,
                got,
                expect
            );
        }
    }

    #[test]
    fn geometry_is_consistent() {
        for arch in paper_networks() {
            for l in &arch.layers {
                assert!(l.out_h() > 0 && l.out_w() > 0, "{}: {}", arch.name, l.name);
                assert!(l.weights() > 0);
                if l.kind == LayerKind::DepthwiseConv {
                    assert_eq!(l.c, l.k, "depthwise must preserve channels");
                }
            }
        }
    }

    #[test]
    fn vgg_s_layer_structure() {
        let arch = vgg_s();
        assert_eq!(arch.layers.len(), 13 + 2); // 13 convs + 2 fc
        assert_eq!(arch.layers[0].c, 3);
        assert_eq!(arch.layers[0].k, 64);
        assert_eq!(arch.layers.last().unwrap().k, 10);
    }

    #[test]
    fn resnet18_has_downsample_convs() {
        let arch = resnet18();
        let downs = arch
            .layers
            .iter()
            .filter(|l| l.name.contains("down"))
            .count();
        assert_eq!(downs, 3);
    }

    fn smoke_train(mut model: Sequential, dims: &[usize]) {
        let x = Tensor::randn(dims, 1.0, &mut Xorshift64::new(1));
        let y = model.forward(&x, true);
        assert_eq!(y.shape().dim(0), dims[0]);
        let dy = Tensor::ones(y.shape().dims());
        let dx = model.backward(&dy);
        assert_eq!(dx.shape().dims(), dims);
    }

    #[test]
    fn tiny_models_train_smoke() {
        let mut rng = Xorshift64::new(3);
        smoke_train(tiny_vgg(10, &mut rng), &[2, 3, 32, 32]);
        smoke_train(tiny_resnet(10, &mut rng), &[2, 3, 32, 32]);
        smoke_train(tiny_wrn(10, &mut rng), &[2, 3, 32, 32]);
        smoke_train(tiny_densenet(10, &mut rng), &[2, 3, 32, 32]);
        smoke_train(tiny_mobilenet(10, &mut rng), &[2, 3, 32, 32]);
    }

    #[test]
    fn tiny_resnet_handles_imagenet_like_input() {
        let mut rng = Xorshift64::new(4);
        smoke_train(tiny_resnet(10, &mut rng), &[1, 3, 64, 64]);
    }

    #[test]
    fn tiny_model_param_counts_are_modest() {
        let mut rng = Xorshift64::new(5);
        let mut m = tiny_vgg(10, &mut rng);
        let p = m.prunable_params();
        assert!((50_000..500_000).contains(&p), "tiny_vgg: {p} params");
    }
}
