//! End-to-end learning tests: the framework must actually train.
//!
//! Every substituted accuracy experiment (paper Figs 6, 7, 15, 16) stands
//! on this property, so it is pinned here: a small CNN trained with plain
//! SGD on the synthetic dataset must beat chance by a wide margin.

use procrustes_nn::{accuracy, data::SyntheticImages, Layer, Sequential, Sgd, SoftmaxCrossEntropy};
use procrustes_nn::{BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, ReLU};
use procrustes_prng::Xorshift64;

fn micro_cnn(classes: usize, rng: &mut Xorshift64) -> Sequential {
    let mut m = Sequential::new();
    m.push(Conv2d::new(3, 8, 3, 1, 1, false, rng));
    m.push(BatchNorm2d::new(8));
    m.push(ReLU::new());
    m.push(MaxPool2d::new(2, 2)); // 8
    m.push(Conv2d::new(8, 16, 3, 1, 1, false, rng));
    m.push(BatchNorm2d::new(16));
    m.push(ReLU::new());
    m.push(MaxPool2d::new(2, 2)); // 4
    m.push(Flatten::new());
    m.push(Linear::new(16 * 4 * 4, classes, true, rng));
    m
}

#[test]
fn sgd_learns_synthetic_classification() {
    let classes = 4;
    let data = SyntheticImages::new(classes, 16, 16, 0.25, 7);
    let mut rng = Xorshift64::new(1);
    let mut model = micro_cnn(classes, &mut rng);
    let mut opt = Sgd::new(0.05).with_momentum(0.9);
    let loss_fn = SoftmaxCrossEntropy;

    let mut losses = Vec::new();
    for _ in 0..80 {
        let (x, labels) = data.batch(16, &mut rng);
        let logits = model.forward(&x, true);
        let (loss, dlogits) = loss_fn.loss_and_grad(&logits, &labels);
        losses.push(loss);
        model.backward(&dlogits);
        opt.step(&mut model);
    }

    // Loss must drop substantially from its starting point.
    let start: f32 = losses[..5].iter().sum::<f32>() / 5.0;
    let end: f32 = losses[losses.len() - 5..].iter().sum::<f32>() / 5.0;
    assert!(end < start * 0.6, "loss barely moved: {start} -> {end}");

    // Validation accuracy well above chance (25% for 4 classes).
    let (vx, vlabels) = data.fixed_set(64, 999);
    let logits = model.forward(&vx, false);
    let acc = accuracy(&logits, &vlabels);
    assert!(acc > 0.6, "validation accuracy only {acc}");
}

#[test]
fn eval_mode_is_deterministic_and_stateless() {
    let data = SyntheticImages::new(4, 16, 16, 0.25, 7);
    let mut rng = Xorshift64::new(2);
    let mut model = micro_cnn(4, &mut rng);
    let (vx, _) = data.fixed_set(8, 1);
    let a = model.forward(&vx, false);
    let b = model.forward(&vx, false);
    assert_eq!(a, b, "eval forward must not mutate state");
}
