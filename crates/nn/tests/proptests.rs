//! Property-based tests over randomly composed models: any generated
//! layer stack must satisfy the framework's structural contracts.

// These property tests depend on the external `proptest` crate, which is
// unavailable in offline builds. Opt in with `--features proptests` after
// adding `proptest` as a dev-dependency (see the crate manifest).
#![cfg(feature = "proptests")]

use procrustes_nn::{
    accuracy, BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Layer, Linear, MaxPool2d, ReLU,
    Residual, Sequential, SoftmaxCrossEntropy,
};
use procrustes_prng::Xorshift64;
use procrustes_tensor::Tensor;
use proptest::prelude::*;

/// A random conv stack description: per stage (width multiplier, pool?).
fn arb_stack() -> impl Strategy<Value = (Vec<(usize, bool)>, u64)> {
    (
        proptest::collection::vec((1usize..4, proptest::bool::ANY), 1..4),
        0u64..1000,
    )
}

fn build(stages: &[(usize, bool)], seed: u64, classes: usize) -> Sequential {
    let mut rng = Xorshift64::new(seed);
    let mut m = Sequential::new();
    let mut ch = 3;
    let mut spatial = 16usize;
    for &(mult, pool) in stages {
        let out = 4 * mult;
        m.push(Conv2d::new(ch, out, 3, 1, 1, false, &mut rng));
        m.push(BatchNorm2d::new(out));
        m.push(ReLU::new());
        if pool && spatial >= 4 {
            m.push(MaxPool2d::new(2, 2));
            spatial /= 2;
        }
        ch = out;
    }
    m.push(GlobalAvgPool::new());
    m.push(Linear::new(ch, classes, true, &mut rng));
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Forward produces [N, classes]; backward returns the input shape;
    /// every parameter receives a gradient.
    #[test]
    fn stack_shape_contracts((stages, seed) in arb_stack()) {
        let classes = 5;
        let mut model = build(&stages, seed, classes);
        let x = Tensor::randn(&[2, 3, 16, 16], 1.0, &mut Xorshift64::new(seed ^ 1));
        let y = model.forward(&x, true);
        prop_assert_eq!(y.shape().dims(), &[2, classes]);
        let (_, dlogits) = SoftmaxCrossEntropy.loss_and_grad(&y, &[0, 1]);
        let dx = model.backward(&dlogits);
        prop_assert_eq!(dx.shape().dims(), x.shape().dims());
        let mut saw_nonzero_grad = false;
        let mut shapes_agree = true;
        model.visit_params(&mut |p| {
            shapes_agree &= p.values.len() == p.grads.len();
            if p.grads.data().iter().any(|&g| g != 0.0) {
                saw_nonzero_grad = true;
            }
        });
        prop_assert!(shapes_agree, "grad shape mismatch");
        prop_assert!(saw_nonzero_grad, "no gradients flowed");
    }

    /// Eval-mode forward is pure: repeated calls agree and training state
    /// is untouched.
    #[test]
    fn eval_forward_is_pure((stages, seed) in arb_stack()) {
        let mut model = build(&stages, seed, 4);
        let x = Tensor::randn(&[1, 3, 16, 16], 1.0, &mut Xorshift64::new(seed ^ 2));
        let a = model.forward(&x, false);
        let b = model.forward(&x, false);
        prop_assert_eq!(a, b);
    }

    /// zero_grads really zeroes everything, for any architecture.
    #[test]
    fn zero_grads_contract((stages, seed) in arb_stack()) {
        let mut model = build(&stages, seed, 4);
        let x = Tensor::randn(&[2, 3, 16, 16], 1.0, &mut Xorshift64::new(seed ^ 3));
        let y = model.forward(&x, true);
        model.backward(&Tensor::ones(y.shape().dims()));
        model.zero_grads();
        model.visit_params(&mut |p| {
            assert_eq!(p.grads.sum(), 0.0, "{} not zeroed", p.name);
        });
    }

    /// Residual blocks preserve shapes for any channel/stride choice.
    #[test]
    fn residual_shape_contract(cin in 1usize..6, mult in 1usize..4, stride in 1usize..3, seed in 0u64..100) {
        let cin = cin * 2;
        let cout = cin * mult;
        let mut rng = Xorshift64::new(seed);
        let mut block = Residual::basic(cin, cout, stride, &mut rng);
        let x = Tensor::randn(&[1, cin, 8, 8], 1.0, &mut rng);
        let y = block.forward(&x, true);
        prop_assert_eq!(y.shape().dim(1), cout);
        prop_assert_eq!(y.shape().dim(2), 8 / stride);
        let dx = block.backward(&Tensor::ones(y.shape().dims()));
        prop_assert_eq!(dx.shape().dims(), x.shape().dims());
    }

    /// Accuracy is always a valid fraction and perfect logits score 1.
    #[test]
    fn accuracy_bounds(labels in proptest::collection::vec(0usize..4, 1..16)) {
        let n = labels.len();
        let perfect = Tensor::from_fn(&[n, 4], |i| {
            if i[1] == labels[i[0]] { 5.0 } else { 0.0 }
        });
        prop_assert_eq!(accuracy(&perfect, &labels), 1.0);
        let zero = Tensor::zeros(&[n, 4]);
        let acc = accuracy(&zero, &labels);
        prop_assert!((0.0..=1.0).contains(&acc));
    }

    /// Flatten/Linear round-trip: any flatten of a 4-d tensor feeds a
    /// matching Linear without panicking, and gradients return.
    #[test]
    fn flatten_linear_composition(c in 1usize..5, hw in 1usize..5, seed in 0u64..100) {
        let mut rng = Xorshift64::new(seed);
        let mut m = Sequential::new();
        m.push(Flatten::new());
        m.push(Linear::new(c * hw * hw, 3, true, &mut rng));
        let x = Tensor::randn(&[2, c, hw, hw], 1.0, &mut rng);
        let y = m.forward(&x, true);
        prop_assert_eq!(y.shape().dims(), &[2, 3]);
        let dx = m.backward(&Tensor::ones(&[2, 3]));
        prop_assert_eq!(dx.shape().dims(), x.shape().dims());
    }
}
