//! Backend-dispatch equivalence: conv and fc layers must produce
//! identical outputs and gradients whether their weights run through the
//! dense kernels or the CSB-compressed ones, across random masks and
//! densities (including the fully-dense and fully-zero edges).

use procrustes_nn::{ComputeBackend, Conv2d, Flatten, Layer, Linear, ReLU, Sequential};
use procrustes_prng::{UniformRng, Xorshift64};
use procrustes_tensor::Tensor;

/// Zeroes a `keep`-complement of the layer's prunable weights.
fn sparsify(layer: &mut dyn Layer, keep: f64, seed: u64) {
    let mut rng = Xorshift64::new(seed);
    layer.visit_params(&mut |p| {
        if p.kind == procrustes_nn::ParamKind::Prunable {
            for v in p.values.data_mut() {
                if rng.next_f64() >= keep {
                    *v = 0.0;
                }
            }
        }
    });
}

fn assert_tensors_equal(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert!(
            (x - y).abs() <= 1e-5 * (1.0 + x.abs().max(y.abs())),
            "{what}: mismatch at {i}: {x} vs {y}"
        );
        assert_eq!(x, y, "{what}: not bitwise at {i}: {x} vs {y}");
    }
}

#[test]
fn conv_layer_matches_across_backends_and_densities() {
    for (keep, seed) in [(0.0, 1u64), (0.07, 2), (0.4, 3), (1.0, 4)] {
        let build = || {
            let mut conv = Conv2d::new(3, 5, 3, 1, 1, true, &mut Xorshift64::new(11));
            sparsify(&mut conv, keep, seed);
            conv
        };
        let x = Tensor::randn(&[2, 3, 7, 7], 1.0, &mut Xorshift64::new(seed + 50));
        let mut dense = build();
        let mut csb = build();
        csb.set_compute_backend(ComputeBackend::Csb);

        let yd = dense.forward(&x, true);
        let yc = csb.forward(&x, true);
        assert_tensors_equal(&yd, &yc, &format!("conv forward keep={keep}"));
        assert!(csb.weight_store().is_csb(), "keep={keep}");

        let dy = Tensor::randn(yd.shape().dims(), 1.0, &mut Xorshift64::new(seed + 90));
        let dxd = dense.backward(&dy);
        let dxc = csb.backward(&dy);
        assert_tensors_equal(&dxd, &dxc, &format!("conv input-grad keep={keep}"));

        let grads = |l: &mut Conv2d| {
            let mut out = Vec::new();
            l.visit_params(&mut |p| out.push(p.grads.clone()));
            out
        };
        for (gd, gc) in grads(&mut dense).iter().zip(grads(&mut csb).iter()) {
            assert_tensors_equal(gd, gc, &format!("conv weight-grad keep={keep}"));
        }
    }
}

#[test]
fn linear_layer_matches_across_backends_and_densities() {
    for (keep, seed) in [(0.0, 5u64), (0.1, 6), (0.5, 7), (1.0, 8)] {
        let build = || {
            let mut fc = Linear::new(37, 13, true, &mut Xorshift64::new(21));
            // A non-default edge exercises ragged border blocks (37 and
            // 13 are not multiples of 8).
            fc.set_fc_edge(8);
            sparsify(&mut fc, keep, seed);
            fc
        };
        let x = Tensor::randn(&[4, 37], 1.0, &mut Xorshift64::new(seed + 60));
        let mut dense = build();
        let mut csb = build();
        csb.set_compute_backend(ComputeBackend::Csb);

        let yd = dense.forward(&x, true);
        let yc = csb.forward(&x, true);
        assert_tensors_equal(&yd, &yc, &format!("fc forward keep={keep}"));

        let dy = Tensor::randn(yd.shape().dims(), 1.0, &mut Xorshift64::new(seed + 70));
        let dxd = dense.backward(&dy);
        let dxc = csb.backward(&dy);
        assert_tensors_equal(&dxd, &dxc, &format!("fc input-grad keep={keep}"));
    }
}

#[test]
fn auto_backend_promotes_and_demotes_per_layer() {
    let mut conv = Conv2d::new(2, 4, 3, 1, 1, false, &mut Xorshift64::new(31));
    conv.set_compute_backend(ComputeBackend::auto());
    let x = Tensor::ones(&[1, 2, 5, 5]);

    // Dense weights: density 1.0 > 0.5 -> stays on the dense path.
    conv.forward(&x, false);
    assert!(!conv.weight_store().is_csb());

    // Prune below the threshold: the next forward promotes.
    sparsify(&mut conv, 0.2, 32);
    conv.forward(&x, false);
    assert!(conv.weight_store().is_csb());
    assert!(conv.weight_store().density() <= 0.5);

    // Refill the weights: the next forward demotes again.
    conv.weight_mut().map_inplace(|_| 1.0);
    conv.forward(&x, false);
    assert!(!conv.weight_store().is_csb());
}

#[test]
fn sequential_propagates_backend_and_stays_equivalent() {
    let build = || {
        let mut rng = Xorshift64::new(41);
        let mut m = Sequential::new();
        m.push(Conv2d::new(1, 4, 3, 1, 1, false, &mut rng));
        m.push(ReLU::new());
        m.push(Flatten::new());
        m.push(Linear::new(4 * 6 * 6, 3, true, &mut rng));
        sparsify(&mut m, 0.15, 42);
        m
    };
    let x = Tensor::randn(&[2, 1, 6, 6], 1.0, &mut Xorshift64::new(43));
    let dy = Tensor::randn(&[2, 3], 1.0, &mut Xorshift64::new(44));

    let mut dense = build();
    let mut csb = build();
    csb.set_compute_backend(ComputeBackend::Csb);

    let yd = dense.forward(&x, true);
    let yc = csb.forward(&x, true);
    assert_tensors_equal(&yd, &yc, "model forward");
    let dxd = dense.backward(&dy);
    let dxc = csb.backward(&dy);
    assert_tensors_equal(&dxd, &dxc, "model input-grad");
}
