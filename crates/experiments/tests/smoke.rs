//! Smoke tests for the experiment harness binary: every analytical
//! (non-training) subcommand must run, exit cleanly, and print the
//! headline its paper artifact is about. Training subcommands are covered
//! by the workspace's library tests; running them here would make the
//! test suite minutes long.

use std::process::Command;

fn run(args: &[&str]) -> String {
    let exe = env!("CARGO_BIN_EXE_procrustes-experiments");
    let out = Command::new(exe)
        .args(args)
        .output()
        .expect("experiment binary runs");
    assert!(
        out.status.success(),
        "{args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn fig1_prints_ideal_potential() {
    let out = run(&["fig1"]);
    assert!(out.contains("Fig 1"));
    assert!(out.contains("energy saving"));
    assert!(out.contains("speedup"));
}

#[test]
fn fig5_and_fig13_print_histograms() {
    let out5 = run(&["fig5"]);
    assert!(out5.contains("load-imbalance histogram"));
    assert!(out5.contains("unbalanced"));
    let out13 = run(&["fig13"]);
    assert!(out13.contains("half-tile balanced"));
}

#[test]
fn fig8_prints_csb_example() {
    let out = run(&["fig8"]);
    assert!(out.contains("101001101"), "paper's mask missing: {out}");
    assert!(out.contains("packed weights"));
}

#[test]
fn fig17_to_fig20_print_sweeps() {
    let out = run(&["fig17"]);
    assert!(out.contains("ResNet18"));
    assert!(out.contains("energy savings"));
    let out = run(&["fig19"]);
    assert!(out.contains("K,N speedups"));
    let out = run(&["fig20"]);
    assert!(out.contains("latency scaling"));
}

#[test]
fn fidelity_ablation_prints_both_models() {
    let out = run(&["fidelity"]);
    assert!(out.contains("latency fidelity"));
    assert!(out.contains("tile-timed"));
    assert!(out.contains("hidden stall"));
    // Every paper network appears in the comparison.
    assert!(out.contains("ResNet18") && out.contains("MobileNet v2"));
}

#[test]
fn tables_print() {
    let out = run(&["table1"]);
    assert!(out.contains("256 (16x16)"));
    let out = run(&["table3"]);
    assert!(out.contains("Quantile Engine"));
    assert!(out.contains("area"));
}

#[test]
fn csv_output_is_written() {
    let dir = std::env::temp_dir().join(format!("procrustes-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    run(&["fig8", "--out", dir.to_str().unwrap()]);
    let csv = std::fs::read_to_string(dir.join("fig8.csv")).expect("csv written");
    assert!(csv.starts_with("component,contents"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_experiment_fails() {
    let exe = env!("CARGO_BIN_EXE_procrustes-experiments");
    let out = Command::new(exe)
        .arg("fig99")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}
