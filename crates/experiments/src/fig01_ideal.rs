//! Fig 1: potential training energy savings and speedup from *ideally*
//! leveraging 5× weight sparsity on VGG-S.
//!
//! Paper setup: 16×16 PEs, sparsity evenly distributed (perfect load
//! balance), zero-overhead compressed format, free retained-weight
//! selection. Expected shape: up to ~2.6× speedup and ~2.3× energy saving
//! over the whole network, with the savings concentrated in fw/bw (weight
//! sparsity) and wu gains from activation sparsity.

use procrustes_core::report::{fmt_cycles, fmt_joules, Table};
use procrustes_core::NetworkEval;
use procrustes_nn::arch;
use procrustes_sim::{ArchConfig, BalanceMode, Mapping, Phase, SparsityInfo};

use crate::ctx::ExpContext;

pub fn run(ctx: &ExpContext) {
    let net = arch::vgg_s();
    let hw = ArchConfig::ideal_16x16();
    let eval = NetworkEval::new(&net, &hw);

    // Dense baseline and ideal uniform 5x sparsity (15M -> 3M weights).
    let dense_wl = procrustes_core::masks::dense(&net, NetworkEval::DEFAULT_BATCH);
    let sparse_wl: Vec<_> = dense_wl
        .iter()
        .map(|(task, _)| {
            (
                task.clone(),
                SparsityInfo::uniform(task, 1.0 / 5.0, 0.45),
            )
        })
        .collect();
    let dense = eval.run_with_workloads(Mapping::KN, &dense_wl, BalanceMode::Ideal);
    let sparse = eval.run_with_workloads(Mapping::KN, &sparse_wl, BalanceMode::Ideal);

    let mut t = Table::new(
        "Fig 1 — ideal potential: VGG-S @ 5x, per training phase",
        &[
            "phase", "config", "DRAM", "GLB", "RF", "MAC", "total", "cycles",
        ],
    );
    for phase in Phase::ALL {
        for (label, cost) in [("dense", &dense), ("sparse", &sparse)] {
            let s = cost.phase(phase);
            t.row(&[
                phase.label().to_string(),
                label.to_string(),
                fmt_joules(s.energy.dram_j),
                fmt_joules(s.energy.glb_j),
                fmt_joules(s.energy.rf_j),
                fmt_joules(s.energy.mac_j),
                fmt_joules(s.energy_j()),
                fmt_cycles(s.cycles),
            ]);
        }
    }
    ctx.emit("fig1", &t);

    let e_save = dense.totals().energy_j() / sparse.totals().energy_j();
    let speedup = dense.totals().cycles as f64 / sparse.totals().cycles as f64;
    ctx.note(&format!(
        "whole-network ideal potential: {e_save:.2}x energy saving, {speedup:.2}x speedup \
         (paper: up to 2.3x energy, 2.6x speedup)"
    ));
}
