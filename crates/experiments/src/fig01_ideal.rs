//! Fig 1: potential training energy savings and speedup from *ideally*
//! leveraging 5× weight sparsity on VGG-S.
//!
//! Paper setup: 16×16 PEs, sparsity evenly distributed (perfect load
//! balance), zero-overhead compressed format, free retained-weight
//! selection. Expected shape: up to ~2.6× speedup and ~2.3× energy saving
//! over the whole network, with the savings concentrated in fw/bw (weight
//! sparsity) and wu gains from activation sparsity.

use procrustes_core::report::{fmt_cycles, fmt_joules, Table};
use procrustes_core::{Engine, SparsityGen, Sweep};
use procrustes_sim::{ArchConfig, BalanceMode, Mapping, Phase};

use crate::ctx::ExpContext;

pub fn run(ctx: &ExpContext) {
    // Dense baseline vs ideal uniform 5x sparsity (15M -> 3M weights),
    // both on the idealized array with perfect balancing.
    let scenarios = Sweep::new()
        .networks(["VGG-S"])
        .arches([ArchConfig::ideal_16x16()])
        .mappings([Mapping::KN])
        .sparsities([
            SparsityGen::Dense,
            SparsityGen::Uniform {
                keep: 1.0 / 5.0,
                act_density: 0.45,
            },
        ])
        .balances([BalanceMode::Ideal])
        .build()
        .expect("fig1 sweep is valid");
    let results = Engine::default()
        .run_all(&scenarios)
        .expect("fig1 sweep runs");
    let (dense, sparse) = (&results[0], &results[1]);

    let mut t = Table::new(
        "Fig 1 — ideal potential: VGG-S @ 5x, per training phase",
        &[
            "phase", "config", "DRAM", "GLB", "RF", "MAC", "total", "cycles",
        ],
    );
    for phase in Phase::ALL {
        for (label, result) in [("dense", dense), ("sparse", sparse)] {
            let s = result.cost.phase(phase);
            t.row(&[
                phase.label().to_string(),
                label.to_string(),
                fmt_joules(s.energy.dram_j),
                fmt_joules(s.energy.glb_j),
                fmt_joules(s.energy.rf_j),
                fmt_joules(s.energy.mac_j),
                fmt_joules(s.energy_j()),
                fmt_cycles(s.cycles),
            ]);
        }
    }
    ctx.emit("fig1", &t);

    ctx.note(&format!(
        "whole-network ideal potential: {:.2}x energy saving, {:.2}x speedup \
         (paper: up to 2.3x energy, 2.6x speedup)",
        sparse.energy_saving_over(dense),
        sparse.speedup_over(dense)
    ));
}
