//! Ablations of the Procrustes design choices (beyond the paper's own
//! figures): eviction policy, QE update width, balancing on/off, and the
//! sparse-training family comparison of §II-E / §VII.

use procrustes_core::report::{fmt_cycles, fmt_joules, Table};
use procrustes_core::{
    masks, ComputeBackend, Engine, Fidelity, MaskGenConfig, NetworkEval, Scenario, SparsityGen,
    Sweep, PAPER_NETWORKS,
};
use procrustes_dropback::{
    EvictionPolicy, GradualConfig, GradualMagnitudeTrainer, ProcrustesConfig, ProcrustesTrainer,
    Trainer,
};
use procrustes_nn::data::SyntheticImages;
use procrustes_nn::{arch, Sequential};
use procrustes_prng::{UniformRng, Xorshift64};
use procrustes_quantile::{Dumique, ExactQuantile};
use procrustes_sim::{ArchConfig, BalanceMode, Mapping};

use crate::ctx::ExpContext;

fn model(seed: u64) -> Sequential {
    arch::tiny_vgg(10, &mut Xorshift64::new(seed))
}

/// Eviction-policy ablation: exact minimum vs sampled minimum.
pub fn run_eviction(ctx: &ExpContext) {
    let data = SyntheticImages::cifar_like(10, 61);
    let steps = ctx.train_steps(300).min(200);
    let mut t = Table::new(
        "Ablation — tracked-set eviction policy (Procrustes trainer)",
        &["policy", "val accuracy", "weight sparsity", "threshold"],
    );
    for (name, policy) in [
        ("exact-min", EvictionPolicy::ExactMin),
        ("sampled-4", EvictionPolicy::SampledMin(4)),
        ("sampled-8", EvictionPolicy::SampledMin(8)),
        ("sampled-32", EvictionPolicy::SampledMin(32)),
    ] {
        let mut trainer = ProcrustesTrainer::new(
            model(9),
            ProcrustesConfig {
                sparsity_factor: 8.0,
                lambda: ctx.lambda(),
                eviction: policy,
                ..ProcrustesConfig::default()
            },
            77,
        );
        let mut rng = Xorshift64::new(0xAB1);
        let mut last = Default::default();
        for _ in 0..steps {
            let (x, labels) = data.batch(ctx.batch(), &mut rng);
            last = trainer.train_step(&x, &labels);
        }
        let (vx, vl) = data.fixed_set(ctx.val_size(), 0xAB2);
        let (_, acc) = trainer.evaluate(&vx, &vl);
        t.row(&[
            name.to_string(),
            format!("{acc:.3}"),
            format!("{:.1}%", last.weight_sparsity * 100.0),
            format!("{:.2e}", last.threshold),
        ]);
    }
    ctx.emit("ablation_eviction", &t);
    ctx.note(
        "sampled-minimum eviction (hardware-realistic) should match exact-minimum accuracy; \
         larger samples approach the exact policy's threshold behaviour",
    );
}

/// QE update-width ablation: scalar vs 4-wide averaged updates vs the
/// exact quantile, on a gradient-magnitude-like stream.
pub fn run_qe_width(ctx: &ExpContext) {
    let mut rng = Xorshift64::new(0xD00D);
    let n = 400_000;
    // Heavy-tailed magnitudes, like accumulated gradients.
    let stream: Vec<f32> = (0..n)
        .map(|_| {
            let g = (rng.next_f32() + rng.next_f32() + rng.next_f32() - 1.5) * 2.0;
            (0.01 * g.exp()).max(1e-9)
        })
        .collect();
    let exact: ExactQuantile = stream.iter().copied().collect();
    let mut t = Table::new(
        "Ablation — quantile estimator update width (q = 0.9)",
        &["estimator", "estimate", "relative error"],
    );
    let truth = exact.quantile(0.9);
    t.row(&[
        "exact sort".to_string(),
        format!("{truth:.4e}"),
        "—".to_string(),
    ]);
    let mut scalar = Dumique::new(0.9);
    for &d in &stream {
        scalar.update(d);
    }
    t.row(&[
        "DUMIQUE scalar".to_string(),
        format!("{:.4e}", scalar.estimate()),
        format!(
            "{:.1}%",
            exact.relative_error(0.9, scalar.estimate()) * 100.0
        ),
    ]);
    let mut quad = Dumique::new(0.9);
    for c in stream.chunks_exact(4) {
        quad.update4([c[0], c[1], c[2], c[3]]);
    }
    t.row(&[
        "DUMIQUE 4-wide".to_string(),
        format!("{:.4e}", quad.estimate()),
        format!("{:.1}%", exact.relative_error(0.9, quad.estimate()) * 100.0),
    ]);
    ctx.emit("ablation_qe_width", &t);
    ctx.note(
        "the 4-wide averaged variant trades some bias (averaging narrows the stream) for a \
         4x update rate — the paper accepts this to sustain the peak gradient rate",
    );
}

/// Load-balancer on/off ablation across the five networks (sparse, K,N).
pub fn run_balancer(ctx: &ExpContext) {
    let hw = ArchConfig::procrustes_16x16();
    let mut t = Table::new(
        "Ablation — half-tile load balancing (sparse, K,N dataflow)",
        &["network", "unbalanced", "balanced", "latency saved"],
    );
    for net in arch::paper_networks() {
        let factor = procrustes_core::paper_sparsity_factor(net.name)
            .expect("Table II factor exists for every paper network");
        let eval = NetworkEval::new(&net, &hw);
        let wl = masks::generate(&net, &MaskGenConfig::paper_default(factor), 16, 8);
        let none = eval.run_with_workloads(Mapping::KN, &wl, BalanceMode::None);
        let bal = eval.run_with_workloads(Mapping::KN, &wl, BalanceMode::HalfTile);
        let saved = 1.0 - bal.totals().cycles as f64 / none.totals().cycles as f64;
        t.row(&[
            net.name.to_string(),
            fmt_cycles(none.totals().cycles),
            fmt_cycles(bal.totals().cycles),
            format!("{:.1}%", saved * 100.0),
        ]);
    }
    ctx.emit("ablation_balancer", &t);
}

/// Sparse-training family comparison (§II-E): Procrustes (sparse from
/// scratch) vs gradual magnitude pruning (Eager-Pruning-style).
pub fn run_families(ctx: &ExpContext) {
    let data = SyntheticImages::cifar_like(10, 71);
    let steps = ctx.train_steps(300).min(240);
    let mut t = Table::new(
        "Ablation — sparse training families",
        &[
            "algorithm",
            "val accuracy",
            "final sparsity",
            "peak weight footprint",
        ],
    );
    // Procrustes: sparse from iteration 0 — footprint = budget always.
    let mut proc = ProcrustesTrainer::new(
        model(5),
        ProcrustesConfig {
            sparsity_factor: 5.0,
            lambda: ctx.lambda(),
            ..ProcrustesConfig::default()
        },
        55,
    );
    // Gradual: starts dense — peak footprint is the full model.
    let mut grad = GradualMagnitudeTrainer::new(
        model(5),
        GradualConfig {
            final_factor: 2.5,
            prune_every: (steps / 12).max(5) as u64,
            prune_fraction: 0.1,
            ..GradualConfig::default()
        },
    );
    let mut rng = Xorshift64::new(0xFA71);
    let mut proc_sparsity = 0.0;
    let mut grad_sparsity = 0.0;
    for _ in 0..steps {
        let (x, labels) = data.batch(ctx.batch(), &mut rng);
        proc_sparsity = proc.train_step(&x, &labels).weight_sparsity;
        grad_sparsity = grad.train_step(&x, &labels).weight_sparsity;
    }
    let (vx, vl) = data.fixed_set(ctx.val_size(), 0xFA72);
    let (_, proc_acc) = proc.evaluate(&vx, &vl);
    let (_, grad_acc) = grad.evaluate(&vx, &vl);
    t.row(&[
        "procrustes (sparse from scratch)".to_string(),
        format!("{proc_acc:.3}"),
        format!("{:.1}%", proc_sparsity * 100.0),
        "k = n/5 throughout".to_string(),
    ]);
    t.row(&[
        "gradual magnitude (Eager-style)".to_string(),
        format!("{grad_acc:.3}"),
        format!("{:.1}%", grad_sparsity * 100.0),
        "full n (starts dense)".to_string(),
    ]);
    ctx.emit("ablation_families", &t);
    ctx.note(
        "the gradual family reaches lower sparsity and keeps a dense peak footprint — the \
         paper's motivation for sparse-from-scratch training (§II-E)",
    );
}

/// Interconnect-load ablation: the §IV-C argument of Figs 10 and 12 —
/// balancing is free on the wires under K,N but not under C,K.
pub fn run_interconnect(ctx: &ExpContext) {
    use procrustes_sim::interconnect::wave_load;
    use procrustes_sim::{LayerTask, Phase};
    let arch = ArchConfig::procrustes_16x16();
    let task = LayerTask::conv("conv4_2", 16, 512, 512, 4, 4, 3, 1, 1);
    let mut t = Table::new(
        "Ablation — per-wave interconnect load with/without balancing (words)",
        &[
            "mapping",
            "balanced",
            "H flow",
            "V flow",
            "unicast",
            "complex net?",
            "act buffer",
        ],
    );
    for mapping in [Mapping::KN, Mapping::CN, Mapping::CK] {
        for balanced in [false, true] {
            let l = wave_load(&arch, &task, Phase::Forward, mapping, balanced);
            t.row(&[
                mapping.label().to_string(),
                balanced.to_string(),
                l.horizontal_words.to_string(),
                l.vertical_words.to_string(),
                l.unicast_words.to_string(),
                if l.needs_complex_network { "YES" } else { "no" }.to_string(),
                format!("{}x", l.act_buffer_factor),
            ]);
        }
    }
    ctx.emit("ablation_interconnect", &t);
    ctx.note(
        "balancing K,N/C,N leaves every link load unchanged (Fig 12); balancing C,K requires \
         cross-dimension activation delivery and doubles PE activation buffers (Fig 10)",
    );
}

/// Execution-backend ablation: the same sparse workload costed on the
/// uncompressed dense datapath, the CSB datapath, and the per-layer
/// `Auto` policy — the compute axis the `Sweep` API exposes.
pub fn run_compute_backend(ctx: &ExpContext) {
    let engine = Engine::default();
    let mut t = Table::new(
        "Ablation — execution backend (VGG-S, Table II sparsity)",
        &["compute", "cycles", "energy", "vs dense exec"],
    );
    let scenario = |compute| {
        Scenario::builder("VGG-S")
            .sparsity(SparsityGen::PaperSynthetic { seed: 42 })
            .compute(compute)
            .build()
            .expect("ablation scenario is valid")
    };
    let baseline = engine.run(&scenario(ComputeBackend::Dense)).unwrap();
    let mut emit = |r: &procrustes_core::EvalResult| {
        let totals = r.totals();
        t.row(&[
            r.scenario.compute.label(),
            fmt_cycles(totals.cycles),
            fmt_joules(totals.energy_j()),
            format!("{:.2}x", r.speedup_over(&baseline)),
        ]);
    };
    emit(&baseline);
    for compute in [
        ComputeBackend::Csb,
        ComputeBackend::Auto { max_density: 0.5 },
    ] {
        emit(&engine.run(&scenario(compute)).unwrap());
    }
    ctx.emit("ablation_compute_backend", &t);
    ctx.note(
        "identical masks, different datapaths: the CSB backend turns weight sparsity into \
         skipped cycles, while dense execution multiplies the zeros; auto matches csb once \
         density falls below its threshold",
    );
}

/// Latency-fidelity ablation: the Fig 17–20 sweeps re-costed under the
/// tile-timed wave replay, quantifying how much latency the closed-form
/// `max(compute, bandwidth)` bound hides per network and mapping.
pub fn run_fidelity(ctx: &ExpContext) {
    let scenarios = Sweep::new()
        .networks(PAPER_NETWORKS)
        .mappings(Mapping::ALL)
        .sparsities([SparsityGen::PaperSynthetic { seed: 1 }])
        .fidelities(Fidelity::ALL)
        .build()
        .expect("fidelity ablation sweep is valid");
    let results = Engine::default()
        .run_all(&scenarios)
        .expect("fidelity ablation sweep runs");

    let mut t = Table::new(
        "Ablation — latency fidelity (sparse Fig 17-20 sweep, analytic vs tile-timed)",
        &[
            "network",
            "mapping",
            "analytic",
            "tile-timed",
            "hidden stall",
        ],
    );
    let cell = |network: &str, mapping: Mapping, fidelity: Fidelity| {
        results
            .iter()
            .find(|r| {
                r.scenario.network == network
                    && r.scenario.mapping == mapping
                    && r.scenario.fidelity == fidelity
            })
            .expect("sweep covers every fidelity cell")
    };
    for network in PAPER_NETWORKS {
        for mapping in Mapping::ALL {
            let a = cell(network, mapping, Fidelity::Analytic).totals().cycles;
            let timed = cell(network, mapping, Fidelity::TileTimed).totals().cycles;
            let hidden = (timed - a) as f64 / a as f64;
            t.row(&[
                network.to_string(),
                mapping.label().to_string(),
                fmt_cycles(a),
                fmt_cycles(timed),
                format!("{:.2}%", hidden * 100.0),
            ]);
        }
    }
    ctx.emit("ablation_fidelity", &t);
    ctx.note(
        "tile-timed replays the actual wave schedule with double-buffered GLB prefetch; the \
         gap over the analytic bound is latency that decayed tiles spend stalled on operand \
         fills — zero on uniform workloads, growing with sparsity skew",
    );
}

pub fn run_all(ctx: &ExpContext) {
    run_compute_backend(ctx);
    run_fidelity(ctx);
    run_qe_width(ctx);
    run_interconnect(ctx);
    run_balancer(ctx);
    run_eviction(ctx);
    run_families(ctx);
}
