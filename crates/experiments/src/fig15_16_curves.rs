//! Figs 15 and 16: Procrustes-vs-SGD validation accuracy over training,
//! across the five network families (tiny variants on synthetic data; see
//! docs/PAPER_MAP.md "Substitutions").
//!
//! * Fig 15 — VGG / DenseNet / WRN families on the CIFAR-like dataset,
//!   Procrustes vs the unpruned SGD baseline. Expected: curves overlap.
//! * Fig 16 — ResNet / MobileNet families on the ImageNet-like dataset at
//!   several sparsity factors. Expected: accuracy holds to high factors.

use procrustes_core::report::Table;
use procrustes_dropback::{DenseSgdTrainer, ProcrustesConfig, ProcrustesTrainer, Trainer};
use procrustes_nn::data::SyntheticImages;
use procrustes_nn::{arch, Sequential};
use procrustes_prng::Xorshift64;

use crate::ctx::ExpContext;

fn run_pair(
    ctx: &ExpContext,
    name: &str,
    family: &str,
    make_model: &dyn Fn(u64) -> Sequential,
    data: &SyntheticImages,
    steps: usize,
    factors: &[f64],
) {
    let (vx, vl) = data.fixed_set(ctx.val_size(), 0xBEEF);
    let mut trainers: Vec<(String, Box<dyn Trainer>)> = vec![(
        "baseline-SGD".to_string(),
        Box::new(DenseSgdTrainer::new(make_model(1), 0.05, 0.9)),
    )];
    for &f in factors {
        trainers.push((
            format!("procrustes-{f}x"),
            Box::new(ProcrustesTrainer::new(
                make_model(1),
                ProcrustesConfig {
                    sparsity_factor: f,
                    lambda: ctx.lambda(),
                    ..ProcrustesConfig::default()
                },
                13,
            )),
        ));
    }

    let mut headers: Vec<String> = vec!["step".into()];
    headers.extend(trainers.iter().map(|(l, _)| l.clone()));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!("{name} — {family}: validation accuracy over training"),
        &headers_ref,
    );

    let mut rng = Xorshift64::new(0xC0FFEE);
    let mut batches = Vec::with_capacity(steps);
    for _ in 0..steps {
        batches.push(data.batch(ctx.batch(), &mut rng));
    }
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut finals = Vec::new();
    for (ti, (_, trainer)) in trainers.iter_mut().enumerate() {
        let mut row_idx = 0;
        let mut last_acc = 0.0;
        for (step, (x, labels)) in batches.iter().enumerate() {
            trainer.train_step(x, labels);
            let step = step + 1;
            if step % ctx.eval_every() == 0 || step == steps {
                let (_, acc) = trainer.evaluate(&vx, &vl);
                last_acc = acc;
                if ti == 0 {
                    rows.push(vec![step.to_string(), format!("{acc:.3}")]);
                } else {
                    rows[row_idx].push(format!("{acc:.3}"));
                }
                row_idx += 1;
            }
        }
        finals.push(last_acc);
    }
    for row in &rows {
        t.row(row);
    }
    ctx.emit(name, &t);
    let gap = finals[0] - finals[1..].iter().cloned().fold(0.0, f64::max);
    ctx.note(&format!(
        "final accuracies {:?}; best sparse run is within {:.3} of the dense baseline \
         (paper: sparse matches dense)",
        finals
            .iter()
            .map(|a| (a * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>(),
        gap
    ));
}

pub fn run_fig15(ctx: &ExpContext) {
    let data = SyntheticImages::cifar_like(10, 21);
    let steps = ctx.train_steps(400);
    run_pair(
        ctx,
        "fig15_vgg",
        "VGG family (CIFAR-like)",
        &|s| arch::tiny_vgg(10, &mut Xorshift64::new(s)),
        &data,
        steps,
        &[5.2],
    );
    run_pair(
        ctx,
        "fig15_densenet",
        "DenseNet family (CIFAR-like)",
        &|s| arch::tiny_densenet(10, &mut Xorshift64::new(s)),
        &data,
        steps,
        &[3.9],
    );
    run_pair(
        ctx,
        "fig15_wrn",
        "WRN family (CIFAR-like)",
        &|s| arch::tiny_wrn(10, &mut Xorshift64::new(s)),
        &data,
        steps,
        &[4.3],
    );
}

pub fn run_fig16(ctx: &ExpContext) {
    let data = SyntheticImages::imagenet_like(10, 33);
    let steps = ctx.train_steps(300);
    run_pair(
        ctx,
        "fig16_resnet",
        "ResNet family (ImageNet-like)",
        &|s| arch::tiny_resnet(10, &mut Xorshift64::new(s)),
        &data,
        steps,
        &[2.9, 5.8, 11.7],
    );
    run_pair(
        ctx,
        "fig16_mobilenet",
        "MobileNet family (ImageNet-like)",
        &|s| arch::tiny_mobilenet(10, &mut Xorshift64::new(s)),
        &data,
        steps,
        &[7.0, 10.0],
    );
}
