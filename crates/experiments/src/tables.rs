//! Tables I–III of the paper.

use procrustes_core::report::{fmt_millions, Table};
use procrustes_dropback::{ProcrustesConfig, ProcrustesTrainer, Trainer};
use procrustes_nn::data::SyntheticImages;
use procrustes_nn::{arch, Sequential};
use procrustes_prng::Xorshift64;
use procrustes_sim::{area, ArchConfig};

use crate::ctx::ExpContext;
use crate::fig17_20_hw::network_mac_summary;

pub fn run_table1(ctx: &ExpContext) {
    let base = ArchConfig::procrustes_16x16();
    let mut t = Table::new(
        "Table I — hardware configuration (baseline + Procrustes deltas)",
        &["parameter", "value"],
    );
    t.row(&[
        "PEs",
        &format!("{} ({}x{})", base.pes(), base.rows, base.cols),
    ]);
    t.row(&["datatype", "32-bit floating point"]);
    t.row(&[
        "interconnect",
        "3x 1D-flow (H multicast, V multicast/collect, unicast)",
    ]);
    t.row(&["global buffer", &format!("{} KB", base.glb_bytes / 1024)]);
    t.row(&[
        "local buffer (RF)",
        &format!("{} B per PE", base.rf_words * 4),
    ]);
    t.row(&[
        "DRAM channel",
        &format!("{} bits/cycle", base.dram_bw_words * 32),
    ]);
    t.row(&["pruning type", "lowest accumulated gradients (Dropback)"]);
    t.row(&[
        "pseudo-RNG",
        "xorshift (Marsaglia 13/17/5), one WR unit per PE",
    ]);
    t.row(&[
        "quantile estimator",
        "DUMIQUE, max 4 requests/cycle (4-wide averaged)",
    ]);
    t.row(&[
        "dataflow",
        "optimal spatial-minibatch (K,N) via mapper search",
    ]);
    ctx.emit("table1", &t);
}

fn quick_accuracy(
    ctx: &ExpContext,
    make_model: &dyn Fn(u64) -> Sequential,
    data: &SyntheticImages,
    factor: f64,
    steps: usize,
) -> (f64, f64) {
    // Returns (dense accuracy, procrustes accuracy) after `steps`.
    let (vx, vl) = data.fixed_set(ctx.val_size(), 0xACC);
    let mut rng = Xorshift64::new(0xBA7C4);
    let mut dense = procrustes_dropback::DenseSgdTrainer::new(make_model(3), 0.05, 0.9);
    let mut sparse = ProcrustesTrainer::new(
        make_model(3),
        ProcrustesConfig {
            sparsity_factor: factor,
            lambda: ctx.lambda(),
            ..ProcrustesConfig::default()
        },
        17,
    );
    for _ in 0..steps {
        let (x, labels) = data.batch(ctx.batch(), &mut rng);
        dense.train_step(&x, &labels);
        sparse.train_step(&x, &labels);
    }
    (dense.evaluate(&vx, &vl).1, sparse.evaluate(&vx, &vl).1)
}

pub fn run_table2(ctx: &ExpContext) {
    let mut t = Table::new(
        "Table II — sparsity, footprint, MACs, and accuracy per network",
        &[
            "model",
            "dataset*",
            "dense size",
            "dense MACs",
            "sparse size",
            "sparse MACs",
            "sparsity",
            "dense acc",
            "pruned acc",
        ],
    );
    // (arch, tiny trainable variant, dataset); the Table II sparsity
    // factor comes from the engine's canonical registry.
    let cifar = SyntheticImages::cifar_like(10, 51);
    let imagenet = SyntheticImages::imagenet_like(10, 52);
    let steps = ctx.train_steps(300);
    type ModelFactory = Box<dyn Fn(u64) -> Sequential>;
    let rows: Vec<(_, ModelFactory, &SyntheticImages)> = vec![
        (
            arch::densenet(),
            Box::new(|s| arch::tiny_densenet(10, &mut Xorshift64::new(s))),
            &cifar,
        ),
        (
            arch::wrn_28_10(),
            Box::new(|s| arch::tiny_wrn(10, &mut Xorshift64::new(s))),
            &cifar,
        ),
        (
            arch::vgg_s(),
            Box::new(|s| arch::tiny_vgg(10, &mut Xorshift64::new(s))),
            &cifar,
        ),
        (
            arch::mobilenet_v2(),
            Box::new(|s| arch::tiny_mobilenet(10, &mut Xorshift64::new(s))),
            &imagenet,
        ),
        (
            arch::resnet18(),
            Box::new(|s| arch::tiny_resnet(10, &mut Xorshift64::new(s))),
            &imagenet,
        ),
    ];
    for (net, make_model, data) in &rows {
        let factor = procrustes_core::paper_sparsity_factor(net.name)
            .expect("Table II factor exists for every paper network");
        let (dw, dm, sw, sm) = network_mac_summary(net, factor, 7);
        let (dense_acc, sparse_acc) = quick_accuracy(ctx, make_model, data, factor, steps);
        t.row(&[
            net.name.to_string(),
            if net.input.1 == 32 {
                "CIFAR-like"
            } else {
                "ImageNet-like"
            }
            .to_string(),
            fmt_millions(dw),
            fmt_millions(dm),
            fmt_millions(sw),
            fmt_millions(sm),
            format!("{:.1}x", dw as f64 / sw as f64),
            format!("{dense_acc:.3}"),
            format!("{sparse_acc:.3}"),
        ]);
    }
    ctx.emit("table2", &t);
    ctx.note(
        "*accuracies come from the tiny trainable variants on synthetic data \
         (the substitution documented in docs/PAPER_MAP.md); size/MAC columns use the full paper geometries",
    );
}

pub fn run_table3(ctx: &ExpContext) {
    let mut t = Table::new(
        "Table III — silicon area and power (45 nm; Procrustes units marked *)",
        &["component", "power (mW)", "area (um^2)"],
    );
    for c in area::PE_COMPONENTS
        .iter()
        .chain(area::SYSTEM_COMPONENTS.iter())
    {
        let marker = if c.procrustes_only { "*" } else { "" };
        t.row(&[
            format!("{}{marker}", c.name),
            format!("{:.2}", c.power_mw),
            format!("{:.2}", c.area_um2),
        ]);
    }
    ctx.emit("table3", &t);
    let (a, p) = area::overheads(256);
    ctx.note(&format!(
        "aggregate overhead over the dense accelerator at 256 PEs: {:.1}% area, {:.1}% power \
         (paper: 14% area, 11% power)",
        a * 100.0,
        p * 100.0
    ));
}
