//! Figs 17–20: the accelerator-model sweeps over the paper's five
//! full-size networks.
//!
//! * Fig 17 — energy breakdown (DRAM/GLB/RF/MAC) under the `K,N`
//!   dataflow, dense vs sparse, per phase.
//! * Fig 18 — energy across the four dataflows (variation should be
//!   small: energy follows MAC counts, not mappings).
//! * Fig 19 — latency across dataflows (`K,N` fastest; `P,Q` slowest).
//! * Fig 20 — scalability from 16×16 to 32×32 PEs (energy ≈ constant;
//!   `K,N`/`C,N` latency scales near-ideally).

use procrustes_core::report::{fmt_cycles, fmt_joules, Table};
use procrustes_core::{masks, MaskGenConfig, NetworkCost, NetworkEval};
use procrustes_nn::arch::{self, NetworkArch};
use procrustes_sim::{ArchConfig, Mapping, Phase};

use crate::ctx::ExpContext;

/// Table II sparsity factors, in the paper's figure order.
fn networks_with_factors() -> Vec<(NetworkArch, f64)> {
    vec![
        (arch::wrn_28_10(), 4.3),
        (arch::densenet(), 3.9),
        (arch::vgg_s(), 5.2),
        (arch::resnet18(), 11.7),
        (arch::mobilenet_v2(), 10.0),
    ]
}

fn run_network(
    net: &NetworkArch,
    hw: &ArchConfig,
    mapping: Mapping,
    factor: Option<f64>,
    seed: u64,
) -> NetworkCost {
    let eval = NetworkEval::new(net, hw);
    match factor {
        None => eval.run_dense(mapping),
        Some(f) => eval.run_sparse(mapping, &MaskGenConfig::paper_default(f), seed),
    }
}

pub fn run_fig17(ctx: &ExpContext) {
    let hw = ArchConfig::procrustes_16x16();
    let mut t = Table::new(
        "Fig 17 — energy breakdown, K,N dataflow (per phase, dense vs sparse)",
        &[
            "network", "phase", "config", "DRAM", "GLB", "RF", "MAC", "total",
        ],
    );
    let mut savings = Vec::new();
    for (net, factor) in networks_with_factors() {
        let dense = run_network(&net, &hw, Mapping::KN, None, 1);
        let sparse = run_network(&net, &hw, Mapping::KN, Some(factor), 1);
        for phase in Phase::ALL {
            for (label, cost) in [("dense", &dense), ("sparse", &sparse)] {
                let s = cost.phase(phase);
                t.row(&[
                    net.name.to_string(),
                    phase.label().to_string(),
                    label.to_string(),
                    fmt_joules(s.energy.dram_j),
                    fmt_joules(s.energy.glb_j),
                    fmt_joules(s.energy.rf_j),
                    fmt_joules(s.energy.mac_j),
                    fmt_joules(s.energy_j()),
                ]);
            }
        }
        savings.push((
            net.name,
            dense.totals().energy_j() / sparse.totals().energy_j(),
        ));
    }
    ctx.emit("fig17", &t);
    let line = savings
        .iter()
        .map(|(n, s)| format!("{n}: {s:.2}x"))
        .collect::<Vec<_>>()
        .join(", ");
    ctx.note(&format!(
        "whole-network energy savings: {line} (paper: 2.27x-3.26x, ResNet18 highest)"
    ));
}

pub fn run_fig18(ctx: &ExpContext) {
    let hw = ArchConfig::procrustes_16x16();
    let mut t = Table::new(
        "Fig 18 — energy across dataflows (total per mapping, dense vs sparse)",
        &["network", "mapping", "dense", "sparse", "sparse fw/bw/wu"],
    );
    for (net, factor) in networks_with_factors() {
        for mapping in Mapping::ALL {
            let dense = run_network(&net, &hw, mapping, None, 2);
            let sparse = run_network(&net, &hw, mapping, Some(factor), 2);
            let phases = Phase::ALL
                .iter()
                .map(|&p| fmt_joules(sparse.phase(p).energy_j()))
                .collect::<Vec<_>>()
                .join(" / ");
            t.row(&[
                net.name.to_string(),
                mapping.label().to_string(),
                fmt_joules(dense.totals().energy_j()),
                fmt_joules(sparse.totals().energy_j()),
                phases,
            ]);
        }
    }
    ctx.emit("fig18", &t);
    ctx.note(
        "energy varies little across mappings (MAC/RF dominate and follow MAC counts), \
         while sparsity helps all mappings — the paper's §VI-D observation",
    );
}

pub fn run_fig19(ctx: &ExpContext) {
    let hw = ArchConfig::procrustes_16x16();
    let mut t = Table::new(
        "Fig 19 — training latency across dataflows (cycles per iteration)",
        &["network", "mapping", "dense", "sparse", "sparse speedup"],
    );
    let mut kn_speedups = Vec::new();
    for (net, factor) in networks_with_factors() {
        for mapping in Mapping::ALL {
            let dense = run_network(&net, &hw, mapping, None, 3);
            let sparse = run_network(&net, &hw, mapping, Some(factor), 3);
            let speedup = dense.totals().cycles as f64 / sparse.totals().cycles as f64;
            if mapping == Mapping::KN {
                // The headline comparison: sparse KN vs the dense
                // baseline's own best (KN) mapping.
                kn_speedups.push((net.name, speedup));
            }
            t.row(&[
                net.name.to_string(),
                mapping.label().to_string(),
                fmt_cycles(dense.totals().cycles),
                fmt_cycles(sparse.totals().cycles),
                format!("{speedup:.2}x"),
            ]);
        }
    }
    ctx.emit("fig19", &t);
    let line = kn_speedups
        .iter()
        .map(|(n, s)| format!("{n}: {s:.2}x"))
        .collect::<Vec<_>>()
        .join(", ");
    ctx.note(&format!(
        "K,N speedups over the dense baseline: {line} (paper: 2.28x-4x; K,N fastest overall, P,Q slowest)"
    ));
}

pub fn run_fig20(ctx: &ExpContext) {
    // Scaling to a 32-wide array needs a minibatch that can fill the
    // columns of the minibatch-spatial dataflows (§IV-C: training uses
    // batches of 32-64).
    const SCALE_BATCH: usize = 32;
    let nets = [(arch::resnet18(), 11.7), (arch::mobilenet_v2(), 10.0)];
    let mut t = Table::new(
        "Fig 20 — scalability: 16x16 vs 32x32 PEs (sparse, per mapping)",
        &[
            "network", "mapping", "cycles 16x16", "cycles 32x32", "latency scaling",
            "energy 16x16", "energy 32x32",
        ],
    );
    let mut kn_scaling = Vec::new();
    for (net, factor) in nets {
        for mapping in Mapping::ALL {
            let cfg = MaskGenConfig::paper_default(factor);
            let small = NetworkEval::new(&net, &ArchConfig::procrustes_16x16())
                .with_batch(SCALE_BATCH)
                .run_sparse(mapping, &cfg, 4);
            let big = NetworkEval::new(&net, &ArchConfig::procrustes_32x32())
                .with_batch(SCALE_BATCH)
                .run_sparse(mapping, &cfg, 4);
            let scaling = small.totals().cycles as f64 / big.totals().cycles as f64;
            if mapping == Mapping::KN {
                kn_scaling.push((net.name, scaling));
            }
            t.row(&[
                net.name.to_string(),
                mapping.label().to_string(),
                fmt_cycles(small.totals().cycles),
                fmt_cycles(big.totals().cycles),
                format!("{scaling:.2}x"),
                fmt_joules(small.totals().energy_j()),
                fmt_joules(big.totals().energy_j()),
            ]);
        }
    }
    ctx.emit("fig20", &t);
    let line = kn_scaling
        .iter()
        .map(|(n, s)| format!("{n}: {s:.2}x"))
        .collect::<Vec<_>>()
        .join(", ");
    ctx.note(&format!(
        "K,N latency scaling on 4x the PEs: {line} (paper: ~3.9x near-ideal; energy ~unchanged)"
    ));
}

/// Shared with table2: dense/sparse footprint and MACs for each network.
pub fn network_mac_summary(net: &NetworkArch, factor: f64, seed: u64) -> (u64, u64, u64, u64) {
    let dense_w = net.total_weights() as u64;
    let dense_m = net.total_macs(1);
    let workloads = masks::generate(net, &MaskGenConfig::paper_default(factor), 1, seed);
    let sparse_w: u64 = workloads.iter().map(|(_, sp)| sp.total_nnz()).sum();
    // Sparse forward MACs: each retained weight fires once per output
    // position (batch 1, matching Table II's per-sample MAC counts).
    let sparse_m: u64 = workloads
        .iter()
        .map(|(t, sp)| sp.total_nnz() * (t.p * t.q) as u64)
        .sum();
    (dense_w, dense_m, sparse_w, sparse_m)
}
