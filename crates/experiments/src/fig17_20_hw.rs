//! Figs 17–20: the accelerator-model sweeps over the paper's five
//! full-size networks, each expressed as one [`Sweep`] declaration fed to
//! the shared [`Engine`].
//!
//! * Fig 17 — energy breakdown (DRAM/GLB/RF/MAC) under the `K,N`
//!   dataflow, dense vs sparse, per phase.
//! * Fig 18 — energy across the four dataflows (variation should be
//!   small: energy follows MAC counts, not mappings).
//! * Fig 19 — latency across dataflows (`K,N` fastest; `P,Q` slowest).
//! * Fig 20 — scalability from 16×16 to 32×32 PEs (energy ≈ constant;
//!   `K,N`/`C,N` latency scales near-ideally).
//!
//! Each figure keeps its historical mask seed so the emitted numbers are
//! identical to the pre-`Sweep` per-figure loops.

use procrustes_core::report::{fmt_cycles, fmt_joules, Table};
use procrustes_core::{
    Engine, EvalResult, MaskGenConfig, Scenario, SparsityGen, Sweep, PAPER_NETWORKS,
};
use procrustes_nn::arch::NetworkArch;
use procrustes_sim::{ArchConfig, Mapping, Phase};

use crate::ctx::ExpContext;

/// Picks the result matching a (network, mapping, dense/sparse) cell of a
/// figure; sweeps guarantee exactly one match per cell.
fn cell<'r>(
    results: &'r [EvalResult],
    network: &str,
    mapping: Mapping,
    dense: bool,
) -> &'r EvalResult {
    results
        .iter()
        .find(|r| {
            r.scenario.network == network
                && r.scenario.mapping == mapping
                && r.scenario.sparsity.is_dense() == dense
        })
        .expect("sweep covers every figure cell")
}

pub fn run_fig17(ctx: &ExpContext) {
    let scenarios = Sweep::new()
        .networks(PAPER_NETWORKS)
        .mappings([Mapping::KN])
        .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 1 }])
        .build()
        .expect("fig17 sweep is valid");
    let results = Engine::default()
        .run_all(&scenarios)
        .expect("fig17 sweep runs");

    let mut t = Table::new(
        "Fig 17 — energy breakdown, K,N dataflow (per phase, dense vs sparse)",
        &[
            "network", "phase", "config", "DRAM", "GLB", "RF", "MAC", "total",
        ],
    );
    let mut savings = Vec::new();
    for network in PAPER_NETWORKS {
        let dense = cell(&results, network, Mapping::KN, true);
        let sparse = cell(&results, network, Mapping::KN, false);
        for phase in Phase::ALL {
            for (label, result) in [("dense", dense), ("sparse", sparse)] {
                let s = result.cost.phase(phase);
                t.row(&[
                    network.to_string(),
                    phase.label().to_string(),
                    label.to_string(),
                    fmt_joules(s.energy.dram_j),
                    fmt_joules(s.energy.glb_j),
                    fmt_joules(s.energy.rf_j),
                    fmt_joules(s.energy.mac_j),
                    fmt_joules(s.energy_j()),
                ]);
            }
        }
        savings.push((network, sparse.energy_saving_over(dense)));
    }
    ctx.emit("fig17", &t);
    let line = savings
        .iter()
        .map(|(n, s)| format!("{n}: {s:.2}x"))
        .collect::<Vec<_>>()
        .join(", ");
    ctx.note(&format!(
        "whole-network energy savings: {line} (paper: 2.27x-3.26x, ResNet18 highest)"
    ));
}

pub fn run_fig18(ctx: &ExpContext) {
    let scenarios = Sweep::new()
        .networks(PAPER_NETWORKS)
        .mappings(Mapping::ALL)
        .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 2 }])
        .build()
        .expect("fig18 sweep is valid");
    let results = Engine::default()
        .run_all(&scenarios)
        .expect("fig18 sweep runs");

    let mut t = Table::new(
        "Fig 18 — energy across dataflows (total per mapping, dense vs sparse)",
        &["network", "mapping", "dense", "sparse", "sparse fw/bw/wu"],
    );
    for network in PAPER_NETWORKS {
        for mapping in Mapping::ALL {
            let dense = cell(&results, network, mapping, true);
            let sparse = cell(&results, network, mapping, false);
            let phases = Phase::ALL
                .iter()
                .map(|&p| fmt_joules(sparse.cost.phase(p).energy_j()))
                .collect::<Vec<_>>()
                .join(" / ");
            t.row(&[
                network.to_string(),
                mapping.label().to_string(),
                fmt_joules(dense.totals().energy_j()),
                fmt_joules(sparse.totals().energy_j()),
                phases,
            ]);
        }
    }
    ctx.emit("fig18", &t);
    ctx.note(
        "energy varies little across mappings (MAC/RF dominate and follow MAC counts), \
         while sparsity helps all mappings — the paper's §VI-D observation",
    );
}

pub fn run_fig19(ctx: &ExpContext) {
    let scenarios = Sweep::new()
        .networks(PAPER_NETWORKS)
        .mappings(Mapping::ALL)
        .sparsities([SparsityGen::Dense, SparsityGen::PaperSynthetic { seed: 3 }])
        .build()
        .expect("fig19 sweep is valid");
    let results = Engine::default()
        .run_all(&scenarios)
        .expect("fig19 sweep runs");

    let mut t = Table::new(
        "Fig 19 — training latency across dataflows (cycles per iteration)",
        &["network", "mapping", "dense", "sparse", "sparse speedup"],
    );
    let mut kn_speedups = Vec::new();
    for network in PAPER_NETWORKS {
        for mapping in Mapping::ALL {
            let dense = cell(&results, network, mapping, true);
            let sparse = cell(&results, network, mapping, false);
            let speedup = sparse.speedup_over(dense);
            if mapping == Mapping::KN {
                // The headline comparison: sparse KN vs the dense
                // baseline's own best (KN) mapping.
                kn_speedups.push((network, speedup));
            }
            t.row(&[
                network.to_string(),
                mapping.label().to_string(),
                fmt_cycles(dense.totals().cycles),
                fmt_cycles(sparse.totals().cycles),
                format!("{speedup:.2}x"),
            ]);
        }
    }
    ctx.emit("fig19", &t);
    let line = kn_speedups
        .iter()
        .map(|(n, s)| format!("{n}: {s:.2}x"))
        .collect::<Vec<_>>()
        .join(", ");
    ctx.note(&format!(
        "K,N speedups over the dense baseline: {line} (paper: 2.28x-4x; K,N fastest overall, P,Q slowest)"
    ));
}

pub fn run_fig20(ctx: &ExpContext) {
    // Scaling to a 32-wide array needs a minibatch that can fill the
    // columns of the minibatch-spatial dataflows (§IV-C: training uses
    // batches of 32-64).
    const SCALE_BATCH: usize = 32;
    const SCALE_NETWORKS: [&str; 2] = ["ResNet18", "MobileNet v2"];
    let scenarios = Sweep::new()
        .networks(SCALE_NETWORKS)
        .arches([
            ArchConfig::procrustes_16x16(),
            ArchConfig::procrustes_32x32(),
        ])
        .mappings(Mapping::ALL)
        .batches([SCALE_BATCH])
        .sparsities([SparsityGen::PaperSynthetic { seed: 4 }])
        .build()
        .expect("fig20 sweep is valid");
    let results = Engine::default()
        .run_all(&scenarios)
        .expect("fig20 sweep runs");

    let mut t = Table::new(
        "Fig 20 — scalability: 16x16 vs 32x32 PEs (sparse, per mapping)",
        &[
            "network",
            "mapping",
            "cycles 16x16",
            "cycles 32x32",
            "latency scaling",
            "energy 16x16",
            "energy 32x32",
        ],
    );
    let by_rows = |network: &str, mapping: Mapping, rows: usize| -> &EvalResult {
        results
            .iter()
            .find(|r| {
                r.scenario.network == network
                    && r.scenario.mapping == mapping
                    && r.scenario.arch.rows == rows
            })
            .expect("sweep covers both array sizes")
    };
    let mut kn_scaling = Vec::new();
    for network in SCALE_NETWORKS {
        for mapping in Mapping::ALL {
            let small = by_rows(network, mapping, 16);
            let big = by_rows(network, mapping, 32);
            let scaling = big.speedup_over(small);
            if mapping == Mapping::KN {
                kn_scaling.push((network, scaling));
            }
            t.row(&[
                network.to_string(),
                mapping.label().to_string(),
                fmt_cycles(small.totals().cycles),
                fmt_cycles(big.totals().cycles),
                format!("{scaling:.2}x"),
                fmt_joules(small.totals().energy_j()),
                fmt_joules(big.totals().energy_j()),
            ]);
        }
    }
    ctx.emit("fig20", &t);
    let line = kn_scaling
        .iter()
        .map(|(n, s)| format!("{n}: {s:.2}x"))
        .collect::<Vec<_>>()
        .join(", ");
    ctx.note(&format!(
        "K,N latency scaling on 4x the PEs: {line} (paper: ~3.9x near-ideal; energy ~unchanged)"
    ));
}

/// Shared with table2: dense/sparse footprint and MACs for each network.
pub fn network_mac_summary(net: &NetworkArch, factor: f64, seed: u64) -> (u64, u64, u64, u64) {
    let dense_w = net.total_weights() as u64;
    let dense_m = net.total_macs(1);
    let workloads = Scenario::builder(net.name)
        .batch(1)
        .synthetic(MaskGenConfig::paper_default(factor), seed)
        .build()
        .expect("table2 scenario is valid")
        .resolve_workloads()
        .expect("table2 workloads resolve");
    let sparse_w: u64 = workloads.iter().map(|(_, sp)| sp.total_nnz()).sum();
    // Sparse forward MACs: each retained weight fires once per output
    // position (batch 1, matching Table II's per-sample MAC counts).
    let sparse_m: u64 = workloads
        .iter()
        .map(|(t, sp)| sp.total_nnz() * (t.p * t.q) as u64)
        .sum();
    (dense_w, dense_m, sparse_w, sparse_m)
}
