//! Fig 8: the compressed sparse block (CSB) representation, reproduced on
//! the paper's own worked example.

use procrustes_core::report::Table;
use procrustes_sparse::CsbTensor;
use procrustes_tensor::Tensor;

use crate::ctx::ExpContext;

pub fn run(ctx: &ExpContext) {
    // The paper's block B1: "Wa 0 Wb 0 0 Wc Wd 0 We", mask 101001101.
    let (wa, wb, wc, wd, we) = (1.0, 2.0, 3.0, 4.0, 5.0);
    let dense = vec![wa, 0.0, wb, 0.0, 0.0, wc, wd, 0.0, we];
    let w = Tensor::from_vec(&[1, 1, 3, 3], dense.clone());
    let csb = CsbTensor::from_dense_conv(&w);

    let mut t = Table::new(
        "Fig 8 — CSB worked example (paper block B1)",
        &["component", "contents"],
    );
    t.row(&[
        "uncompressed block".to_string(),
        dense
            .iter()
            .map(|v| format!("{v:.0}"))
            .collect::<Vec<_>>()
            .join(" "),
    ]);
    let mask: String = (0..9)
        .map(|i| {
            if csb.block_mask(0, 0).get(i) {
                '1'
            } else {
                '0'
            }
        })
        .collect();
    t.row(&["mask (M1)".to_string(), mask]);
    t.row(&[
        "packed weights (B1)".to_string(),
        csb.block_values(0, 0)
            .iter()
            .map(|v| format!("{v:.0}"))
            .collect::<Vec<_>>()
            .join(" "),
    ]);
    t.row(&[
        "Σ M1 (packed size)".to_string(),
        csb.block_nnz(0, 0).to_string(),
    ]);
    t.row(&[
        "rotated fetch (bw)".to_string(),
        csb.block_dense_rotated180(0, 0)
            .iter()
            .map(|v| format!("{v:.0}"))
            .collect::<Vec<_>>()
            .join(" "),
    ]);
    ctx.emit("fig8", &t);
    ctx.note(
        "round-trip, rotation-at-fetch, and pointer-difference density queries are \
         property-tested in procrustes-sparse",
    );
}
