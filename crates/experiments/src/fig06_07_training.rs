//! Figs 6 and 7: the two algorithm-adaptation ablations, run as real
//! training on the synthetic CIFAR-like dataset (see docs/PAPER_MAP.md "Substitutions").
//!
//! * Fig 6 — *initial weight decay*: Dropback with exact sorting, λ = 0.9
//!   vs λ = 1 (no decay). Expected: indistinguishable accuracy curves,
//!   while only the decayed run reaches ~90 % computation sparsity.
//! * Fig 7 — *quantile estimation*: Procrustes (DUMIQUE threshold) vs
//!   Dropback with exact sorting, both with decay. Expected:
//!   indistinguishable accuracy; the estimator tracks a slightly larger
//!   tracked set (the paper reports 7.5× target → 5.2× achieved).

use procrustes_core::report::Table;
use procrustes_dropback::{
    DropbackConfig, DropbackExact, ProcrustesConfig, ProcrustesTrainer, Trainer,
};
use procrustes_nn::data::SyntheticImages;
use procrustes_nn::{arch, Sequential};
use procrustes_prng::Xorshift64;

use crate::ctx::ExpContext;

struct Curve {
    label: &'static str,
    points: Vec<(u64, f64)>, // (step, val accuracy)
    final_sparsity: f64,
}

fn train_curve(
    ctx: &ExpContext,
    label: &'static str,
    mut trainer: Box<dyn Trainer>,
    data: &SyntheticImages,
    steps: usize,
) -> Curve {
    let mut rng = Xorshift64::new(0xFEED);
    let (vx, vl) = data.fixed_set(ctx.val_size(), 0xE7A1);
    let mut points = Vec::new();
    let mut final_sparsity = 0.0;
    for step in 1..=steps {
        let (x, labels) = data.batch(ctx.batch(), &mut rng);
        let stats = trainer.train_step(&x, &labels);
        final_sparsity = stats.weight_sparsity;
        if step % ctx.eval_every() == 0 || step == steps {
            let (_, acc) = trainer.evaluate(&vx, &vl);
            points.push((step as u64, acc));
        }
    }
    Curve {
        label,
        points,
        final_sparsity,
    }
}

fn model(seed: u64) -> Sequential {
    arch::tiny_vgg(10, &mut Xorshift64::new(seed))
}

fn emit_curves(ctx: &ExpContext, name: &str, title: &str, curves: &[Curve]) {
    let mut headers: Vec<String> = vec!["step".into()];
    headers.extend(curves.iter().map(|c| c.label.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(title, &headers_ref);
    let steps: Vec<u64> = curves[0].points.iter().map(|&(s, _)| s).collect();
    for (i, &s) in steps.iter().enumerate() {
        let mut row = vec![s.to_string()];
        for c in curves {
            row.push(format!("{:.3}", c.points[i].1));
        }
        t.row(&row);
    }
    ctx.emit(name, &t);
}

pub fn run_fig6(ctx: &ExpContext) {
    let data = SyntheticImages::cifar_like(10, 11);
    let steps = ctx.train_steps(400);
    let factor = 5.0;
    let decay = train_curve(
        ctx,
        "init-decay",
        Box::new(DropbackExact::new(
            model(1),
            DropbackConfig {
                sparsity_factor: factor,
                lambda: ctx.lambda(),
                ..DropbackConfig::default()
            },
            7,
        )),
        &data,
        steps,
    );
    let no_decay = train_curve(
        ctx,
        "no-decay",
        Box::new(DropbackExact::new(
            model(1),
            DropbackConfig {
                sparsity_factor: factor,
                lambda: 1.0,
                ..DropbackConfig::default()
            },
            7,
        )),
        &data,
        steps,
    );
    let decay_sparsity = decay.final_sparsity;
    let no_decay_sparsity = no_decay.final_sparsity;
    emit_curves(
        ctx,
        "fig6",
        "Fig 6 — validation accuracy: initial weight decay vs none (Dropback, exact sort)",
        &[decay, no_decay],
    );
    ctx.note(&format!(
        "final weight sparsity with decay: {:.1}% of weights exactly zero; without decay: {:.1}% \
         (decay is what converts pruning into computation sparsity; accuracy curves should overlap, paper Fig 6)",
        decay_sparsity * 100.0,
        no_decay_sparsity * 100.0,
    ));
}

pub fn run_fig7(ctx: &ExpContext) {
    let data = SyntheticImages::cifar_like(10, 11);
    let steps = ctx.train_steps(400);
    let factor = 7.5; // the paper's Fig 7 target
    let quantile = train_curve(
        ctx,
        "quantile-est",
        Box::new(ProcrustesTrainer::new(
            model(2),
            ProcrustesConfig {
                sparsity_factor: factor,
                lambda: ctx.lambda(),
                ..ProcrustesConfig::default()
            },
            9,
        )),
        &data,
        steps,
    );
    let exact = train_curve(
        ctx,
        "exact-sort",
        Box::new(DropbackExact::new(
            model(2),
            DropbackConfig {
                sparsity_factor: factor,
                lambda: ctx.lambda(),
                ..DropbackConfig::default()
            },
            9,
        )),
        &data,
        steps,
    );
    let q_sparsity = quantile.final_sparsity;
    let e_sparsity = exact.final_sparsity;
    emit_curves(
        ctx,
        "fig7",
        "Fig 7 — validation accuracy: quantile estimation vs exact sorting (both with decay)",
        &[quantile, exact],
    );
    ctx.note(&format!(
        "weight sparsity at end: quantile {:.1}% vs exact {:.1}% — the estimator may track \
         extra weights, trading sparsity for avoiding the sort (paper: 7.5x target -> 5.2x achieved)",
        q_sparsity * 100.0,
        e_sparsity * 100.0
    ));
}
