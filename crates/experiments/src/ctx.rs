//! Shared experiment context and output plumbing.

use std::path::PathBuf;

use procrustes_core::report::Table;

/// Scale and output configuration shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExpContext {
    quick: bool,
    out: Option<PathBuf>,
}

impl ExpContext {
    /// Creates a context; `quick` shrinks training-based experiments.
    pub fn new(quick: bool, out: Option<PathBuf>) -> Self {
        if let Some(dir) = &out {
            std::fs::create_dir_all(dir).expect("create --out directory");
        }
        Self { quick, out }
    }

    /// Number of training steps for accuracy experiments.
    ///
    /// Quick mode keeps ~40% of the full step count so that the decay
    /// horizon (see [`ExpContext::lambda`]) still leaves a recovery
    /// window before the final evaluation.
    pub fn train_steps(&self, full: usize) -> usize {
        if self.quick {
            (full * 2 / 5).max(160)
        } else {
            full
        }
    }

    /// Initial-weight decay λ, scaled so the decay horizon lands at a
    /// similar *fraction* of training as the paper's (their λ = 0.9
    /// zeroes the scaffolding within the first ~0.5 % of 234k
    /// iterations; our runs are 100–400 steps, so quick mode uses a
    /// faster decay to keep the horizon inside the run).
    pub fn lambda(&self) -> f32 {
        if self.quick {
            0.8
        } else {
            0.9
        }
    }

    /// Evaluation cadence (steps between validation points).
    pub fn eval_every(&self) -> usize {
        if self.quick {
            20
        } else {
            40
        }
    }

    /// Minibatch used by the training experiments.
    pub fn batch(&self) -> usize {
        16
    }

    /// Validation-set size.
    pub fn val_size(&self) -> usize {
        if self.quick {
            96
        } else {
            256
        }
    }

    /// Prints a table and, when `--out` was given, writes `<name>.csv`.
    pub fn emit(&self, name: &str, table: &Table) {
        println!("{}", table.render());
        if let Some(dir) = &self.out {
            let path = dir.join(format!("{name}.csv"));
            std::fs::write(&path, table.to_csv())
                .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            println!("[wrote {}]", path.display());
        }
    }

    /// Prints a free-form note beneath a table.
    pub fn note(&self, text: &str) {
        println!("note: {text}\n");
    }
}
