//! The Procrustes experiment harness: regenerates every table and figure
//! of the paper's evaluation (see docs/PAPER_MAP.md for the artifact index).
//!
//! ```text
//! procrustes-experiments <experiment> [--quick] [--full] [--out DIR]
//!
//! experiments:
//!   fig1    ideal-sparsity energy & cycle potential (VGG-S @ 5x)
//!   fig5    load-imbalance histogram, no balancing
//!   fig6    validation accuracy: initial weight decay vs none
//!   fig7    validation accuracy: quantile estimation vs exact sort
//!   fig8    CSB format worked example
//!   fig13   load-imbalance histogram after half-tile balancing
//!   fig15   accuracy curves: VGG/DenseNet/WRN families (CIFAR-like)
//!   fig16   accuracy curves: ResNet/MobileNet families (ImageNet-like)
//!   fig17   energy breakdown, K,N dataflow, all five networks
//!   fig18   energy across dataflows (PQ/CK/CN/KN)
//!   fig19   training latency across dataflows
//!   fig20   scalability 16x16 -> 32x32
//!   table1  hardware configuration
//!   table2  per-network sparsity / MACs / accuracy
//!   table3  area & power overheads
//!   fidelity   analytic vs tile-timed latency across the Fig 17-20
//!              sweeps (the model-fidelity ablation)
//!   ablations  design-choice ablations (eviction, QE width, balancer,
//!              sparse-training families, fidelity) — beyond the
//!              paper's figures
//!   all     every experiment in order
//! ```
//!
//! `--quick` shrinks the training experiments (fewer steps); `--full`
//! runs them at the defaults; `--out DIR` additionally writes each table
//! as CSV into DIR.

mod ablations;
mod ctx;
mod fig01_ideal;
mod fig05_13_imbalance;
mod fig06_07_training;
mod fig08_csb;
mod fig15_16_curves;
mod fig17_20_hw;
mod tables;

use ctx::ExpContext;

fn usage() -> ! {
    eprintln!(
        "usage: procrustes-experiments <fig1|fig5|fig6|fig7|fig8|fig13|fig15|fig16|fig17|fig18|fig19|fig20|table1|table2|table3|fidelity|ablations|all> [--quick] [--full] [--out DIR]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut which: Option<String> = None;
    let mut quick = true; // default: quick, so `all` finishes in minutes
    let mut out: Option<std::path::PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--out" => {
                out = Some(it.next().unwrap_or_else(|| usage()).into());
            }
            name if !name.starts_with('-') && which.is_none() => which = Some(name.to_string()),
            _ => usage(),
        }
    }
    let which = which.unwrap_or_else(|| usage());
    let ctx = ExpContext::new(quick, out);

    let run = |ctx: &ExpContext, name: &str| match name {
        "fig1" => fig01_ideal::run(ctx),
        "fig5" => fig05_13_imbalance::run_fig5(ctx),
        "fig6" => fig06_07_training::run_fig6(ctx),
        "fig7" => fig06_07_training::run_fig7(ctx),
        "fig8" => fig08_csb::run(ctx),
        "fig13" => fig05_13_imbalance::run_fig13(ctx),
        "fig15" => fig15_16_curves::run_fig15(ctx),
        "fig16" => fig15_16_curves::run_fig16(ctx),
        "fig17" => fig17_20_hw::run_fig17(ctx),
        "fig18" => fig17_20_hw::run_fig18(ctx),
        "fig19" => fig17_20_hw::run_fig19(ctx),
        "fig20" => fig17_20_hw::run_fig20(ctx),
        "table1" => tables::run_table1(ctx),
        "table2" => tables::run_table2(ctx),
        "table3" => tables::run_table3(ctx),
        "fidelity" => ablations::run_fidelity(ctx),
        "ablations" => ablations::run_all(ctx),
        other => {
            eprintln!("unknown experiment: {other}");
            usage();
        }
    };

    if which == "all" {
        for name in [
            "table1", "table3", "fig8", "fig1", "fig5", "fig13", "fig17", "fig18", "fig19",
            "fig20", "table2", "fig6", "fig7", "fig15", "fig16",
        ] {
            println!("\n######## {name} ########");
            run(&ctx, name);
        }
    } else {
        run(&ctx, &which);
    }
}
