//! Figs 5 and 13: load-imbalance histograms of full-PE-array working
//! sets for VGG-S with Dropback-style sparsity, before (Fig 5) and after
//! (Fig 13) half-tile load balancing.
//!
//! Expected shape: without balancing, a heavy tail with many sets above
//! 30–50 % overhead and some beyond 100 %; after balancing, most sets
//! below ~10 % with the worst around 30 %.

use procrustes_core::report::overhead_histogram;
use procrustes_core::{Engine, MaskGenConfig, Scenario};
use procrustes_sim::{BalanceMode, Mapping, Phase};

use crate::ctx::ExpContext;

fn collect_overheads(balance: BalanceMode) -> Vec<f32> {
    let scenario = Scenario::builder("VGG-S")
        .mapping(Mapping::KN)
        .synthetic(MaskGenConfig::paper_default(5.2), 42)
        .balance(balance)
        .build()
        .expect("imbalance scenario is valid");
    let result = Engine::serial()
        .run(&scenario)
        .expect("imbalance scenario runs");
    // Forward + backward working sets carry the weight imbalance.
    result
        .cost
        .layers
        .iter()
        .filter(|c| matches!(c.phase, Phase::Forward | Phase::Backward))
        .flat_map(|c| c.wave_overheads.iter().copied())
        .collect()
}

fn stats(overheads: &[f32]) -> (f64, f64, f64) {
    let n = overheads.len().max(1) as f64;
    let mean = overheads.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
    let worst = overheads.iter().copied().fold(0.0f32, f32::max);
    let over_10 = overheads.iter().filter(|&&v| v > 0.10).count() as f64 / n;
    (mean, f64::from(worst), over_10)
}

pub fn run_fig5(ctx: &ExpContext) {
    let overheads = collect_overheads(BalanceMode::None);
    let t = overhead_histogram(&overheads, 8, 125.0);
    ctx.emit("fig5", &t);
    let (mean, worst, over10) = stats(&overheads);
    ctx.note(&format!(
        "unbalanced: mean overhead {:.1}%, worst {:.1}%, {:.0}% of sets above 10% \
         (paper Fig 5: frequent >50% overheads, some >100%)",
        mean * 100.0,
        worst * 100.0,
        over10 * 100.0
    ));
}

pub fn run_fig13(ctx: &ExpContext) {
    let overheads = collect_overheads(BalanceMode::HalfTile);
    let t = overhead_histogram(&overheads, 8, 125.0);
    ctx.emit("fig13", &t);
    let (mean, worst, over10) = stats(&overheads);
    ctx.note(&format!(
        "half-tile balanced: mean overhead {:.1}%, worst {:.1}%, {:.0}% of sets above 10% \
         (paper Fig 13: most sets <10%, worst ~30%)",
        mean * 100.0,
        worst * 100.0,
        over10 * 100.0
    ));
}
