//! Register-file-level tile planning — the per-layer "optimal tiling"
//! choice the paper obtains from Timeloop.
//!
//! A PE's register file cannot hold a full weight slice, a full input
//! window, and a full output tile at once, so one of the two stationary
//! candidates must re-stream:
//!
//! * **weights resident** (order A): the weight tile stays in the RF
//!   across all output positions; partial sums spill to the GLB once per
//!   extra contraction tile;
//! * **psums resident** (order B): the output tile accumulates fully in
//!   the RF; the weight stream repeats once per extra output tile.
//!
//! [`plan_rf`] sizes both candidates against the RF capacity and picks
//! the one that moves fewer words — a one-dimensional instance of the
//! loop-order search a full mapper performs.

use crate::{ArchConfig, LayerTask};

/// Which operand stays resident in the register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileOrder {
    /// Order A: weight tile pinned; psums spill per contraction tile.
    WeightsResident,
    /// Order B: psum tile pinned; weights re-stream per output tile.
    PsumsResident,
}

/// The chosen RF tiling for one layer-phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilePlan {
    /// Contraction-dimension tiles needed to fit the per-PE weight slice.
    pub contraction_tiles: u64,
    /// Output-position tiles needed to fit the per-PE psum slice.
    pub position_tiles: u64,
    /// The resident operand.
    pub order: TileOrder,
    /// Extra GLB words moved by the chosen order (the spill cost).
    pub spill_words: u64,
}

impl TilePlan {
    /// Words the rejected alternative would have moved (for ablations).
    pub fn alternative_spill(&self, w_traffic: u64, out_traffic: u64) -> u64 {
        match self.order {
            TileOrder::WeightsResident => w_traffic * self.position_tiles.saturating_sub(1),
            TileOrder::PsumsResident => 2 * out_traffic * self.contraction_tiles.saturating_sub(1),
        }
    }
}

/// Plans the RF tiling for one layer-phase.
///
/// `w_stream` is the weight stream of one pass (tiling granularity);
/// `w_refetch` the number of wave-level passes (so total weight traffic
/// is `w_stream · w_refetch`); `out_traffic` the output stream; `d_row`
/// the spatial extent sharing the weight slice across PEs. The RF is
/// split in thirds (weights / inputs / psums), the standard
/// double-buffered allocation.
///
/// # Examples
///
/// ```
/// use procrustes_sim::mapper::{plan_rf, TileOrder};
/// use procrustes_sim::{ArchConfig, LayerTask};
///
/// let arch = ArchConfig::procrustes_16x16();
/// // A small layer: everything fits, nothing spills.
/// let tiny = LayerTask::conv("t", 16, 8, 8, 8, 8, 3, 1, 1);
/// let plan = plan_rf(&arch, &tiny, 8 * 8 * 9, 1, 8 * 8 * 64, 8);
/// assert_eq!(plan.spill_words, 0);
///
/// // A huge layer: some order must spill, and the mapper picks the
/// // cheaper one.
/// let big = LayerTask::conv("b", 16, 512, 512, 14, 14, 3, 1, 1);
/// let plan = plan_rf(&arch, &big, 512 * 512 * 9, 1, 512 * 14 * 14 * 16, 512);
/// assert!(plan.spill_words > 0);
/// assert!(matches!(plan.order, TileOrder::WeightsResident | TileOrder::PsumsResident));
/// ```
pub fn plan_rf(
    arch: &ArchConfig,
    task: &LayerTask,
    w_stream: u64,
    w_refetch: u64,
    out_traffic: u64,
    d_row: usize,
) -> TilePlan {
    let rf_share = (arch.rf_words / 3).max(1) as u64;
    let w_per_pe = (w_stream / (d_row.max(1) as u64)).max(1);
    let contraction_tiles = w_per_pe.div_ceil(rf_share);
    let position_tiles = ((task.p * task.q) as u64).div_ceil(rf_share);

    // Order A cost: psums round-trip the GLB once per extra contraction
    // tile. Order B cost: the (refetch-inclusive) weight stream repeats
    // per extra output tile.
    let spill_a = 2 * out_traffic * contraction_tiles.saturating_sub(1);
    let spill_b = w_stream * w_refetch * position_tiles.saturating_sub(1);
    if spill_a <= spill_b {
        TilePlan {
            contraction_tiles,
            position_tiles,
            order: TileOrder::WeightsResident,
            spill_words: spill_a,
        }
    } else {
        TilePlan {
            contraction_tiles,
            position_tiles,
            order: TileOrder::PsumsResident,
            spill_words: spill_b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> ArchConfig {
        ArchConfig::procrustes_16x16()
    }

    #[test]
    fn small_layers_fit_without_spill() {
        let t = LayerTask::conv("t", 16, 4, 4, 6, 6, 3, 1, 1);
        let plan = plan_rf(&arch(), &t, t.weights() as u64, 1, t.output_elems(), t.k);
        assert_eq!(plan.contraction_tiles, 1);
        assert_eq!(plan.position_tiles, 1);
        assert_eq!(plan.spill_words, 0);
    }

    #[test]
    fn mapper_picks_the_cheaper_order() {
        let t = LayerTask::conv("t", 16, 512, 512, 14, 14, 3, 1, 1);
        let w = t.weights() as u64;
        let y = t.output_elems();
        let plan = plan_rf(&arch(), &t, w, 1, y, t.k);
        // Its own spill must not exceed the alternative's.
        assert!(plan.spill_words <= plan.alternative_spill(w, y));
    }

    #[test]
    fn big_weight_slices_force_contraction_tiling() {
        // One k's slice = 512 channels x 9 = 4608 words >> RF/3.
        let t = LayerTask::conv("t", 16, 512, 16, 14, 14, 3, 1, 1);
        let plan = plan_rf(&arch(), &t, t.weights() as u64, 1, t.output_elems(), t.k);
        assert!(plan.contraction_tiles > 1);
    }

    #[test]
    fn big_output_maps_force_position_tiling() {
        let t = LayerTask::conv("t", 16, 16, 16, 56, 56, 3, 1, 1);
        let plan = plan_rf(&arch(), &t, t.weights() as u64, 1, t.output_elems(), t.k);
        assert!(plan.position_tiles > 1, "56x56 = 3136 positions >> RF/3");
    }

    #[test]
    fn weight_heavy_layers_prefer_psum_residency() {
        // fc-like: enormous weights but a single output position, so the
        // psum tile trivially fits and streaming weights once is free.
        let t = LayerTask::fc("fc", 16, 4096, 4096);
        let plan = plan_rf(&arch(), &t, t.weights() as u64, 1, t.output_elems(), t.k);
        assert_eq!(plan.position_tiles, 1);
        assert_eq!(plan.order, TileOrder::PsumsResident);
        assert_eq!(
            plan.spill_words, 0,
            "one position tile -> no weight re-streaming"
        );
    }
}
