//! Per-access energy constants.
//!
//! # Calibration
//!
//! The paper uses Accelergy's default 40 nm library; we do not have it, so
//! the defaults below are drawn from the standard architecture-literature
//! numbers (Horowitz, “Computing's energy problem”, ISSCC 2014; the
//! Eyeriss energy hierarchy), expressed in picojoules per access:
//!
//! | component | pJ | note |
//! |---|---|---|
//! | FP32 MAC              | 8.0 | ~3.7 pJ mul + ~0.9 pJ add at 45 nm, scaled for pipeline/control overhead |
//! | register file (1 KB)  | 1.0 | per 32-bit access |
//! | global buffer (128 KB)| 6.0 | per 32-bit access (Eyeriss ratio GLB ≈ 6× RF) |
//! | DRAM                  | 200.0 | per 32-bit access (LPDDR-class) |
//! | QE update             | 2.0 | one compare + one multiply (4-wide amortized) |
//! | WR recompute          | 1.5 | three xorshift steps + scale + convert |
//! | balancer decision     | 4.0 | pointer subtraction + compare per half-tile pair |
//! | mask read             | 0.25 | per mask word consumed by the PE decode path |
//!
//! Absolute joules will differ from the authors' library; every figure the
//! harness reproduces is a *ratio* (dense/sparse, per-phase, per-mapping),
//! which depends on access counts and the cost *ordering*
//! (DRAM ≫ GLB ≫ RF, MAC dominant for FP32), both preserved here.

/// Per-access energies in picojoules. See the module docs for calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyTable {
    /// One FP32 multiply-accumulate.
    pub mac_pj: f64,
    /// One 32-bit register-file access.
    pub rf_pj: f64,
    /// One 32-bit global-buffer access.
    pub glb_pj: f64,
    /// One 32-bit DRAM access.
    pub dram_pj: f64,
    /// One quantile-estimator update (4-wide amortized).
    pub qe_pj: f64,
    /// One weight-recomputation unit invocation.
    pub wr_pj: f64,
    /// One load-balancer pairing decision.
    pub lb_pj: f64,
    /// One mask word read in the PE decode path.
    pub mask_pj: f64,
}

impl EnergyTable {
    /// The calibrated 45 nm default table (see module docs).
    pub fn nm45() -> Self {
        Self {
            mac_pj: 8.0,
            rf_pj: 1.0,
            glb_pj: 6.0,
            dram_pj: 200.0,
            qe_pj: 2.0,
            wr_pj: 1.5,
            lb_pj: 4.0,
            mask_pj: 0.25,
        }
    }
}

impl Default for EnergyTable {
    fn default() -> Self {
        Self::nm45()
    }
}

/// Converts picojoules to joules.
pub(crate) fn pj_to_j(pj: f64) -> f64 {
    pj * 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cost ordering every reproduced ratio depends on.
    #[test]
    fn hierarchy_ordering_holds() {
        let e = EnergyTable::nm45();
        assert!(e.dram_pj > 10.0 * e.glb_pj);
        assert!(e.glb_pj > e.rf_pj);
        assert!(e.mac_pj > e.rf_pj);
        assert!(e.mask_pj < e.rf_pj);
    }

    #[test]
    fn default_is_nm45() {
        assert_eq!(EnergyTable::default(), EnergyTable::nm45());
    }
}
