//! Workload descriptors: one layer × one training phase.

use crate::fingerprint::Fnv1a;

/// The three phases of a training iteration (Fig 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Inference-like pass: `x ∗ W → y`. Weight sparsity applies.
    Forward,
    /// Gradient propagation: `∂L/∂y ∗ Wʳ → ∂L/∂x` (rotated filters).
    /// Weight sparsity applies; `∂L/∂y` is dense because of batch norm.
    Backward,
    /// Weight update: `x ∗ ∂L/∂y → ∂L/∂W`. Input-activation sparsity
    /// applies.
    WeightUpdate,
}

impl Phase {
    /// All three phases, in execution order.
    pub const ALL: [Phase; 3] = [Phase::Forward, Phase::Backward, Phase::WeightUpdate];

    /// Short label used in reports ("fw"/"bw"/"wu").
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Forward => "fw",
            Phase::Backward => "bw",
            Phase::WeightUpdate => "wu",
        }
    }
}

/// Geometry of one layer's computation for a given minibatch (the seven
/// loop extents of the paper's Alg 1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerTask {
    /// Layer name for reports.
    pub name: String,
    /// Minibatch size `N`.
    pub batch: usize,
    /// Input channels `C`.
    pub c: usize,
    /// Output channels `K`.
    pub k: usize,
    /// Input spatial height `H`.
    pub h: usize,
    /// Input spatial width `W`.
    pub w: usize,
    /// Output spatial height `P`.
    pub p: usize,
    /// Output spatial width `Q`.
    pub q: usize,
    /// Filter height `R`.
    pub r: usize,
    /// Filter width `S`.
    pub s: usize,
    /// Depthwise convolution (one filter per channel; `k == c`).
    pub depthwise: bool,
}

impl LayerTask {
    /// A standard convolution task.
    ///
    /// # Panics
    ///
    /// Panics if the filter does not fit the padded input.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        name: impl Into<String>,
        batch: usize,
        c: usize,
        k: usize,
        h: usize,
        w: usize,
        r: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        assert!(h + 2 * pad >= r && w + 2 * pad >= r, "filter does not fit");
        let p = (h + 2 * pad - r) / stride + 1;
        let q = (w + 2 * pad - r) / stride + 1;
        Self {
            name: name.into(),
            batch,
            c,
            k,
            h,
            w,
            p,
            q,
            r,
            s: r,
            depthwise: false,
        }
    }

    /// A depthwise convolution task over `channels`.
    #[allow(clippy::too_many_arguments)] // mirrors the conv geometry tuple
    pub fn depthwise(
        name: impl Into<String>,
        batch: usize,
        channels: usize,
        h: usize,
        w: usize,
        r: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        let mut t = Self::conv(name, batch, channels, channels, h, w, r, stride, pad);
        t.depthwise = true;
        t
    }

    /// A fully-connected task (`1×1` conv over a `1×1` map).
    pub fn fc(name: impl Into<String>, batch: usize, inp: usize, out: usize) -> Self {
        Self {
            name: name.into(),
            batch,
            c: inp,
            k: out,
            h: 1,
            w: 1,
            p: 1,
            q: 1,
            r: 1,
            s: 1,
            depthwise: false,
        }
    }

    /// Number of weight kernels = CSB blocks (`K·C`, or `C` if depthwise).
    pub fn kernels(&self) -> usize {
        if self.depthwise {
            self.c
        } else {
            self.k * self.c
        }
    }

    /// Number of weights.
    pub fn weights(&self) -> usize {
        self.kernels() * self.r * self.s
    }

    /// Dense MAC count for `phase`.
    ///
    /// Forward and backward perform one MAC per (weight × output
    /// position × sample); weight update likewise (each weight gradient
    /// accumulates over `N·P·Q` products). All three phases therefore have
    /// the same dense MAC count, as Fig 2 implies.
    pub fn dense_macs(&self, phase: Phase) -> u64 {
        let _ = phase;
        self.weights() as u64 * self.batch as u64 * self.p as u64 * self.q as u64
    }

    /// Input activation element count (`N·C·H·W`).
    pub fn input_elems(&self) -> u64 {
        self.batch as u64 * self.c as u64 * self.h as u64 * self.w as u64
    }

    /// Output activation element count (`N·K·P·Q`).
    pub fn output_elems(&self) -> u64 {
        self.batch as u64 * self.k as u64 * self.p as u64 * self.q as u64
    }

    /// A stable 64-bit fingerprint of the task geometry (the name is
    /// excluded: two identically-shaped layers cost the same).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        for v in [
            self.batch, self.c, self.k, self.h, self.w, self.p, self.q, self.r, self.s,
        ] {
            h.write_usize(v);
        }
        h.write(&[u8::from(self.depthwise)]);
        h.finish()
    }
}

/// Sparsity of a layer's operands during training.
///
/// `kernel_nnz` holds the nonzero count of every weight kernel (CSB
/// block): indexed `k·C + c` for standard conv (or `c` for depthwise) —
/// exactly the per-tile density the CSB pointer array exposes in O(1).
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityInfo {
    /// Nonzeros per kernel, length [`LayerTask::kernels`].
    pub kernel_nnz: Vec<u32>,
    /// Input-activation density in `(0, 1]` (ReLU zeros; exploited in the
    /// weight-update phase).
    pub act_in_density: f64,
    /// Back-propagated gradient density (≈ 1.0: batch norm destroys
    /// sparsity, §II-B).
    pub grad_density: f64,
    /// True when weights live in the CSB format (Procrustes): traffic is
    /// nnz-scaled plus mask/pointer overheads and the QE unit filters
    /// gradient write-back. False for the dense baseline accelerator,
    /// which stores raw dense tensors and has none of the sparse
    /// machinery.
    pub compressed: bool,
}

impl SparsityInfo {
    /// Fully dense operands for `task` on the *dense baseline* (no
    /// compressed format, no sparse-support hardware).
    pub fn dense(task: &LayerTask) -> Self {
        Self {
            kernel_nnz: vec![(task.r * task.s) as u32; task.kernels()],
            act_in_density: 1.0,
            grad_density: 1.0,
            compressed: false,
        }
    }

    /// Uniform weight sparsity: every kernel keeps `keep` of its weights
    /// (rounded), activations at the given density. CSB-compressed.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < keep <= 1` and densities are in `(0, 1]`.
    pub fn uniform(task: &LayerTask, keep: f64, act_in_density: f64) -> Self {
        assert!(keep > 0.0 && keep <= 1.0, "keep fraction out of range");
        assert!(
            act_in_density > 0.0 && act_in_density <= 1.0,
            "activation density out of range"
        );
        let per = ((task.r * task.s) as f64 * keep).round().max(0.0) as u32;
        Self {
            kernel_nnz: vec![per; task.kernels()],
            act_in_density,
            grad_density: 1.0,
            compressed: true,
        }
    }

    /// Total weight nonzeros.
    pub fn total_nnz(&self) -> u64 {
        self.kernel_nnz.iter().map(|&v| u64::from(v)).sum()
    }

    /// Weight density in `[0, 1]` relative to `task`.
    pub fn weight_density(&self, task: &LayerTask) -> f64 {
        self.total_nnz() as f64 / task.weights() as f64
    }

    /// A stable 64-bit fingerprint of the sparsity pattern, cheap relative
    /// to the cost model itself.
    ///
    /// Two `SparsityInfo`s with the same fingerprint are (up to hash
    /// collision) the same workload sparsity; the evaluation engine in
    /// `procrustes-core` uses this to memoize per-layer costs across
    /// scenarios that share layers.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_usize(self.kernel_nnz.len());
        for &n in &self.kernel_nnz {
            h.write(&n.to_le_bytes());
        }
        h.write_f64(self.act_in_density);
        h.write_f64(self.grad_density);
        h.write(&[u8::from(self.compressed)]);
        h.finish()
    }

    /// Validates the descriptor against a task.
    ///
    /// # Panics
    ///
    /// Panics if the kernel count mismatches or any kernel exceeds its
    /// dense capacity.
    pub fn validate(&self, task: &LayerTask) {
        assert_eq!(
            self.kernel_nnz.len(),
            task.kernels(),
            "kernel_nnz length mismatch for {}",
            task.name
        );
        let cap = (task.r * task.s) as u32;
        assert!(
            self.kernel_nnz.iter().all(|&v| v <= cap),
            "kernel nnz exceeds {cap} for {}",
            task.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_task_output_dims() {
        let t = LayerTask::conv("c", 16, 64, 128, 32, 32, 3, 2, 1);
        assert_eq!((t.p, t.q), (16, 16));
        assert_eq!(t.weights(), 128 * 64 * 9);
        assert_eq!(t.kernels(), 128 * 64);
    }

    #[test]
    fn fc_task_is_1x1() {
        let t = LayerTask::fc("fc", 16, 512, 10);
        assert_eq!(t.weights(), 5120);
        assert_eq!(t.dense_macs(Phase::Forward), 5120 * 16);
    }

    #[test]
    fn depthwise_kernels_are_per_channel() {
        let t = LayerTask::depthwise("dw", 1, 32, 8, 8, 3, 1, 1);
        assert_eq!(t.kernels(), 32);
        assert_eq!(t.weights(), 32 * 9);
        assert_eq!(t.dense_macs(Phase::Forward), (32 * 9 * 64) as u64);
    }

    #[test]
    fn all_phases_have_equal_dense_macs() {
        let t = LayerTask::conv("c", 4, 16, 32, 16, 16, 3, 1, 1);
        let fw = t.dense_macs(Phase::Forward);
        assert_eq!(fw, t.dense_macs(Phase::Backward));
        assert_eq!(fw, t.dense_macs(Phase::WeightUpdate));
    }

    #[test]
    fn uniform_sparsity_scales_nnz() {
        let t = LayerTask::conv("c", 1, 8, 8, 8, 8, 3, 1, 1);
        let sp = SparsityInfo::uniform(&t, 0.2, 0.5);
        sp.validate(&t);
        // 9 weights * 0.2 rounds to 2 per kernel.
        assert_eq!(sp.total_nnz(), 2 * 64);
        assert!((sp.weight_density(&t) - 2.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn dense_info_has_full_kernels() {
        let t = LayerTask::conv("c", 1, 4, 4, 8, 8, 3, 1, 1);
        let sp = SparsityInfo::dense(&t);
        assert_eq!(sp.weight_density(&t), 1.0);
        sp.validate(&t);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn validate_rejects_wrong_kernel_count() {
        let t = LayerTask::conv("c", 1, 4, 4, 8, 8, 3, 1, 1);
        let sp = SparsityInfo {
            kernel_nnz: vec![1; 3],
            act_in_density: 1.0,
            grad_density: 1.0,
            compressed: true,
        };
        sp.validate(&t);
    }
}
