//! Tile-timed wave simulation — the event-driven latency fidelity.
//!
//! The analytical latency of [`evaluate_layer`](crate::evaluate_layer)
//! (`Fidelity::Analytic`) bounds a layer by
//! `max(compute, GLB bandwidth, DRAM bandwidth)`: an optimistic estimate
//! that assumes every operand stream overlaps perfectly with compute.
//! This module instead *replays the schedule*: it takes the actual
//! per-PE tile assignments of every wave (unbalanced, half-tile-rebuilt,
//! or ideal — exactly what the balancer produced, not a summary
//! statistic), streams each wave's operands through the GLB port with
//! double-buffered prefetch, and reports the cycle the critical PE of the
//! last wave finishes.
//!
//! The timing rules:
//!
//! * **Per-wave interconnect serialization** — a wave's operand tiles
//!   form one burst through the GLB-side interconnect, so its fill time
//!   is its word count over the GLB bandwidth. Weight words follow the
//!   wave's actual nonzero payload; dense streams (activations, psum
//!   spills, masks) are spread evenly across waves.
//! * **Double-buffered prefetch** — wave `w+1`'s fill may start once
//!   wave `w` begins computing (its buffer half is free) and the port is
//!   idle; compute of `w+1` then stalls until that fill completes.
//! * **Steady state** — wave 0's fill and the last wave's drain overlap
//!   the neighbouring layers of the training loop (the standard
//!   double-buffered pipeline), so they are not charged here; the global
//!   GLB/DRAM bandwidth bounds still apply, keeping the analytic model a
//!   true lower bound.
//!
//! On uniform workloads every wave is bound by the same resource, so the
//! replay degenerates to the analytic bound (the two fidelities agree
//! bit-for-bit on compute-bound dense layers). Under skewed sparsity,
//! waves whose tiles decayed to near-zero work finish before the next
//! wave's operands arrive — pipeline bubbles the closed-form `max` can
//! never see. Those bubbles are the model-fidelity gap this axis
//! measures.

use crate::ArchConfig;

/// Which latency model [`crate::evaluate_layer_with`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fidelity {
    /// The closed-form model: waves are summarized by their critical PE
    /// and latency is `max(compute, GLB, DRAM)`. Fast, optimistic, and
    /// exactly the seed evaluation's numbers.
    Analytic,
    /// The wave-by-wave replay of this module: per-wave GLB bursts,
    /// double-buffered prefetch, stalls from the actual tile schedule.
    TileTimed,
}

impl Fidelity {
    /// Both fidelities, analytic first (the default).
    pub const ALL: [Fidelity; 2] = [Fidelity::Analytic, Fidelity::TileTimed];

    /// Serialization/report label (`"analytic"` / `"tile_timed"`).
    pub fn label(&self) -> &'static str {
        match self {
            Fidelity::Analytic => "analytic",
            Fidelity::TileTimed => "tile_timed",
        }
    }
}

/// One full-PE-array working set of the layer's schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wave {
    /// Busy cycles of each occupied PE (the rebuilt tile loads × output
    /// positions). The wave's critical path is the maximum entry.
    pub pe_cycles: Vec<u64>,
    /// Weight-stream payload of this wave in relative units (tile
    /// nonzeros); used to apportion the layer's weight traffic across
    /// waves. Zero means "no wave-varying stream" (uniform phases).
    pub weight_units: u64,
    /// Identical back-to-back repetitions of this wave (column tiles).
    pub repeat: u64,
}

impl Wave {
    /// The wave's critical-PE cycles.
    pub fn critical(&self) -> u64 {
        self.pe_cycles.iter().copied().max().unwrap_or(0)
    }
}

/// The outcome of replaying one layer-phase's wave schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingReport {
    /// End-to-end cycles: the critical PE's finish time of the last
    /// wave, floored by the global GLB and DRAM bandwidth bounds.
    pub cycles: u64,
    /// Pure compute cycles (sum of per-wave critical paths) — identical
    /// to the analytic compute bound by construction.
    pub compute_cycles: u64,
    /// Cycles the array spent stalled waiting for a wave's operands.
    pub stall_cycles: u64,
    /// Total GLB port busy cycles charged to per-wave bursts.
    pub fetch_cycles: u64,
    /// Number of (expanded) waves replayed.
    pub waves: u64,
}

/// Replays a wave schedule against `arch`'s GLB port.
///
/// `glb_words`/`dram_cycles` are the layer totals from the traffic model;
/// the weight share of `glb_words` (`weight_stream_words`, including
/// refetch passes) is distributed across waves proportionally to their
/// [`Wave::weight_units`], the remainder evenly.
///
/// # Examples
///
/// ```
/// use procrustes_sim::{simulate_waves, ArchConfig, Wave};
///
/// let arch = ArchConfig::procrustes_16x16();
/// // Two waves: a dense one (long compute) and a decayed one whose
/// // compute is shorter than the next operand burst.
/// let waves = vec![
///     Wave { pe_cycles: vec![40_000; 16], weight_units: 9, repeat: 1 },
///     Wave { pe_cycles: vec![100; 16], weight_units: 1, repeat: 2 },
/// ];
/// let r = simulate_waves(&arch, &waves, 320_000, 0, 320_000);
/// assert_eq!(r.compute_cycles, 40_200);
/// assert!(r.cycles >= r.compute_cycles);
/// ```
pub fn simulate_waves(
    arch: &ArchConfig,
    waves: &[Wave],
    glb_words: u64,
    dram_cycles: u64,
    weight_stream_words: u64,
) -> TimingReport {
    let bw = arch.glb_bw_words.max(1) as u64;
    let glb_cycles = glb_words.div_ceil(bw);
    let n: u64 = waves.iter().map(|w| w.repeat.max(1)).sum();
    if n == 0 {
        return TimingReport {
            cycles: glb_cycles.max(dram_cycles).max(1),
            compute_cycles: 0,
            stall_cycles: 0,
            fetch_cycles: glb_cycles,
            waves: 0,
        };
    }

    // Apportion the layer's GLB words across expanded waves: the weight
    // stream follows each wave's nonzero payload, everything else (dense
    // activations, outputs, spills, masks) is spread evenly. Cumulative
    // rounding keeps the word total exact.
    let unit_total: u64 = waves.iter().map(|w| w.weight_units * w.repeat.max(1)).sum();
    let weight_words = weight_stream_words.min(glb_words);
    let other_words = glb_words - weight_words;
    let per_wave_words = |unit_cum_before: u64, unit: u64, idx: u64| -> u64 {
        let w_share = if unit_total == 0 {
            mul_div(weight_words, idx + 1, n) - mul_div(weight_words, idx, n)
        } else {
            mul_div(weight_words, unit_cum_before + unit, unit_total)
                - mul_div(weight_words, unit_cum_before, unit_total)
        };
        let o_share = mul_div(other_words, idx + 1, n) - mul_div(other_words, idx, n);
        w_share + o_share
    };

    // Event state. Wave 0's operands are already on-array (steady-state
    // double buffering); every later wave's fill starts when the port is
    // free AND the previous wave has begun computing (freeing the other
    // buffer half).
    let mut port_free = 0u64; // when the GLB port finishes its last burst
    let mut data_ready = 0u64; // when the upcoming wave's operands land
    let mut compute_end = 0u64;
    let mut compute_total = 0u64;
    let mut stall_total = 0u64;
    let mut fetch_total = 0u64;
    let mut unit_cum = 0u64;
    let mut idx = 0u64;
    for (wi, wave) in waves.iter().enumerate() {
        let critical = wave.critical();
        let repeat = wave.repeat.max(1);
        let unit_per_rep = wave.weight_units;
        for rep in 0..repeat {
            let start = compute_end.max(data_ready);
            stall_total += start - compute_end;
            compute_end = start + critical;
            compute_total += critical;
            // Prefetch the next expanded wave (if any) during this one.
            let is_last = wi + 1 == waves.len() && rep + 1 == repeat;
            if !is_last {
                // The *next* wave's words; peek via the running index.
                let (next_unit, next_idx) = if rep + 1 < repeat {
                    (unit_per_rep, idx + 1)
                } else {
                    (waves[wi + 1].weight_units, idx + 1)
                };
                let words = per_wave_words(unit_cum + unit_per_rep, next_unit, next_idx);
                let fill = words.div_ceil(bw);
                let fetch_start = port_free.max(start);
                port_free = fetch_start + fill;
                fetch_total += fill;
                data_ready = port_free;
            }
            unit_cum += unit_per_rep;
            idx += 1;
        }
    }

    TimingReport {
        cycles: compute_end.max(glb_cycles).max(dram_cycles).max(1),
        compute_cycles: compute_total,
        stall_cycles: stall_total,
        fetch_cycles: fetch_total,
        waves: n,
    }
}

/// `a * b / c` without overflow (`c > 0`), rounding down.
fn mul_div(a: u64, b: u64, c: u64) -> u64 {
    ((a as u128 * b as u128) / c.max(1) as u128) as u64
}

/// A Fig-5-style skewed working set shared by the fidelity test suites
/// (sim-internal and the core integration tests): a handful of dense
/// filter rows among many decayed ones, so heavy waves alternate with
/// starved ones and the tile-timed replay strictly exceeds the analytic
/// bound. Not part of the supported API.
#[doc(hidden)]
pub fn fig5_skewed_workload() -> (crate::LayerTask, crate::SparsityInfo) {
    let task = crate::LayerTask::conv("fig5", 16, 256, 64, 6, 6, 3, 1, 0);
    // Per output channel (row unit): every 32nd row keeps all its
    // weights, the rest retain a sparse scatter.
    let mut kernel_nnz = vec![0u32; task.kernels()];
    for ki in 0..task.k {
        for ci in 0..task.c {
            kernel_nnz[ki * task.c + ci] = if ki % 32 == 0 {
                9
            } else if ci % 13 == 0 {
                1
            } else {
                0
            };
        }
    }
    let sp = crate::SparsityInfo {
        kernel_nnz,
        act_in_density: 0.5,
        grad_density: 1.0,
        compressed: true,
    };
    (task, sp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> ArchConfig {
        ArchConfig::procrustes_16x16()
    }

    fn wave(c: u64, units: u64, repeat: u64) -> Wave {
        Wave {
            pe_cycles: vec![c; 16],
            weight_units: units,
            repeat,
        }
    }

    #[test]
    fn labels_roundtrip_order() {
        assert_eq!(Fidelity::ALL[0].label(), "analytic");
        assert_eq!(Fidelity::ALL[1].label(), "tile_timed");
    }

    #[test]
    fn empty_schedule_is_bandwidth_bound() {
        let r = simulate_waves(&arch(), &[], 3200, 7000, 0);
        assert_eq!(r.cycles, 7000);
        assert_eq!(r.compute_cycles, 0);
        let r = simulate_waves(&arch(), &[], 0, 0, 0);
        assert_eq!(r.cycles, 1);
    }

    #[test]
    fn uniform_compute_bound_waves_match_the_analytic_sum() {
        // 8 identical waves, each fill far below compute: no stalls, so
        // the replay equals the plain compute sum.
        let waves: Vec<Wave> = (0..8).map(|_| wave(10_000, 5, 1)).collect();
        let r = simulate_waves(&arch(), &waves, 32_000, 0, 4_000);
        assert_eq!(r.compute_cycles, 80_000);
        assert_eq!(r.stall_cycles, 0);
        assert_eq!(r.cycles, 80_000);
    }

    #[test]
    fn short_waves_behind_long_fills_stall() {
        // Tiny compute per wave but each burst takes 1000 words / 32 bw
        // ≈ many cycles: the array starves behind the port.
        let waves: Vec<Wave> = (0..8).map(|_| wave(10, 1, 1)).collect();
        let r = simulate_waves(&arch(), &waves, 256_000, 0, 0);
        assert!(r.stall_cycles > 0, "{r:?}");
        // But the global bandwidth bound still floors the result.
        assert!(r.cycles >= 256_000 / 32);
    }

    #[test]
    fn mixed_waves_exceed_both_global_bounds() {
        // Alternating heavy/light waves: heavy waves hide their fills,
        // light waves starve — Σ max(c, f) beats max(Σc, Σf).
        let mut waves = Vec::new();
        for _ in 0..4 {
            waves.push(wave(50_000, 100, 1));
            waves.push(wave(100, 1, 1));
        }
        let glb_words = 8 * 32 * 10_000; // 10k fill cycles per wave
        let r = simulate_waves(&arch(), &waves, glb_words, 0, 0);
        let compute: u64 = 4 * (50_000 + 100);
        let glb = glb_words / 32;
        assert!(r.cycles > compute.max(glb), "{r:?}");
        assert_eq!(r.compute_cycles, compute);
    }

    #[test]
    fn repeats_expand_like_explicit_waves() {
        let folded = [wave(700, 3, 6)];
        let explicit: Vec<Wave> = (0..6).map(|_| wave(700, 3, 1)).collect();
        let a = simulate_waves(&arch(), &folded, 96_000, 11, 9_000);
        let b = simulate_waves(&arch(), &explicit, 96_000, 11, 9_000);
        assert_eq!(a, b);
    }

    #[test]
    fn weight_words_follow_the_payload() {
        // All the weight words ride the first wave: its successor's fill
        // is light, so a heavy first wave hides everything.
        let skew = [wave(100_000, 1_000, 1), wave(100_000, 0, 1)];
        let r = simulate_waves(&arch(), &skew, 64_000, 0, 64_000);
        assert_eq!(r.stall_cycles, 0);
        assert_eq!(r.cycles, 200_000);
    }
}
