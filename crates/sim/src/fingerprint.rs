//! A tiny FNV-1a hasher for cheap, stable fingerprints of model inputs.
//!
//! The evaluation engine in `procrustes-core` memoizes per-layer costs
//! across scenarios; the cache key needs a fingerprint of the workload
//! descriptors that is stable across runs and processes (unlike
//! `std::hash`'s `RandomState`) and cheap relative to `evaluate_layer`.

/// Incremental 64-bit FNV-1a.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Fnv1a {
    /// Starts a fresh hash.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Folds raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` (little-endian) into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `usize` into the hash.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds an `f64` into the hash by bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn order_sensitive() {
        let mut a = Fnv1a::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv1a::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }
}
