//! A tiny FNV-1a hasher for cheap, stable fingerprints of model inputs.
//!
//! The evaluation engine in `procrustes-core` memoizes per-layer costs
//! across scenarios; the cache key needs a fingerprint of the workload
//! descriptors that is stable across runs and processes (unlike
//! `std::hash`'s `RandomState`) and cheap relative to `evaluate_layer`.
//!
//! # Stability contract
//!
//! Fingerprints are a **persistence surface**, not just an in-process
//! optimization: `procrustes-serve` shards work by scenario fingerprint
//! and addresses its on-disk result cache with it, so entries written by
//! one daemon must be found by every later one. Concretely:
//!
//! * The algorithm is pinned to 64-bit FNV-1a with the standard offset
//!   basis and prime; it will not change between releases.
//! * Integers fold in little-endian, `f64`s by IEEE-754 bit pattern
//!   (so `-0.0 ≠ 0.0` and every NaN payload is distinct — two configs
//!   that could ever evaluate differently never alias).
//! * The *byte streams* each `fingerprint()` method feeds the hasher
//!   (field order and encoding in [`ArchConfig::fingerprint`],
//!   [`LayerTask::fingerprint`], [`SparsityInfo::fingerprint`], and
//!   `Scenario::fingerprint` in `procrustes-core`) are part of this
//!   contract. Golden-value tests (here and in `procrustes-core`) pin
//!   all four; if one fails, the encoding changed and every persistent
//!   cache in the wild would go cold — extend encodings only in ways
//!   that keep existing inputs' streams unchanged, or version the
//!   serve cache directory.
//!
//! Fingerprints are 64-bit content hashes, not cryptographic digests:
//! collisions are astronomically unlikely for the handful of distinct
//! workloads a sweep touches, but nothing *detects* one. Hostile cache
//! poisoning is out of scope (the cache directory is operator-owned).
//!
//! [`ArchConfig::fingerprint`]: crate::ArchConfig::fingerprint
//! [`LayerTask::fingerprint`]: crate::LayerTask::fingerprint
//! [`SparsityInfo::fingerprint`]: crate::SparsityInfo::fingerprint

/// Incremental 64-bit FNV-1a.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Fnv1a {
    /// Starts a fresh hash.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Folds raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` (little-endian) into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `usize` into the hash.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds an `f64` into the hash by bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn order_sensitive() {
        let mut a = Fnv1a::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv1a::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn f64_folds_by_bit_pattern() {
        let hash = |v: f64| {
            let mut h = Fnv1a::new();
            h.write_f64(v);
            h.finish()
        };
        assert_ne!(hash(0.0), hash(-0.0));
        assert_eq!(hash(f64::NAN), hash(f64::NAN)); // same payload
        assert_ne!(hash(1.0), hash(1.0 + f64::EPSILON));
    }

    /// Golden fingerprints of the descriptor types: the byte streams the
    /// `fingerprint()` methods feed the hasher are a persistence surface
    /// (see the module docs). A failure here means on-disk serve caches
    /// written by earlier builds would silently go cold — don't re-pin
    /// without versioning the cache.
    #[test]
    fn golden_descriptor_fingerprints() {
        use crate::{ArchConfig, LayerTask, SparsityInfo};
        let arch = ArchConfig::procrustes_16x16();
        assert_eq!(arch.fingerprint(), 0x7b55_076c_c866_3bcc);
        let task = LayerTask::conv("conv3_1", 16, 128, 256, 8, 8, 3, 1, 1);
        assert_eq!(task.fingerprint(), 0x8f50_fdff_3f4e_7f2e);
        let sp = SparsityInfo::uniform(&task, 0.5, 0.8);
        assert_eq!(sp.fingerprint(), 0xaf7b_346d_23e9_e6b8);
        // The task name is a label, not identity.
        let renamed = LayerTask::conv("other", 16, 128, 256, 8, 8, 3, 1, 1);
        assert_eq!(renamed.fingerprint(), task.fingerprint());
    }
}
