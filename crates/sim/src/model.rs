//! The analytical cost model: MACs, latency with load imbalance, memory
//! traffic with CSB overheads, bandwidth bounds, and energy.

use crate::energy::pj_to_j;
use crate::timing::{simulate_waves, Fidelity, Wave};
use crate::{
    balance, ArchConfig, EnergyBreakdown, LayerCost, LayerTask, Mapping, Phase, SparsityInfo,
};

/// Load-balancing configuration for an evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BalanceMode {
    /// Tiles assigned in dense order; the slowest PE limits each wave
    /// (Fig 4b).
    None,
    /// Procrustes half-tile balancing along the sparse array dimension
    /// (§IV-C). For the `C,K` mapping this implies the complex
    /// interconnect of Fig 10 and balances across the whole array.
    HalfTile,
    /// Perfect balancing at zero cost — the idealized Fig 1 configuration.
    Ideal,
}

/// Evaluates one layer × one phase under a mapping with the analytic
/// latency model; the historical entry point of the simulator.
///
/// Equivalent to [`evaluate_layer_with`] at [`Fidelity::Analytic`].
///
/// # Panics
///
/// Panics if `sp` is inconsistent with `task` (see
/// [`SparsityInfo::validate`]) or the architecture is degenerate.
pub fn evaluate_layer(
    arch: &ArchConfig,
    task: &LayerTask,
    phase: Phase,
    mapping: Mapping,
    sp: &SparsityInfo,
    balance_mode: BalanceMode,
) -> LayerCost {
    evaluate_layer_with(
        arch,
        task,
        phase,
        mapping,
        sp,
        balance_mode,
        Fidelity::Analytic,
    )
}

/// Evaluates one layer × one phase under a mapping and an explicit
/// latency [`Fidelity`]; the main entry point of the simulator.
///
/// [`Fidelity::Analytic`] reproduces the closed-form model exactly;
/// [`Fidelity::TileTimed`] replays the actual per-PE tile schedule wave
/// by wave (see [`crate::timing`]). MAC counts, traffic, and energy are
/// fidelity-independent — only `cycles` and `utilization` change, and
/// tile-timed cycles are never below the analytic bound.
///
/// # Panics
///
/// Panics if `sp` is inconsistent with `task` (see
/// [`SparsityInfo::validate`]) or the architecture is degenerate.
pub fn evaluate_layer_with(
    arch: &ArchConfig,
    task: &LayerTask,
    phase: Phase,
    mapping: Mapping,
    sp: &SparsityInfo,
    balance_mode: BalanceMode,
    fidelity: Fidelity,
) -> LayerCost {
    arch.validate();
    sp.validate(task);
    let balance_mode = if arch.ideal {
        BalanceMode::Ideal
    } else {
        balance_mode
    };

    let macs = effective_macs(task, phase, sp);
    let collect_waves = fidelity == Fidelity::TileTimed;
    let (compute_cycles, wave_overheads, rebuilt_tiles, waves) =
        latency(arch, task, phase, mapping, sp, balance_mode, collect_waves);
    let traffic = traffic(arch, task, phase, mapping, sp, macs);
    let glb_cycles = traffic.glb_words.div_ceil(arch.glb_bw_words as u64);
    let dram_cycles = traffic.dram_words.div_ceil(arch.dram_bw_words as u64);
    let cycles = match fidelity {
        Fidelity::Analytic => compute_cycles.max(glb_cycles).max(dram_cycles).max(1),
        Fidelity::TileTimed => {
            simulate_waves(
                arch,
                &waves,
                traffic.glb_words,
                dram_cycles,
                traffic.weight_stream_words,
            )
            .cycles
        }
    };

    let e = &arch.energy;
    // RF activity: ~3 operand accesses per MAC (weight read, input read,
    // psum read-modify-write counted once) plus one write per word filled
    // from the GLB.
    let rf_accesses = 3 * macs + traffic.glb_words;
    let mut overhead_pj = 0.0;
    if !arch.ideal && sp.compressed {
        // Mask decode: every weight word consumed carries its mask read.
        overhead_pj += e.mask_pj * traffic.mask_words as f64;
        if phase == Phase::WeightUpdate {
            // The QE unit sees every produced gradient, 4-wide.
            overhead_pj += e.qe_pj * (task.weights() as f64 / 4.0);
        }
        if balance_mode == BalanceMode::HalfTile {
            overhead_pj += e.lb_pj * rebuilt_tiles as f64;
        }
    }
    let energy = EnergyBreakdown {
        mac_j: pj_to_j(e.mac_pj * macs as f64),
        rf_j: pj_to_j(e.rf_pj * rf_accesses as f64),
        glb_j: pj_to_j(e.glb_pj * traffic.glb_words as f64),
        dram_j: pj_to_j(e.dram_pj * traffic.dram_words as f64),
        overhead_j: pj_to_j(overhead_pj),
    };
    // Utilization against the *bounding* cycle count: a bandwidth-bound
    // layer's PEs are idle while the streams drain, so dividing by the
    // shorter compute-only window would report >100% effective
    // utilization relative to real elapsed time.
    let utilization = macs as f64 / (cycles.max(1) as f64 * arch.pes() as f64);

    LayerCost {
        name: task.name.clone(),
        phase,
        mapping,
        fidelity,
        macs,
        cycles,
        compute_cycles,
        glb_cycles,
        dram_cycles,
        energy,
        utilization: utilization.min(1.0),
        wave_overheads,
        glb_words: traffic.glb_words,
        dram_words: traffic.dram_words,
    }
}

/// Sparse-aware MAC count (§II-B: weight sparsity gates fw/bw, input
/// activation sparsity gates wu; the back-propagated gradient is dense).
fn effective_macs(task: &LayerTask, phase: Phase, sp: &SparsityInfo) -> u64 {
    let positions = task.batch as u64 * task.p as u64 * task.q as u64;
    match phase {
        Phase::Forward | Phase::Backward => sp.total_nnz() * positions,
        Phase::WeightUpdate => {
            let dense = task.dense_macs(phase) as f64;
            (dense * sp.act_in_density * sp.grad_density).round() as u64
        }
    }
}

// ---------------------------------------------------------------------------
// Latency
// ---------------------------------------------------------------------------

/// Per-row-unit weight nonzeros and their two halves (split along the
/// contraction channel dimension, the paper's Fig 9 cut).
fn row_units(
    task: &LayerTask,
    phase: Phase,
    mapping: Mapping,
    sp: &SparsityInfo,
) -> Vec<(u64, (u64, u64))> {
    let (k, c) = (task.k, task.c);
    let units_are_k = match (mapping, phase) {
        (Mapping::KN, Phase::Forward) | (Mapping::CN, Phase::Backward) => true,
        (Mapping::KN, Phase::Backward) | (Mapping::CN, Phase::Forward) => false,
        _ => unreachable!("row_units called for a non-row-sparse case"),
    };
    if task.depthwise {
        // One kernel per channel; the unit IS the kernel, halves split the
        // filter itself.
        return sp
            .kernel_nnz
            .iter()
            .map(|&v| {
                let v = u64::from(v);
                (v, (v / 2, v - v / 2))
            })
            .collect();
    }
    if units_are_k {
        (0..k)
            .map(|ki| {
                let row = &sp.kernel_nnz[ki * c..(ki + 1) * c];
                let first: u64 = row[..c / 2].iter().map(|&v| u64::from(v)).sum();
                let total: u64 = row.iter().map(|&v| u64::from(v)).sum();
                (total, (first, total - first))
            })
            .collect()
    } else {
        (0..c)
            .map(|ci| {
                let mut first = 0u64;
                let mut total = 0u64;
                for ki in 0..k {
                    let v = u64::from(sp.kernel_nnz[ki * c + ci]);
                    total += v;
                    if ki < k / 2 {
                        first += v;
                    }
                }
                (total, (first, total - first))
            })
            .collect()
    }
}

/// Compute-bound latency: waves of full-PE-array work, each bounded by its
/// slowest PE. Returns `(cycles, per-working-set overheads, rebuilt tile
/// count for balancer energy, wave plan)`.
///
/// The wave plan holds the *actual* per-PE tile assignments each wave
/// executes (unbalanced, half-tile-rebuilt, or ideal) and is only built
/// when `collect_waves` is set (the tile-timed fidelity); the analytic
/// cycle count always equals the sum of the plan's per-wave critical
/// paths, which is what lets the plan serve as the analytic model's
/// equivalence oracle.
#[allow(clippy::too_many_arguments)] // internal; mirrors evaluate_layer_with
fn latency(
    arch: &ArchConfig,
    task: &LayerTask,
    phase: Phase,
    mapping: Mapping,
    sp: &SparsityInfo,
    mode: BalanceMode,
    collect_waves: bool,
) -> (u64, Vec<f32>, u64, Vec<Wave>) {
    let (rows, cols) = (arch.rows, arch.cols);
    let (d_row, d_col) = mapping.spatial_extents(task, phase);
    let row_tiles = d_row.div_ceil(rows);
    let col_tiles = d_col.div_ceil(cols);
    let mut waves: Vec<Wave> = Vec::new();

    if mapping.row_work_is_weight_sparse(phase) && mapping != Mapping::CK {
        // KN/CN forward & backward: work varies along the rows only.
        let units = row_units(task, phase, mapping, sp);
        // MACs per unit nonzero, per column PE, per wave: one sample's
        // output positions.
        let positions = (task.p * task.q) as u64;
        let mut cycles = 0u64;
        let mut overheads = Vec::with_capacity(row_tiles);
        let mut rebuilt = 0u64;
        for chunk in units.chunks(rows) {
            // When a chunk cannot fill the rows (few output channels, e.g.
            // DenseNet's growth-24 layers), the mapper folds output
            // positions across the idle rows — the "optimal tiling" step
            // of the minibatch-spatial dataflows.
            let fold = (rows / chunk.len()).max(1) as u64;
            let pos = positions.div_ceil(fold);
            let (wave_max, wave_mean) = match mode {
                BalanceMode::None => {
                    let max = chunk.iter().map(|&(t, _)| t).max().unwrap_or(0);
                    let mean =
                        chunk.iter().map(|&(t, _)| t).sum::<u64>() as f64 / chunk.len() as f64;
                    if collect_waves {
                        waves.push(Wave {
                            pe_cycles: chunk.iter().map(|&(t, _)| t * pos).collect(),
                            weight_units: chunk.iter().map(|&(t, _)| t).sum(),
                            repeat: col_tiles as u64,
                        });
                    }
                    (max, mean)
                }
                BalanceMode::HalfTile => {
                    rebuilt += chunk.len() as u64;
                    let halves: Vec<(u64, u64)> = chunk.iter().map(|&(_, h)| h).collect();
                    let loads = balance::half_tile_pairs(&halves);
                    let max = loads.iter().copied().max().unwrap_or(0);
                    let mean = if loads.is_empty() {
                        0.0
                    } else {
                        loads.iter().sum::<u64>() as f64 / loads.len() as f64
                    };
                    if collect_waves {
                        waves.push(Wave {
                            weight_units: loads.iter().sum(),
                            pe_cycles: loads.into_iter().map(|l| l * pos).collect(),
                            repeat: col_tiles as u64,
                        });
                    }
                    (max, mean)
                }
                BalanceMode::Ideal => {
                    let sum = chunk.iter().map(|&(t, _)| t).sum::<u64>();
                    let mean = sum as f64 / chunk.len() as f64;
                    let max = mean.ceil() as u64;
                    if collect_waves {
                        waves.push(Wave {
                            pe_cycles: vec![max * pos; chunk.len()],
                            weight_units: sum,
                            repeat: col_tiles as u64,
                        });
                    }
                    (max, mean)
                }
            };
            if wave_mean > 0.0 {
                overheads.push((wave_max as f64 / wave_mean - 1.0) as f32);
            } else {
                overheads.push(0.0);
            }
            cycles += wave_max * pos;
        }
        // Each row-chunk repeats for every minibatch column tile.
        (
            (cycles * col_tiles as u64).max(1),
            overheads,
            rebuilt * col_tiles as u64,
            waves,
        )
    } else if mapping == Mapping::CK && matches!(phase, Phase::Forward | Phase::Backward) {
        // Kernel-grid weight-stationary: per-PE work is one kernel's nnz;
        // imbalance across both array dimensions (Fig 4b).
        let positions = (task.batch * task.p * task.q) as u64;
        let (gr, gc) = if task.depthwise {
            (task.c, 1)
        } else {
            (task.c, task.k)
        };
        let mut cycles = 0u64;
        let mut overheads = Vec::new();
        let mut rebuilt = 0u64;
        for cr in 0..gr.div_ceil(rows) {
            for ck in 0..gc.div_ceil(cols) {
                let mut works: Vec<u64> = Vec::with_capacity(rows * cols);
                for ci in cr * rows..((cr + 1) * rows).min(gr) {
                    for ki in ck * cols..((ck + 1) * cols).min(gc) {
                        let idx = if task.depthwise { ci } else { ki * task.c + ci };
                        works.push(u64::from(sp.kernel_nnz[idx]));
                    }
                }
                let max = works.iter().copied().max().unwrap_or(0);
                let sum: u64 = works.iter().sum();
                let mean = sum as f64 / works.len().max(1) as f64;
                let wave_max = match mode {
                    BalanceMode::None => max,
                    // Balancing C,K requires the complex all-to-all
                    // interconnect; grant it near-perfect balance.
                    BalanceMode::HalfTile | BalanceMode::Ideal => {
                        rebuilt += works.len() as u64;
                        mean.ceil() as u64
                    }
                };
                overheads.push(if mean > 0.0 {
                    (max as f64 / mean - 1.0) as f32
                } else {
                    0.0
                });
                if collect_waves {
                    let pe_cycles = if mode == BalanceMode::None {
                        works.iter().map(|&w| w * positions).collect()
                    } else {
                        vec![wave_max * positions; works.len()]
                    };
                    waves.push(Wave {
                        pe_cycles,
                        weight_units: sum,
                        repeat: 1,
                    });
                }
                cycles += wave_max * positions;
            }
        }
        (cycles.max(1), overheads, rebuilt, waves)
    } else {
        // Uniform-work cases: all wu phases under KN/CN/CK, and every PQ
        // phase. Work per spatial position is equal; latency is bounded by
        // utilization only.
        let macs = effective_macs(task, phase, sp);
        let per_position = macs as f64 / (d_row as f64 * d_col as f64);
        let wave_count = (row_tiles * col_tiles) as u64;
        let per_wave = (per_position.ceil() as u64).max(1);
        if collect_waves {
            let used = d_row.min(rows) * d_col.min(cols);
            waves.push(Wave {
                pe_cycles: vec![per_wave; used.max(1)],
                weight_units: 0,
                repeat: wave_count,
            });
        }
        let cycles = per_wave * wave_count;
        (cycles, vec![0.0; row_tiles * col_tiles], 0, waves)
    }
}

// ---------------------------------------------------------------------------
// Traffic
// ---------------------------------------------------------------------------

struct Traffic {
    glb_words: u64,
    dram_words: u64,
    mask_words: u64,
    /// GLB words of the weight stream including refetch passes — the
    /// component of `glb_words` that varies wave-to-wave with sparsity
    /// (the tile-timed simulator apportions it by wave payload).
    weight_stream_words: u64,
}

/// Weight storage cost in 32-bit words: raw dense words for the baseline
/// accelerator, or CSB (packed values + 1-bit masks + one pointer per
/// kernel) when compressed; the ideal configuration pays no format
/// overhead.
fn csb_words(task: &LayerTask, sp: &SparsityInfo, ideal: bool) -> (u64, u64) {
    if !sp.compressed {
        return (task.weights() as u64, 0);
    }
    let nnz = sp.total_nnz();
    if ideal {
        return (nnz, 0);
    }
    let mask_bits = (task.kernels() * task.r * task.s) as u64;
    let mask_words = mask_bits.div_ceil(32);
    let ptr_words = task.kernels() as u64 + 1;
    (nnz + mask_words + ptr_words, mask_words)
}

fn traffic(
    arch: &ArchConfig,
    task: &LayerTask,
    phase: Phase,
    mapping: Mapping,
    sp: &SparsityInfo,
    macs: u64,
) -> Traffic {
    let (d_row, d_col) = mapping.spatial_extents(task, phase);
    let row_tiles = d_row.div_ceil(arch.rows) as u64;
    let col_tiles = d_col.div_ceil(arch.cols) as u64;
    let waves = row_tiles * col_tiles;
    // Note: multicast (Figs 3/11 roles) is already embedded in the
    // footprint-based counting below — broadcast data is identical across
    // the group, so one GLB read per refetch pass serves the whole row or
    // column; unicast data differs per PE, so its footprint covers every
    // PE's share exactly once per pass.

    let dense_w = task.weights() as u64;
    let (sparse_w_words, mask_words) = csb_words(task, sp, arch.ideal);
    let x_words = task.input_elems();
    let y_words = task.output_elems();

    // Per-phase operand sizes in words (GLB side).
    let (w_stream, in_stream, out_stream) = match phase {
        // fw: sparse weights stream in, dense iacts in, dense oacts out.
        Phase::Forward => (sparse_w_words, x_words, y_words),
        // bw: sparse (rotated) weights, dense ∂L/∂y in, dense ∂L/∂x out.
        Phase::Backward => (sparse_w_words, y_words, x_words),
        // wu: ALL weight gradients are produced and flow through the GLB
        // (the QE unit filters them GLB→DRAM); iacts are read compressed
        // (CSB-like, so density-scaled + masks), ∂L/∂y dense.
        Phase::WeightUpdate => {
            let x_sparse = if arch.ideal {
                (x_words as f64 * sp.act_in_density) as u64
            } else {
                (x_words as f64 * sp.act_in_density) as u64 + x_words.div_ceil(32)
            };
            (dense_w, x_sparse, y_words)
        }
    };

    // GLB→array refetch factors: a tensor is re-streamed once per tile of
    // the spatial loop dimension it does not depend on. Spatial multicast
    // means one GLB read serves the whole broadcast group. Depthwise
    // layers couple the channel dimensions one-to-one, so activations are
    // never re-streamed across channel tiles.
    let act_refetch_rows = if task.depthwise { 1 } else { row_tiles };
    let act_refetch_cols = if task.depthwise { 1 } else { col_tiles };
    let (w_refetch, in_refetch) = match (mapping, phase) {
        // K,N / C,N: weights re-stream per minibatch column tile; inputs
        // re-stream per row (channel) tile.
        (Mapping::KN | Mapping::CN, _) => (col_tiles, act_refetch_rows),
        // C,K weight-stationary: each kernel lives in exactly one PE
        // (read once); iacts re-stream per output-channel tile.
        (Mapping::CK, _) => (1, act_refetch_cols),
        // P,Q input-stationary: inputs read once; weights re-stream every
        // wave.
        (Mapping::PQ, _) => (waves, 1),
    };

    // Register-file capacity forces either psum spills (weights resident)
    // or weight re-streams (psums resident); the mapper picks the cheaper
    // (the "optimal dataflow via Timeloop" step; see `mapper`).
    let plan = crate::mapper::plan_rf(arch, task, w_stream, w_refetch, out_stream, d_row);
    let rf_spill = plan.spill_words;

    // Cross-PE partial-sum reduction when a mapping spatializes reduction
    // dimensions of the phase (P,Q during weight update): partials merge
    // through the GLB, once per column group.
    let reduction_spill = if mapping == Mapping::PQ && phase == Phase::WeightUpdate {
        let used_cols = d_col.min(arch.cols) as u64;
        2 * dense_w * used_cols
    } else {
        0
    };

    let glb_words =
        w_stream * w_refetch + in_stream * in_refetch + out_stream + rf_spill + reduction_spill;

    // DRAM traffic. Two regimes, take the max:
    //
    // * compulsory: each operand crosses DRAM at least once (for wu, only
    //   the surviving gradients reach DRAM — the QE unit discards the
    //   rest between GLB and DRAM);
    // * capacity-bound: with all on-chip storage (GLB + aggregate RF)
    //   treated as one fast memory of M words, any schedule of `macs`
    //   multiply-accumulates moves at least ~2·macs/√M operand words
    //   (the classic red-blue pebbling bound the Timeloop mapper
    //   approaches). Because it scales with the *effective* MACs, sparse
    //   workloads automatically move proportionally less.
    //
    // Activations cross DRAM in the zero-free compressed format of §IV-A
    // (density-scaled + 1 mask bit per element) — but gradients never do
    // (batch norm keeps ∂L/∂y dense, §II-B), and the dense baseline has
    // no compression support (`act_in_density == 1` leaves traffic
    // unchanged).
    let compress = |words: u64| -> u64 {
        if sp.act_in_density >= 1.0 {
            words
        } else {
            (words as f64 * sp.act_in_density) as u64 + words.div_ceil(32)
        }
    };
    let (w_dram, in_dram, out_dram) = match phase {
        // fw: iacts and oacts are activations (compressible).
        Phase::Forward => (w_stream, compress(x_words), compress(y_words)),
        // bw: both streamed tensors are gradients (dense).
        Phase::Backward => (w_stream, in_stream, out_stream),
        // wu: iacts compressed (already density-scaled at the GLB level);
        // ∂L/∂y was fetched by the fused backward pass of the same layer
        // and is reused from on-chip storage (no second DRAM trip); only
        // surviving gradients reach DRAM (QE filter).
        Phase::WeightUpdate => (sparse_w_words, compress(x_words), 0),
    };
    let compulsory = w_dram + in_dram + out_dram;
    let onchip_words = (arch.glb_bytes as u64 / 4) + (arch.rf_words * arch.pes()) as u64;
    let capacity_bound = (2.0 * macs as f64 / (onchip_words as f64).sqrt()) as u64;
    let dram_words = compulsory.max(capacity_bound);

    Traffic {
        glb_words,
        dram_words,
        mask_words: mask_words * w_refetch,
        weight_stream_words: w_stream * w_refetch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use procrustes_prng::{UniformRng, Xorshift64};

    fn task() -> LayerTask {
        LayerTask::conv("t", 16, 64, 128, 16, 16, 3, 1, 1)
    }

    fn skewed_sparsity(task: &LayerTask, keep: f64, seed: u64) -> SparsityInfo {
        // Lognormal-ish per-kernel nnz with mean keep·r·s.
        let mut rng = Xorshift64::new(seed);
        let cap = (task.r * task.s) as u32;
        let kernel_nnz = (0..task.kernels())
            .map(|_| {
                let g = (rng.next_f32() + rng.next_f32() + rng.next_f32() - 1.5) * 2.0;
                let v = (keep as f32 * cap as f32 * (1.0 + 0.8 * g)).round();
                (v.max(0.0) as u32).min(cap)
            })
            .collect();
        SparsityInfo {
            kernel_nnz,
            act_in_density: 0.5,
            grad_density: 1.0,
            compressed: true,
        }
    }

    #[test]
    fn dense_macs_match_formula() {
        let t = task();
        let arch = ArchConfig::procrustes_16x16();
        let sp = SparsityInfo::dense(&t);
        for phase in Phase::ALL {
            let c = evaluate_layer(&arch, &t, phase, Mapping::KN, &sp, BalanceMode::None);
            assert_eq!(c.macs, t.dense_macs(phase));
        }
    }

    #[test]
    fn sparsity_reduces_macs_cycles_energy() {
        let t = task();
        let arch = ArchConfig::procrustes_16x16();
        let dense = SparsityInfo::dense(&t);
        let sparse = SparsityInfo::uniform(&t, 0.2, 0.5);
        for phase in Phase::ALL {
            let cd = evaluate_layer(&arch, &t, phase, Mapping::KN, &dense, BalanceMode::None);
            let cs = evaluate_layer(
                &arch,
                &t,
                phase,
                Mapping::KN,
                &sparse,
                BalanceMode::HalfTile,
            );
            assert!(cs.macs < cd.macs, "{phase:?}");
            assert!(
                cs.cycles < cd.cycles,
                "{phase:?}: {} vs {}",
                cs.cycles,
                cd.cycles
            );
            assert!(cs.energy.total() < cd.energy.total(), "{phase:?}");
        }
    }

    #[test]
    fn dense_workload_has_no_imbalance() {
        let t = task();
        let arch = ArchConfig::procrustes_16x16();
        let sp = SparsityInfo::dense(&t);
        let c = evaluate_layer(
            &arch,
            &t,
            Phase::Forward,
            Mapping::KN,
            &sp,
            BalanceMode::None,
        );
        assert!(c.wave_overheads.iter().all(|&v| v == 0.0));
        assert!(c.utilization > 0.9, "util {}", c.utilization);
    }

    #[test]
    fn skewed_sparsity_causes_imbalance_and_balancing_fixes_it() {
        let t = task();
        let arch = ArchConfig::procrustes_16x16();
        let sp = skewed_sparsity(&t, 0.2, 3);
        let none = evaluate_layer(
            &arch,
            &t,
            Phase::Forward,
            Mapping::KN,
            &sp,
            BalanceMode::None,
        );
        let bal = evaluate_layer(
            &arch,
            &t,
            Phase::Forward,
            Mapping::KN,
            &sp,
            BalanceMode::HalfTile,
        );
        let worst_none = none.wave_overheads.iter().cloned().fold(0.0f32, f32::max);
        let worst_bal = bal.wave_overheads.iter().cloned().fold(0.0f32, f32::max);
        assert!(worst_none > 0.15, "unbalanced worst {worst_none}");
        assert!(worst_bal < worst_none, "{worst_bal} !< {worst_none}");
        assert!(bal.compute_cycles < none.compute_cycles);
    }

    #[test]
    fn ideal_mode_is_a_lower_bound() {
        let t = task();
        let ideal = ArchConfig::ideal_16x16();
        let real = ArchConfig::procrustes_16x16();
        let sp = skewed_sparsity(&t, 0.2, 5);
        for phase in Phase::ALL {
            for mapping in [Mapping::KN, Mapping::CN] {
                let ci = evaluate_layer(&ideal, &t, phase, mapping, &sp, BalanceMode::None);
                let cr = evaluate_layer(&real, &t, phase, mapping, &sp, BalanceMode::HalfTile);
                assert!(
                    ci.cycles <= cr.cycles,
                    "{phase:?}/{mapping:?}: ideal {} > real {}",
                    ci.cycles,
                    cr.cycles
                );
                assert!(ci.energy.total() <= cr.energy.total() * 1.0001);
            }
        }
    }

    #[test]
    fn pq_mapping_suffers_on_small_activations() {
        // A late layer with a 4x4 output map: PQ can use only 16 of 256
        // PEs; KN fills the array with K=512.
        let t = LayerTask::conv("late", 16, 256, 512, 4, 4, 3, 1, 1);
        let arch = ArchConfig::procrustes_16x16();
        let sp = SparsityInfo::dense(&t);
        let pq = evaluate_layer(
            &arch,
            &t,
            Phase::Forward,
            Mapping::PQ,
            &sp,
            BalanceMode::None,
        );
        let kn = evaluate_layer(
            &arch,
            &t,
            Phase::Forward,
            Mapping::KN,
            &sp,
            BalanceMode::None,
        );
        assert!(
            pq.compute_cycles > 5 * kn.compute_cycles,
            "pq {} vs kn {}",
            pq.compute_cycles,
            kn.compute_cycles
        );
        assert!(pq.utilization < 0.1);
    }

    #[test]
    fn ck_mapping_suffers_on_few_input_channels() {
        // First conv layer: C=3 uses 3 of 16 rows under C,K.
        let t = LayerTask::conv("first", 16, 3, 64, 32, 32, 3, 1, 1);
        let arch = ArchConfig::procrustes_16x16();
        let sp = SparsityInfo::dense(&t);
        let ck = evaluate_layer(
            &arch,
            &t,
            Phase::Forward,
            Mapping::CK,
            &sp,
            BalanceMode::None,
        );
        let kn = evaluate_layer(
            &arch,
            &t,
            Phase::Forward,
            Mapping::KN,
            &sp,
            BalanceMode::None,
        );
        assert!(ck.utilization < 0.25, "CK util {}", ck.utilization);
        assert!(ck.compute_cycles > 2 * kn.compute_cycles);
    }

    #[test]
    fn energy_is_mac_dominated_for_dense_fp32() {
        let t = task();
        let arch = ArchConfig::procrustes_16x16();
        let sp = SparsityInfo::dense(&t);
        let c = evaluate_layer(
            &arch,
            &t,
            Phase::Forward,
            Mapping::KN,
            &sp,
            BalanceMode::None,
        );
        assert!(c.energy.mac_j > c.energy.rf_j);
        assert!(c.energy.mac_j > c.energy.glb_j);
        assert!(c.energy.mac_j > c.energy.dram_j);
    }

    #[test]
    fn csb_overhead_is_charged_only_in_real_mode() {
        let t = task();
        let sp = SparsityInfo::uniform(&t, 0.2, 0.5);
        let real = evaluate_layer(
            &ArchConfig::procrustes_16x16(),
            &t,
            Phase::Forward,
            Mapping::KN,
            &sp,
            BalanceMode::HalfTile,
        );
        let ideal = evaluate_layer(
            &ArchConfig::ideal_16x16(),
            &t,
            Phase::Forward,
            Mapping::KN,
            &sp,
            BalanceMode::HalfTile,
        );
        assert!(real.glb_words > ideal.glb_words);
        assert!(real.energy.overhead_j > 0.0);
        assert_eq!(ideal.energy.overhead_j, 0.0);
    }

    #[test]
    fn wu_dram_traffic_is_filtered_by_qe() {
        let t = task();
        let arch = ArchConfig::procrustes_16x16();
        let dense = SparsityInfo::dense(&t);
        let sparse = SparsityInfo::uniform(&t, 0.1, 0.5);
        let cd = evaluate_layer(
            &arch,
            &t,
            Phase::WeightUpdate,
            Mapping::KN,
            &dense,
            BalanceMode::None,
        );
        let cs = evaluate_layer(
            &arch,
            &t,
            Phase::WeightUpdate,
            Mapping::KN,
            &sparse,
            BalanceMode::None,
        );
        assert!(cs.dram_words < cd.dram_words);
    }

    /// A Fig-5-style working set: a few dense filter rows among many
    /// decayed ones, interleaved so heavy and starved waves alternate
    /// (shared with the core integration tests).
    fn fig5_skewed_task() -> (LayerTask, SparsityInfo) {
        crate::timing::fig5_skewed_workload()
    }

    #[test]
    fn tile_timed_equals_analytic_on_dense_uniform_workloads() {
        // Uniform work makes every wave identical, so replaying the
        // schedule degenerates to the closed-form bound: the fidelities
        // must agree bit-for-bit across every phase and mapping.
        let t = task();
        let arch = ArchConfig::procrustes_16x16();
        let sp = SparsityInfo::dense(&t);
        for phase in Phase::ALL {
            for mapping in Mapping::ALL {
                let a = evaluate_layer(&arch, &t, phase, mapping, &sp, BalanceMode::None);
                let tt = evaluate_layer_with(
                    &arch,
                    &t,
                    phase,
                    mapping,
                    &sp,
                    BalanceMode::None,
                    Fidelity::TileTimed,
                );
                assert_eq!(
                    a.cycles, tt.cycles,
                    "{phase:?}/{mapping:?}: analytic {} vs tile-timed {}",
                    a.cycles, tt.cycles
                );
                // Everything but the latency model's output is shared.
                assert_eq!(a.macs, tt.macs);
                assert_eq!(a.compute_cycles, tt.compute_cycles);
                assert_eq!(a.glb_words, tt.glb_words);
                assert_eq!(a.energy, tt.energy);
                assert_eq!(tt.fidelity, Fidelity::TileTimed);
            }
        }
    }

    #[test]
    fn tile_timed_diverges_on_fig5_skewed_sparsity() {
        // Decayed waves finish before the GLB port can stage the next
        // working set: the replay sees pipeline bubbles the closed-form
        // max(compute, bandwidth) provably cannot.
        let (t, sp) = fig5_skewed_task();
        let arch = ArchConfig::procrustes_16x16();
        let a = evaluate_layer(
            &arch,
            &t,
            Phase::Forward,
            Mapping::KN,
            &sp,
            BalanceMode::None,
        );
        let tt = evaluate_layer_with(
            &arch,
            &t,
            Phase::Forward,
            Mapping::KN,
            &sp,
            BalanceMode::None,
            Fidelity::TileTimed,
        );
        assert_eq!(a.compute_cycles, tt.compute_cycles);
        assert!(
            tt.cycles > a.cycles,
            "tile-timed {} must exceed analytic {} on the skewed set",
            tt.cycles,
            a.cycles
        );
        // Same workload, dense weights: no divergence (control).
        let dense = SparsityInfo::dense(&t);
        let ad = evaluate_layer(
            &arch,
            &t,
            Phase::Forward,
            Mapping::KN,
            &dense,
            BalanceMode::None,
        );
        let td = evaluate_layer_with(
            &arch,
            &t,
            Phase::Forward,
            Mapping::KN,
            &dense,
            BalanceMode::None,
            Fidelity::TileTimed,
        );
        assert_eq!(ad.cycles, td.cycles);
    }

    #[test]
    fn tile_timed_never_beats_analytic() {
        // The analytic model is a true lower bound: replaying the
        // schedule can only add stalls, for every mode/phase/mapping.
        let t = task();
        let arch = ArchConfig::procrustes_16x16();
        let (ts, skew) = fig5_skewed_task();
        let uniform = SparsityInfo::uniform(&t, 0.2, 0.5);
        let cases: [(&LayerTask, &SparsityInfo); 3] =
            [(&t, &SparsityInfo::dense(&t)), (&t, &uniform), (&ts, &skew)];
        for (task, sp) in cases {
            for phase in Phase::ALL {
                for mapping in Mapping::ALL {
                    for mode in [BalanceMode::None, BalanceMode::HalfTile, BalanceMode::Ideal] {
                        let a = evaluate_layer(&arch, task, phase, mapping, sp, mode);
                        let tt = evaluate_layer_with(
                            &arch,
                            task,
                            phase,
                            mapping,
                            sp,
                            mode,
                            Fidelity::TileTimed,
                        );
                        assert!(
                            tt.cycles >= a.cycles,
                            "{phase:?}/{mapping:?}/{mode:?}: timed {} < analytic {}",
                            tt.cycles,
                            a.cycles
                        );
                        assert_eq!(a.compute_cycles, tt.compute_cycles);
                        assert!(tt.utilization <= a.utilization + 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn half_tile_balancing_still_helps_under_tile_timing() {
        let (t, sp) = fig5_skewed_task();
        let arch = ArchConfig::procrustes_16x16();
        let none = evaluate_layer_with(
            &arch,
            &t,
            Phase::Forward,
            Mapping::KN,
            &sp,
            BalanceMode::None,
            Fidelity::TileTimed,
        );
        let bal = evaluate_layer_with(
            &arch,
            &t,
            Phase::Forward,
            Mapping::KN,
            &sp,
            BalanceMode::HalfTile,
            Fidelity::TileTimed,
        );
        assert!(
            bal.cycles <= none.cycles,
            "balanced {} vs unbalanced {}",
            bal.cycles,
            none.cycles
        );
    }

    #[test]
    fn bandwidth_bound_utilization_uses_elapsed_cycles() {
        // Starve DRAM so the layer is memory-bound: utilization must be
        // measured against the (longer) bounding cycle count, keeping
        // macs <= utilization * cycles * PEs an identity.
        let t = task();
        let mut arch = ArchConfig::procrustes_16x16();
        arch.dram_bw_words = 1;
        let sp = SparsityInfo::dense(&t);
        let c = evaluate_layer(
            &arch,
            &t,
            Phase::Forward,
            Mapping::KN,
            &sp,
            BalanceMode::None,
        );
        assert!(
            c.dram_cycles > c.compute_cycles,
            "test arch must be memory-bound ({} vs {})",
            c.dram_cycles,
            c.compute_cycles
        );
        assert_eq!(c.cycles, c.dram_cycles);
        let expected = c.macs as f64 / (c.cycles as f64 * arch.pes() as f64);
        assert!((c.utilization - expected).abs() < 1e-12);
        // The old compute-cycle denominator would claim higher effective
        // utilization than the array achieves over its real elapsed time.
        let old = c.macs as f64 / (c.compute_cycles as f64 * arch.pes() as f64);
        assert!(c.utilization < old, "{} vs {}", c.utilization, old);
    }

    #[test]
    fn scaling_to_1024_pes_speeds_up_kn() {
        let t = LayerTask::conv("big", 32, 128, 256, 28, 28, 3, 1, 1);
        let sp = SparsityInfo::uniform(&t, 0.2, 0.5);
        let small = evaluate_layer(
            &ArchConfig::procrustes_16x16(),
            &t,
            Phase::Forward,
            Mapping::KN,
            &sp,
            BalanceMode::HalfTile,
        );
        let big = evaluate_layer(
            &ArchConfig::procrustes_32x32(),
            &t,
            Phase::Forward,
            Mapping::KN,
            &sp,
            BalanceMode::HalfTile,
        );
        let speedup = small.cycles as f64 / big.cycles as f64;
        assert!(speedup > 2.5, "speedup {speedup}");
        // Energy is nearly unchanged (same MAC count).
        let ratio = big.energy.total() / small.energy.total();
        assert!((0.8..1.25).contains(&ratio), "energy ratio {ratio}");
    }
}
