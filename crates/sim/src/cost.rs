//! Cost types produced by the model.

use std::ops::{Add, AddAssign};

use crate::{Fidelity, Mapping, Phase};

/// Energy in joules, broken down by component — the stacked bars of the
/// paper's Figs 1 and 17 (DRAM / GLB / RF / MAC) plus the Procrustes
/// overhead units (QE, WR, balancer, mask decode).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Multiply-accumulate energy.
    pub mac_j: f64,
    /// Register-file energy.
    pub rf_j: f64,
    /// Global-buffer energy.
    pub glb_j: f64,
    /// DRAM energy.
    pub dram_j: f64,
    /// Procrustes-specific units: quantile estimator, weight recompute,
    /// load balancer, mask decode.
    pub overhead_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.mac_j + self.rf_j + self.glb_j + self.dram_j + self.overhead_j
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;

    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            mac_j: self.mac_j + rhs.mac_j,
            rf_j: self.rf_j + rhs.rf_j,
            glb_j: self.glb_j + rhs.glb_j,
            dram_j: self.dram_j + rhs.dram_j,
            overhead_j: self.overhead_j + rhs.overhead_j,
        }
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self + rhs;
    }
}

/// The evaluated cost of one layer × one phase under one mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCost {
    /// Layer name (from the task).
    pub name: String,
    /// Training phase evaluated.
    pub phase: Phase,
    /// Mapping used.
    pub mapping: Mapping,
    /// Latency model that produced [`LayerCost::cycles`].
    pub fidelity: Fidelity,
    /// MACs actually executed (sparse-aware).
    pub macs: u64,
    /// End-to-end cycles. Under [`Fidelity::Analytic`] this is
    /// `max(compute, GLB-bandwidth, DRAM-bandwidth)`; under
    /// [`Fidelity::TileTimed`] it is the wave-replayed finish time of the
    /// critical PE (never below the analytic bound).
    pub cycles: u64,
    /// Compute-bound cycles including load imbalance and utilization.
    pub compute_cycles: u64,
    /// Cycles implied by GLB bandwidth.
    pub glb_cycles: u64,
    /// Cycles implied by DRAM bandwidth.
    pub dram_cycles: u64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// PE-array utilization against the *bounding* cycle count:
    /// `macs / (cycles × PEs)`, in `[0, 1]` — a bandwidth-bound layer
    /// reports the utilization of its real elapsed time, not of the
    /// shorter compute-only window.
    pub utilization: f64,
    /// Load-imbalance overhead of each full-PE-array working set
    /// (`max/mean − 1`; the data behind Figs 5 and 13).
    pub wave_overheads: Vec<f32>,
    /// Words moved through the GLB.
    pub glb_words: u64,
    /// Words moved through DRAM.
    pub dram_words: u64,
}

/// Aggregated cost over many layers/phases.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostSummary {
    /// Total energy.
    pub energy: EnergyBreakdown,
    /// Total cycles (layers execute back-to-back).
    pub cycles: u64,
    /// Total MACs.
    pub macs: u64,
    /// All collected working-set overheads.
    pub wave_overheads: Vec<f32>,
}

impl CostSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one layer cost into the summary.
    pub fn accumulate(&mut self, cost: &LayerCost) {
        self.energy += cost.energy;
        self.cycles += cost.cycles;
        self.macs += cost.macs;
        self.wave_overheads.extend_from_slice(&cost.wave_overheads);
    }

    /// Total energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.energy.total()
    }
}

impl<'a> FromIterator<&'a LayerCost> for CostSummary {
    fn from_iter<T: IntoIterator<Item = &'a LayerCost>>(iter: T) -> Self {
        let mut s = Self::new();
        for c in iter {
            s.accumulate(c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(macs: u64, cycles: u64, mac_j: f64) -> LayerCost {
        LayerCost {
            name: "t".into(),
            phase: Phase::Forward,
            mapping: Mapping::KN,
            fidelity: Fidelity::Analytic,
            macs,
            cycles,
            compute_cycles: cycles,
            glb_cycles: 0,
            dram_cycles: 0,
            energy: EnergyBreakdown {
                mac_j,
                ..EnergyBreakdown::default()
            },
            utilization: 1.0,
            wave_overheads: vec![0.1],
            glb_words: 0,
            dram_words: 0,
        }
    }

    #[test]
    fn breakdown_total_sums_components() {
        let e = EnergyBreakdown {
            mac_j: 1.0,
            rf_j: 2.0,
            glb_j: 3.0,
            dram_j: 4.0,
            overhead_j: 0.5,
        };
        assert_eq!(e.total(), 10.5);
    }

    #[test]
    fn summary_accumulates() {
        let summary: CostSummary = [&cost(10, 5, 1.0), &cost(20, 7, 2.0)].into_iter().collect();
        assert_eq!(summary.macs, 30);
        assert_eq!(summary.cycles, 12);
        assert_eq!(summary.energy_j(), 3.0);
        assert_eq!(summary.wave_overheads.len(), 2);
    }
}
