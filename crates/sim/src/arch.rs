//! Accelerator hardware configuration (the paper's Table I).

use crate::fingerprint::Fnv1a;
use crate::EnergyTable;

/// The hardware of a 2-D PE-array training accelerator.
///
/// The baseline of the paper (Table I): 16×16 PEs, 32-bit floating point,
/// 1 KB register file per PE, 128 KB global buffer, three simple
/// interconnects, and a DRAM channel (Fig 14 shows 64 bits). The default
/// provisions HBM-class bandwidth (16 words per accelerator cycle) so
/// latency isolates the compute/dataflow behaviour the paper studies; at
/// DDR-class bandwidth the high-activation-traffic networks (MobileNet)
/// become memory-bound — EXPERIMENTS.md reports that sensitivity.
///
/// # Examples
///
/// ```
/// use procrustes_sim::ArchConfig;
/// let arch = ArchConfig::procrustes_16x16();
/// assert_eq!(arch.pes(), 256);
/// assert_eq!(arch.rf_words, 256); // 1 KB of FP32 words
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// PE array rows.
    pub rows: usize,
    /// PE array columns.
    pub cols: usize,
    /// Per-PE register-file capacity in 32-bit words (1 KB = 256).
    pub rf_words: usize,
    /// Global buffer capacity in bytes (128 KB baseline).
    pub glb_bytes: usize,
    /// Global-buffer bandwidth in 32-bit words per cycle (array-facing).
    pub glb_bw_words: usize,
    /// DRAM bandwidth in 32-bit words per cycle (64-bit channel = 2).
    pub dram_bw_words: usize,
    /// Per-access energy table.
    pub energy: EnergyTable,
    /// Idealized evaluation (Fig 1): perfect load balance, zero sparse-
    /// format overhead, free weight selection.
    pub ideal: bool,
}

impl ArchConfig {
    /// The paper's 256-PE configuration (Table I).
    pub fn procrustes_16x16() -> Self {
        Self {
            rows: 16,
            cols: 16,
            rf_words: 256,
            glb_bytes: 128 * 1024,
            glb_bw_words: 32,
            dram_bw_words: 16,
            energy: EnergyTable::nm45(),
            ideal: false,
        }
    }

    /// The 1024-PE scalability configuration (§VI-E): 32×32 PEs with the
    /// global buffer doubled (a factor of √4 = 2 over the 256-PE size)
    /// and bandwidths scaled with the array edge.
    pub fn procrustes_32x32() -> Self {
        Self {
            rows: 32,
            cols: 32,
            rf_words: 256,
            glb_bytes: 256 * 1024,
            glb_bw_words: 64,
            dram_bw_words: 32,
            energy: EnergyTable::nm45(),
            ideal: false,
        }
    }

    /// The idealized configuration behind the paper's Fig 1: all sparsity
    /// converts into savings with no overheads.
    pub fn ideal_16x16() -> Self {
        Self {
            ideal: true,
            ..Self::procrustes_16x16()
        }
    }

    /// Total PE count.
    pub fn pes(&self) -> usize {
        self.rows * self.cols
    }

    /// A stable 64-bit fingerprint of the full configuration (array
    /// geometry, capacities, bandwidths, energy table, ideality) used by
    /// the evaluation engine's memoization key.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        for v in [
            self.rows,
            self.cols,
            self.rf_words,
            self.glb_bytes,
            self.glb_bw_words,
            self.dram_bw_words,
        ] {
            h.write_usize(v);
        }
        let e = &self.energy;
        for v in [
            e.mac_pj, e.rf_pj, e.glb_pj, e.dram_pj, e.qe_pj, e.wr_pj, e.lb_pj, e.mask_pj,
        ] {
            h.write_f64(v);
        }
        h.write(&[u8::from(self.ideal)]);
        h.finish()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any extent or capacity is zero.
    pub fn validate(&self) {
        assert!(self.rows > 0 && self.cols > 0, "empty PE array");
        assert!(self.rf_words > 0, "empty register file");
        assert!(self.glb_bytes > 0, "empty global buffer");
        assert!(
            self.glb_bw_words > 0 && self.dram_bw_words > 0,
            "zero bandwidth"
        );
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        Self::procrustes_16x16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        for arch in [
            ArchConfig::procrustes_16x16(),
            ArchConfig::procrustes_32x32(),
            ArchConfig::ideal_16x16(),
        ] {
            arch.validate();
        }
    }

    #[test]
    fn scalability_preset_quadruples_pes() {
        assert_eq!(
            ArchConfig::procrustes_32x32().pes(),
            4 * ArchConfig::procrustes_16x16().pes()
        );
        assert_eq!(
            ArchConfig::procrustes_32x32().glb_bytes,
            2 * ArchConfig::procrustes_16x16().glb_bytes
        );
    }

    #[test]
    fn ideal_flag_set_only_on_ideal() {
        assert!(!ArchConfig::procrustes_16x16().ideal);
        assert!(ArchConfig::ideal_16x16().ideal);
    }
}
