//! Spatial mappings and their per-phase dataflows (Figs 3 and 11).
//!
//! A mapping names the two loop dimensions distributed across the PE
//! array during the *forward* pass; the backward and weight-update passes
//! reuse the same physical flows with different tensors (the tables in
//! Figs 3 and 11). The key Procrustes insight (§IV-C): mappings that
//! spatialize the minibatch dimension (`C,N` and `K,N`) confine weight
//! sparsity to one array dimension, so half-tile load balancing preserves
//! the simple three-interconnect topology.

use crate::{LayerTask, Phase};

/// How one tensor moves between the GLB and the PE array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorFlow {
    /// Broadcast along a row (one GLB read feeds `cols` PEs).
    MulticastH,
    /// Broadcast along a column (one GLB read feeds `rows` PEs).
    MulticastV,
    /// Point-to-point to a single PE.
    Unicast,
    /// Collected/reduced along a column into one GLB write per column.
    CollectV,
    /// Collected/reduced along a row.
    CollectH,
}

impl TensorFlow {
    /// The spatial reuse factor: how many PEs one GLB access serves.
    pub fn reuse(&self, rows: usize, cols: usize) -> usize {
        match self {
            TensorFlow::MulticastH | TensorFlow::CollectH => cols,
            TensorFlow::MulticastV | TensorFlow::CollectV => rows,
            TensorFlow::Unicast => 1,
        }
    }
}

/// The three operand flows of one phase under one mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataflowRole {
    /// Flow of the (possibly sparse) weight-like operand.
    pub weights: TensorFlow,
    /// Flow of the activation-like input operand.
    pub inputs: TensorFlow,
    /// Flow of the output/psum operand.
    pub outputs: TensorFlow,
}

/// The spatial partitioning schemes of the paper's evaluation (Fig 18/19).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mapping {
    /// Weight-stationary `C,K` (Fig 3): both spatial dims are sparse;
    /// load balancing requires a complex interconnect.
    CK,
    /// Minibatch-spatial `C,N` (Fig 11 family).
    CN,
    /// Minibatch-spatial `K,N` — the mapping Procrustes selects (§VI-D).
    KN,
    /// Activation-stationary `P,Q` (SCNN-style).
    PQ,
}

impl Mapping {
    /// All four schemes in the paper's figure order.
    pub const ALL: [Mapping; 4] = [Mapping::PQ, Mapping::CK, Mapping::CN, Mapping::KN];

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Mapping::CK => "CK",
            Mapping::CN => "CN",
            Mapping::KN => "KN",
            Mapping::PQ => "PQ",
        }
    }

    /// True if the mapping spatializes the minibatch dimension — the
    /// Procrustes dataflow family that load-balances cheaply.
    pub fn minibatch_spatial(&self) -> bool {
        matches!(self, Mapping::CN | Mapping::KN)
    }

    /// True if load-balancing this mapping requires the complex
    /// interconnect of §IV-C Fig 10 (both spatial dimensions sparse).
    pub fn balance_needs_complex_interconnect(&self) -> bool {
        matches!(self, Mapping::CK)
    }

    /// The spatial extents `(rows_dim, cols_dim)` of `task` under this
    /// mapping for `phase`.
    ///
    /// Row/column assignments follow Figs 3 and 11: for `K,N` the sparse
    /// tensor dimension (output channels in fw/wu, input channels in bw)
    /// spans the rows and the minibatch spans the columns; `C,K` keeps the
    /// channel grid in all phases; `P,Q` spatializes the output map of the
    /// phase.
    pub fn spatial_extents(&self, task: &LayerTask, phase: Phase) -> (usize, usize) {
        match (self, phase) {
            (Mapping::KN, Phase::Forward | Phase::WeightUpdate) => (task.k, task.batch),
            (Mapping::KN, Phase::Backward) => (task.c, task.batch),
            (Mapping::CN, Phase::Forward | Phase::WeightUpdate) => (task.c, task.batch),
            (Mapping::CN, Phase::Backward) => (task.k, task.batch),
            (Mapping::CK, _) => (task.c, task.k),
            (Mapping::PQ, Phase::Forward | Phase::WeightUpdate) => (task.p, task.q),
            (Mapping::PQ, Phase::Backward) => (task.h, task.w),
        }
    }

    /// The operand flows for `phase` (the tables of Figs 3 and 11).
    pub fn roles(&self, phase: Phase) -> DataflowRole {
        match self {
            // K,N / C,N (Fig 11): weights multicast along the minibatch
            // (horizontal), inputs multicast vertically, outputs unicast.
            Mapping::KN | Mapping::CN => match phase {
                Phase::Forward | Phase::Backward => DataflowRole {
                    weights: TensorFlow::MulticastH,
                    inputs: TensorFlow::MulticastV,
                    outputs: TensorFlow::Unicast,
                },
                // wu: ∂L/∂w collected horizontally (reduced over the
                // minibatch), x multicast vertically, ∂L/∂y unicast.
                Phase::WeightUpdate => DataflowRole {
                    weights: TensorFlow::CollectH,
                    inputs: TensorFlow::MulticastV,
                    outputs: TensorFlow::Unicast,
                },
            },
            // C,K (Fig 3): weights unicast, iacts multicast horizontally,
            // psums collected vertically.
            Mapping::CK => DataflowRole {
                weights: TensorFlow::Unicast,
                inputs: TensorFlow::MulticastH,
                outputs: TensorFlow::CollectV,
            },
            // P,Q: input-stationary; weights broadcast to all PEs (model
            // as row multicast + column multicast ≈ H), inputs unicast
            // (stationary per PE), outputs collected.
            Mapping::PQ => DataflowRole {
                weights: TensorFlow::MulticastH,
                inputs: TensorFlow::Unicast,
                outputs: TensorFlow::CollectV,
            },
        }
    }

    /// True if, in `phase`, per-PE work varies along the *row* dimension
    /// due to weight sparsity (the imbalance the half-tile balancer
    /// fixes). `C,K` varies along both; `P,Q` not at all.
    pub fn row_work_is_weight_sparse(&self, phase: Phase) -> bool {
        match self {
            Mapping::KN | Mapping::CN => matches!(phase, Phase::Forward | Phase::Backward),
            Mapping::CK => true,
            Mapping::PQ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> LayerTask {
        LayerTask::conv("t", 16, 64, 128, 28, 28, 3, 1, 1)
    }

    #[test]
    fn kn_spatializes_minibatch() {
        let t = task();
        assert_eq!(Mapping::KN.spatial_extents(&t, Phase::Forward), (128, 16));
        assert_eq!(Mapping::KN.spatial_extents(&t, Phase::Backward), (64, 16));
        assert!(Mapping::KN.minibatch_spatial());
        assert!(!Mapping::PQ.minibatch_spatial());
    }

    #[test]
    fn ck_keeps_channel_grid_in_all_phases() {
        let t = task();
        for phase in Phase::ALL {
            assert_eq!(Mapping::CK.spatial_extents(&t, phase), (64, 128));
        }
        assert!(Mapping::CK.balance_needs_complex_interconnect());
    }

    #[test]
    fn pq_uses_output_map() {
        let t = task();
        assert_eq!(Mapping::PQ.spatial_extents(&t, Phase::Forward), (28, 28));
        assert_eq!(Mapping::PQ.spatial_extents(&t, Phase::Backward), (28, 28));
    }

    #[test]
    fn fig11_roles_for_kn() {
        let fw = Mapping::KN.roles(Phase::Forward);
        assert_eq!(fw.weights, TensorFlow::MulticastH);
        assert_eq!(fw.inputs, TensorFlow::MulticastV);
        assert_eq!(fw.outputs, TensorFlow::Unicast);
        let wu = Mapping::KN.roles(Phase::WeightUpdate);
        assert_eq!(wu.weights, TensorFlow::CollectH);
    }

    #[test]
    fn fig3_roles_for_ck() {
        let fw = Mapping::CK.roles(Phase::Forward);
        assert_eq!(fw.weights, TensorFlow::Unicast);
        assert_eq!(fw.inputs, TensorFlow::MulticastH);
        assert_eq!(fw.outputs, TensorFlow::CollectV);
    }

    #[test]
    fn reuse_factors() {
        assert_eq!(TensorFlow::MulticastH.reuse(16, 8), 8);
        assert_eq!(TensorFlow::MulticastV.reuse(16, 8), 16);
        assert_eq!(TensorFlow::Unicast.reuse(16, 8), 1);
    }

    #[test]
    fn pq_has_no_weight_imbalance() {
        assert!(!Mapping::PQ.row_work_is_weight_sparse(Phase::Forward));
        assert!(Mapping::KN.row_work_is_weight_sparse(Phase::Forward));
        assert!(!Mapping::KN.row_work_is_weight_sparse(Phase::WeightUpdate));
        assert!(Mapping::CK.row_work_is_weight_sparse(Phase::WeightUpdate));
    }
}
