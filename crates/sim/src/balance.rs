//! Half-tile load balancing (§IV-C, Figs 9 and 12).
//!
//! Each work tile is cut into two halves; halves are sorted by density and
//! matched from opposite ends (sparsest with densest), so every rebuilt
//! tile is as close as possible to the average. The pairing stays within
//! one full-PE-array working set and one array dimension, which is what
//! lets the `K,N`/`C,N` dataflows keep their simple interconnect.

/// Pairs half-tile work amounts from opposite ends of the density order,
/// returning the work of each rebuilt tile.
///
/// Input: the two halves of every tile in one working set. Output: one
/// combined work value per rebuilt tile (same count as input tiles).
///
/// # Examples
///
/// ```
/// use procrustes_sim::half_tile_pairs;
/// // Two very unbalanced tiles: (10, 8) and (1, 1).
/// let rebuilt = half_tile_pairs(&[(10, 8), (1, 1)]);
/// // Pairing 10+1 and 8+1 evens the load: max drops from 18 to 11.
/// assert_eq!(rebuilt.iter().max(), Some(&11));
/// assert_eq!(rebuilt.iter().sum::<u64>(), 20); // work conserved
/// ```
pub fn half_tile_pairs(halves: &[(u64, u64)]) -> Vec<u64> {
    let mut flat: Vec<u64> = Vec::with_capacity(halves.len() * 2);
    for &(a, b) in halves {
        flat.push(a);
        flat.push(b);
    }
    flat.sort_unstable();
    let n = flat.len();
    (0..n / 2).map(|i| flat[i] + flat[n - 1 - i]).collect()
}

/// The load-imbalance overhead of one working set: how much longer the
/// slowest PE runs than the average PE, as a fraction (Fig 5's x-axis).
///
/// Returns 0 for an empty or all-zero set.
///
/// # Examples
///
/// ```
/// use procrustes_sim::imbalance_overhead;
/// assert_eq!(imbalance_overhead(&[4, 4, 4, 4]), 0.0);
/// assert_eq!(imbalance_overhead(&[8, 0, 0, 0]), 3.0); // max 8 vs mean 2
/// ```
pub fn imbalance_overhead(work: &[u64]) -> f64 {
    if work.is_empty() {
        return 0.0;
    }
    let max = *work.iter().max().expect("non-empty") as f64;
    let mean = work.iter().sum::<u64>() as f64 / work.len() as f64;
    if mean == 0.0 {
        0.0
    } else {
        max / mean - 1.0
    }
}

/// Applies half-tile balancing to a working set of per-tile `(half, half)`
/// work values and reports `(max_work, mean_work)` of the rebuilt tiles.
pub fn balanced_assignment(halves: &[(u64, u64)]) -> (u64, f64) {
    let rebuilt = half_tile_pairs(halves);
    let max = rebuilt.iter().copied().max().unwrap_or(0);
    let mean = if rebuilt.is_empty() {
        0.0
    } else {
        rebuilt.iter().sum::<u64>() as f64 / rebuilt.len() as f64
    };
    (max, mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use procrustes_prng::{UniformRng, Xorshift64};

    #[test]
    fn pairing_conserves_work() {
        let halves = [(5, 3), (9, 1), (0, 7), (2, 2)];
        let rebuilt = half_tile_pairs(&halves);
        assert_eq!(rebuilt.len(), 4);
        assert_eq!(rebuilt.iter().sum::<u64>(), 29);
    }

    #[test]
    fn pairing_never_worsens_max() {
        let mut rng = Xorshift64::new(1);
        for _ in 0..200 {
            let halves: Vec<(u64, u64)> = (0..16)
                .map(|_| (rng.next_below(100), rng.next_below(100)))
                .collect();
            let naive_max = halves.iter().map(|&(a, b)| a + b).max().unwrap();
            let rebuilt_max = *half_tile_pairs(&halves).iter().max().unwrap();
            assert!(
                rebuilt_max <= naive_max,
                "balancing increased max: {naive_max} -> {rebuilt_max}"
            );
        }
    }

    #[test]
    fn pairing_is_optimal_for_two_tiles() {
        // With halves {a ≥ b ≥ c ≥ d}, pairing (a+d, b+c) minimizes max.
        let rebuilt = half_tile_pairs(&[(10, 7), (4, 2)]);
        let mut sorted = rebuilt.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![11, 12]); // (10+2, 7+4)
    }

    #[test]
    fn skewed_sets_balance_dramatically() {
        // One dense tile among 15 sparse ones (the Fig 5 situation).
        let mut halves = vec![(2u64, 2u64); 15];
        halves.push((60, 60));
        let before: Vec<u64> = halves.iter().map(|&(a, b)| a + b).collect();
        let after = half_tile_pairs(&halves);
        let over_before = imbalance_overhead(&before);
        let over_after = imbalance_overhead(&after);
        assert!(over_before > 9.0, "before: {over_before}");
        assert!(over_after < over_before / 2.0, "after: {over_after}");
    }

    #[test]
    fn overhead_of_uniform_work_is_zero() {
        assert_eq!(imbalance_overhead(&[7, 7, 7]), 0.0);
        assert_eq!(imbalance_overhead(&[]), 0.0);
        assert_eq!(imbalance_overhead(&[0, 0]), 0.0);
    }

    #[test]
    fn balanced_assignment_reports_max_and_mean() {
        let (max, mean) = balanced_assignment(&[(4, 0), (2, 2)]);
        assert_eq!(max, 4);
        assert!((mean - 4.0).abs() < 1e-12);
    }
}
