//! On-chip interconnect model: the three simple flows of Fig 14 and the
//! §IV-C argument that half-tile balancing preserves them under the
//! minibatch-spatial dataflows but not under weight-stationary `C,K`.
//!
//! The PE array has exactly three interconnects: a horizontal 1-D flow, a
//! vertical 1-D flow, and a unicast network. A mapping is *feasible* on
//! this topology if each operand needs only one of those flows per wave.
//! Balancing redistributes half-tiles along one array dimension:
//!
//! * under `K,N`/`C,N` (Fig 12), the exchanged halves stay in their
//!   rows' working set and every input activation tile is still sent to
//!   only one column — identical link loads, same buffers;
//! * under `C,K` (Fig 10), halves move across both dimensions, so
//!   activations must reach both the original and the exchanged
//!   positions: every moved tile doubles its input multicast and the
//!   PE-side activation buffering.

use crate::{ArchConfig, LayerTask, Mapping, Phase, TensorFlow};

/// Per-wave link loads (words traversing each interconnect) and topology
/// requirements for one layer-phase under a mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectLoad {
    /// Words carried per wave by the horizontal 1-D flow.
    pub horizontal_words: u64,
    /// Words carried per wave by the vertical 1-D flow.
    pub vertical_words: u64,
    /// Words carried per wave by the unicast network.
    pub unicast_words: u64,
    /// True if load balancing under this mapping forces traffic across
    /// *both* array dimensions (the complex interconnect of Fig 10).
    pub needs_complex_network: bool,
    /// Per-PE input-activation buffer requirement, relative to the
    /// unbalanced dataflow (1 = unchanged; 2 = doubled, Fig 10's cost).
    pub act_buffer_factor: u32,
}

impl InterconnectLoad {
    /// Total words per wave across all three interconnects.
    pub fn total_words(&self) -> u64 {
        self.horizontal_words + self.vertical_words + self.unicast_words
    }
}

/// Computes the per-wave link loads of `(task, phase, mapping)` on
/// `arch`, with or without half-tile balancing.
///
/// Loads are counted at tile granularity for one full-PE-array wave:
/// a multicast operand crosses its bus once per broadcast group; unicast
/// operands cross once per PE.
///
/// # Examples
///
/// ```
/// use procrustes_sim::{interconnect, ArchConfig, LayerTask, Mapping, Phase};
/// let task = LayerTask::conv("l", 16, 64, 64, 14, 14, 3, 1, 1);
/// let arch = ArchConfig::procrustes_16x16();
/// let plain = interconnect::wave_load(&arch, &task, Phase::Forward, Mapping::KN, false);
/// let balanced = interconnect::wave_load(&arch, &task, Phase::Forward, Mapping::KN, true);
/// // §IV-C: balancing K,N leaves the link loads untouched.
/// assert_eq!(plain.total_words(), balanced.total_words());
/// assert!(!balanced.needs_complex_network);
/// ```
pub fn wave_load(
    arch: &ArchConfig,
    task: &LayerTask,
    phase: Phase,
    mapping: Mapping,
    balanced: bool,
) -> InterconnectLoad {
    let (d_row, d_col) = mapping.spatial_extents(task, phase);
    let used_rows = d_row.min(arch.rows) as u64;
    let used_cols = d_col.min(arch.cols) as u64;
    let roles = mapping.roles(phase);

    // Average per-PE tile sizes in words for one wave (dense upper
    // bounds; sparsity scales all flows equally and cancels out of the
    // balanced/unbalanced comparison).
    let weights_per_pe = (task.weights() as u64 / (d_row.max(1) as u64)).max(1);
    let acts_per_pe = (task.input_elems() / (d_row as u64 * d_col as u64).max(1)).max(1);
    let outs_per_pe = (task.output_elems() / (d_row as u64 * d_col as u64).max(1)).max(1);

    let flow_words = |flow: TensorFlow, tile: u64| -> (u64, u64, u64) {
        match flow {
            // One bus transaction per broadcast group.
            TensorFlow::MulticastH | TensorFlow::CollectH => (tile * used_rows, 0, 0),
            TensorFlow::MulticastV | TensorFlow::CollectV => (0, tile * used_cols, 0),
            TensorFlow::Unicast => (0, 0, tile * used_rows * used_cols),
        }
    };

    let (h1, v1, u1) = flow_words(roles.weights, weights_per_pe);
    let (h2, v2, u2) = flow_words(roles.inputs, acts_per_pe);
    let (h3, v3, u3) = flow_words(roles.outputs, outs_per_pe);
    let mut horizontal = h1 + h2 + h3;
    let mut vertical = v1 + v2 + v3;
    let unicast = u1 + u2 + u3;

    let mut needs_complex = false;
    let mut act_buffer_factor = 1;
    if balanced && mapping.balance_needs_complex_interconnect() {
        // Fig 10: exchanged half-tiles sit in PEs on other rows AND other
        // columns, so each input activation tile must be delivered along
        // both dimensions and buffered twice at the recipients.
        needs_complex = true;
        act_buffer_factor = 2;
        let (bh, bv, _) = flow_words(roles.inputs, acts_per_pe);
        // The activation flow is duplicated onto the other dimension:
        horizontal += bv + bh; // re-send on rows
        vertical += bh + bv; // and on columns
    }
    // Fig 12: K,N / C,N balancing swaps halves within a row's working
    // set; weights ride the same horizontal flow and inputs still reach
    // exactly one column — no load change at all.

    InterconnectLoad {
        horizontal_words: horizontal,
        vertical_words: vertical,
        unicast_words: unicast,
        needs_complex_network: needs_complex,
        act_buffer_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> LayerTask {
        LayerTask::conv("t", 16, 64, 128, 14, 14, 3, 1, 1)
    }

    /// Fig 12's punchline: balanced K,N has identical link loads and
    /// buffering to unbalanced K,N.
    #[test]
    fn kn_balancing_is_free_on_the_interconnect() {
        let arch = ArchConfig::procrustes_16x16();
        for phase in Phase::ALL {
            for mapping in [Mapping::KN, Mapping::CN] {
                let plain = wave_load(&arch, &task(), phase, mapping, false);
                let balanced = wave_load(&arch, &task(), phase, mapping, true);
                assert_eq!(plain, balanced, "{mapping:?}/{phase:?}");
                assert!(!balanced.needs_complex_network);
                assert_eq!(balanced.act_buffer_factor, 1);
            }
        }
    }

    /// Fig 10's cost: balanced C,K needs cross-dimension delivery and
    /// double activation buffering.
    #[test]
    fn ck_balancing_needs_complex_network() {
        let arch = ArchConfig::procrustes_16x16();
        let plain = wave_load(&arch, &task(), Phase::Forward, Mapping::CK, false);
        let balanced = wave_load(&arch, &task(), Phase::Forward, Mapping::CK, true);
        assert!(balanced.needs_complex_network);
        assert_eq!(balanced.act_buffer_factor, 2);
        assert!(
            balanced.total_words() > plain.total_words(),
            "balanced CK should move more words ({} vs {})",
            balanced.total_words(),
            plain.total_words()
        );
    }

    /// The three flows of Fig 3 / Fig 11 land on the right buses.
    #[test]
    fn flows_match_the_paper_tables() {
        let arch = ArchConfig::procrustes_16x16();
        // K,N forward: weights H, activations V, outputs unicast.
        let kn = wave_load(&arch, &task(), Phase::Forward, Mapping::KN, false);
        assert!(kn.horizontal_words > 0);
        assert!(kn.vertical_words > 0);
        assert!(kn.unicast_words > 0);
        // C,K forward: weights unicast (weight-stationary fills).
        let ck = wave_load(&arch, &task(), Phase::Forward, Mapping::CK, false);
        assert!(ck.unicast_words > 0);
    }

    /// Unicast traffic scales with the used PE count; multicast with the
    /// broadcast group count.
    #[test]
    fn load_scales_with_array_usage() {
        let arch16 = ArchConfig::procrustes_16x16();
        let arch32 = ArchConfig::procrustes_32x32();
        let t = LayerTask::conv("t", 64, 64, 128, 14, 14, 3, 1, 1);
        let small = wave_load(&arch16, &t, Phase::Forward, Mapping::KN, false);
        let big = wave_load(&arch32, &t, Phase::Forward, Mapping::KN, false);
        // 32x32 uses more columns (batch 64) => more unicast words/wave.
        assert!(big.unicast_words > small.unicast_words);
    }
}
