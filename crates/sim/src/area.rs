//! Silicon area and power model (the paper's Table III).
//!
//! The paper synthesizes the Procrustes-specific units with Synopsys DC in
//! FreePDK 45 nm and reports per-component area/power. We encode those
//! values as the component model and derive the same aggregate overheads
//! the paper reports (≈14 % area, ≈11 % power over the dense baseline).

/// One hardware component's silicon cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// Component name as in Table III.
    pub name: &'static str,
    /// Dynamic power in milliwatts (dense workload, per Table III note).
    pub power_mw: f64,
    /// Area in µm².
    pub area_um2: f64,
    /// True if this unit exists only in Procrustes (italicized rows of
    /// Table III).
    pub procrustes_only: bool,
}

/// Per-PE components (Table III, upper half), 45 nm.
pub const PE_COMPONENTS: [Component; 4] = [
    Component {
        name: "FP32 MAC",
        power_mw: 7.29,
        area_um2: 18_875.72,
        procrustes_only: false,
    },
    Component {
        name: "Register File",
        power_mw: 15.61,
        area_um2: 198_004.71,
        procrustes_only: false,
    },
    Component {
        name: "PRNG",
        power_mw: 0.35,
        area_um2: 1_920.84,
        procrustes_only: true,
    },
    Component {
        name: "Mask Memory",
        power_mw: 2.65,
        area_um2: 44_932.66,
        procrustes_only: true,
    },
];

/// System-level components (Table III, lower half), 45 nm.
pub const SYSTEM_COMPONENTS: [Component; 3] = [
    Component {
        name: "Global Buffer",
        power_mw: 73.74,
        area_um2: 17_109_596.5,
        procrustes_only: false,
    },
    Component {
        name: "Quantile Engine",
        power_mw: 1.38,
        area_um2: 9_861.4,
        procrustes_only: true,
    },
    Component {
        name: "Load Balancer",
        power_mw: 2.05,
        area_um2: 8_725.23,
        procrustes_only: true,
    },
];

/// Aggregate area/power of a full accelerator with `pes` processing
/// elements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipBudget {
    /// Total area in µm².
    pub area_um2: f64,
    /// Total power in mW (dense workload).
    pub power_mw: f64,
}

fn aggregate(pes: usize, include_procrustes: bool) -> ChipBudget {
    let mut area = 0.0;
    let mut power = 0.0;
    for c in PE_COMPONENTS {
        if include_procrustes || !c.procrustes_only {
            area += c.area_um2 * pes as f64;
            power += c.power_mw * pes as f64;
        }
    }
    for c in SYSTEM_COMPONENTS {
        if include_procrustes || !c.procrustes_only {
            area += c.area_um2;
            power += c.power_mw;
        }
    }
    ChipBudget {
        area_um2: area,
        power_mw: power,
    }
}

/// The dense-baseline accelerator budget (no Procrustes units).
pub fn baseline_budget(pes: usize) -> ChipBudget {
    aggregate(pes, false)
}

/// The Procrustes accelerator budget (all units).
pub fn procrustes_budget(pes: usize) -> ChipBudget {
    aggregate(pes, true)
}

/// The chip budget implied by an architecture configuration: the
/// Procrustes budget for its PE count, or the dense baseline when the
/// configuration is the idealized one (Fig 1's ideal machine gets
/// perfect balance and free weight selection — its Procrustes-only
/// units are modeled as free, so they must not be billed for area or
/// power either).
pub fn arch_budget(arch: &crate::ArchConfig) -> ChipBudget {
    if arch.ideal {
        baseline_budget(arch.pes())
    } else {
        procrustes_budget(arch.pes())
    }
}

/// `(area overhead, power overhead)` of Procrustes over the dense
/// baseline, as fractions (the paper reports ≈0.14 and ≈0.11).
pub fn overheads(pes: usize) -> (f64, f64) {
    let base = baseline_budget(pes);
    let ours = procrustes_budget(pes);
    (
        ours.area_um2 / base.area_um2 - 1.0,
        ours.power_mw / base.power_mw - 1.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn procrustes_units_are_small_next_to_the_mac_and_rf() {
        // “its area and power pale in comparison to the FP32 MAC unit”
        let prng = PE_COMPONENTS[2];
        let mac = PE_COMPONENTS[0];
        assert!(prng.area_um2 < mac.area_um2 / 5.0);
        assert!(prng.power_mw < mac.power_mw / 10.0);
    }

    #[test]
    fn overheads_match_paper_band() {
        let (area, power) = overheads(256);
        // Paper: 14% area, 11% power. Component sums land within a few
        // points depending on accounting; assert the band.
        assert!((0.10..0.20).contains(&area), "area overhead {area}");
        assert!((0.08..0.16).contains(&power), "power overhead {power}");
    }

    #[test]
    fn quantile_engine_is_system_level_and_tiny() {
        let qe = SYSTEM_COMPONENTS[1];
        let glb = SYSTEM_COMPONENTS[0];
        assert!(qe.procrustes_only);
        assert!(qe.area_um2 < glb.area_um2 / 1000.0);
    }

    #[test]
    fn arch_budget_follows_the_ideal_flag() {
        let real = crate::ArchConfig::procrustes_16x16();
        let ideal = crate::ArchConfig::ideal_16x16();
        assert_eq!(arch_budget(&real), procrustes_budget(256));
        assert_eq!(arch_budget(&ideal), baseline_budget(256));
        assert!(arch_budget(&real).area_um2 > arch_budget(&ideal).area_um2);
    }

    #[test]
    fn budgets_scale_with_pe_count() {
        let b256 = procrustes_budget(256);
        let b1024 = procrustes_budget(1024);
        // PE area scales 4x; the fixed GLB dilutes the ratio slightly.
        assert!(b1024.area_um2 > 3.3 * b256.area_um2);
    }
}
