//! An analytical performance and energy model for 2-D PE-array DNN
//! training accelerators — the Timeloop/Accelergy-class substrate of the
//! Procrustes reproduction.
//!
//! The paper evaluates Procrustes with an extended Timeloop (latency,
//! mappings, load imbalance) plus Accelergy (per-access energies). This
//! crate implements the same class of model from scratch:
//!
//! * [`ArchConfig`] — the hardware of the paper's Table I: a `rows×cols`
//!   PE array with per-PE register files, a shared global buffer, a DRAM
//!   channel, and three simple interconnects (horizontal multicast,
//!   vertical collect, unicast);
//! * [`EnergyTable`] — per-access energy constants calibrated to 40/45 nm
//!   literature values (see `energy.rs` for the calibration note);
//! * [`LayerTask`] / [`SparsityInfo`] — one layer × one training phase of
//!   work, with per-kernel nonzero counts driving sparse MAC and traffic
//!   accounting;
//! * [`Mapping`] — the four spatial partitionings the paper compares
//!   (`C,K` / `C,N` / `K,N` / `P,Q`; Figs 3, 11, 18, 19) and their
//!   per-phase dataflow roles;
//! * [`BalanceMode`] — no balancing, Procrustes half-tile balancing
//!   (§IV-C), or the idealized perfect balance of Fig 1;
//! * [`evaluate_layer`] / [`evaluate_layer_with`] — the cost model:
//!   sparse-aware MAC counts, reuse-based RF/GLB/DRAM access counting
//!   with CSB format overheads, wave-by-wave latency with load
//!   imbalance, bandwidth bounds, and utilization;
//! * [`Fidelity`] — the latency model: `Analytic` (the closed-form
//!   `max(compute, GLB, DRAM)` bound) or `TileTimed` (the [`timing`]
//!   module's wave-by-wave replay of the actual tile schedule, with
//!   double-buffered GLB prefetch and per-wave burst serialization).
//!   The two agree on uniform compute-bound workloads; under skewed
//!   sparsity the replay exposes pipeline bubbles the closed form hides;
//! * [`area`] — the silicon area/power model behind the paper's
//!   Table III.
//!
//! # Examples
//!
//! ```
//! use procrustes_sim::{
//!     evaluate_layer, ArchConfig, BalanceMode, LayerTask, Mapping, Phase, SparsityInfo,
//! };
//!
//! // One VGG-ish conv layer, forward pass, batch 16.
//! let task = LayerTask::conv("conv3_1", 16, 128, 256, 8, 8, 3, 1, 1);
//! let arch = ArchConfig::procrustes_16x16();
//! let dense = SparsityInfo::dense(&task);
//! let cost = evaluate_layer(&arch, &task, Phase::Forward, Mapping::KN, &dense, BalanceMode::None);
//! assert_eq!(cost.macs, task.dense_macs(Phase::Forward));
//! assert!(cost.cycles > 0 && cost.energy.total() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod arch;
pub mod area;
mod balance;
mod cost;
mod energy;
mod fingerprint;
pub mod interconnect;
pub mod mapper;
mod mapping;
mod model;
pub mod timing;
mod workload;

pub use arch::ArchConfig;
pub use balance::{balanced_assignment, half_tile_pairs, imbalance_overhead};
pub use cost::{CostSummary, EnergyBreakdown, LayerCost};
pub use energy::EnergyTable;
pub use fingerprint::Fnv1a;
pub use mapping::{DataflowRole, Mapping, TensorFlow};
pub use model::{evaluate_layer, evaluate_layer_with, BalanceMode};
pub use timing::{simulate_waves, Fidelity, TimingReport, Wave};
pub use workload::{LayerTask, Phase, SparsityInfo};
