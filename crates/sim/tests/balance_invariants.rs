//! Seeded property tests for the half-tile balancer, runnable in the
//! offline build (no external `proptest`; see `tests/proptests.rs` for
//! the feature-gated suites). The same invariants then serve as the
//! equivalence oracle for the tile-timed wave scheduler: the schedule it
//! replays must be built from exactly the rebuilt tile loads the
//! balancer produces, so its per-wave critical-path sum must equal the
//! analytic compute bound for every balancing mode.

use procrustes_prng::{UniformRng, Xorshift64};
use procrustes_sim::{
    balanced_assignment, evaluate_layer, evaluate_layer_with, half_tile_pairs, ArchConfig,
    BalanceMode, Fidelity, LayerTask, Mapping, Phase, SparsityInfo,
};

fn random_halves(rng: &mut Xorshift64, tiles: usize, cap: u64) -> Vec<(u64, u64)> {
    (0..tiles)
        .map(|_| (rng.next_below(cap), rng.next_below(cap)))
        .collect()
}

/// Work conservation: the rebuilt tiles hold exactly the input work, for
/// every set size (odd and even) and any half split, including tiles
/// whose odd nonzero count splits unevenly.
#[test]
fn pairing_conserves_work_across_random_sets() {
    let mut rng = Xorshift64::new(0xBA1A);
    for round in 0..500 {
        let tiles = 1 + (round % 33);
        let halves = random_halves(&mut rng, tiles, 1000);
        let rebuilt = half_tile_pairs(&halves);
        assert_eq!(rebuilt.len(), halves.len());
        let before: u64 = halves.iter().map(|&(a, b)| a + b).sum();
        assert_eq!(rebuilt.iter().sum::<u64>(), before, "round {round}");
    }
}

/// The rebuilt maximum never exceeds the unbalanced maximum and never
/// undercuts the theoretical mean.
#[test]
fn pairing_never_worsens_max_nor_beats_the_mean() {
    let mut rng = Xorshift64::new(0x5EED);
    for round in 0..500 {
        let tiles = 1 + (round % 29);
        let halves = random_halves(&mut rng, tiles, 750);
        let naive_max = halves.iter().map(|&(a, b)| a + b).max().unwrap();
        let total: u64 = halves.iter().map(|&(a, b)| a + b).sum();
        let (max, mean) = balanced_assignment(&halves);
        assert!(max <= naive_max, "round {round}: {naive_max} -> {max}");
        assert!(max as f64 >= (total as f64 / tiles as f64).floor());
        assert!((mean - total as f64 / tiles as f64).abs() < 1e-9);
    }
}

/// Odd nonzero counts split as `(v/2, v - v/2)` — the two halves always
/// reassemble the tile, and pairing a set of such splits stays conserved.
#[test]
fn odd_nonzero_splits_reassemble() {
    let mut rng = Xorshift64::new(0x0DD);
    for _ in 0..200 {
        let halves: Vec<(u64, u64)> = (0..16)
            .map(|_| {
                let v = rng.next_below(999); // odd and even mixed
                (v / 2, v - v / 2)
            })
            .collect();
        for &(a, b) in &halves {
            assert!(b == a || b == a + 1, "canonical split halves: {a}/{b}");
        }
        let rebuilt = half_tile_pairs(&halves);
        let total: u64 = halves.iter().map(|&(a, b)| a + b).sum();
        assert_eq!(rebuilt.iter().sum::<u64>(), total);
    }
}

fn random_sparsity(rng: &mut Xorshift64, task: &LayerTask) -> SparsityInfo {
    let cap = (task.r * task.s) as u64;
    SparsityInfo {
        kernel_nnz: (0..task.kernels())
            .map(|_| rng.next_below(cap + 1) as u32)
            .collect(),
        act_in_density: 0.25 + 0.5 * rng.next_f64(),
        grad_density: 1.0,
        compressed: true,
    }
}

/// The oracle: the tile-timed scheduler replays the balancer's rebuilt
/// loads, so its compute-cycle sum equals the analytic bound exactly,
/// its cycles never fall below analytic, and everything latency-
/// independent (MACs, traffic, energy, imbalance histogram) is shared.
#[test]
fn tile_timed_schedule_matches_the_balancer_oracle() {
    let arch = ArchConfig::procrustes_16x16();
    let mut rng = Xorshift64::new(0x0C1E);
    for round in 0..12 {
        let task = LayerTask::conv(
            "oracle",
            8,
            8 * (1 + (round % 4)),
            8 * (1 + (round % 5)),
            8,
            8,
            3,
            1,
            1,
        );
        let sp = random_sparsity(&mut rng, &task);
        for mode in [BalanceMode::None, BalanceMode::HalfTile, BalanceMode::Ideal] {
            for phase in Phase::ALL {
                for mapping in Mapping::ALL {
                    let a = evaluate_layer(&arch, &task, phase, mapping, &sp, mode);
                    let t = evaluate_layer_with(
                        &arch,
                        &task,
                        phase,
                        mapping,
                        &sp,
                        mode,
                        Fidelity::TileTimed,
                    );
                    let ctx = format!("round {round} {mode:?}/{phase:?}/{mapping:?}");
                    assert_eq!(a.compute_cycles, t.compute_cycles, "{ctx}");
                    assert!(t.cycles >= a.cycles, "{ctx}: {} < {}", t.cycles, a.cycles);
                    assert_eq!(a.macs, t.macs, "{ctx}");
                    assert_eq!(a.glb_words, t.glb_words, "{ctx}");
                    assert_eq!(a.dram_words, t.dram_words, "{ctx}");
                    assert_eq!(a.energy, t.energy, "{ctx}");
                    assert_eq!(a.wave_overheads, t.wave_overheads, "{ctx}");
                    assert!((0.0..=1.0).contains(&t.utilization), "{ctx}");
                }
            }
        }
    }
}
