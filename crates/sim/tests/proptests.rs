//! Property-based tests for the analytical cost model.

// These property tests depend on the external `proptest` crate, which is
// unavailable in offline builds. Opt in with `--features proptests` after
// adding `proptest` as a dev-dependency (see the crate manifest).
#![cfg(feature = "proptests")]

use procrustes_sim::{
    evaluate_layer, evaluate_layer_with, half_tile_pairs, imbalance_overhead, ArchConfig,
    BalanceMode, Fidelity, LayerTask, Mapping, Phase, SparsityInfo,
};
use proptest::prelude::*;

fn arb_task() -> impl Strategy<Value = LayerTask> {
    (
        1usize..5, // batch selector
        1usize..5, // c selector
        1usize..5, // k selector
        2usize..6, // spatial selector
        prop_oneof![Just(1usize), Just(3usize)],
    )
        .prop_map(|(b, c, k, hw, r)| {
            LayerTask::conv("prop", b * 4, c * 8, k * 8, hw * 4, hw * 4, r, 1, r / 2)
        })
}

fn arb_sparsity(task: &LayerTask, seed: u64) -> SparsityInfo {
    use procrustes_prng::{UniformRng, Xorshift64};
    let mut rng = Xorshift64::new(seed);
    let cap = (task.r * task.s) as u32;
    // Keep headroom below full density: a "sparse" workload at ~100%
    // density genuinely costs more than the dense baseline (format
    // overhead), so the dominance law only holds away from that corner.
    let nnz_cap = (cap * 3 / 4).max(1);
    SparsityInfo {
        kernel_nnz: (0..task.kernels())
            .map(|_| rng.next_below(u64::from(nnz_cap) + 1) as u32)
            .collect(),
        act_in_density: 0.25 + 0.60 * rng.next_f64(),
        grad_density: 1.0,
        compressed: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Half-tile pairing conserves work and never increases the maximum.
    #[test]
    fn pairing_invariants(halves in proptest::collection::vec((0u64..1000, 0u64..1000), 1..64)) {
        let rebuilt = half_tile_pairs(&halves);
        prop_assert_eq!(rebuilt.len(), halves.len());
        let before: u64 = halves.iter().map(|&(a, b)| a + b).sum();
        prop_assert_eq!(rebuilt.iter().sum::<u64>(), before);
        let max_before = halves.iter().map(|&(a, b)| a + b).max().unwrap();
        prop_assert!(*rebuilt.iter().max().unwrap() <= max_before);
        // Balancing cannot beat the theoretical mean either.
        let mean = before as f64 / rebuilt.len() as f64;
        prop_assert!(*rebuilt.iter().max().unwrap() as f64 >= mean.floor());
    }

    /// Imbalance overhead is non-negative and zero only for uniform work.
    #[test]
    fn overhead_nonnegative(work in proptest::collection::vec(0u64..100, 1..32)) {
        let o = imbalance_overhead(&work);
        prop_assert!(o >= -1e-12);
        let all_equal = work.windows(2).all(|w| w[0] == w[1]);
        if all_equal {
            prop_assert!(o.abs() < 1e-12);
        }
    }

    /// Sparse cost is bounded above by dense cost, for every mapping and
    /// phase; ideal cost is bounded above by real cost.
    #[test]
    fn dominance_laws(task in arb_task(), seed in 0u64..1000) {
        let arch = ArchConfig::procrustes_16x16();
        let ideal = ArchConfig::ideal_16x16();
        let dense = SparsityInfo::dense(&task);
        let sparse = arb_sparsity(&task, seed);
        for mapping in Mapping::ALL {
            for phase in Phase::ALL {
                let cd = evaluate_layer(&arch, &task, phase, mapping, &dense, BalanceMode::None);
                let cs = evaluate_layer(&arch, &task, phase, mapping, &sparse, BalanceMode::HalfTile);
                prop_assert!(cs.macs <= cd.macs, "{:?}/{:?}", mapping, phase);
                prop_assert!(
                    cs.energy.total() <= cd.energy.total() * 1.001,
                    "{:?}/{:?}: sparse {} > dense {}",
                    mapping, phase, cs.energy.total(), cd.energy.total()
                );
                let ci = evaluate_layer(&ideal, &task, phase, mapping, &sparse, BalanceMode::HalfTile);
                prop_assert!(ci.cycles <= cs.cycles, "{:?}/{:?}", mapping, phase);
            }
        }
    }

    /// Utilization is a true fraction, and cycle bounds compose.
    #[test]
    fn sanity_bounds(task in arb_task(), seed in 0u64..1000) {
        let arch = ArchConfig::procrustes_16x16();
        let sparse = arb_sparsity(&task, seed);
        for mapping in Mapping::ALL {
            for phase in Phase::ALL {
                let c = evaluate_layer(&arch, &task, phase, mapping, &sparse, BalanceMode::None);
                prop_assert!((0.0..=1.0).contains(&c.utilization));
                prop_assert!(c.cycles >= c.compute_cycles.max(c.glb_cycles).max(c.dram_cycles));
                prop_assert!(c.energy.total().is_finite() && c.energy.total() >= 0.0);
                prop_assert!(c.wave_overheads.iter().all(|&v| v >= 0.0));
            }
        }
    }

    /// Fidelity dominance: replaying the tile schedule never beats the
    /// analytic bound, and everything latency-independent is identical.
    #[test]
    fn tile_timed_dominates_analytic(task in arb_task(), seed in 0u64..1000) {
        let arch = ArchConfig::procrustes_16x16();
        let sparse = arb_sparsity(&task, seed);
        for mapping in Mapping::ALL {
            for phase in Phase::ALL {
                for mode in [BalanceMode::None, BalanceMode::HalfTile] {
                    let a = evaluate_layer(&arch, &task, phase, mapping, &sparse, mode);
                    let t = evaluate_layer_with(
                        &arch, &task, phase, mapping, &sparse, mode, Fidelity::TileTimed,
                    );
                    prop_assert!(t.cycles >= a.cycles, "{:?}/{:?}/{:?}", mapping, phase, mode);
                    prop_assert_eq!(a.compute_cycles, t.compute_cycles);
                    prop_assert_eq!(a.macs, t.macs);
                    prop_assert_eq!(a.energy, t.energy);
                    prop_assert!((0.0..=1.0).contains(&t.utilization));
                }
            }
        }
    }

    /// Balancing never slows a layer down and never changes MACs/energy
    /// class totals (work conservation at the model level).
    #[test]
    fn balancing_conserves_macs(task in arb_task(), seed in 0u64..1000) {
        let arch = ArchConfig::procrustes_16x16();
        let sparse = arb_sparsity(&task, seed);
        for phase in [Phase::Forward, Phase::Backward] {
            let none = evaluate_layer(&arch, &task, phase, Mapping::KN, &sparse, BalanceMode::None);
            let bal = evaluate_layer(&arch, &task, phase, Mapping::KN, &sparse, BalanceMode::HalfTile);
            prop_assert_eq!(none.macs, bal.macs);
            prop_assert!(bal.compute_cycles <= none.compute_cycles);
            prop_assert_eq!(none.glb_words, bal.glb_words);
        }
    }
}
