//! The zero-allocation contract of the training hot loop.
//!
//! Once shapes have stabilized (one warm-up step fills the scratch
//! pool, the per-layer caches, and the optimizer's velocity slots), a
//! training step must perform **zero heap allocations** in tensor code:
//! every buffer — im2col columns, GEMM outputs, layer activations,
//! gradients, the loss buffers — is served from the per-trainer
//! [`Scratch`](procrustes_nn::Scratch) pool or an in-place per-layer
//! cache.
//!
//! Pinned with a counting global allocator. This file holds exactly one
//! test so no concurrent test thread can contribute allocations to the
//! global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use procrustes_dropback::{DenseSgdTrainer, Trainer};
use procrustes_nn::{arch, data::SyntheticImages};
use procrustes_prng::Xorshift64;

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Growth is an allocation for the purpose of this contract.
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_training_step_performs_zero_allocations() {
    let mut rng = Xorshift64::new(1);
    // The fig06-style conv stack: Conv2d/BatchNorm/ReLU/MaxPool blocks
    // with a Flatten + Linear head.
    let model = arch::tiny_vgg(4, &mut rng);
    let mut trainer = DenseSgdTrainer::new(model, 0.05, 0.9);
    let data = SyntheticImages::new(4, 32, 32, 0.2, 3);
    let (x, labels) = data.batch(4, &mut rng);

    // Warm-up: first step allocates the scratch pool, per-layer caches
    // (im2col columns, BN x̂, pool argmax), and SGD velocity; a couple
    // more let the pool reach its fixed point.
    for _ in 0..3 {
        trainer.train_step(&x, &labels);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut loss = 0.0;
    for _ in 0..5 {
        loss = trainer.train_step(&x, &labels).loss;
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(loss.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state training steps must not allocate (got {} allocations over 5 steps)",
        after - before
    );
}
