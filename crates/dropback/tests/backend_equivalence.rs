//! End-to-end backend equivalence: a Dropback/Procrustes training run
//! must produce *identical* loss curves, thresholds, and final weights
//! whether the model executes on the dense kernels or the CSB-compressed
//! ones — the sparse path changes the cost of the work, never its result.

use procrustes_dropback::{
    ComputeBackend, DropbackConfig, DropbackExact, ProcrustesConfig, ProcrustesTrainer, Trainer,
};
use procrustes_nn::data::SyntheticImages;
use procrustes_nn::{Conv2d, Flatten, Layer, Linear, MaxPool2d, ReLU, Sequential};
use procrustes_prng::Xorshift64;

fn micro_model(seed: u64) -> Sequential {
    let mut rng = Xorshift64::new(seed);
    let mut m = Sequential::new();
    m.push(Conv2d::new(3, 8, 3, 1, 1, false, &mut rng));
    m.push(ReLU::new());
    m.push(MaxPool2d::new(2, 2));
    m.push(Conv2d::new(8, 8, 3, 1, 1, false, &mut rng));
    m.push(ReLU::new());
    m.push(MaxPool2d::new(2, 2));
    m.push(Flatten::new());
    m.push(Linear::new(8 * 4 * 4, 4, true, &mut rng));
    m
}

/// Runs `steps` Procrustes training steps, returning per-step
/// `(loss, threshold, tracked)` plus the final materialized weights.
fn run_procrustes(compute: ComputeBackend, steps: usize) -> (Vec<(f32, f32, usize)>, Vec<f32>) {
    let data = SyntheticImages::new(4, 16, 16, 0.2, 9);
    let mut rng = Xorshift64::new(3);
    let mut trainer = ProcrustesTrainer::new(
        micro_model(7),
        ProcrustesConfig {
            sparsity_factor: 8.0,
            // λ = 0.5 reaches the exact-zero horizon in ~40 steps, so the
            // CSB run spends most of the test genuinely compressed.
            lambda: 0.5,
            compute,
            ..ProcrustesConfig::default()
        },
        5,
    );
    let mut curve = Vec::with_capacity(steps);
    for _ in 0..steps {
        let (x, labels) = data.batch(4, &mut rng);
        let s = trainer.train_step(&x, &labels);
        curve.push((s.loss, s.threshold, s.tracked));
    }
    let mut weights = Vec::new();
    trainer.model_mut().visit_params(&mut |p| {
        weights.extend_from_slice(p.values.data());
    });
    (curve, weights)
}

#[test]
fn procrustes_loss_curves_identical_across_backends() {
    let steps = 50;
    let (dense_curve, dense_w) = run_procrustes(ComputeBackend::Dense, steps);
    for backend in [ComputeBackend::Csb, ComputeBackend::auto()] {
        let (curve, weights) = run_procrustes(backend, steps);
        assert_eq!(
            dense_curve,
            curve,
            "{} run diverged from the dense run",
            backend.label()
        );
        assert_eq!(
            dense_w,
            weights,
            "{} run ended with different weights",
            backend.label()
        );
    }
}

#[test]
fn auto_backend_promotes_layers_once_decay_creates_sparsity() {
    let data = SyntheticImages::new(4, 16, 16, 0.2, 9);
    let mut rng = Xorshift64::new(3);
    let mut trainer = ProcrustesTrainer::new(
        micro_model(7),
        ProcrustesConfig {
            sparsity_factor: 8.0,
            lambda: 0.5,
            compute: ComputeBackend::auto(),
            ..ProcrustesConfig::default()
        },
        5,
    );
    // Early in training the decayed initial weights are still nonzero:
    // densities sit near 1 and every layer stays on the dense path.
    let (x, labels) = data.batch(4, &mut rng);
    trainer.train_step(&x, &labels);
    assert_eq!(trainer.model_mut().csb_store_count(), 0);

    for _ in 0..49 {
        let (x, labels) = data.batch(4, &mut rng);
        trainer.train_step(&x, &labels);
    }
    // Past the λ = 0.5 decay horizon ~7/8 of the weights are exact
    // zeros; an eval forward resyncs the stores after the last mask
    // update and every prunable layer (3 conv/fc) must have promoted.
    let sparsities = trainer.layer_sparsities();
    assert!(
        sparsities.iter().all(|&s| s > 0.5),
        "decay horizon not reached: {sparsities:?}"
    );
    let (x, labels) = data.batch(4, &mut rng);
    trainer.evaluate(&x, &labels);
    assert_eq!(trainer.model_mut().csb_store_count(), 3);
}

#[test]
fn dropback_exact_identical_across_backends() {
    let run = |compute: ComputeBackend| {
        let data = SyntheticImages::new(4, 16, 16, 0.2, 11);
        let mut rng = Xorshift64::new(13);
        let mut trainer = DropbackExact::new(
            micro_model(17),
            DropbackConfig {
                sparsity_factor: 6.0,
                lambda: 0.5,
                compute,
                ..DropbackConfig::default()
            },
            19,
        );
        let mut losses = Vec::new();
        for _ in 0..30 {
            let (x, labels) = data.batch(4, &mut rng);
            losses.push(trainer.train_step(&x, &labels).loss);
        }
        losses
    };
    assert_eq!(run(ComputeBackend::Dense), run(ComputeBackend::Csb));
}
