//! The dense (unpruned) SGD baseline trainer.

use procrustes_nn::{Layer, Scratch, Sequential, Sgd, SoftmaxCrossEntropy};
use procrustes_tensor::Tensor;

use crate::{evaluate_model, StepStats, Trainer};

/// Plain dense SGD training — the paper's “baseline (SGD)” curves and the
/// energy-model's dense reference point.
///
/// # Examples
///
/// ```
/// use procrustes_dropback::{DenseSgdTrainer, Trainer};
/// use procrustes_nn::arch;
/// use procrustes_nn::data::SyntheticImages;
/// use procrustes_prng::Xorshift64;
///
/// let mut rng = Xorshift64::new(0);
/// let mut trainer = DenseSgdTrainer::new(arch::tiny_vgg(10, &mut rng), 0.05, 0.9);
/// let (x, labels) = SyntheticImages::cifar_like(10, 1).batch(4, &mut rng);
/// let stats = trainer.train_step(&x, &labels);
/// assert_eq!(stats.tracked, 0); // dense training tracks nothing
/// ```
pub struct DenseSgdTrainer {
    model: Sequential,
    opt: Sgd,
    scratch: Scratch,
    steps: u64,
}

impl DenseSgdTrainer {
    /// Wraps `model` with SGD at learning rate `lr` and `momentum`.
    pub fn new(model: Sequential, lr: f32, momentum: f32) -> Self {
        Self {
            model,
            opt: Sgd::new(lr).with_momentum(momentum),
            scratch: Scratch::new(),
            steps: 0,
        }
    }
}

impl Trainer for DenseSgdTrainer {
    fn train_step(&mut self, x: &Tensor, labels: &[usize]) -> StepStats {
        let scratch = &mut self.scratch;
        let logits = self.model.forward_with(x, true, scratch);
        let (loss, dlogits) = SoftmaxCrossEntropy.loss_and_grad_with(&logits, labels, scratch);
        scratch.recycle(logits);
        let dx = self.model.backward_with(&dlogits, scratch);
        scratch.recycle(dlogits);
        scratch.recycle(dx);
        self.opt.step(&mut self.model);
        self.steps += 1;
        StepStats {
            loss,
            ..StepStats::default()
        }
    }

    fn evaluate(&mut self, x: &Tensor, labels: &[usize]) -> (f32, f64) {
        evaluate_model(&mut self.model, x, labels, &mut self.scratch)
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use procrustes_nn::arch;
    use procrustes_nn::data::SyntheticImages;
    use procrustes_prng::Xorshift64;

    #[test]
    fn loss_decreases_over_steps() {
        let data = SyntheticImages::new(4, 16, 16, 0.2, 3);
        let mut rng = Xorshift64::new(1);
        let mut t = DenseSgdTrainer::new(arch::tiny_resnet(4, &mut rng), 0.05, 0.9);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            let (x, labels) = data.batch(8, &mut rng);
            let s = t.train_step(&x, &labels);
            first.get_or_insert(s.loss);
            last = s.loss;
        }
        assert!(last < first.unwrap(), "{:?} -> {last}", first);
        assert_eq!(t.steps(), 30);
    }
}
