//! The hardware-friendly Procrustes training algorithm (Alg 3 + §III-B).
//!
//! Differences from exact Dropback:
//!
//! * initial weights decay by λ = 0.9 per iteration and reach exactly
//!   zero, creating *computation sparsity* (§III-A);
//! * the sort is replaced by a per-gradient threshold test against a
//!   DUMIQUE quantile estimate ϑ (§III-B): untracked gradients above ϑ
//!   evict the lowest tracked entry; every magnitude feeds the estimator
//!   (4-wide, as the hardware QE unit does).

use procrustes_nn::{ComputeBackend, Layer, ParamKind, Scratch, Sequential, SoftmaxCrossEntropy};
use procrustes_quantile::{quantile_for_sparsity, Dumique};
use procrustes_tensor::Tensor;

use crate::exact::init_from_wr;
use crate::{evaluate_model, EvictionPolicy, StepStats, TrackedSet, Trainer, WeightRecompute};

/// Configuration for [`ProcrustesTrainer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcrustesConfig {
    /// Target pruning factor (e.g. 10.0 keeps ~10 % of weights).
    pub sparsity_factor: f64,
    /// Learning rate.
    pub lr: f32,
    /// Initial-weight decay per iteration (paper: 0.9).
    pub lambda: f32,
    /// Auxiliary-parameter (bias/BN) learning rate; usually `lr`.
    pub aux_lr: f32,
    /// Eviction policy of the tracked-set store.
    pub eviction: EvictionPolicy,
    /// DUMIQUE adjustment rate ρ (paper: 1e-3).
    pub qe_rho: f64,
    /// DUMIQUE initial estimate (paper: 1e-6).
    pub qe_init: f64,
    /// Which kernels the model's conv/fc layers execute on.
    /// [`ComputeBackend::auto`] promotes each layer to CSB once the
    /// initial-weight decay has driven its density below the threshold
    /// (the layout is resynced after every mask update); results are
    /// identical under every backend.
    pub compute: ComputeBackend,
}

impl Default for ProcrustesConfig {
    fn default() -> Self {
        Self {
            sparsity_factor: 10.0,
            lr: 0.05,
            lambda: 0.9,
            aux_lr: 0.05,
            eviction: EvictionPolicy::default(),
            qe_rho: Dumique::DEFAULT_RHO,
            qe_init: Dumique::DEFAULT_INIT,
            compute: ComputeBackend::Dense,
        }
    }
}

/// The Procrustes sparse trainer: Dropback with initial-weight decay and
/// quantile-estimated selection.
///
/// # Examples
///
/// ```
/// use procrustes_dropback::{ProcrustesConfig, ProcrustesTrainer, Trainer};
/// use procrustes_nn::{arch, data::SyntheticImages};
/// use procrustes_prng::Xorshift64;
///
/// let mut rng = Xorshift64::new(0);
/// let mut t = ProcrustesTrainer::new(
///     arch::tiny_vgg(10, &mut rng),
///     ProcrustesConfig::default(),
///     3,
/// );
/// let (x, labels) = SyntheticImages::cifar_like(10, 4).batch(4, &mut rng);
/// let stats = t.train_step(&x, &labels);
/// assert!(stats.threshold > 0.0); // ϑ is live from the first step
/// ```
pub struct ProcrustesTrainer {
    model: Sequential,
    config: ProcrustesConfig,
    wr: WeightRecompute,
    tracked: TrackedSet,
    qe: Dumique,
    qe_buf: Vec<f32>,
    scratch: Scratch,
    /// Per-step gradient-delta buffer, reused across steps.
    deltas: Vec<f32>,
    n: usize,
    steps: u64,
}

impl ProcrustesTrainer {
    /// Wraps `model`; overwrites its prunable weights with WR-generated
    /// initial values.
    ///
    /// # Panics
    ///
    /// Panics if the model has no prunable weights or
    /// `config.sparsity_factor <= 1`.
    pub fn new(mut model: Sequential, config: ProcrustesConfig, seed: u32) -> Self {
        assert!(
            config.sparsity_factor > 1.0,
            "sparsity factor must exceed 1"
        );
        let (wr, n) = init_from_wr(&mut model, seed, config.lambda);
        model.set_compute_backend(config.compute);
        let budget = (n as f64 / config.sparsity_factor).ceil() as usize;
        let tracked = TrackedSet::new(n, budget, config.eviction, u64::from(seed) ^ 0xD00D);
        let qe = Dumique::with_params(
            quantile_for_sparsity(config.sparsity_factor),
            config.qe_init,
            config.qe_rho,
        );
        Self {
            model,
            config,
            wr,
            tracked,
            qe,
            qe_buf: Vec::with_capacity(4),
            scratch: Scratch::new(),
            deltas: Vec::with_capacity(n),
            n,
            steps: 0,
        }
    }

    /// The weight budget `k`.
    pub fn budget(&self) -> usize {
        self.tracked.capacity()
    }

    /// Fraction of weights currently tracked, in `[0, 1]`.
    pub fn tracked_fraction(&self) -> f64 {
        self.tracked.len() as f64 / self.n as f64
    }

    /// The current admission threshold ϑ.
    pub fn threshold(&self) -> f32 {
        self.qe.estimate()
    }

    /// The WR unit backing this trainer.
    pub fn wr(&self) -> &WeightRecompute {
        &self.wr
    }

    /// The materialized per-layer weight sparsity (fraction of exact
    /// zeros), one entry per prunable tensor — the masks the accelerator
    /// simulator consumes.
    pub fn layer_sparsities(&mut self) -> Vec<f64> {
        let mut out = Vec::new();
        self.model.visit_params(&mut |p| {
            if p.kind == ParamKind::Prunable {
                out.push(p.values.sparsity());
            }
        });
        out
    }

    fn push_qe(&mut self, magnitude: f32) {
        self.qe_buf.push(magnitude);
        if self.qe_buf.len() == 4 {
            self.qe.update4([
                self.qe_buf[0],
                self.qe_buf[1],
                self.qe_buf[2],
                self.qe_buf[3],
            ]);
            self.qe_buf.clear();
        }
    }

    fn materialize(&mut self) {
        let wr = &self.wr;
        let tracked = &self.tracked;
        let t = self.steps;
        let mut offset = 0usize;
        self.model.visit_params(&mut |p| {
            if p.kind != ParamKind::Prunable {
                return;
            }
            let data = p.values.data_mut();
            for (j, w) in data.iter_mut().enumerate() {
                let gi = offset + j;
                *w = wr.decayed_value(gi as u64, t) + tracked.accumulated(gi);
            }
            offset += data.len();
        });
    }
}

impl Trainer for ProcrustesTrainer {
    fn train_step(&mut self, x: &Tensor, labels: &[usize]) -> StepStats {
        let scratch = &mut self.scratch;
        let logits = self.model.forward_with(x, true, scratch);
        let (loss, dlogits) = SoftmaxCrossEntropy.loss_and_grad_with(&logits, labels, scratch);
        scratch.recycle(logits);
        let dx = self.model.backward_with(&dlogits, scratch);
        scratch.recycle(dlogits);
        scratch.recycle(dx);

        let lr = self.config.lr;
        let aux_lr = self.config.aux_lr;
        let mut admitted = 0usize;
        let mut evicted = 0usize;

        // Stream the produced gradients through the tracking process of
        // §III-B. Collect the prunable deltas first (cheap), then run the
        // admission logic outside the visitor borrow.
        let mut deltas = std::mem::take(&mut self.deltas);
        deltas.clear();
        {
            let mut offset = 0usize;
            self.model.visit_params(&mut |p| match p.kind {
                ParamKind::Prunable => {
                    let grads = p.grads.data_mut();
                    for g in grads.iter_mut() {
                        deltas.push(-lr * *g);
                        *g = 0.0;
                    }
                    offset += grads.len();
                }
                ParamKind::Auxiliary => {
                    for (w, g) in p
                        .values
                        .data_mut()
                        .iter_mut()
                        .zip(p.grads.data_mut().iter_mut())
                    {
                        *w -= aux_lr * *g;
                        *g = 0.0;
                    }
                }
            });
            debug_assert_eq!(offset, deltas.len());
        }

        for (gi, &dw) in deltas.iter().enumerate() {
            if self.tracked.contains(gi) {
                // Tracked: accumulate, feed |acc + δ| to the estimator.
                self.tracked.accumulate(gi, dw);
                let mag = self.tracked.accumulated(gi).abs();
                self.push_qe(mag);
            } else {
                let mag = dw.abs();
                if mag > 0.0 && (self.qe.admits(mag) || !self.tracked.is_full()) {
                    if self.tracked.admit(gi, dw).is_some() {
                        evicted += 1;
                    }
                    admitted += 1;
                }
                self.push_qe(mag);
            }
        }
        self.deltas = deltas;

        self.steps += 1;
        self.materialize();

        let mut zeros = 0usize;
        let mut total = 0usize;
        self.model.visit_params(&mut |p| {
            if p.kind == ParamKind::Prunable {
                zeros += p.values.count_zeros();
                total += p.values.len();
            }
        });
        StepStats {
            loss,
            tracked: self.tracked.len(),
            admitted,
            evicted,
            threshold: self.qe.estimate(),
            weight_sparsity: zeros as f64 / total as f64,
        }
    }

    fn evaluate(&mut self, x: &Tensor, labels: &[usize]) -> (f32, f64) {
        evaluate_model(&mut self.model, x, labels, &mut self.scratch)
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::micro_model;
    use procrustes_nn::data::SyntheticImages;
    use procrustes_prng::Xorshift64;

    fn setup(factor: f64) -> (ProcrustesTrainer, SyntheticImages, Xorshift64) {
        let rng = Xorshift64::new(8);
        let t = ProcrustesTrainer::new(
            micro_model(4, 8),
            ProcrustesConfig {
                sparsity_factor: factor,
                lr: 0.05,
                ..ProcrustesConfig::default()
            },
            21,
        );
        (t, SyntheticImages::new(4, 16, 16, 0.2, 2), rng)
    }

    #[test]
    fn tracked_set_stays_within_budget() {
        let (mut t, data, mut rng) = setup(10.0);
        for _ in 0..5 {
            let (x, labels) = data.batch(4, &mut rng);
            let s = t.train_step(&x, &labels);
            assert!(s.tracked <= t.budget());
        }
        // Budget is ceil(n/10), so the fraction can exceed 0.1 by < 1/n.
        assert!(t.tracked_fraction() <= t.budget() as f64 / t.n as f64 + 1e-9);
    }

    #[test]
    fn threshold_becomes_positive_and_rises() {
        let (mut t, data, mut rng) = setup(10.0);
        let mut thetas = Vec::new();
        for _ in 0..5 {
            let (x, labels) = data.batch(4, &mut rng);
            thetas.push(t.train_step(&x, &labels).threshold);
        }
        assert!(thetas.iter().all(|&v| v > 0.0));
        // With gradients >> 1e-6 the estimate must have moved upward.
        assert!(thetas.last().unwrap() > &(Dumique::DEFAULT_INIT as f32));
    }

    #[test]
    fn sparsity_emerges_after_decay_horizon() {
        let (mut t, data, mut rng) = setup(10.0);
        let zero_iter = t.wr().zero_iteration().unwrap();
        let mut s = StepStats::default();
        for _ in 0..=zero_iter {
            let (x, labels) = data.batch(1, &mut rng);
            s = t.train_step(&x, &labels);
        }
        assert!(
            s.weight_sparsity > 0.85,
            "weight sparsity {} after decay horizon",
            s.weight_sparsity
        );
        // Per-layer masks are available for the simulator.
        let per_layer = t.layer_sparsities();
        assert!(!per_layer.is_empty());
        assert!(per_layer.iter().any(|&s| s > 0.5));
    }

    #[test]
    fn learns_above_chance() {
        let (mut t, data, mut rng) = setup(5.0);
        for _ in 0..60 {
            let (x, labels) = data.batch(16, &mut rng);
            t.train_step(&x, &labels);
        }
        let (vx, vl) = data.fixed_set(64, 77);
        let (_, acc) = t.evaluate(&vx, &vl);
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn no_sorting_happens_only_streaming() {
        // Structural property: one step touches each gradient exactly once
        // through the streaming path. We verify the estimator observation
        // count matches the gradient count (within the 4-wide batching).
        let (mut t, data, mut rng) = setup(10.0);
        let (x, labels) = data.batch(2, &mut rng);
        t.train_step(&x, &labels);
        let expected = t.n as u64 / 4; // one 4-wide update per 4 gradients
        let got = t.qe.observations();
        assert!(
            (got as i64 - expected as i64).unsigned_abs() <= 1,
            "observations {got} vs expected {expected}"
        );
    }

    #[test]
    fn deterministic_given_seeds() {
        let run = || {
            let (mut t, data, mut rng) = setup(10.0);
            let mut last = 0.0;
            for _ in 0..3 {
                let (x, labels) = data.batch(4, &mut rng);
                last = t.train_step(&x, &labels).loss;
            }
            last
        };
        assert_eq!(run(), run());
    }
}
