//! The weight-recomputation (WR) unit — functional model.
//!
//! §V of the paper: every PE contains a WR unit that regenerates the
//! *initial* value of any weight from `(seed, weight index)` alone: three
//! xorshift PRNGs summed into an approximate Gaussian, scaled by the
//! layer's initialization factor (Xavier/Kaiming), optionally decayed by
//! λᵗ (Alg 3), and converted to FP32. No hidden state — pruned weights
//! need never be stored.

use procrustes_prng::gaussian_at;

/// Functional model of the per-PE weight-recomputation unit.
///
/// Construction records the per-layer scaling factors (one per prunable
/// weight tensor, in model visitation order); afterwards
/// [`initial_value`](WeightRecompute::initial_value) and
/// [`decayed_value`](WeightRecompute::decayed_value) are pure functions.
///
/// # Examples
///
/// ```
/// use procrustes_dropback::WeightRecompute;
/// // Two layers: 6 weights at scale 0.5, then 4 weights at scale 1.0.
/// let wr = WeightRecompute::new(7, &[(6, 0.5), (4, 1.0)], 0.9);
/// // Pure function of the index:
/// assert_eq!(wr.initial_value(3), wr.initial_value(3));
/// // Decay shrinks values towards zero and reaches exactly zero.
/// assert!(wr.decayed_value(3, 10).abs() < wr.initial_value(3).abs());
/// assert_eq!(wr.decayed_value(3, 100_000), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightRecompute {
    seed: u32,
    /// `(end_index, scale)` per layer, cumulative — binary-searchable.
    ranges: Vec<(u64, f32)>,
    lambda: f32,
}

impl WeightRecompute {
    /// Decay factors below this are flushed to exactly zero (f32 would
    /// underflow long before; the cutoff makes the zero explicit, matching
    /// the paper's “all initial weights have decayed to zero”).
    pub const DECAY_FLUSH: f32 = 1e-12;

    /// Creates a WR unit for a model whose prunable tensors have the given
    /// `(len, init_scale)` pairs in visitation order. `lambda` is the
    /// per-iteration decay (the paper uses 0.9; pass 1.0 for no decay —
    /// original Dropback).
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty, any length is zero, any scale is not
    /// finite-positive, or `lambda` is outside `(0, 1]`.
    pub fn new(seed: u32, layers: &[(usize, f32)], lambda: f32) -> Self {
        assert!(!layers.is_empty(), "WeightRecompute: no layers");
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "WeightRecompute: lambda must be in (0,1], got {lambda}"
        );
        let mut ranges = Vec::with_capacity(layers.len());
        let mut end = 0u64;
        for &(len, scale) in layers {
            assert!(len > 0, "WeightRecompute: empty layer");
            assert!(
                scale.is_finite() && scale > 0.0,
                "WeightRecompute: bad scale {scale}"
            );
            end += len as u64;
            ranges.push((end, scale));
        }
        Self {
            seed,
            ranges,
            lambda,
        }
    }

    /// Total number of weights covered.
    pub fn len(&self) -> u64 {
        self.ranges.last().map_or(0, |&(end, _)| end)
    }

    /// Never true (construction requires at least one layer).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The decay parameter λ.
    pub fn lambda(&self) -> f32 {
        self.lambda
    }

    fn scale_of(&self, index: u64) -> f32 {
        assert!(
            index < self.len(),
            "weight index {index} out of {}",
            self.len()
        );
        let pos = self.ranges.partition_point(|&(end, _)| end <= index);
        self.ranges[pos].1
    }

    /// The initialization-time value of weight `index` (undecayed):
    /// `scale · gaussian(seed, index)`.
    pub fn initial_value(&self, index: u64) -> f32 {
        self.scale_of(index) * gaussian_at(self.seed, index)
    }

    /// The decayed initial value at iteration `t`: `λᵗ · initial_value`,
    /// flushed to exactly zero once λᵗ drops below
    /// [`DECAY_FLUSH`](Self::DECAY_FLUSH).
    pub fn decayed_value(&self, index: u64, t: u64) -> f32 {
        let factor = self.decay_factor(t);
        if factor == 0.0 {
            0.0
        } else {
            factor * self.initial_value(index)
        }
    }

    /// The decay factor λᵗ with the flush-to-zero cutoff applied.
    pub fn decay_factor(&self, t: u64) -> f32 {
        if self.lambda == 1.0 {
            return 1.0;
        }
        let factor = self.lambda.powi(t.min(i32::MAX as u64) as i32);
        if factor < Self::DECAY_FLUSH {
            0.0
        } else {
            factor
        }
    }

    /// First iteration at which the decayed initial values are exactly
    /// zero (`None` when λ = 1, i.e. no decay).
    pub fn zero_iteration(&self) -> Option<u64> {
        if self.lambda == 1.0 {
            return None;
        }
        // Smallest t with λ^t < cutoff.
        let t = (Self::DECAY_FLUSH.ln() / self.lambda.ln()).ceil();
        Some(t as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> WeightRecompute {
        WeightRecompute::new(3, &[(100, 0.1), (50, 0.2)], 0.9)
    }

    #[test]
    fn pure_function_of_seed_and_index() {
        let a = unit();
        let b = unit();
        for i in [0u64, 1, 99, 100, 149] {
            assert_eq!(a.initial_value(i), b.initial_value(i));
        }
        let c = WeightRecompute::new(4, &[(100, 0.1), (50, 0.2)], 0.9);
        let differing = (0..150)
            .filter(|&i| a.initial_value(i) != c.initial_value(i))
            .count();
        assert!(differing > 140, "seed change should alter values");
    }

    #[test]
    fn layer_scales_apply_to_their_ranges() {
        let wr = WeightRecompute::new(5, &[(10, 1.0), (10, 100.0)], 1.0);
        let small: f32 = (0..10).map(|i| wr.initial_value(i).abs()).sum();
        let large: f32 = (10..20).map(|i| wr.initial_value(i).abs()).sum();
        assert!(large > small * 50.0, "{large} vs {small}");
    }

    #[test]
    fn decay_reaches_exact_zero() {
        let wr = unit();
        let t0 = wr.zero_iteration().unwrap();
        assert!(wr.decayed_value(5, t0) == 0.0);
        assert!(wr.decayed_value(5, t0 - 1) != 0.0);
        // λ=0.9: zero well before iteration 1000, aligning with the
        // paper's observation window ("the point at which all initial
        // weights have decayed to zero (1,000 iterations)").
        assert!(t0 < 1000, "zero iteration {t0}");
    }

    #[test]
    fn lambda_one_means_no_decay() {
        let wr = WeightRecompute::new(3, &[(10, 0.5)], 1.0);
        assert_eq!(wr.zero_iteration(), None);
        assert_eq!(wr.decayed_value(3, 1_000_000), wr.initial_value(3));
    }

    #[test]
    fn initial_values_are_gaussian_at_layer_scale() {
        let wr = WeightRecompute::new(9, &[(200_000, 0.05)], 0.9);
        let vals: Vec<f32> = (0..200_000).map(|i| wr.initial_value(i)).collect();
        let mean = vals.iter().sum::<f32>() / vals.len() as f32;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
        assert!(mean.abs() < 1e-3, "mean {mean}");
        assert!((var.sqrt() - 0.05).abs() < 0.002, "std {}", var.sqrt());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_index_panics() {
        unit().initial_value(150);
    }

    #[test]
    #[should_panic(expected = "lambda must be in")]
    fn bad_lambda_rejected() {
        WeightRecompute::new(1, &[(10, 1.0)], 0.0);
    }
}
