//! The tracked-set store: accumulated gradients for the surviving weights.
//!
//! Procrustes keeps a fixed budget of `k` tracked weights (§II-E: “only a
//! fixed percentage of the parameters are ever allowed to change”). When a
//! new gradient beats the threshold ϑ, it “evicts and replaces the lowest
//! entry” (§III-B). Finding the global minimum of a million-entry set per
//! admission is not hardware-realistic, so this store also offers a
//! sampled-minimum policy: examine `s` pseudo-random candidates and evict
//! the smallest — the ablation benches quantify the accuracy cost.

use procrustes_prng::{UniformRng, Xorshift64};

/// Eviction policy used when the tracked set is full and a new weight is
/// admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictionPolicy {
    /// Scan all tracked entries for the global minimum magnitude (exact,
    /// O(k) per admission — the literal reading of Alg 2/3).
    ExactMin,
    /// Sample this many candidates and evict the smallest (hardware-
    /// realistic; the default with `s = 8`).
    SampledMin(usize),
}

impl Default for EvictionPolicy {
    fn default() -> Self {
        EvictionPolicy::SampledMin(8)
    }
}

/// The accumulated-gradient store for tracked weights.
///
/// Indices are *global weight indices* (the same indices the WR unit is
/// keyed by). Capacity is the weight budget `k = ⌈n / sparsity factor⌉`.
///
/// # Examples
///
/// ```
/// use procrustes_dropback::{EvictionPolicy, TrackedSet};
/// let mut set = TrackedSet::new(100, 2, EvictionPolicy::ExactMin, 1);
/// assert!(set.admit(7, 0.5).is_none()); // below capacity: no eviction
/// assert!(set.admit(9, 1.0).is_none());
/// // Full: admitting evicts the smallest-magnitude entry (index 7).
/// assert_eq!(set.admit(3, 0.8), Some(7));
/// assert!(set.contains(3) && set.contains(9) && !set.contains(7));
/// assert_eq!(set.accumulated(9), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct TrackedSet {
    /// Accumulated gradient per global weight index (0 when untracked).
    acc: Vec<f32>,
    /// Position+1 of each index in `members` (0 = untracked).
    slot: Vec<u32>,
    /// Tracked indices, unordered.
    members: Vec<u32>,
    capacity: usize,
    policy: EvictionPolicy,
    rng: Xorshift64,
}

impl TrackedSet {
    /// Creates an empty store over `n` weights with the given `capacity`
    /// (budget `k`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`, `capacity > n`, or a sampled policy has
    /// zero samples.
    pub fn new(n: usize, capacity: usize, policy: EvictionPolicy, seed: u64) -> Self {
        assert!(capacity > 0, "TrackedSet: zero capacity");
        assert!(
            capacity <= n,
            "TrackedSet: capacity {capacity} exceeds {n} weights"
        );
        if let EvictionPolicy::SampledMin(s) = policy {
            assert!(s > 0, "TrackedSet: sampled policy needs at least 1 sample");
        }
        Self {
            acc: vec![0.0; n],
            slot: vec![0; n],
            members: Vec::with_capacity(capacity),
            capacity,
            policy,
            rng: Xorshift64::new(seed),
        }
    }

    /// Number of tracked weights.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The weight budget `k`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True once the budget is exhausted (steady state).
    pub fn is_full(&self) -> bool {
        self.members.len() == self.capacity
    }

    /// True if global index `i` is tracked.
    pub fn contains(&self, i: usize) -> bool {
        self.slot[i] != 0
    }

    /// The accumulated gradient of index `i` (0 when untracked).
    pub fn accumulated(&self, i: usize) -> f32 {
        self.acc[i]
    }

    /// Adds `delta` to the accumulated gradient of a tracked index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not tracked.
    pub fn accumulate(&mut self, i: usize, delta: f32) {
        assert!(self.contains(i), "accumulate: index {i} not tracked");
        self.acc[i] += delta;
    }

    /// Admits index `i` with initial accumulated value `value`. If the set
    /// is full, evicts one entry per the policy and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is already tracked.
    pub fn admit(&mut self, i: usize, value: f32) -> Option<usize> {
        assert!(!self.contains(i), "admit: index {i} already tracked");
        let evicted = if self.is_full() {
            let victim = self.find_victim();
            self.remove(victim);
            Some(victim)
        } else {
            None
        };
        self.members.push(i as u32);
        self.slot[i] = self.members.len() as u32;
        self.acc[i] = value;
        evicted
    }

    /// Removes index `i` from the set, zeroing its accumulation.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not tracked.
    pub fn remove(&mut self, i: usize) {
        assert!(self.contains(i), "remove: index {i} not tracked");
        let pos = (self.slot[i] - 1) as usize;
        let last = *self.members.last().expect("non-empty by contains");
        self.members.swap_remove(pos);
        if pos < self.members.len() {
            self.slot[last as usize] = (pos + 1) as u32;
        }
        self.slot[i] = 0;
        self.acc[i] = 0.0;
    }

    /// Iterates over tracked indices (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.members.iter().map(|&i| i as usize)
    }

    fn find_victim(&mut self) -> usize {
        match self.policy {
            EvictionPolicy::ExactMin => {
                let mut best = self.members[0] as usize;
                for &m in &self.members {
                    if self.acc[m as usize].abs() < self.acc[best].abs() {
                        best = m as usize;
                    }
                }
                best
            }
            EvictionPolicy::SampledMin(s) => {
                let mut best = None::<usize>;
                for _ in 0..s {
                    let pick =
                        self.members[self.rng.next_below(self.members.len() as u64) as usize];
                    let pick = pick as usize;
                    if best.is_none_or(|b| self.acc[pick].abs() < self.acc[b].abs()) {
                        best = Some(pick);
                    }
                }
                best.expect("at least one sample")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_capacity_without_eviction() {
        let mut set = TrackedSet::new(10, 3, EvictionPolicy::ExactMin, 1);
        assert!(set.admit(0, 0.1).is_none());
        assert!(set.admit(1, 0.2).is_none());
        assert!(set.admit(2, 0.3).is_none());
        assert!(set.is_full());
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn exact_min_evicts_smallest_magnitude() {
        let mut set = TrackedSet::new(10, 3, EvictionPolicy::ExactMin, 1);
        set.admit(0, -0.05); // smallest |.|
        set.admit(1, 0.2);
        set.admit(2, -0.3);
        assert_eq!(set.admit(5, 0.1), Some(0));
        assert!(!set.contains(0));
        assert_eq!(set.accumulated(0), 0.0);
    }

    #[test]
    fn sampled_min_evicts_some_small_entry() {
        // With enough samples, the victim should usually be near the
        // bottom of the magnitude distribution.
        let mut set = TrackedSet::new(1000, 100, EvictionPolicy::SampledMin(16), 2);
        for i in 0..100 {
            set.admit(i, (i + 1) as f32);
        }
        let evicted = set.admit(500, 1000.0).unwrap();
        assert!(
            evicted < 40,
            "sampled eviction picked a large entry: {evicted}"
        );
    }

    #[test]
    fn accumulate_adds_in_place() {
        let mut set = TrackedSet::new(4, 2, EvictionPolicy::ExactMin, 1);
        set.admit(1, 0.5);
        set.accumulate(1, 0.25);
        assert_eq!(set.accumulated(1), 0.75);
    }

    #[test]
    fn remove_keeps_slot_map_consistent() {
        let mut set = TrackedSet::new(10, 5, EvictionPolicy::ExactMin, 1);
        for i in 0..5 {
            set.admit(i, i as f32 + 1.0);
        }
        set.remove(2);
        set.remove(0);
        let mut left: Vec<usize> = set.iter().collect();
        left.sort_unstable();
        assert_eq!(left, vec![1, 3, 4]);
        for i in left {
            assert!(set.contains(i));
        }
        assert!(!set.contains(2) && !set.contains(0));
        // Re-admission works after removal.
        set.admit(2, 9.0);
        assert!(set.contains(2));
    }

    #[test]
    #[should_panic(expected = "already tracked")]
    fn double_admit_panics() {
        let mut set = TrackedSet::new(4, 2, EvictionPolicy::ExactMin, 1);
        set.admit(1, 0.5);
        set.admit(1, 0.6);
    }

    #[test]
    #[should_panic(expected = "not tracked")]
    fn accumulate_untracked_panics() {
        let mut set = TrackedSet::new(4, 2, EvictionPolicy::ExactMin, 1);
        set.accumulate(1, 0.5);
    }

    #[test]
    fn eviction_keeps_size_at_capacity() {
        let mut set = TrackedSet::new(100, 10, EvictionPolicy::SampledMin(4), 3);
        for i in 0..50 {
            let _ = set.admit(i, (i as f32).sin().abs() + 0.01);
            assert!(set.len() <= 10);
        }
        assert!(set.is_full());
    }
}
