//! Original Dropback (Alg 2 of the paper): exact sort-based selection.
//!
//! Every iteration, the union of (a) tracked accumulated gradients and
//! (b) this step's gradients of pruned weights is *sorted*, and only the
//! top `k` survive. This is the algorithm Procrustes starts from — high
//! sparsity, but the global sort and the non-zero pruned weights make it
//! hardware-hostile (§II-E). With `lambda < 1` this becomes Alg 3
//! (Dropback + initial weight decay), still with exact selection — the
//! configuration of the paper's Fig 6/Fig 7 baselines.

use procrustes_nn::{ComputeBackend, Layer, ParamKind, Scratch, Sequential, SoftmaxCrossEntropy};
use procrustes_tensor::{kaiming_std, xavier_std, Tensor};

use crate::{evaluate_model, StepStats, Trainer, WeightRecompute};

/// Configuration for [`DropbackExact`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropbackConfig {
    /// Target pruning factor (e.g. 10.0 keeps 10 % of weights).
    pub sparsity_factor: f64,
    /// Learning rate.
    pub lr: f32,
    /// Initial-weight decay per iteration; 1.0 disables decay (original
    /// Dropback), 0.9 is the paper's Alg 3 value.
    pub lambda: f32,
    /// Auxiliary-parameter (bias/BN) learning rate; usually `lr`.
    pub aux_lr: f32,
    /// Which kernels the model's conv/fc layers execute on (see
    /// [`ComputeBackend`]); results are identical under every backend.
    pub compute: ComputeBackend,
}

impl Default for DropbackConfig {
    fn default() -> Self {
        Self {
            sparsity_factor: 10.0,
            lr: 0.05,
            lambda: 1.0,
            aux_lr: 0.05,
            compute: ComputeBackend::Dense,
        }
    }
}

/// The exact (sorting) Dropback trainer.
///
/// # Examples
///
/// ```
/// use procrustes_dropback::{DropbackConfig, DropbackExact, Trainer};
/// use procrustes_nn::{arch, data::SyntheticImages};
/// use procrustes_prng::Xorshift64;
///
/// let mut rng = Xorshift64::new(0);
/// let mut t = DropbackExact::new(
///     arch::tiny_vgg(10, &mut rng),
///     DropbackConfig { sparsity_factor: 5.0, ..DropbackConfig::default() },
///     7,
/// );
/// let (x, labels) = SyntheticImages::cifar_like(10, 2).batch(4, &mut rng);
/// let stats = t.train_step(&x, &labels);
/// // Exactly k = n/5 weights are tracked after every step.
/// assert_eq!(stats.tracked, t.budget());
/// ```
pub struct DropbackExact {
    model: Sequential,
    config: DropbackConfig,
    wr: WeightRecompute,
    /// Accumulated gradient per global prunable-weight index.
    acc: Vec<f32>,
    tracked: Vec<bool>,
    budget: usize,
    steps: u64,
    scratch: Scratch,
    // Per-step selection buffers, reused across steps.
    cand: Vec<f32>,
    keys: Vec<(f32, u32)>,
    keep: Vec<bool>,
}

impl DropbackExact {
    /// Wraps `model`; overwrites its prunable weights with WR-generated
    /// initial values so pruned weights are exactly recomputable.
    ///
    /// # Panics
    ///
    /// Panics if the model has no prunable weights or
    /// `config.sparsity_factor <= 1`.
    pub fn new(mut model: Sequential, config: DropbackConfig, seed: u32) -> Self {
        assert!(
            config.sparsity_factor > 1.0,
            "sparsity factor must exceed 1"
        );
        let (wr, n) = init_from_wr(&mut model, seed, config.lambda);
        model.set_compute_backend(config.compute);
        let budget = (n as f64 / config.sparsity_factor).ceil() as usize;
        Self {
            model,
            config,
            wr,
            acc: vec![0.0; n],
            tracked: vec![false; n],
            budget,
            steps: 0,
            scratch: Scratch::new(),
            cand: Vec::new(),
            keys: Vec::new(),
            keep: Vec::new(),
        }
    }

    /// The weight budget `k`.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The WR unit backing this trainer.
    pub fn wr(&self) -> &WeightRecompute {
        &self.wr
    }

    /// Writes the materialized weight values into the model:
    /// `w_i = λᵗ·w⁰_i + (tracked_i ? acc_i : 0)`.
    fn materialize(&mut self) {
        let wr = &self.wr;
        let acc = &self.acc;
        let tracked = &self.tracked;
        let t = self.steps;
        let mut offset = 0usize;
        self.model.visit_params(&mut |p| {
            if p.kind != ParamKind::Prunable {
                return;
            }
            let data = p.values.data_mut();
            for (j, w) in data.iter_mut().enumerate() {
                let gi = offset + j;
                let base = wr.decayed_value(gi as u64, t);
                *w = base + if tracked[gi] { acc[gi] } else { 0.0 };
            }
            offset += data.len();
        });
    }
}

impl Trainer for DropbackExact {
    fn train_step(&mut self, x: &Tensor, labels: &[usize]) -> StepStats {
        let scratch = &mut self.scratch;
        let logits = self.model.forward_with(x, true, scratch);
        let (loss, dlogits) = SoftmaxCrossEntropy.loss_and_grad_with(&logits, labels, scratch);
        scratch.recycle(logits);
        let dx = self.model.backward_with(&dlogits, scratch);
        scratch.recycle(dlogits);
        scratch.recycle(dx);

        // Gather signed candidate values: tracked weights contribute their
        // updated accumulation `acc − lr·g`, pruned weights contribute
        // this step's update `−lr·g` (Alg 2's T ∪ P).
        let lr = self.config.lr;
        let aux_lr = self.config.aux_lr;
        let n = self.acc.len();
        let mut cand = std::mem::take(&mut self.cand);
        cand.clear();
        cand.resize(n, 0.0);
        {
            let acc = &self.acc;
            let tracked = &self.tracked;
            let mut offset = 0usize;
            self.model.visit_params(&mut |p| match p.kind {
                ParamKind::Prunable => {
                    let grads = p.grads.data_mut();
                    for (j, g) in grads.iter_mut().enumerate() {
                        let gi = offset + j;
                        cand[gi] = if tracked[gi] {
                            acc[gi] - lr * *g
                        } else {
                            -lr * *g
                        };
                        *g = 0.0;
                    }
                    offset += grads.len();
                }
                ParamKind::Auxiliary => {
                    for (w, g) in p
                        .values
                        .data_mut()
                        .iter_mut()
                        .zip(p.grads.data_mut().iter_mut())
                    {
                        *w -= aux_lr * *g;
                        *g = 0.0;
                    }
                }
            });
        }

        // Select the top-k candidates by magnitude (an O(n) partial
        // selection — the same outcome as Alg 2's full sort).
        let k = self.budget.min(n);
        let keys = &mut self.keys;
        keys.clear();
        keys.extend(cand.iter().enumerate().map(|(i, v)| (v.abs(), i as u32)));
        keys.select_nth_unstable_by(k - 1, |a, b| b.0.total_cmp(&a.0));
        let keep = &mut self.keep;
        keep.clear();
        keep.resize(n, false);
        for &(_, gi) in &keys[..k] {
            keep[gi as usize] = true;
        }

        let mut admitted = 0;
        let mut evicted = 0;
        for gi in 0..n {
            match (self.tracked[gi], keep[gi]) {
                (false, true) => admitted += 1,
                (true, false) => evicted += 1,
                _ => {}
            }
            self.acc[gi] = if keep[gi] { cand[gi] } else { 0.0 };
        }
        // The new membership becomes `tracked`; the old buffer is reused
        // as next step's `keep`.
        std::mem::swap(&mut self.tracked, &mut self.keep);
        self.cand = cand;
        self.steps += 1;
        self.materialize();

        let mut zeros = 0usize;
        let mut total = 0usize;
        self.model.visit_params(&mut |p| {
            if p.kind == ParamKind::Prunable {
                zeros += p.values.count_zeros();
                total += p.values.len();
            }
        });
        StepStats {
            loss,
            tracked: k,
            admitted,
            evicted,
            threshold: 0.0,
            weight_sparsity: zeros as f64 / total as f64,
        }
    }

    fn evaluate(&mut self, x: &Tensor, labels: &[usize]) -> (f32, f64) {
        evaluate_model(&mut self.model, x, labels, &mut self.scratch)
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }
}

/// Replaces prunable weights with WR-generated initial values; returns the
/// WR unit and the total prunable count.
pub(crate) fn init_from_wr(
    model: &mut Sequential,
    seed: u32,
    lambda: f32,
) -> (WeightRecompute, usize) {
    let mut layers: Vec<(usize, f32)> = Vec::new();
    model.visit_params(&mut |p| {
        if p.kind != ParamKind::Prunable {
            return;
        }
        let s = p.values.shape();
        let scale = match s.rank() {
            4 => kaiming_std(s.dim(1) * s.dim(2) * s.dim(3)),
            2 => xavier_std(s.dim(1), s.dim(0)),
            r => panic!("unexpected prunable tensor rank {r}"),
        };
        layers.push((p.values.len(), scale));
    });
    assert!(!layers.is_empty(), "model has no prunable weights");
    let wr = WeightRecompute::new(seed, &layers, lambda);
    let mut offset = 0u64;
    model.visit_params(&mut |p| {
        if p.kind != ParamKind::Prunable {
            return;
        }
        for (j, w) in p.values.data_mut().iter_mut().enumerate() {
            *w = wr.initial_value(offset + j as u64);
        }
        offset += p.values.len() as u64;
    });
    let n = offset as usize;
    (wr, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::micro_model;
    use crate::Trainer;
    use procrustes_nn::{arch, data::SyntheticImages};
    use procrustes_prng::Xorshift64;

    fn setup(lambda: f32, factor: f64) -> (DropbackExact, SyntheticImages, Xorshift64) {
        let rng = Xorshift64::new(5);
        let t = DropbackExact::new(
            micro_model(4, 5),
            DropbackConfig {
                sparsity_factor: factor,
                lr: 0.05,
                lambda,
                aux_lr: 0.05,
                ..DropbackConfig::default()
            },
            11,
        );
        (t, SyntheticImages::new(4, 16, 16, 0.2, 9), rng)
    }

    #[test]
    fn tracked_count_is_pinned_at_budget() {
        let (mut t, data, mut rng) = setup(1.0, 10.0);
        for _ in 0..3 {
            let (x, labels) = data.batch(4, &mut rng);
            let s = t.train_step(&x, &labels);
            assert_eq!(s.tracked, t.budget());
        }
    }

    #[test]
    fn no_decay_means_no_computation_sparsity() {
        let (mut t, data, mut rng) = setup(1.0, 10.0);
        let (x, labels) = data.batch(4, &mut rng);
        let s = t.train_step(&x, &labels);
        // Pruned weights are reset to non-zero initial values: Dropback's
        // hardware problem (a).
        assert!(s.weight_sparsity < 0.01, "sparsity {}", s.weight_sparsity);
    }

    #[test]
    fn decay_creates_computation_sparsity() {
        let (mut t, data, mut rng) = setup(0.9, 10.0);
        let zero_iter = t.wr().zero_iteration().unwrap();
        let mut sparsity = 0.0;
        // Fast-forward past the decay horizon with tiny batches.
        for _ in 0..=zero_iter {
            let (x, labels) = data.batch(1, &mut rng);
            sparsity = t.train_step(&x, &labels).weight_sparsity;
        }
        // Now ~90% of weights must be exactly zero.
        assert!(sparsity > 0.85, "sparsity {sparsity}");
    }

    #[test]
    fn pruned_weights_equal_wr_initial_values() {
        let (mut t, data, mut rng) = setup(1.0, 5.0);
        let (x, labels) = data.batch(4, &mut rng);
        t.train_step(&x, &labels);
        // Every pruned weight must read exactly its WR initial value.
        let wr = t.wr().clone();
        let tracked = t.tracked.clone();
        let mut offset = 0u64;
        let mut checked = 0;
        t.model_mut().visit_params(&mut |p| {
            if p.kind != ParamKind::Prunable {
                return;
            }
            for (j, w) in p.values.data().iter().enumerate() {
                let gi = offset + j as u64;
                if !tracked[gi as usize] {
                    assert_eq!(*w, wr.initial_value(gi), "weight {gi}");
                    checked += 1;
                }
            }
            offset += p.values.len() as u64;
        });
        assert!(checked > 0);
    }

    #[test]
    fn learns_above_chance_with_sparsity() {
        let (mut t, data, mut rng) = setup(0.9, 5.0);
        for _ in 0..60 {
            let (x, labels) = data.batch(16, &mut rng);
            t.train_step(&x, &labels);
        }
        let (vx, vl) = data.fixed_set(64, 321);
        let (_, acc) = t.evaluate(&vx, &vl);
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "sparsity factor must exceed 1")]
    fn bad_factor_rejected() {
        let mut rng = Xorshift64::new(5);
        DropbackExact::new(
            arch::tiny_vgg(4, &mut rng),
            DropbackConfig {
                sparsity_factor: 1.0,
                ..DropbackConfig::default()
            },
            1,
        );
    }
}
