//! Sparse training algorithms: Dropback and its hardware-friendly
//! Procrustes adaptation.
//!
//! The paper (§II-E, §III) builds on Dropback \[Golub et al., SysML 2019\]:
//! only the `k` weights with the largest *accumulated gradients* are ever
//! stored; every other weight reads its initialization-time value, which a
//! per-PE weight-recomputation (WR) unit regenerates on demand. Procrustes
//! adapts Dropback in two ways so it can be accelerated:
//!
//! 1. **Initial weight decay** (Alg 3): the recomputed initial values are
//!    decayed by λ = 0.9 every iteration, reaching zero by iteration
//!    ~1000 — after which pruned weights are *exactly zero* and their MACs
//!    can be skipped (computation sparsity).
//! 2. **Quantile-estimated thresholding** (§III-B): the global sort over
//!    millions of gradients is replaced by a streaming DUMIQUE estimate of
//!    the admission threshold ϑ; each produced gradient costs one
//!    comparison.
//!
//! This crate implements three trainers over `procrustes-nn` models:
//!
//! * [`DenseSgdTrainer`] — the unpruned baseline (“baseline (SGD)”);
//! * [`DropbackExact`] — original Dropback, Alg 2: exact sort, no decay;
//! * [`ProcrustesTrainer`] — Alg 3 + quantile estimation + WR unit.
//!
//! plus the functional models of the hardware blocks:
//! [`WeightRecompute`] (the WR unit) and [`TrackedSet`] (the accumulated-
//! gradient store with its eviction policies).
//!
//! # Examples
//!
//! ```
//! use procrustes_dropback::{ProcrustesConfig, ProcrustesTrainer, Trainer};
//! use procrustes_nn::{arch, data::SyntheticImages};
//! use procrustes_prng::Xorshift64;
//!
//! let mut rng = Xorshift64::new(0);
//! let model = arch::tiny_vgg(10, &mut rng);
//! let mut trainer = ProcrustesTrainer::new(model, ProcrustesConfig {
//!     sparsity_factor: 10.0,
//!     lr: 0.05,
//!     ..ProcrustesConfig::default()
//! }, 42);
//! let data = SyntheticImages::cifar_like(10, 1);
//! let (x, labels) = data.batch(8, &mut rng);
//! let stats = trainer.train_step(&x, &labels);
//! assert!(stats.loss > 0.0);
//! // Only ~10% of weights are ever tracked.
//! assert!(trainer.tracked_fraction() <= 0.11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
mod exact;
mod gradual;
mod procrustes;
#[cfg(test)]
mod testutil;
mod tracked;
mod wr;

pub use dense::DenseSgdTrainer;
pub use exact::{DropbackConfig, DropbackExact};
pub use gradual::{GradualConfig, GradualMagnitudeTrainer};
pub use procrustes::{ProcrustesConfig, ProcrustesTrainer};
// Every sparse trainer config carries a `compute` knob selecting the
// execution backend of the model's conv/fc kernels; re-exported so
// callers need not depend on `procrustes-nn` directly.
pub use procrustes_nn::ComputeBackend;
pub use tracked::{EvictionPolicy, TrackedSet};
pub use wr::WeightRecompute;

use procrustes_nn::Sequential;
use procrustes_tensor::Tensor;

/// Per-step statistics reported by every trainer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepStats {
    /// Mean minibatch loss.
    pub loss: f32,
    /// Number of tracked (stored) weights after the step.
    pub tracked: usize,
    /// Weights admitted to the tracked set this step.
    pub admitted: usize,
    /// Weights evicted from the tracked set this step.
    pub evicted: usize,
    /// The admission threshold ϑ used this step (0 for dense/exact).
    pub threshold: f32,
    /// Fraction of materialized weights that are exactly zero — the
    /// computation sparsity the accelerator converts into savings.
    pub weight_sparsity: f64,
}

/// The common trainer interface.
///
/// All three training algorithms expose one step of SGD-style training on
/// a labelled minibatch plus evaluation on held-out data, so experiments
/// can swap them freely (paper Figs 6, 7, 15, 16 compare exactly these).
pub trait Trainer {
    /// Runs one training step and returns its statistics.
    fn train_step(&mut self, x: &Tensor, labels: &[usize]) -> StepStats;

    /// Evaluates `(mean loss, top-1 accuracy)` without updating anything.
    fn evaluate(&mut self, x: &Tensor, labels: &[usize]) -> (f32, f64);

    /// The number of training steps taken so far.
    fn steps(&self) -> u64;

    /// Access to the underlying model (e.g. for mask extraction).
    fn model_mut(&mut self) -> &mut Sequential;
}

pub(crate) fn evaluate_model(
    model: &mut Sequential,
    x: &Tensor,
    labels: &[usize],
    scratch: &mut procrustes_nn::Scratch,
) -> (f32, f64) {
    use procrustes_nn::{accuracy, Layer, SoftmaxCrossEntropy};
    let logits = model.forward_with(x, false, scratch);
    let (loss, grad) = SoftmaxCrossEntropy.loss_and_grad_with(&logits, labels, scratch);
    let acc = accuracy(&logits, labels);
    scratch.recycle(logits);
    scratch.recycle(grad);
    (loss, acc)
}
