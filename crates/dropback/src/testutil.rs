//! Shared helpers for this crate's test modules.

use procrustes_nn::{BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential};
use procrustes_prng::Xorshift64;

/// A small CNN for 16×16 RGB inputs (fast enough for per-test training).
pub(crate) fn micro_model(classes: usize, seed: u64) -> Sequential {
    let mut rng = Xorshift64::new(seed);
    let mut m = Sequential::new();
    m.push(Conv2d::new(3, 8, 3, 1, 1, false, &mut rng));
    m.push(BatchNorm2d::new(8));
    m.push(ReLU::new());
    m.push(MaxPool2d::new(2, 2)); // 8
    m.push(Conv2d::new(8, 16, 3, 1, 1, false, &mut rng));
    m.push(BatchNorm2d::new(16));
    m.push(ReLU::new());
    m.push(MaxPool2d::new(2, 2)); // 4
    m.push(Flatten::new());
    m.push(Linear::new(16 * 4 * 4, classes, true, &mut rng));
    m
}
