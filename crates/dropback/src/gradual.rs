//! Gradual magnitude-based sparse training — the Eager-Pruning-style
//! comparator (§II-E / §VII-A of the paper).
//!
//! The gradual family (lottery ticket, Eager Pruning) starts dense and
//! removes the lowest-magnitude weights a little at a time. The paper
//! contrasts it with Procrustes: gradual pruning reaches lower sparsity,
//! keeps the *peak* memory footprint dense, and needs two storage
//! formats. This implementation uses the same DUMIQUE estimator instead
//! of the sort that Eager Pruning's published design omits from its
//! hardware accounting — demonstrating the paper's §VI-G claim that
//! quantile-based selection generalizes across sparse training schemes.

use procrustes_nn::{ComputeBackend, Layer, ParamKind, Scratch, Sequential, SoftmaxCrossEntropy};
use procrustes_quantile::Dumique;
use procrustes_tensor::Tensor;

use crate::{evaluate_model, StepStats, Trainer};

/// Configuration for [`GradualMagnitudeTrainer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradualConfig {
    /// Final target pruning factor (e.g. 2.4× as Eager Pruning reaches).
    pub final_factor: f64,
    /// Steps between pruning events.
    pub prune_every: u64,
    /// Fraction of *remaining* weights removed per pruning event.
    pub prune_fraction: f64,
    /// Learning rate.
    pub lr: f32,
    /// Momentum.
    pub momentum: f32,
    /// Which kernels the model's conv/fc layers execute on (see
    /// [`ComputeBackend`]); results are identical under every backend.
    pub compute: ComputeBackend,
}

impl Default for GradualConfig {
    fn default() -> Self {
        Self {
            final_factor: 2.5,
            prune_every: 20,
            prune_fraction: 0.08,
            lr: 0.05,
            momentum: 0.9,
            compute: ComputeBackend::Dense,
        }
    }
}

/// Gradual magnitude pruning over a dense-trained model.
///
/// Weights start dense; every `prune_every` steps the lowest-magnitude
/// survivors are zeroed (masked permanently) until the target factor is
/// reached. The cut threshold comes from a DUMIQUE estimate over the
/// surviving magnitudes — one streaming pass, no sort.
///
/// # Examples
///
/// ```
/// use procrustes_dropback::{GradualConfig, GradualMagnitudeTrainer, Trainer};
/// use procrustes_nn::{arch, data::SyntheticImages};
/// use procrustes_prng::Xorshift64;
///
/// let mut rng = Xorshift64::new(0);
/// let mut t = GradualMagnitudeTrainer::new(
///     arch::tiny_vgg(10, &mut rng),
///     GradualConfig::default(),
/// );
/// let (x, labels) = SyntheticImages::cifar_like(10, 1).batch(4, &mut rng);
/// let stats = t.train_step(&x, &labels);
/// assert!(stats.loss > 0.0);
/// ```
pub struct GradualMagnitudeTrainer {
    model: Sequential,
    config: GradualConfig,
    /// Permanent pruning mask (true = weight is dead).
    pruned: Vec<bool>,
    velocity: Vec<f32>,
    scratch: Scratch,
    n: usize,
    steps: u64,
}

impl GradualMagnitudeTrainer {
    /// Wraps a (dense-initialized) model.
    ///
    /// # Panics
    ///
    /// Panics if the model has no prunable weights or the config is
    /// degenerate.
    pub fn new(mut model: Sequential, config: GradualConfig) -> Self {
        assert!(config.final_factor > 1.0, "final factor must exceed 1");
        assert!(
            config.prune_fraction > 0.0 && config.prune_fraction < 1.0,
            "prune fraction must be in (0,1)"
        );
        assert!(config.prune_every > 0, "prune_every must be positive");
        let mut n = 0;
        model.visit_params(&mut |p| {
            if p.kind == ParamKind::Prunable {
                n += p.values.len();
            }
        });
        assert!(n > 0, "model has no prunable weights");
        model.set_compute_backend(config.compute);
        Self {
            model,
            config,
            pruned: vec![false; n],
            velocity: vec![0.0; n],
            scratch: Scratch::new(),
            n,
            steps: 0,
        }
    }

    /// Currently surviving (unpruned) weight count.
    pub fn survivors(&self) -> usize {
        self.pruned.iter().filter(|&&d| !d).count()
    }

    /// Current pruning factor (total / survivors).
    pub fn current_factor(&self) -> f64 {
        self.n as f64 / self.survivors() as f64
    }

    /// True once the target factor is reached.
    pub fn target_reached(&self) -> bool {
        self.current_factor() >= self.config.final_factor
    }

    /// Prunes the lowest-magnitude survivors using a streaming quantile
    /// estimate of the cut point (no sort, §VI-G generality).
    fn prune_event(&mut self) {
        if self.target_reached() {
            return;
        }
        // Estimate the prune_fraction-quantile of surviving magnitudes.
        // Between pruning events the hardware has `prune_every` training
        // iterations' worth of weight traffic to observe, so the model
        // makes several streaming passes with a faster adjustment rate —
        // still one comparison per observation, never a sort.
        let mut est = Dumique::with_params(self.config.prune_fraction, 1e-6, 0.02);
        let pruned = &self.pruned;
        for _ in 0..8 {
            let mut offset = 0usize;
            self.model.visit_params(&mut |p| {
                if p.kind != ParamKind::Prunable {
                    return;
                }
                for (j, w) in p.values.data().iter().enumerate() {
                    if !pruned[offset + j] {
                        est.update(w.abs().max(1e-30));
                    }
                }
                offset += p.values.len();
            });
        }
        let cut = est.estimate();
        // Kill survivors below the cut (bounded so one event cannot
        // overshoot the target).
        let max_kills = {
            let survivors = self.survivors() as f64;
            let target_survivors = self.n as f64 / self.config.final_factor;
            ((survivors - target_survivors)
                .max(0.0)
                .min(survivors * self.config.prune_fraction * 1.5)) as usize
        };
        let mut kills = 0usize;
        let pruned = &mut self.pruned;
        let mut offset = 0usize;
        self.model.visit_params(&mut |p| {
            if p.kind != ParamKind::Prunable {
                return;
            }
            for (j, w) in p.values.data_mut().iter_mut().enumerate() {
                let gi = offset + j;
                if !pruned[gi] && kills < max_kills && w.abs() < cut {
                    pruned[gi] = true;
                    *w = 0.0;
                    kills += 1;
                }
            }
            offset += p.values.len();
        });
    }
}

impl Trainer for GradualMagnitudeTrainer {
    fn train_step(&mut self, x: &Tensor, labels: &[usize]) -> StepStats {
        let scratch = &mut self.scratch;
        let logits = self.model.forward_with(x, true, scratch);
        let (loss, dlogits) = SoftmaxCrossEntropy.loss_and_grad_with(&logits, labels, scratch);
        scratch.recycle(logits);
        let dx = self.model.backward_with(&dlogits, scratch);
        scratch.recycle(dlogits);
        scratch.recycle(dx);

        // Masked momentum-SGD update.
        let lr = self.config.lr;
        let momentum = self.config.momentum;
        {
            let pruned = &self.pruned;
            let velocity = &mut self.velocity;
            let mut offset = 0usize;
            self.model.visit_params(&mut |p| match p.kind {
                ParamKind::Prunable => {
                    for (j, (w, g)) in p
                        .values
                        .data_mut()
                        .iter_mut()
                        .zip(p.grads.data_mut().iter_mut())
                        .enumerate()
                    {
                        let gi = offset + j;
                        if pruned[gi] {
                            *w = 0.0;
                        } else {
                            velocity[gi] = momentum * velocity[gi] + *g;
                            *w -= lr * velocity[gi];
                        }
                        *g = 0.0;
                    }
                    offset += p.values.len();
                }
                ParamKind::Auxiliary => {
                    for (w, g) in p
                        .values
                        .data_mut()
                        .iter_mut()
                        .zip(p.grads.data_mut().iter_mut())
                    {
                        *w -= lr * *g;
                        *g = 0.0;
                    }
                }
            });
        }

        self.steps += 1;
        // `u64::is_multiple_of` would read better but needs Rust 1.87;
        // the workspace MSRV is 1.82.
        if self.steps % self.config.prune_every == 0 {
            self.prune_event();
        }
        StepStats {
            loss,
            tracked: self.survivors(),
            admitted: 0,
            evicted: 0,
            threshold: 0.0,
            weight_sparsity: 1.0 - self.survivors() as f64 / self.n as f64,
        }
    }

    fn evaluate(&mut self, x: &Tensor, labels: &[usize]) -> (f32, f64) {
        evaluate_model(&mut self.model, x, labels, &mut self.scratch)
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::micro_model;
    use procrustes_nn::data::SyntheticImages;
    use procrustes_prng::Xorshift64;

    fn setup() -> (GradualMagnitudeTrainer, SyntheticImages, Xorshift64) {
        let t = GradualMagnitudeTrainer::new(
            micro_model(4, 3),
            GradualConfig {
                final_factor: 2.0,
                prune_every: 5,
                prune_fraction: 0.15,
                ..GradualConfig::default()
            },
        );
        (
            t,
            SyntheticImages::new(4, 16, 16, 0.2, 4),
            Xorshift64::new(6),
        )
    }

    #[test]
    fn sparsity_increases_gradually_to_target() {
        let (mut t, data, mut rng) = setup();
        let mut sparsities = Vec::new();
        for _ in 0..60 {
            let (x, labels) = data.batch(4, &mut rng);
            sparsities.push(t.train_step(&x, &labels).weight_sparsity);
        }
        // Monotone non-decreasing, and reaches roughly the 2x target.
        assert!(sparsities.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        assert!(
            *sparsities.last().unwrap() > 0.35,
            "{:?}",
            sparsities.last()
        );
        assert!(
            t.current_factor() <= 2.3,
            "overshot: {}",
            t.current_factor()
        );
    }

    #[test]
    fn pruned_weights_stay_zero() {
        let (mut t, data, mut rng) = setup();
        for _ in 0..25 {
            let (x, labels) = data.batch(4, &mut rng);
            t.train_step(&x, &labels);
        }
        let pruned = t.pruned.clone();
        let mut offset = 0usize;
        t.model_mut().visit_params(&mut |p| {
            if p.kind != ParamKind::Prunable {
                return;
            }
            for (j, w) in p.values.data().iter().enumerate() {
                if pruned[offset + j] {
                    assert_eq!(*w, 0.0, "pruned weight {j} revived");
                }
            }
            offset += p.values.len();
        });
    }

    #[test]
    fn still_learns_while_pruning() {
        let (mut t, data, mut rng) = setup();
        for _ in 0..60 {
            let (x, labels) = data.batch(16, &mut rng);
            t.train_step(&x, &labels);
        }
        let (vx, vl) = data.fixed_set(64, 5);
        let (_, acc) = t.evaluate(&vx, &vl);
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "final factor must exceed 1")]
    fn bad_factor_rejected() {
        GradualMagnitudeTrainer::new(
            micro_model(4, 3),
            GradualConfig {
                final_factor: 1.0,
                ..GradualConfig::default()
            },
        );
    }
}
