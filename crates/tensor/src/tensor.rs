//! The dense tensor type and its elementwise / linear-algebra operations.

use std::fmt;
use std::ops::{Add, Mul, Sub};

use procrustes_prng::UniformRng;

use crate::Shape;

/// An owned, contiguous, row-major `f32` tensor.
///
/// `Tensor` is intentionally minimal: everything the DNN training framework
/// and the accelerator workloads need, and nothing else. Indexing is by
/// multi-index slice (`at`, `set`) or raw data access (`data`,
/// `data_mut`) for kernels.
///
/// # Examples
///
/// ```
/// use procrustes_tensor::Tensor;
/// let mut t = Tensor::zeros(&[2, 2]);
/// t.set(&[0, 1], 3.0);
/// assert_eq!(t.at(&[0, 1]), 3.0);
/// assert_eq!(t.sum(), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Self {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Self {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a tensor whose element at multi-index `i` is `f(i)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use procrustes_tensor::Tensor;
    /// let t = Tensor::from_fn(&[2, 3], |i| (i[0] * 10 + i[1]) as f32);
    /// assert_eq!(t.at(&[1, 2]), 12.0);
    /// ```
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let shape = Shape::new(dims);
        let mut data = Vec::with_capacity(shape.len());
        for off in 0..shape.len() {
            data.push(f(&shape.unlinear(off)));
        }
        Self { shape, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(dims: &[usize], data: Vec<f32>) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "from_vec: buffer length {} != shape {} element count {}",
            data.len(),
            shape,
            shape.len()
        );
        Self { shape, data }
    }

    /// Creates a tensor of i.i.d. `N(0, std²)` values drawn from `rng`
    /// (Irwin–Hall Gaussian approximation; see `procrustes-prng`).
    pub fn randn<R: UniformRng + ?Sized>(dims: &[usize], std: f32, rng: &mut R) -> Self {
        Self::from_fn(dims, |_| {
            let sum = rng.next_f32() + rng.next_f32() + rng.next_f32();
            (sum - 1.5) * 2.0 * std
        })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false (zero-sized tensors are unconstructible).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at multi-index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.linear(idx)]
    }

    /// Sets the element at multi-index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.shape.linear(idx);
        self.data[off] = value;
    }

    /// Copies this tensor's contents into `slot`, reusing `slot`'s
    /// existing buffer when the element counts match — the
    /// allocation-free way for layers to cache an activation between
    /// forward and backward.
    pub fn clone_into_slot(&self, slot: &mut Option<Tensor>) {
        match slot {
            Some(t) if t.data.len() == self.data.len() => {
                t.data.copy_from_slice(&self.data);
                t.shape = self.shape.clone();
            }
            _ => *slot = Some(self.clone()),
        }
    }

    /// Reinterprets the buffer under a new shape with the same element
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.len(),
            self.data.len(),
            "reshape: {} -> {} changes element count",
            self.shape,
            shape
        );
        self.shape = shape;
        self
    }

    // ----- elementwise -----------------------------------------------------

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        self.assert_same_shape(other, "zip_with");
        Self {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += alpha * other` (BLAS `axpy`), in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        self.assert_same_shape(other, "axpy");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    // ----- reductions ------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Maximum element (NaNs ignored).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element in the flattened buffer.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Number of elements with value exactly `0.0`.
    ///
    /// Used pervasively to measure computation sparsity.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&x| x == 0.0).count()
    }

    /// Fraction of elements that are exactly zero, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        self.count_zeros() as f64 / self.len() as f64
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    // ----- linear algebra ---------------------------------------------------

    /// Matrix product of two rank-2 tensors: `[M,K] × [K,N] -> [M,N]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions
    /// disagree.
    ///
    /// # Examples
    ///
    /// ```
    /// use procrustes_tensor::Tensor;
    /// let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
    /// let b = Tensor::from_vec(&[2, 1], vec![1.0, 1.0]);
    /// let c = a.matmul(&b);
    /// assert_eq!(c.data(), &[3.0, 7.0]);
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "matmul: lhs must be rank 2");
        assert_eq!(other.shape.rank(), 2, "matmul: rhs must be rank 2");
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "matmul: inner dims {k} != {k2}");
        let mut out = vec![0.0f32; m * n];
        // Blocked, register-tiled GEMM; accumulation order per output
        // element is identical to the naive ikj loop (see the `gemm`
        // module docs for the contract).
        crate::gemm_into(&mut out, &self.data, &other.data, m, k, n);
        Tensor::from_vec(&[m, n], out)
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2d(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose2d: tensor must be rank 2");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; m * n];
        // Tiled copy: both streams stay within a few cache lines per
        // tile instead of one side striding the full row length.
        crate::transpose_into(&mut out, &self.data, m, n);
        Tensor::from_vec(&[n, m], out)
    }

    /// Rotates the two trailing (spatial) dimensions by 180° — the filter
    /// transformation of the training backward pass (Fig 2b of the paper).
    ///
    /// # Panics
    ///
    /// Panics if the tensor has rank < 2.
    ///
    /// # Examples
    ///
    /// ```
    /// use procrustes_tensor::Tensor;
    /// let w = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
    /// let r = w.rotate180();
    /// assert_eq!(r.data(), &[4.0, 3.0, 2.0, 1.0]);
    /// ```
    pub fn rotate180(&self) -> Tensor {
        let rank = self.shape.rank();
        assert!(rank >= 2, "rotate180: need at least 2 dims");
        let r = self.shape.dim(rank - 2);
        let s = self.shape.dim(rank - 1);
        let plane = r * s;
        let planes = self.len() / plane;
        let mut out = vec![0.0f32; self.len()];
        for p in 0..planes {
            let src = &self.data[p * plane..(p + 1) * plane];
            let dst = &mut out[p * plane..(p + 1) * plane];
            for (i, &v) in src.iter().enumerate() {
                dst[plane - 1 - i] = v;
            }
        }
        Tensor {
            shape: self.shape.clone(),
            data: out,
        }
    }

    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert!(
            self.shape.same_as(&other.shape),
            "{op}: shape mismatch {} vs {}",
            self.shape,
            other.shape
        );
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.len() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{:?}, … ; mean={:.4}]", &self.data[..8], self.mean())
        }
    }
}

impl Add for &Tensor {
    type Output = Tensor;

    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a + b)
    }
}

impl Sub for &Tensor {
    type Output = Tensor;

    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a - b)
    }
}

impl Mul for &Tensor {
    type Output = Tensor;

    /// Elementwise (Hadamard) product.
    fn mul(self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use procrustes_prng::Xorshift64;

    #[test]
    fn constructors_fill_correctly() {
        assert_eq!(Tensor::zeros(&[3]).data(), &[0.0, 0.0, 0.0]);
        assert_eq!(Tensor::ones(&[2]).data(), &[1.0, 1.0]);
        assert_eq!(Tensor::full(&[2], 7.0).data(), &[7.0, 7.0]);
    }

    #[test]
    fn from_fn_sees_multi_indices() {
        let t = Tensor::from_fn(&[2, 2], |i| (i[0] * 2 + i[1]) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_validates_length() {
        Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let id = Tensor::from_fn(&[2, 2], |i| if i[0] == i[1] { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_checks_inner_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        a.matmul(&b);
    }

    #[test]
    fn transpose_involutes() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose2d().transpose2d(), a);
        assert_eq!(a.transpose2d().at(&[2, 1]), 6.0);
    }

    #[test]
    fn rotate180_involutes() {
        let w = Tensor::from_fn(&[2, 3, 3, 3], |i| {
            (i[0] + 2 * i[1] + 3 * i[2] + 5 * i[3]) as f32
        });
        assert_eq!(w.rotate180().rotate180(), w);
    }

    #[test]
    fn rotate180_moves_corner_to_corner() {
        let w = Tensor::from_fn(&[1, 1, 3, 3], |i| (i[2] * 3 + i[3]) as f32);
        let r = w.rotate180();
        assert_eq!(r.at(&[0, 0, 0, 0]), 8.0);
        assert_eq!(r.at(&[0, 0, 2, 2]), 0.0);
        assert_eq!(r.at(&[0, 0, 1, 1]), 4.0); // centre fixed
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(&[3], vec![1., 2., 3.]);
        let b = Tensor::from_vec(&[3], vec![4., 5., 6.]);
        assert_eq!((&a + &b).data(), &[5., 7., 9.]);
        assert_eq!((&b - &a).data(), &[3., 3., 3.]);
        assert_eq!((&a * &b).data(), &[4., 10., 18.]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_vec(&[2], vec![1., 2.]);
        let b = Tensor::from_vec(&[2], vec![10., 20.]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6., 12.]);
        a.scale(2.0);
        assert_eq!(a.data(), &[12., 24.]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(&[4], vec![-1., 0., 3., 0.]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.argmax(), 2);
        assert_eq!(t.count_zeros(), 2);
        assert_eq!(t.sparsity(), 0.5);
        assert_eq!(t.norm_sq(), 10.0);
    }

    #[test]
    fn randn_moments() {
        let mut rng = Xorshift64::new(4);
        let t = Tensor::randn(&[100_000], 2.0, &mut rng);
        assert!(t.mean().abs() < 0.05);
        let var = t.norm_sq() / t.len() as f32 - t.mean().powi(2);
        assert!((var - 4.0).abs() < 0.2, "var = {var}");
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.clone().reshape(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape().dims(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_validates_count() {
        Tensor::zeros(&[2, 3]).reshape(&[7]);
    }

    #[test]
    fn debug_is_nonempty_for_large_tensors() {
        let t = Tensor::zeros(&[100]);
        let s = format!("{t:?}");
        assert!(s.contains("mean"));
    }
}
