//! The three convolution kernels of CNN training (Fig 2 of the paper) plus
//! the im2col fast path.
//!
//! All kernels take activations in `NCHW` layout and weights in `KCRS`
//! layout, and support symmetric zero padding and a uniform stride — the
//! configurations the paper's five networks use.

use crate::kernel::{self, Blueprint};
use crate::{Scratch, Tensor};

/// Output extent of a convolution along one axis.
///
/// # Panics
///
/// Panics if the filter does not fit (`input + 2·pad < filter`) or
/// `stride == 0`.
///
/// # Examples
///
/// ```
/// use procrustes_tensor::conv_out_dim;
/// assert_eq!(conv_out_dim(32, 3, 1, 1), 32); // "same" conv
/// assert_eq!(conv_out_dim(32, 3, 2, 1), 16); // strided downsample
/// ```
pub fn conv_out_dim(input: usize, filter: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "conv_out_dim: stride must be positive");
    assert!(
        input + 2 * pad >= filter,
        "conv_out_dim: filter {filter} larger than padded input {}",
        input + 2 * pad
    );
    (input + 2 * pad - filter) / stride + 1
}

fn check_conv_operands(
    x: &Tensor,
    w: &Tensor,
) -> (usize, usize, usize, usize, usize, usize, usize) {
    assert_eq!(x.shape().rank(), 4, "conv: activations must be NCHW");
    assert_eq!(w.shape().rank(), 4, "conv: weights must be KCRS");
    let (n, c, h, wdt) = (
        x.shape().dim(0),
        x.shape().dim(1),
        x.shape().dim(2),
        x.shape().dim(3),
    );
    let (k, cw, r, s) = (
        w.shape().dim(0),
        w.shape().dim(1),
        w.shape().dim(2),
        w.shape().dim(3),
    );
    assert_eq!(
        c, cw,
        "conv: input channels {c} != weight input channels {cw}"
    );
    let _ = (r, s);
    (n, c, k, h, wdt, r, s)
}

/// Forward convolution: `y[n,k,p,q] = Σ_{c,r,s} w[k,c,r,s]·x[n,c,p·t+r−pad,q·t+s−pad]`
/// (Fig 2a / Alg 1 of the paper; `t` = stride).
///
/// # Panics
///
/// Panics on rank or channel mismatches, or if the filter does not fit.
///
/// # Examples
///
/// ```
/// use procrustes_tensor::{conv2d, Tensor};
/// let x = Tensor::ones(&[1, 1, 3, 3]);
/// let w = Tensor::ones(&[1, 1, 3, 3]);
/// assert_eq!(conv2d(&x, &w, 1, 0).data(), &[9.0]);
/// ```
pub fn conv2d(x: &Tensor, w: &Tensor, stride: usize, pad: usize) -> Tensor {
    let (n, c, k, h, wdt, r, s) = check_conv_operands(x, w);
    let p = conv_out_dim(h, r, stride, pad);
    let q = conv_out_dim(wdt, s, stride, pad);
    let mut y = Tensor::zeros(&[n, k, p, q]);

    let xs = x.data();
    let ws = w.data();
    let ys = y.data_mut();
    for ni in 0..n {
        for ki in 0..k {
            for ci in 0..c {
                let wbase = ((ki * c) + ci) * r * s;
                for pi in 0..p {
                    for qi in 0..q {
                        let mut acc = 0.0f32;
                        for ri in 0..r {
                            let hi = pi * stride + ri;
                            if hi < pad || hi - pad >= h {
                                continue;
                            }
                            let hi = hi - pad;
                            for si in 0..s {
                                let wi = qi * stride + si;
                                if wi < pad || wi - pad >= wdt {
                                    continue;
                                }
                                let wi = wi - pad;
                                acc += ws[wbase + ri * s + si]
                                    * xs[((ni * c + ci) * h + hi) * wdt + wi];
                            }
                        }
                        ys[((ni * k + ki) * p + pi) * q + qi] += acc;
                    }
                }
            }
        }
    }
    y
}

/// Backward-pass convolution (Fig 2b): propagates `∂L/∂y` through the layer,
/// producing `∂L/∂x`. Mathematically this is a convolution with each filter
/// rotated 180° — the access-order change that breaks inference-oriented
/// sparse weight formats (§II-D of the paper).
///
/// `h`/`w` are the *input* spatial extents (needed because stride makes the
/// inverse shape ambiguous).
///
/// # Panics
///
/// Panics on rank/channel mismatches or if `dy`'s spatial extents are not
/// consistent with `(h, w, stride, pad)`.
pub fn conv2d_backward_input(
    dy: &Tensor,
    w: &Tensor,
    h: usize,
    wdt: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    assert_eq!(dy.shape().rank(), 4, "conv bw: dy must be NKPQ");
    assert_eq!(w.shape().rank(), 4, "conv bw: weights must be KCRS");
    let (n, k, p, q) = (
        dy.shape().dim(0),
        dy.shape().dim(1),
        dy.shape().dim(2),
        dy.shape().dim(3),
    );
    let (kw, c, r, s) = (
        w.shape().dim(0),
        w.shape().dim(1),
        w.shape().dim(2),
        w.shape().dim(3),
    );
    assert_eq!(
        k, kw,
        "conv bw: dy channels {k} != weight out-channels {kw}"
    );
    assert_eq!(
        p,
        conv_out_dim(h, r, stride, pad),
        "conv bw: dy height inconsistent with input geometry"
    );
    assert_eq!(
        q,
        conv_out_dim(wdt, s, stride, pad),
        "conv bw: dy width inconsistent with input geometry"
    );

    let mut dx = Tensor::zeros(&[n, c, h, wdt]);
    let dys = dy.data();
    let ws = w.data();
    let dxs = dx.data_mut();
    // Scatter form: each dy element contributes to the input window it was
    // computed from. Equivalent to the rotated-filter gather of Fig 2b.
    for ni in 0..n {
        for ki in 0..k {
            for pi in 0..p {
                for qi in 0..q {
                    let g = dys[((ni * k + ki) * p + pi) * q + qi];
                    if g == 0.0 {
                        continue;
                    }
                    for ci in 0..c {
                        let wbase = ((ki * c) + ci) * r * s;
                        for ri in 0..r {
                            let hi = pi * stride + ri;
                            if hi < pad || hi - pad >= h {
                                continue;
                            }
                            let hi = hi - pad;
                            for si in 0..s {
                                let wi = qi * stride + si;
                                if wi < pad || wi - pad >= wdt {
                                    continue;
                                }
                                let wi = wi - pad;
                                dxs[((ni * c + ci) * h + hi) * wdt + wi] +=
                                    g * ws[wbase + ri * s + si];
                            }
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Weight-update convolution (Fig 2c): `∂L/∂w[k,c,r,s] =
/// Σ_{n,p,q} x[n,c,p·t+r−pad,q·t+s−pad]·∂L/∂y[n,k,p,q]`.
///
/// This is the phase where Procrustes exploits *activation* sparsity
/// (zeros in `x` from ReLU) rather than weight sparsity.
///
/// # Panics
///
/// Panics on rank mismatches or inconsistent geometries.
pub fn conv2d_backward_weights(
    x: &Tensor,
    dy: &Tensor,
    r: usize,
    s: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    assert_eq!(x.shape().rank(), 4, "conv wu: x must be NCHW");
    assert_eq!(dy.shape().rank(), 4, "conv wu: dy must be NKPQ");
    let (n, c, h, wdt) = (
        x.shape().dim(0),
        x.shape().dim(1),
        x.shape().dim(2),
        x.shape().dim(3),
    );
    let (n2, k, p, q) = (
        dy.shape().dim(0),
        dy.shape().dim(1),
        dy.shape().dim(2),
        dy.shape().dim(3),
    );
    assert_eq!(n, n2, "conv wu: batch mismatch {n} != {n2}");
    assert_eq!(p, conv_out_dim(h, r, stride, pad), "conv wu: bad dy height");
    assert_eq!(
        q,
        conv_out_dim(wdt, s, stride, pad),
        "conv wu: bad dy width"
    );

    let mut dw = Tensor::zeros(&[k, c, r, s]);
    let xs = x.data();
    let dys = dy.data();
    let dws = dw.data_mut();
    for ni in 0..n {
        for ki in 0..k {
            for pi in 0..p {
                for qi in 0..q {
                    let g = dys[((ni * k + ki) * p + pi) * q + qi];
                    if g == 0.0 {
                        continue;
                    }
                    for ci in 0..c {
                        for ri in 0..r {
                            let hi = pi * stride + ri;
                            if hi < pad || hi - pad >= h {
                                continue;
                            }
                            let hi = hi - pad;
                            for si in 0..s {
                                let wi = qi * stride + si;
                                if wi < pad || wi - pad >= wdt {
                                    continue;
                                }
                                let wi = wi - pad;
                                dws[((ki * c + ci) * r + ri) * s + si] +=
                                    g * xs[((ni * c + ci) * h + hi) * wdt + wi];
                            }
                        }
                    }
                }
            }
        }
    }
    dw
}

/// Unfolds `x` (`NCHW`) into a `[C·R·S, N·P·Q]` matrix of convolution
/// windows, so the forward pass becomes one matmul
/// (see [`conv2d_im2col`]).
pub fn im2col(x: &Tensor, r: usize, s: usize, stride: usize, pad: usize) -> Tensor {
    assert_eq!(x.shape().rank(), 4, "im2col: x must be NCHW");
    let (n, c, h, wdt) = (
        x.shape().dim(0),
        x.shape().dim(1),
        x.shape().dim(2),
        x.shape().dim(3),
    );
    let p = conv_out_dim(h, r, stride, pad);
    let q = conv_out_dim(wdt, s, stride, pad);
    let rows = c * r * s;
    let cols = n * p * q;
    let mut out = vec![0.0f32; rows * cols];
    im2col_into(x, r, s, stride, pad, &mut out);
    Tensor::from_vec(&[rows, cols], out)
}

/// [`im2col`] into a caller-provided buffer of exactly
/// `(C·R·S)·(N·P·Q)` elements — the allocation-free form layers use with
/// their cached column tensors. The buffer is fully overwritten
/// (padding positions become `0.0`).
///
/// # Panics
///
/// Panics if `x` is not rank 4, the filter does not fit, or `dst` has
/// the wrong length.
pub fn im2col_into(x: &Tensor, r: usize, s: usize, stride: usize, pad: usize, dst: &mut [f32]) {
    assert_eq!(x.shape().rank(), 4, "im2col: x must be NCHW");
    let (n, c, h, wdt) = (
        x.shape().dim(0),
        x.shape().dim(1),
        x.shape().dim(2),
        x.shape().dim(3),
    );
    let p = conv_out_dim(h, r, stride, pad);
    let q = conv_out_dim(wdt, s, stride, pad);
    let cols = n * p * q;
    assert_eq!(
        dst.len(),
        c * r * s * cols,
        "im2col_into: dst length mismatch"
    );
    dst.fill(0.0);
    let out = dst;
    let xs = x.data();
    for ci in 0..c {
        for ri in 0..r {
            for si in 0..s {
                let row = (ci * r + ri) * s + si;
                for ni in 0..n {
                    for pi in 0..p {
                        let hi = pi * stride + ri;
                        if hi < pad || hi - pad >= h {
                            continue;
                        }
                        let hi = hi - pad;
                        for qi in 0..q {
                            let wi = qi * stride + si;
                            if wi < pad || wi - pad >= wdt {
                                continue;
                            }
                            let wi = wi - pad;
                            out[row * cols + (ni * p + pi) * q + qi] =
                                xs[((ni * c + ci) * h + hi) * wdt + wi];
                        }
                    }
                }
            }
        }
    }
}

/// Folds a `[C·R·S, N·P·Q]` column matrix back into an `NCHW` activation
/// gradient, accumulating overlapping windows (the adjoint of [`im2col`]).
#[allow(clippy::too_many_arguments)] // mirrors the conv geometry tuple
pub fn col2im(
    cols: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    wdt: usize,
    r: usize,
    s: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    let p = conv_out_dim(h, r, stride, pad);
    let q = conv_out_dim(wdt, s, stride, pad);
    assert_eq!(
        cols.shape().dims(),
        &[c * r * s, n * p * q],
        "col2im: column matrix has wrong shape"
    );
    let mut x = Tensor::zeros(&[n, c, h, wdt]);
    let cs = cols.data();
    let xs = x.data_mut();
    let ncols = n * p * q;
    for ci in 0..c {
        for ri in 0..r {
            for si in 0..s {
                let row = (ci * r + ri) * s + si;
                for ni in 0..n {
                    for pi in 0..p {
                        let hi = pi * stride + ri;
                        if hi < pad || hi - pad >= h {
                            continue;
                        }
                        let hi = hi - pad;
                        for qi in 0..q {
                            let wi = qi * stride + si;
                            if wi < pad || wi - pad >= wdt {
                                continue;
                            }
                            let wi = wi - pad;
                            xs[((ni * c + ci) * h + hi) * wdt + wi] +=
                                cs[row * ncols + (ni * p + pi) * q + qi];
                        }
                    }
                }
            }
        }
    }
    x
}

/// Forward convolution through im2col + matmul; numerically identical to
/// [`conv2d`] up to floating-point association order.
///
/// # Panics
///
/// Same conditions as [`conv2d`].
pub fn conv2d_im2col(x: &Tensor, w: &Tensor, stride: usize, pad: usize) -> Tensor {
    let (n, c, k, h, wdt, r, s) = check_conv_operands(x, w);
    let p = conv_out_dim(h, r, stride, pad);
    let q = conv_out_dim(wdt, s, stride, pad);
    let cols = im2col(x, r, s, stride, pad);
    let wmat = w.clone().reshape(&[k, c * r * s]);
    let ymat = wmat.matmul(&cols); // [K, N*P*Q]
                                   // Reorder [K, N, P, Q] -> [N, K, P, Q].
    let ys = ymat.data();
    let mut out = vec![0.0f32; n * k * p * q];
    for ki in 0..k {
        for ni in 0..n {
            let src = &ys[(ki * n + ni) * p * q..(ki * n + ni + 1) * p * q];
            let dst = &mut out[((ni * k + ki) * p) * q..((ni * k + ki) * p + p) * q];
            dst.copy_from_slice(src);
        }
    }
    Tensor::from_vec(&[n, k, p, q], out)
}

/// Copies `src` viewed as `[a, b, plane]` into `dst` as `[b, a, plane]`
/// (plane-contiguous transpose of the two leading group axes).
fn permute_group_pair(dst: &mut [f32], src: &[f32], a: usize, b: usize, plane: usize) {
    debug_assert_eq!(src.len(), a * b * plane);
    debug_assert_eq!(dst.len(), a * b * plane);
    for ai in 0..a {
        for bi in 0..b {
            let s = (ai * b + bi) * plane;
            let d = (bi * a + ai) * plane;
            dst[d..d + plane].copy_from_slice(&src[s..s + plane]);
        }
    }
}

/// Forward convolution from precomputed im2col columns: one GEMM
/// (`[K, C·R·S] × [C·R·S, N·P·Q]`) plus the `[K, N] → [N, K]` plane
/// reorder. Equal (`f32 ==`) to [`conv2d_im2col`] on the same operands;
/// all buffers come from `scratch` (the result tensor too, so callers
/// can recycle it).
///
/// # Panics
///
/// Panics if `w` is not `KCRS` or `cols` has the wrong length.
pub fn conv2d_from_cols(
    w: &Tensor,
    cols: &[f32],
    n: usize,
    p: usize,
    q: usize,
    scratch: &mut Scratch,
) -> Tensor {
    assert_eq!(
        w.shape().rank(),
        4,
        "conv2d_from_cols: weights must be KCRS"
    );
    let k = w.shape().dim(0);
    let crs = w.len() / k;
    let npq = n * p * q;
    assert_eq!(
        cols.len(),
        crs * npq,
        "conv2d_from_cols: column matrix length mismatch"
    );
    let mut ymat = scratch.take_any(k * npq);
    // KCRS weights are row-major [K, C·R·S] as-is: no reshape copy.
    kernel::gemm(
        &Blueprint::nn(k, crs, npq).with_threads(kernel::default_threads()),
        &mut ymat,
        w.data(),
        cols,
        scratch,
    );
    let mut y = scratch.take_any(npq * k);
    permute_group_pair(&mut y, &ymat, k, n, p * q);
    scratch.recycle_vec(ymat);
    Tensor::from_vec(&[n, k, p, q], y)
}

/// Weight-update convolution from the forward pass's cached im2col
/// columns: `∂L/∂w = dy_mat · colsᵀ`, one transposed-B GEMM.
///
/// For each `dw[k,c,r,s]` the contributions arrive over
/// `(n, p, q)` ascending — exactly [`conv2d_backward_weights`]'s
/// reduction order — so the result compares equal (`f32 ==`) to the
/// scatter kernel on finite data.
///
/// # Panics
///
/// Panics if `dy` is not rank 4 or `cols` has the wrong length.
pub fn conv2d_backward_weights_from_cols(
    dy: &Tensor,
    cols: &[f32],
    c: usize,
    r: usize,
    s: usize,
    scratch: &mut Scratch,
) -> Tensor {
    assert_eq!(dy.shape().rank(), 4, "conv wu: dy must be NKPQ");
    let (n, k, p, q) = (
        dy.shape().dim(0),
        dy.shape().dim(1),
        dy.shape().dim(2),
        dy.shape().dim(3),
    );
    let npq = n * p * q;
    let crs = c * r * s;
    assert_eq!(
        cols.len(),
        crs * npq,
        "conv wu: column matrix length mismatch"
    );
    // dy arrives [N, K, P, Q]; the GEMM wants K-major rows.
    let mut dyt = scratch.take_any(k * npq);
    permute_group_pair(&mut dyt, dy.data(), n, k, p * q);
    let mut dw = scratch.take_any(k * crs);
    kernel::gemm(
        &Blueprint::nt(k, npq, crs).with_threads(kernel::default_threads()),
        &mut dw,
        &dyt,
        cols,
        scratch,
    );
    scratch.recycle_vec(dyt);
    Tensor::from_vec(&[k, c, r, s], dw)
}

/// Backward-pass convolution (Fig 2b) as a GEMM: gathers `∂L/∂x` by
/// multiplying 180°-rotated, channel-swapped filters against the im2col
/// matrix of the (stride-dilated, full-padded) upstream gradient.
///
/// # Why this formulation
///
/// The obvious `col2im(wᵀ·dy)` collapses the `k` (output-channel) sum
/// *before* the filter-tap sum, re-associating each `dx` element's
/// reduction and losing exact equality with the scatter kernel. Here
/// each `dx[n,c,hi,wi]` instead reduces over rotated-filter rows
/// `(k, r', s')` in ascending order, which maps back to the scatter
/// kernel's `(k, p, q)`-ascending order term for term — so the result
/// compares equal (`f32 ==`) to [`conv2d_backward_input`] on finite
/// data, and to the CSB backward kernel, preserving the dense==CSB
/// contract.
///
/// # Panics
///
/// Same conditions as [`conv2d_backward_input`].
pub fn conv2d_backward_input_gemm(
    dy: &Tensor,
    w: &Tensor,
    h: usize,
    wdt: usize,
    stride: usize,
    pad: usize,
    scratch: &mut Scratch,
) -> Tensor {
    assert_eq!(dy.shape().rank(), 4, "conv bw: dy must be NKPQ");
    assert_eq!(w.shape().rank(), 4, "conv bw: weights must be KCRS");
    let (n, k, p, q) = (
        dy.shape().dim(0),
        dy.shape().dim(1),
        dy.shape().dim(2),
        dy.shape().dim(3),
    );
    let (kw, c, r, s) = (
        w.shape().dim(0),
        w.shape().dim(1),
        w.shape().dim(2),
        w.shape().dim(3),
    );
    assert_eq!(
        k, kw,
        "conv bw: dy channels {k} != weight out-channels {kw}"
    );
    assert_eq!(
        p,
        conv_out_dim(h, r, stride, pad),
        "conv bw: dy height inconsistent with input geometry"
    );
    assert_eq!(
        q,
        conv_out_dim(wdt, s, stride, pad),
        "conv bw: dy width inconsistent with input geometry"
    );

    let krs = k * r * s;
    let nhw = n * h * wdt;

    // Rotated, channel-swapped filter matrix: wrot[c][(k, r', s')] =
    // w[k, c, r-1-r', s-1-s'] (the fetch-time rotation of Fig 2b).
    let mut wrot = scratch.take_any(c * krs);
    let ws = w.data();
    for ci in 0..c {
        for ki in 0..k {
            for rr in 0..r {
                for ss in 0..s {
                    wrot[ci * krs + (ki * r + rr) * s + ss] =
                        ws[((ki * c + ci) * r + (r - 1 - rr)) * s + (s - 1 - ss)];
                }
            }
        }
    }

    // im2col of dy dilated by `stride` and padded by (r-1-pad, s-1-pad):
    // dycols[(k, r', s')][(n, hi, wi)] = dy[n, k, pi, qi] where
    // hi = pi·stride + (r-1-pad) - r'  (and likewise for wi), 0 where no
    // such pi/qi exists. `take` zero-fills, so only hits are written.
    let padh = (r - 1) as isize - pad as isize;
    let padw = (s - 1) as isize - pad as isize;
    let mut dycols = scratch.take(krs * nhw);
    let dys = dy.data();
    for ki in 0..k {
        for rr in 0..r {
            let off_h = padh - rr as isize;
            for ss in 0..s {
                let off_w = padw - ss as isize;
                let rowbase = ((ki * r + rr) * s + ss) * nhw;
                for ni in 0..n {
                    for pi in 0..p {
                        let hi = pi as isize * stride as isize + off_h;
                        if hi < 0 || hi >= h as isize {
                            continue;
                        }
                        let dstbase = rowbase + (ni * h + hi as usize) * wdt;
                        let srcbase = ((ni * k + ki) * p + pi) * q;
                        for qi in 0..q {
                            let wi = qi as isize * stride as isize + off_w;
                            if wi < 0 || wi >= wdt as isize {
                                continue;
                            }
                            dycols[dstbase + wi as usize] = dys[srcbase + qi];
                        }
                    }
                }
            }
        }
    }

    let mut dxmat = scratch.take_any(c * nhw);
    kernel::gemm(
        &Blueprint::nn(c, krs, nhw).with_threads(kernel::default_threads()),
        &mut dxmat,
        &wrot,
        &dycols,
        scratch,
    );
    scratch.recycle_vec(wrot);
    scratch.recycle_vec(dycols);

    let mut dx = scratch.take_any(c * nhw);
    permute_group_pair(&mut dx, &dxmat, c, n, h * wdt);
    scratch.recycle_vec(dxmat);
    Tensor::from_vec(&[n, c, h, wdt], dx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use procrustes_prng::Xorshift64;

    fn randn(dims: &[usize], seed: u64) -> Tensor {
        Tensor::randn(dims, 1.0, &mut Xorshift64::new(seed))
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "mismatch at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn out_dim_formula() {
        assert_eq!(conv_out_dim(5, 3, 1, 0), 3);
        assert_eq!(conv_out_dim(5, 3, 1, 1), 5);
        assert_eq!(conv_out_dim(8, 3, 2, 1), 4);
        assert_eq!(conv_out_dim(1, 1, 1, 0), 1);
    }

    #[test]
    #[should_panic(expected = "filter 7 larger")]
    fn out_dim_rejects_oversized_filter() {
        conv_out_dim(3, 7, 1, 1);
    }

    #[test]
    fn identity_kernel_is_identity() {
        let x = randn(&[2, 3, 5, 5], 1);
        // 1x1 kernels selecting channel ci for output ci.
        let w = Tensor::from_fn(&[3, 3, 1, 1], |i| if i[0] == i[1] { 1.0 } else { 0.0 });
        let y = conv2d(&x, &w, 1, 0);
        assert_close(&y, &x, 1e-6);
    }

    #[test]
    fn known_3x3_convolution() {
        // x is the 4x4 ramp 0..16, box filter.
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| (i[2] * 4 + i[3]) as f32);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv2d(&x, &w, 1, 0);
        // windows sums: centre of each 3x3 block * 9
        assert_eq!(y.data(), &[45.0, 54.0, 81.0, 90.0]);
    }

    #[test]
    fn padding_adds_zero_ring() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv2d(&x, &w, 1, 1);
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        // Every output sees all four ones (corner windows cover the 2x2).
        assert_eq!(y.data(), &[4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn stride_skips_positions() {
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| (i[2] * 4 + i[3]) as f32);
        let w = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]);
        let y = conv2d(&x, &w, 2, 0);
        assert_eq!(y.data(), &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn im2col_path_matches_direct() {
        for (stride, pad) in [(1, 0), (1, 1), (2, 1), (2, 0)] {
            let x = randn(&[2, 3, 8, 8], 7);
            let w = randn(&[4, 3, 3, 3], 8);
            let a = conv2d(&x, &w, stride, pad);
            let b = conv2d_im2col(&x, &w, stride, pad);
            assert_close(&a, &b, 1e-5);
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        let x = randn(&[1, 2, 5, 5], 3);
        let cols = im2col(&x, 3, 3, 1, 1);
        let y = randn(cols.shape().dims(), 4);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let folded = col2im(&y, 1, 2, 5, 5, 3, 3, 1, 1);
        let rhs: f32 = x.data().iter().zip(folded.data()).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
            "{lhs} vs {rhs}"
        );
    }

    /// The backward-input kernel must equal the gradient of the forward
    /// pass: check <dy, conv(x)> differentials numerically.
    #[test]
    fn backward_input_matches_numerical_gradient() {
        let x = randn(&[1, 2, 5, 5], 11);
        let w = randn(&[3, 2, 3, 3], 12);
        let dy = randn(&[1, 3, 5, 5], 13);
        let dx = conv2d_backward_input(&dy, &w, 5, 5, 1, 1);
        // loss = <dy, conv(x)>; dloss/dx[i] ~ (loss(x+eps e_i)-loss(x-eps e_i))/2eps
        let loss = |xt: &Tensor| -> f32 {
            conv2d(xt, &w, 1, 1)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-2;
        for probe in [0usize, 7, 23, 49] {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            let ana = dx.data()[probe];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "probe {probe}: numerical {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn backward_weights_matches_numerical_gradient() {
        let x = randn(&[2, 2, 5, 5], 21);
        let w = randn(&[3, 2, 3, 3], 22);
        let dy = randn(&[2, 3, 3, 3], 23);
        let dw = conv2d_backward_weights(&x, &dy, 3, 3, 1, 0);
        let loss = |wt: &Tensor| -> f32 {
            conv2d(&x, wt, 1, 0)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-2;
        for probe in [0usize, 5, 17, 53] {
            let mut wp = w.clone();
            wp.data_mut()[probe] += eps;
            let mut wm = w.clone();
            wm.data_mut()[probe] -= eps;
            let num = (loss(&wp) - loss(&wm)) / (2.0 * eps);
            let ana = dw.data()[probe];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "probe {probe}: numerical {num} vs analytic {ana}"
            );
        }
    }

    /// For stride 1 and no padding, backward-input equals a *full*
    /// convolution with 180°-rotated filters — the identity the paper's
    /// Fig 2b depicts and the CSB format must support.
    #[test]
    fn backward_input_equals_rotated_full_conv() {
        let w = randn(&[2, 3, 3, 3], 31);
        let dy = randn(&[1, 2, 4, 4], 32);
        let dx = conv2d_backward_input(&dy, &w, 6, 6, 1, 0);

        // Build the rotated, channel-swapped weights: wr[c,k,r,s].
        let rot = w.rotate180();
        let wr = Tensor::from_fn(&[3, 2, 3, 3], |i| rot.at(&[i[1], i[0], i[2], i[3]]));
        // Full conv = pad dy by (r-1).
        let dx2 = conv2d(&dy, &wr, 1, 2);
        assert_close(&dx, &dx2, 1e-4);
    }

    #[test]
    fn strided_backward_gradcheck() {
        let x = randn(&[1, 2, 8, 8], 41);
        let w = randn(&[2, 2, 3, 3], 42);
        let dy = randn(&[1, 2, 4, 4], 43);
        let dx = conv2d_backward_input(&dy, &w, 8, 8, 2, 1);
        let loss = |xt: &Tensor| -> f32 {
            conv2d(xt, &w, 2, 1)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-2;
        for probe in [0usize, 31, 64, 127] {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            let ana = dx.data()[probe];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "probe {probe}: numerical {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn channel_mismatch_is_rejected() {
        let x = Tensor::zeros(&[1, 2, 4, 4]);
        let w = Tensor::zeros(&[1, 3, 3, 3]);
        conv2d(&x, &w, 1, 0);
    }

    /// Mixed-density tensors (exact zeros included) over odd geometries:
    /// stride 2, pad 0/1, 1×1 filters, non-square filters, ragged
    /// spatial extents.
    fn sparse4(dims: &[usize], keep: f64, seed: u64) -> Tensor {
        use procrustes_prng::UniformRng;
        let mut rng = Xorshift64::new(seed);
        Tensor::from_fn(dims, |_| {
            if rng.next_f64() < keep {
                rng.next_f32() * 2.0 - 1.0
            } else {
                0.0
            }
        })
    }

    /// `(n, c, k, h, w, kernel, stride, pad)` test geometries.
    type Geometry = (usize, usize, usize, usize, usize, usize, usize, usize);

    const GEOMETRIES: &[Geometry] = &[
        // (n, c, k, h, w, kernel_r, stride, pad)
        (2, 3, 4, 8, 8, 3, 1, 1),
        (1, 2, 3, 7, 5, 3, 2, 1),
        (2, 1, 2, 6, 6, 3, 2, 0),
        (1, 3, 2, 5, 5, 1, 1, 0),
        (1, 2, 2, 9, 4, 1, 2, 0),
        (2, 2, 5, 4, 4, 3, 1, 0),
    ];

    #[test]
    fn im2col_into_matches_allocating_path() {
        let x = sparse4(&[2, 3, 6, 5], 0.6, 51);
        let want = im2col(&x, 3, 3, 2, 1);
        let mut dst = vec![7.0f32; want.len()]; // stale garbage
        im2col_into(&x, 3, 3, 2, 1, &mut dst);
        assert_eq!(&dst, want.data());
    }

    #[test]
    fn forward_from_cols_is_equal_to_im2col_path() {
        let mut scratch = Scratch::new();
        for &(n, c, k, h, wd, kr, stride, pad) in GEOMETRIES {
            let x = sparse4(&[n, c, h, wd], 0.7, (n * 7 + h) as u64);
            let w = sparse4(&[k, c, kr, kr], 0.4, (k * 13 + kr) as u64);
            let p = conv_out_dim(h, kr, stride, pad);
            let q = conv_out_dim(wd, kr, stride, pad);
            let cols = im2col(&x, kr, kr, stride, pad);
            let got = conv2d_from_cols(&w, cols.data(), n, p, q, &mut scratch);
            let want = conv2d_im2col(&x, &w, stride, pad);
            assert_eq!(got.shape(), want.shape());
            assert_eq!(got.data(), want.data(), "geometry {n},{c},{k},{h},{wd}");
            scratch.recycle(got);
        }
    }

    #[test]
    fn backward_weights_from_cols_is_equal_to_scatter() {
        let mut scratch = Scratch::new();
        for &(n, c, k, h, wd, kr, stride, pad) in GEOMETRIES {
            let x = sparse4(&[n, c, h, wd], 0.5, (h * 3 + wd) as u64);
            let p = conv_out_dim(h, kr, stride, pad);
            let q = conv_out_dim(wd, kr, stride, pad);
            let dy = sparse4(&[n, k, p, q], 0.6, (k * 5 + p) as u64);
            let cols = im2col(&x, kr, kr, stride, pad);
            let got = conv2d_backward_weights_from_cols(&dy, cols.data(), c, kr, kr, &mut scratch);
            let want = conv2d_backward_weights(&x, &dy, kr, kr, stride, pad);
            assert_eq!(got.shape(), want.shape());
            assert_eq!(got.data(), want.data(), "geometry {n},{c},{k},{h},{wd}");
            scratch.recycle(got);
        }
    }

    #[test]
    fn backward_input_gemm_is_equal_to_scatter() {
        let mut scratch = Scratch::new();
        for &(n, c, k, h, wd, kr, stride, pad) in GEOMETRIES {
            let w = sparse4(&[k, c, kr, kr], 0.4, (c * 11 + kr) as u64);
            let p = conv_out_dim(h, kr, stride, pad);
            let q = conv_out_dim(wd, kr, stride, pad);
            let dy = sparse4(&[n, k, p, q], 0.6, (k * 9 + q) as u64);
            let got = conv2d_backward_input_gemm(&dy, &w, h, wd, stride, pad, &mut scratch);
            let want = conv2d_backward_input(&dy, &w, h, wd, stride, pad);
            assert_eq!(got.shape(), want.shape());
            assert_eq!(got.data(), want.data(), "geometry {n},{c},{k},{h},{wd}");
            scratch.recycle(got);
        }
    }

    #[test]
    fn backward_input_gemm_handles_non_square_filters() {
        let mut scratch = Scratch::new();
        let w = sparse4(&[2, 2, 3, 2], 0.8, 91);
        let p = conv_out_dim(7, 3, 2, 1);
        let q = conv_out_dim(6, 2, 2, 1);
        let dy = sparse4(&[1, 2, p, q], 0.9, 92);
        let got = conv2d_backward_input_gemm(&dy, &w, 7, 6, 2, 1, &mut scratch);
        let want = conv2d_backward_input(&dy, &w, 7, 6, 2, 1);
        assert_eq!(got.data(), want.data());
    }
}
