//! Dense `f32` tensors and the convolution kernels of DNN training.
//!
//! This crate is the numeric substrate of the Procrustes reproduction. It
//! deliberately implements exactly what the paper's workloads need — no
//! more:
//!
//! * [`Tensor`] — an owned, row-major, N-dimensional `f32` array with
//!   elementwise ops, axis reductions, and [`Tensor::matmul`];
//! * the [`kernel`] subsystem — the layered GEMM stack (blueprint →
//!   selector → routine) every dense training kernel routes through:
//!   register-tiled microkernels over packed panels, chosen per problem
//!   shape by a committed autotune table, with a documented
//!   accumulation-order contract (see the `gemm` module docs) that keeps
//!   results exactly equal to the naive seed loops in [`mod@reference`] and
//!   to the CSB sparse kernels; [`gemm_into`] / [`gemm_nt_into`] are its
//!   compatibility wrappers;
//! * the three convolution kernels of CNN training (Fig 2 of the paper):
//!   [`conv2d`] (forward), [`conv2d_backward_input`] (backward pass — the
//!   180°-rotated-filter convolution), and [`conv2d_backward_weights`]
//!   (weight update), each with a GEMM-backed hot-path form
//!   ([`conv2d_from_cols`], [`conv2d_backward_input_gemm`],
//!   [`conv2d_backward_weights_from_cols`]);
//! * [`Scratch`] — the pooled-buffer workspace the layers and trainers
//!   thread through the hot path for its zero-allocation steady state;
//! * [`Tensor::rotate180`] / transposes — the weight-access-order
//!   transformations that motivate the paper's CSB storage format;
//! * an [`im2col`]-based fast path, kept numerically comparable to the
//!   direct loops so either can validate the other;
//! * [`gradcheck`] — a numerical-gradient harness used throughout the
//!   workspace's test suites.
//!
//! Layouts follow the paper's loop nest (Alg 1): activations are `NCHW`,
//! weights are `KCRS` (output channel, input channel, filter row, filter
//! column).
//!
//! # Examples
//!
//! ```
//! use procrustes_tensor::{conv2d, Tensor};
//!
//! let x = Tensor::from_fn(&[1, 1, 4, 4], |i| i[2] as f32 + i[3] as f32);
//! let w = Tensor::ones(&[1, 1, 3, 3]);
//! let y = conv2d(&x, &w, 1, 0);
//! assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
//! // 3x3 box filter over an (h + w) ramp: sum of h+w over the window.
//! assert_eq!(y.at(&[0, 0, 0, 0]), 18.0);
//! ```

// `deny`, not `forbid`: the kernel worker pool (`kernel::thread`) is
// the one sanctioned exception — it hands raw buffer views to
// long-lived pool threads and scopes its `#[allow(unsafe_code)]` to
// the documented SAFETY blocks there. Everything else stays safe code.
#![deny(unsafe_code)]
#![deny(missing_docs)]

mod conv;
mod gemm;
pub mod gradcheck;
mod init;
pub mod kernel;
pub mod reference;
mod scratch;
mod shape;
mod tensor;

pub use conv::{
    col2im, conv2d, conv2d_backward_input, conv2d_backward_input_gemm, conv2d_backward_weights,
    conv2d_backward_weights_from_cols, conv2d_from_cols, conv2d_im2col, conv_out_dim, im2col,
    im2col_into,
};
pub use gemm::{gemm_into, gemm_nt_into, transpose_into};
pub use init::{kaiming_std, xavier_std, Init};
pub use scratch::Scratch;
pub use shape::{Shape, MAX_RANK};
pub use tensor::Tensor;
