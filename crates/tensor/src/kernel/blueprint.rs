//! The blueprint layer: a plain-data description of a GEMM problem.
//!
//! A [`Blueprint`] is the *key* the kernel subsystem dispatches on: the
//! problem extents (`m`/`k`/`n`), which operand (if any) is stored
//! transposed ([`Op`]), and whether the caller's data makes lhs
//! zero-skipping eligible. It deliberately carries no data pointers —
//! the same blueprint value describes every GEMM of that shape, which
//! is what lets the [selector](super::selector) map blueprints onto
//! routines through a committed table, and what the offline
//! `kernel_autotune` bin sweeps over.
//!
//! For table keying, exact extents are too fine-grained: the
//! [`ShapeClass`] of a blueprint buckets each extent into a coarse
//! [`Band`], so one committed table entry covers a family of
//! neighbouring problems (all the conv layers of one network stage,
//! say) rather than a single geometry.

/// Which operand, if any, is stored transposed.
///
/// The reduction (`p` over `0..k`) is identical in all three forms;
/// only the storage layout of the operands differs. `dst` is always
/// row-major `[m, n]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `dst = a·b` with row-major `a: [m, k]`, `b: [k, n]`.
    Nn,
    /// `dst = a·btᵀ` with row-major `a: [m, k]`, `bt: [n, k]` — the
    /// fc-forward / conv-weight-gradient form (`y = x·Wᵀ`,
    /// `dW = dy·colsᵀ`).
    Nt,
    /// `dst = atᵀ·b` with row-major `at: [k, m]`, `b: [k, n]` — the
    /// fc-weight-gradient form (`dW = dyᵀ·x`) without materializing
    /// the transpose.
    Tn,
}

impl Op {
    /// Short lowercase tag (`nn` | `nt` | `tn`) for reports and the
    /// generated table.
    pub fn tag(self) -> &'static str {
        match self {
            Op::Nn => "nn",
            Op::Nt => "nt",
            Op::Tn => "tn",
        }
    }
}

/// A GEMM problem shape: the plain-data key the selector dispatches on.
///
/// # Examples
///
/// ```
/// use procrustes_tensor::kernel::{Blueprint, Op};
/// let bp = Blueprint::nn(64, 288, 2048);
/// assert_eq!(bp.op, Op::Nn);
/// assert!(bp.zero_skip);
/// assert_eq!(bp.threads, 1);
/// assert_eq!(bp.flops(), 2 * 64 * 288 * 2048);
/// assert_eq!(bp.with_threads(4).threads, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Blueprint {
    /// Output rows.
    pub m: usize,
    /// Reduction extent.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Operand storage layout.
    pub op: Op,
    /// Whether routines may elide terms whose lhs operand is exactly
    /// zero.
    ///
    /// Skipping is the seed kernels' behaviour and is bitwise-neutral
    /// on finite data (an accumulator seeded at `+0.0` can never reach
    /// `-0.0`, and `x + ±0.0` reproduces `x`'s bits for every other
    /// `x`), so it is the default: Dropback-style weight sparsity turns
    /// into elided multiply-accumulates. Set it to `false` only when
    /// the rhs may contain non-finite values whose `0·±inf = NaN`
    /// products must propagate; the selector then routes to the
    /// branch-free strict variants.
    pub zero_skip: bool,
    /// Worker-thread budget the caller grants the selector (including
    /// the calling thread itself). `1` — the constructors' default —
    /// pins the problem to the serial tier; larger values let the
    /// selector choose the threaded tier, which splits the output
    /// across up to this many workers. The budget never changes a
    /// result byte (every output element's reduction stays sequential
    /// on one worker); it only widens the strategies the selector may
    /// pick, so hot-path callers pass
    /// [`default_threads`](super::thread::default_threads) and tests
    /// pin explicit counts.
    pub threads: usize,
}

impl Blueprint {
    /// `dst = a·b`, both operands row-major (see [`Op::Nn`]).
    pub fn nn(m: usize, k: usize, n: usize) -> Self {
        Self {
            m,
            k,
            n,
            op: Op::Nn,
            zero_skip: true,
            threads: 1,
        }
    }

    /// `dst = a·btᵀ` with `bt: [n, k]` (see [`Op::Nt`]).
    pub fn nt(m: usize, k: usize, n: usize) -> Self {
        Self {
            m,
            k,
            n,
            op: Op::Nt,
            zero_skip: true,
            threads: 1,
        }
    }

    /// `dst = atᵀ·b` with `at: [k, m]` (see [`Op::Tn`]).
    pub fn tn(m: usize, k: usize, n: usize) -> Self {
        Self {
            m,
            k,
            n,
            op: Op::Tn,
            zero_skip: true,
            threads: 1,
        }
    }

    /// Disables lhs zero-skipping (strict term-by-term accumulation;
    /// see [`Blueprint::zero_skip`]).
    pub fn strict(mut self) -> Self {
        self.zero_skip = false;
        self
    }

    /// Grants the selector a worker budget of `threads` (clamped to at
    /// least 1; see [`Blueprint::threads`]). Hot-path callers pass
    /// [`default_threads`](super::thread::default_threads).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Multiply-accumulate count, counting each multiply and add
    /// (`2·m·k·n`).
    pub fn flops(&self) -> u128 {
        2 * self.m as u128 * self.k as u128 * self.n as u128
    }

    /// The coarse table key for this problem.
    pub fn class(&self) -> ShapeClass {
        ShapeClass {
            op: self.op,
            m: Band::of(self.m),
            k: Band::of(self.k),
            n: Band::of(self.n),
            t: TBand::of(self.threads),
        }
    }

    /// Expected lhs slice length for this shape.
    pub fn lhs_len(&self) -> usize {
        self.m * self.k
    }

    /// Expected rhs slice length for this shape.
    pub fn rhs_len(&self) -> usize {
        self.k * self.n
    }
}

/// A coarse magnitude bucket for one problem extent.
///
/// Band edges are chosen around the microkernel geometry: `1` (a
/// degenerate extent selects row kernels), one register tile (`≤ 8`),
/// one panel/cache tile (`≤ 64`, `≤ 256`), one L2-scale block
/// (`≤ 1024`), and everything beyond.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Band {
    /// Exactly 0 or 1.
    B1,
    /// 2 ..= 8.
    B8,
    /// 9 ..= 64.
    B64,
    /// 65 ..= 256.
    B256,
    /// 257 ..= 1024.
    B1024,
    /// 1025 and up.
    BBig,
}

impl Band {
    /// Buckets an extent.
    pub fn of(x: usize) -> Self {
        match x {
            0..=1 => Band::B1,
            2..=8 => Band::B8,
            9..=64 => Band::B64,
            65..=256 => Band::B256,
            257..=1024 => Band::B1024,
            _ => Band::BBig,
        }
    }

    /// A representative extent inside the band (used by the autotune
    /// sweep when a class, not a concrete shape, needs a stand-in).
    pub fn representative(self) -> usize {
        match self {
            Band::B1 => 1,
            Band::B8 => 8,
            Band::B64 => 64,
            Band::B256 => 256,
            Band::B1024 => 512,
            Band::BBig => 2048,
        }
    }
}

/// A coarse bucket for the worker-thread budget — the parallelism
/// dimension of a [`ShapeClass`].
///
/// One band per power of two up to the pool ceiling: the serial/threaded
/// crossover and the preferred tile both shift with worker count, so the
/// committed table keys on the budget the same way it keys on extents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TBand {
    /// Exactly 1 — the serial tier by construction.
    T1,
    /// 2 ..= 3.
    T2,
    /// 4 ..= 7.
    T4,
    /// 8 and up.
    T8,
}

impl TBand {
    /// Buckets a worker budget.
    pub fn of(threads: usize) -> Self {
        match threads {
            0..=1 => TBand::T1,
            2..=3 => TBand::T2,
            4..=7 => TBand::T4,
            _ => TBand::T8,
        }
    }

    /// A representative budget inside the band (used by the autotune
    /// sweep when a class, not a concrete blueprint, needs a stand-in).
    pub fn representative(self) -> usize {
        match self {
            TBand::T1 => 1,
            TBand::T2 => 2,
            TBand::T4 => 4,
            TBand::T8 => 8,
        }
    }
}

/// The coarse key the committed tile table is indexed by: operand
/// layout plus the band of every extent and of the worker budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeClass {
    /// Operand storage layout.
    pub op: Op,
    /// Band of the output-row extent.
    pub m: Band,
    /// Band of the reduction extent.
    pub k: Band,
    /// Band of the output-column extent.
    pub n: Band,
    /// Band of the worker-thread budget.
    pub t: TBand,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_bucket_as_documented() {
        assert_eq!(Band::of(0), Band::B1);
        assert_eq!(Band::of(1), Band::B1);
        assert_eq!(Band::of(2), Band::B8);
        assert_eq!(Band::of(8), Band::B8);
        assert_eq!(Band::of(9), Band::B64);
        assert_eq!(Band::of(64), Band::B64);
        assert_eq!(Band::of(65), Band::B256);
        assert_eq!(Band::of(256), Band::B256);
        assert_eq!(Band::of(257), Band::B1024);
        assert_eq!(Band::of(1024), Band::B1024);
        assert_eq!(Band::of(1025), Band::BBig);
    }

    #[test]
    fn representative_stays_in_band() {
        for b in [
            Band::B1,
            Band::B8,
            Band::B64,
            Band::B256,
            Band::B1024,
            Band::BBig,
        ] {
            assert_eq!(Band::of(b.representative()), b);
        }
    }

    #[test]
    fn class_is_layout_aware() {
        let nn = Blueprint::nn(64, 288, 2048).class();
        let nt = Blueprint::nt(64, 288, 2048).class();
        assert_ne!(nn, nt);
        assert_eq!(nn.m, Band::B64);
        assert_eq!(nn.k, Band::B1024);
        assert_eq!(nn.n, Band::BBig);
    }

    #[test]
    fn strict_clears_zero_skip() {
        assert!(!Blueprint::nn(4, 4, 4).strict().zero_skip);
    }

    #[test]
    fn tbands_bucket_as_documented() {
        assert_eq!(TBand::of(0), TBand::T1);
        assert_eq!(TBand::of(1), TBand::T1);
        assert_eq!(TBand::of(2), TBand::T2);
        assert_eq!(TBand::of(3), TBand::T2);
        assert_eq!(TBand::of(4), TBand::T4);
        assert_eq!(TBand::of(7), TBand::T4);
        assert_eq!(TBand::of(8), TBand::T8);
        assert_eq!(TBand::of(64), TBand::T8);
    }

    #[test]
    fn tband_representative_stays_in_band() {
        for t in [TBand::T1, TBand::T2, TBand::T4, TBand::T8] {
            assert_eq!(TBand::of(t.representative()), t);
        }
    }

    #[test]
    fn class_is_thread_aware() {
        let serial = Blueprint::nn(64, 288, 2048);
        let wide = serial.with_threads(4);
        assert_ne!(serial.class(), wide.class());
        assert_eq!(serial.class().t, TBand::T1);
        assert_eq!(wide.class().t, TBand::T4);
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(Blueprint::nn(4, 4, 4).with_threads(0).threads, 1);
    }
}
