//! GENERATED tile table — do not edit by hand.
//!
//! Regenerate with
//! `cargo run --release -p procrustes-tensor --bin kernel_autotune`;
//! CI runs the same bin with `--verify` and fails the build if this
//! file is not a fixed point of the generator. See
//! [`super::autotune`] for the deterministic cost model the entries
//! come from.

use super::blueprint::{Band, Op, ShapeClass};
use super::routine::Routine;

/// Committed mapping from coarse problem classes to tuned routines.
///
/// Looked up linearly by [`super::selector::select`]; classes absent
/// here fall back to the shared cost model at call time.
// One compact line per entry: `--verify` compares bytes, so the
// committed form must survive `cargo fmt` untouched.
#[rustfmt::skip]
pub const TILE_TABLE: &[(ShapeClass, Routine)] = &[
    (
        ShapeClass { op: Op::Nn, m: Band::B64, k: Band::B1024, n: Band::BBig },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B256, k: Band::B256, n: Band::B256 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B64, k: Band::B1024, n: Band::B1024 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B1024, k: Band::B1024, n: Band::B1024 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B64, k: Band::B64, n: Band::BBig },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B1, k: Band::B1024, n: Band::B1024 },
        Routine::RowStream,
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B64, k: Band::BBig, n: Band::B1024 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B64, k: Band::B1024, n: Band::B1024 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B8, k: Band::B1024, n: Band::B256 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B64, k: Band::B256, n: Band::B64 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
    ),
    (
        ShapeClass { op: Op::Tn, m: Band::B256, k: Band::B64, n: Band::B1024 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
    ),
    (
        ShapeClass { op: Op::Tn, m: Band::B64, k: Band::B64, n: Band::B256 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
    ),
    (
        ShapeClass { op: Op::Tn, m: Band::B1024, k: Band::B64, n: Band::BBig },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
    ),
];
