//! GENERATED tile table — do not edit by hand.
//!
//! Regenerate with
//! `cargo run --release -p procrustes-tensor --bin kernel_autotune`;
//! CI runs the same bin with `--verify` and fails the build if this
//! file is not a fixed point of the generator. See
//! [`super::autotune`] for the deterministic cost model the entries
//! come from.

use super::blueprint::{Band, Op, ShapeClass, TBand};
use super::routine::{Routine, Tier};

/// Committed mapping from coarse problem classes (including the
/// worker-budget band) to tuned routines and tiers.
///
/// Looked up linearly by [`super::selector::select`]; classes absent
/// here fall back to the shared cost model at call time. A
/// `Tier::Threaded` entry is resolved to a concrete worker count
/// from the caller's budget at call time; the tier never affects
/// result bytes (see [`super::thread`]), only wall-clock.
// One compact line per entry: `--verify` compares bytes, so the
// committed form must survive `cargo fmt` untouched.
#[rustfmt::skip]
pub const TILE_TABLE: &[(ShapeClass, Routine, Tier)] = &[
    (
        ShapeClass { op: Op::Nn, m: Band::B64, k: Band::B1024, n: Band::BBig, t: TBand::T1 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B64, k: Band::B1024, n: Band::BBig, t: TBand::T2 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B64, k: Band::B1024, n: Band::BBig, t: TBand::T4 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B64, k: Band::B1024, n: Band::BBig, t: TBand::T8 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B256, k: Band::B256, n: Band::B256, t: TBand::T1 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B256, k: Band::B256, n: Band::B256, t: TBand::T2 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B256, k: Band::B256, n: Band::B256, t: TBand::T4 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B256, k: Band::B256, n: Band::B256, t: TBand::T8 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B64, k: Band::B1024, n: Band::B1024, t: TBand::T1 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B64, k: Band::B1024, n: Band::B1024, t: TBand::T2 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B64, k: Band::B1024, n: Band::B1024, t: TBand::T4 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B64, k: Band::B1024, n: Band::B1024, t: TBand::T8 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B1024, k: Band::B1024, n: Band::B1024, t: TBand::T1 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B1024, k: Band::B1024, n: Band::B1024, t: TBand::T2 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B1024, k: Band::B1024, n: Band::B1024, t: TBand::T4 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B1024, k: Band::B1024, n: Band::B1024, t: TBand::T8 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B64, k: Band::B64, n: Band::BBig, t: TBand::T1 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B64, k: Band::B64, n: Band::BBig, t: TBand::T2 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B64, k: Band::B64, n: Band::BBig, t: TBand::T4 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B64, k: Band::B64, n: Band::BBig, t: TBand::T8 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B1, k: Band::B1024, n: Band::B1024, t: TBand::T1 },
        Routine::RowStream,
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B1, k: Band::B1024, n: Band::B1024, t: TBand::T2 },
        Routine::RowStream,
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B1, k: Band::B1024, n: Band::B1024, t: TBand::T4 },
        Routine::RowStream,
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Nn, m: Band::B1, k: Band::B1024, n: Band::B1024, t: TBand::T8 },
        Routine::RowStream,
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B64, k: Band::BBig, n: Band::B1024, t: TBand::T1 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B64, k: Band::BBig, n: Band::B1024, t: TBand::T2 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B64, k: Band::BBig, n: Band::B1024, t: TBand::T4 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B64, k: Band::BBig, n: Band::B1024, t: TBand::T8 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B64, k: Band::B1024, n: Band::B1024, t: TBand::T1 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B64, k: Band::B1024, n: Band::B1024, t: TBand::T2 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B64, k: Band::B1024, n: Band::B1024, t: TBand::T4 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B64, k: Band::B1024, n: Band::B1024, t: TBand::T8 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B8, k: Band::B1024, n: Band::B256, t: TBand::T1 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B8, k: Band::B1024, n: Band::B256, t: TBand::T2 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B8, k: Band::B1024, n: Band::B256, t: TBand::T4 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B8, k: Band::B1024, n: Band::B256, t: TBand::T8 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B64, k: Band::B256, n: Band::B64, t: TBand::T1 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B64, k: Band::B256, n: Band::B64, t: TBand::T2 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B64, k: Band::B256, n: Band::B64, t: TBand::T4 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Nt, m: Band::B64, k: Band::B256, n: Band::B64, t: TBand::T8 },
        Routine::Packed { mr: 2, nr: 64, kc: 128 },
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Tn, m: Band::B256, k: Band::B64, n: Band::B1024, t: TBand::T1 },
        Routine::PackedLhs { mr: 2, nr: 64, kc: 128 },
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Tn, m: Band::B256, k: Band::B64, n: Band::B1024, t: TBand::T2 },
        Routine::PackedLhs { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Tn, m: Band::B256, k: Band::B64, n: Band::B1024, t: TBand::T4 },
        Routine::PackedLhs { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Tn, m: Band::B256, k: Band::B64, n: Band::B1024, t: TBand::T8 },
        Routine::PackedLhs { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Tn, m: Band::B64, k: Band::B64, n: Band::B256, t: TBand::T1 },
        Routine::PackedLhs { mr: 2, nr: 64, kc: 128 },
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Tn, m: Band::B64, k: Band::B64, n: Band::B256, t: TBand::T2 },
        Routine::PackedLhs { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Tn, m: Band::B64, k: Band::B64, n: Band::B256, t: TBand::T4 },
        Routine::PackedLhs { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Tn, m: Band::B64, k: Band::B64, n: Band::B256, t: TBand::T8 },
        Routine::PackedLhs { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Tn, m: Band::B1024, k: Band::B64, n: Band::BBig, t: TBand::T1 },
        Routine::PackedLhs { mr: 2, nr: 64, kc: 128 },
        Tier::Serial,
    ),
    (
        ShapeClass { op: Op::Tn, m: Band::B1024, k: Band::B64, n: Band::BBig, t: TBand::T2 },
        Routine::PackedLhs { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Tn, m: Band::B1024, k: Band::B64, n: Band::BBig, t: TBand::T4 },
        Routine::PackedLhs { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
    (
        ShapeClass { op: Op::Tn, m: Band::B1024, k: Band::B64, n: Band::BBig, t: TBand::T8 },
        Routine::PackedLhs { mr: 2, nr: 64, kc: 128 },
        Tier::Threaded,
    ),
];
