//! The selector layer: maps a [`Blueprint`] to the [`Plan`] that
//! serves it — a [`Routine`] plus the worker count to run it at.
//!
//! Resolution order:
//!
//! 1. **Tiny problems** (`m·k·n` below a packing-amortization
//!    threshold) go straight to the cheapest streaming kernel, serial —
//!    packing a panel that is used once costs more than it saves, and a
//!    pool dispatch costs more than the whole product.
//! 2. **Table hit**: the problem's [`ShapeClass`](super::blueprint::ShapeClass)
//!    — which includes the [`TBand`](super::blueprint::TBand) of the
//!    caller's worker budget — is looked up in the committed
//!    [`TILE_TABLE`](super::table::TILE_TABLE) (generated offline by
//!    `kernel_autotune`, drift-gated in CI). The table stores a
//!    [`Tier`] per class; a `Threaded` entry is resolved to a concrete
//!    worker count from the budget at call time.
//! 3. **Model fallback**: classes the table does not cover are ranked
//!    at call time with the same deterministic cost model the autotune
//!    sweep uses (including its per-dispatch overhead charge), so on-
//!    and off-table shapes are chosen by one consistent policy.
//!
//! `select` is a pure function of the blueprint — same key (extents,
//! layout, zero-skip, worker budget), same plan, on every call and
//! every machine — which is what makes benchmark attribution
//! (`BENCH_pr10.json` records routine, tier, and worker count per
//! shape) and the bit-for-bit equality tests meaningful. The *tier*
//! never affects result bytes, only wall-clock: see
//! [`super::thread`].

use super::autotune;
use super::blueprint::{Blueprint, Op};
use super::routine::{Routine, Tier};
use super::table::TILE_TABLE;
use super::thread;

/// Problems smaller than this many multiply-accumulates skip table and
/// model and use a streaming kernel: at this size the packed kernels'
/// panel staging is pure overhead.
pub const TINY_FLOP_CUTOFF: usize = 32 * 32 * 32;

/// A resolved execution plan: which kernel, and how many workers run
/// it (`1` = the serial tier).
///
/// The worker count is already clamped to what the shape can feed
/// ([`thread::effective_workers`]), so `workers > 1` is executable as
/// is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Plan {
    /// The kernel to run.
    pub routine: Routine,
    /// Total threads computing the product, including the caller.
    pub workers: usize,
}

impl Plan {
    /// Which tier this plan runs on.
    pub fn tier(&self) -> Tier {
        if self.workers > 1 {
            Tier::Threaded
        } else {
            Tier::Serial
        }
    }

    /// Human-readable tag for benchmark attribution, e.g.
    /// `packed-2x64/kc128@serial` or `packed-2x64/kc128@threadedx4`.
    pub fn describe(&self) -> String {
        match self.tier() {
            Tier::Serial => format!("{}@serial", self.routine.describe()),
            Tier::Threaded => format!("{}@threadedx{}", self.routine.describe(), self.workers),
        }
    }
}

/// Chooses the plan for a blueprint. Pure and deterministic; see the
/// module docs for the resolution order.
pub fn select(bp: &Blueprint) -> Plan {
    explain(bp).0
}

/// Like [`select`], but also names the resolution layer that decided:
/// `"tiny"`, `"table"`, or `"model"`. The benchmark harness records
/// this next to each timing so BENCH entries are attributable.
pub fn explain(bp: &Blueprint) -> (Plan, &'static str) {
    if bp.m.saturating_mul(bp.k).saturating_mul(bp.n) < TINY_FLOP_CUTOFF {
        return (
            Plan {
                routine: tiny_fallback(bp),
                workers: 1,
            },
            "tiny",
        );
    }
    let class = bp.class();
    for (c, r, tier) in TILE_TABLE {
        if *c == class && r.supports(bp) {
            return (resolve(bp, *r, *tier), "table");
        }
    }
    (autotune::best_plan(bp), "model")
}

/// Turns a table entry's tier into a concrete worker count for this
/// blueprint: `Serial` is 1; `Threaded` is the caller's budget clamped
/// to what the shape can feed (which may itself collapse to serial for
/// budget 1 or degenerate shapes).
fn resolve(bp: &Blueprint, routine: Routine, tier: Tier) -> Plan {
    let workers = match tier {
        Tier::Serial => 1,
        Tier::Threaded => thread::effective_workers(bp, bp.threads),
    };
    Plan { routine, workers }
}

/// Streaming choice for problems too small to amortize packing. The
/// seed kernels only exist for `Nn`/`Nt` with zero-skip; everything
/// else takes a narrow packed tile whose panel is clamped to the
/// problem anyway.
fn tiny_fallback(bp: &Blueprint) -> Routine {
    match bp.op {
        Op::Nn if bp.zero_skip => Routine::RowStream,
        Op::Nt if bp.zero_skip => Routine::NtRegTile,
        _ => Routine::Packed {
            mr: 4,
            nr: 16,
            kc: 128,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::super::blueprint::TBand;
    use super::*;

    #[test]
    fn tiny_problems_stream_serially() {
        let p = select(&Blueprint::nn(4, 4, 4).with_threads(8));
        assert_eq!(p.routine, Routine::RowStream);
        assert_eq!(p.workers, 1);
        assert_eq!(select(&Blueprint::nt(4, 4, 4)).routine, Routine::NtRegTile);
        assert!(matches!(
            select(&Blueprint::tn(4, 4, 4)).routine,
            Routine::Packed { .. }
        ));
        assert!(matches!(
            select(&Blueprint::nn(4, 4, 4).strict()).routine,
            Routine::Packed { .. }
        ));
    }

    #[test]
    fn pinned_shapes_resolve_from_the_table_at_every_tband() {
        // Every pinned autotune shape × thread band must class-match a
        // table entry: the committed table exists precisely to cover
        // them.
        for &(op, m, k, n) in autotune::PINNED_SHAPES {
            if m * k * n < TINY_FLOP_CUTOFF {
                continue;
            }
            for tb in [TBand::T1, TBand::T2, TBand::T4, TBand::T8] {
                let bp = Blueprint {
                    m,
                    k,
                    n,
                    op,
                    zero_skip: true,
                    threads: tb.representative(),
                };
                let class = bp.class();
                assert!(
                    TILE_TABLE.iter().any(|(c, _, _)| *c == class),
                    "pinned shape {}x{}x{} ({}, {:?}) missing from table",
                    m,
                    k,
                    n,
                    op.tag(),
                    tb
                );
            }
        }
    }

    #[test]
    fn selection_is_stable() {
        let bp = Blueprint::nn(64, 288, 2048).with_threads(4);
        assert_eq!(select(&bp), select(&bp));
    }

    #[test]
    fn explain_names_the_resolution_layer() {
        assert_eq!(explain(&Blueprint::nn(4, 4, 4)).1, "tiny");
        let (plan, source) = explain(&Blueprint::nn(64, 288, 2048));
        assert_eq!(source, "table");
        assert_eq!(plan, select(&Blueprint::nn(64, 288, 2048)));
        assert_eq!(explain(&Blueprint::nn(4096, 2, 4096)).1, "model");
    }

    #[test]
    fn serial_budget_never_yields_a_threaded_plan() {
        for &(op, m, k, n) in autotune::PINNED_SHAPES {
            let bp = Blueprint {
                m,
                k,
                n,
                op,
                zero_skip: true,
                threads: 1,
            };
            assert_eq!(select(&bp).workers, 1, "{}x{}x{} {}", m, k, n, op.tag());
        }
    }

    #[test]
    fn wide_budget_goes_threaded_at_size() {
        let p = select(&Blueprint::nn(512, 512, 512).with_threads(8));
        assert_eq!(p.tier(), Tier::Threaded);
        assert!(p.workers > 1);
        assert!(p.describe().contains("threadedx"));
    }

    #[test]
    fn plan_workers_are_executable() {
        // Whatever the selector returns must already be clamped to the
        // shape's split capacity.
        for &(op, m, k, n) in autotune::PINNED_SHAPES {
            for budget in [1, 2, 4, 8] {
                let bp = Blueprint {
                    m,
                    k,
                    n,
                    op,
                    zero_skip: true,
                    threads: budget,
                };
                let p = select(&bp);
                assert_eq!(
                    p.workers,
                    thread::effective_workers(&bp, p.workers),
                    "unexecutable plan for {}x{}x{}",
                    m,
                    k,
                    n
                );
            }
        }
    }

    #[test]
    fn off_table_shapes_fall_back_to_the_model() {
        // A class no pinned shape nominates: huge m, k=2 band.
        let bp = Blueprint::nn(4096, 2, 4096);
        let p = select(&bp);
        assert!(p.routine.supports(&bp));
        assert_eq!(p, autotune::best_plan(&bp));
    }
}
