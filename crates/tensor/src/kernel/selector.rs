//! The selector layer: maps a [`Blueprint`] to the [`Routine`] that
//! serves it.
//!
//! Resolution order:
//!
//! 1. **Tiny problems** (`m·k·n` below a packing-amortization
//!    threshold) go straight to the cheapest streaming kernel — packing
//!    a panel that is used once costs more than it saves.
//! 2. **Table hit**: the problem's [`ShapeClass`](super::blueprint::ShapeClass)
//!    is looked up in the committed [`TILE_TABLE`](super::table::TILE_TABLE)
//!    (generated offline by `kernel_autotune`, drift-gated in CI).
//! 3. **Model fallback**: classes the table does not cover are ranked
//!    at call time with the same deterministic cost model the autotune
//!    sweep uses, so on- and off-table shapes are chosen by one
//!    consistent policy.
//!
//! `select` is a pure function of the blueprint — same key, same
//! routine, on every call and every machine — which is what makes
//! benchmark attribution (`BENCH_pr8.json` records the routine per
//! shape) and the bit-for-bit equality tests meaningful.

use super::autotune;
use super::blueprint::{Blueprint, Op};
use super::routine::Routine;
use super::table::TILE_TABLE;

/// Problems smaller than this many multiply-accumulates skip table and
/// model and use a streaming kernel: at this size the packed kernels'
/// panel staging is pure overhead.
pub const TINY_FLOP_CUTOFF: usize = 32 * 32 * 32;

/// Chooses the routine for a blueprint. Pure and deterministic; see the
/// module docs for the resolution order.
pub fn select(bp: &Blueprint) -> Routine {
    explain(bp).0
}

/// Like [`select`], but also names the resolution layer that decided:
/// `"tiny"`, `"table"`, or `"model"`. The benchmark harness records
/// this next to each timing so BENCH entries are attributable.
pub fn explain(bp: &Blueprint) -> (Routine, &'static str) {
    if bp.m.saturating_mul(bp.k).saturating_mul(bp.n) < TINY_FLOP_CUTOFF {
        return (tiny_fallback(bp), "tiny");
    }
    let class = bp.class();
    for (c, r) in TILE_TABLE {
        if *c == class && r.supports(bp) {
            return (*r, "table");
        }
    }
    (autotune::best_for(bp), "model")
}

/// Streaming choice for problems too small to amortize packing. The
/// seed kernels only exist for `Nn`/`Nt` with zero-skip; everything
/// else takes a narrow packed tile whose panel is clamped to the
/// problem anyway.
fn tiny_fallback(bp: &Blueprint) -> Routine {
    match bp.op {
        Op::Nn if bp.zero_skip => Routine::RowStream,
        Op::Nt if bp.zero_skip => Routine::NtRegTile,
        _ => Routine::Packed {
            mr: 4,
            nr: 16,
            kc: 128,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_problems_stream() {
        assert_eq!(select(&Blueprint::nn(4, 4, 4)), Routine::RowStream);
        assert_eq!(select(&Blueprint::nt(4, 4, 4)), Routine::NtRegTile);
        assert!(matches!(
            select(&Blueprint::tn(4, 4, 4)),
            Routine::Packed { .. }
        ));
        assert!(matches!(
            select(&Blueprint::nn(4, 4, 4).strict()),
            Routine::Packed { .. }
        ));
    }

    #[test]
    fn pinned_shapes_resolve_from_the_table() {
        // Every pinned autotune shape must class-match a table entry:
        // the committed table exists precisely to cover them.
        for &(op, m, k, n) in autotune::PINNED_SHAPES {
            let bp = Blueprint {
                m,
                k,
                n,
                op,
                zero_skip: true,
            };
            if m * k * n < TINY_FLOP_CUTOFF {
                continue;
            }
            let class = bp.class();
            assert!(
                TILE_TABLE.iter().any(|(c, _)| *c == class),
                "pinned shape {}x{}x{} ({}) missing from table",
                m,
                k,
                n,
                op.tag()
            );
        }
    }

    #[test]
    fn selection_is_stable() {
        let bp = Blueprint::nn(64, 288, 2048);
        assert_eq!(select(&bp), select(&bp));
    }

    #[test]
    fn explain_names_the_resolution_layer() {
        assert_eq!(explain(&Blueprint::nn(4, 4, 4)).1, "tiny");
        let (routine, source) = explain(&Blueprint::nn(64, 288, 2048));
        assert_eq!(source, "table");
        assert_eq!(routine, select(&Blueprint::nn(64, 288, 2048)));
        assert_eq!(explain(&Blueprint::nn(4096, 2, 4096)).1, "model");
    }

    #[test]
    fn off_table_shapes_fall_back_to_the_model() {
        // A class no pinned shape nominates: huge m, k=2 band.
        let bp = Blueprint::nn(4096, 2, 4096);
        let r = select(&bp);
        assert!(r.supports(&bp));
        assert_eq!(r, autotune::best_for(&bp));
    }
}
