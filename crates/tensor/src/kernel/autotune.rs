//! The offline autotune sweep behind the committed tile table.
//!
//! `cargo run --release -p procrustes-tensor --bin kernel_autotune`
//! regenerates `src/kernel/table.rs` from the logic here; CI re-runs it
//! with `--verify` and fails if the committed table is not a fixed
//! point.
//!
//! # Why a cost model and not a stopwatch
//!
//! The table is checked-in source verified on every merge, so its
//! contents must be reproducible on *any* machine — a wall-clock sweep
//! would bake one host's noise into the build. Selection therefore
//! ranks candidates with a deterministic integer cost model (micro-op
//! count plus memory traffic, with register-pressure and L1-overflow
//! penalties), calibrated once against measurements on the development
//! host. Wall-clock numbers remain available behind `--measure` as an
//! advisory report (now per tier and worker count); they never
//! influence the generated table.
//!
//! # The parallelism dimension
//!
//! Since the threaded tier never changes a result byte (see
//! [`super::thread`]), serial-vs-threaded is purely a cost question.
//! The model charges a flat per-dispatch overhead
//! ([`DISPATCH_COST`]: publish, wake, join) plus a per-worker term
//! ([`PER_WORKER_COST`]: one extra pack of shared panels and the
//! condvar round-trip), then divides the serial cost by the worker
//! count. The constants put the crossover near a 128³ problem —
//! smaller products stay serial no matter the budget, which matches
//! the measured behaviour that a pool dispatch costs a few
//! microseconds.

use super::blueprint::{Band, Blueprint, Op, ShapeClass, TBand};
use super::routine::{Routine, Tier, SUPPORTED_TILES};
use super::selector::Plan;
use super::thread;

/// The pinned shapes the sweep covers: the `perf_trajectory` GEMM
/// shapes, the conv im2col products and fc forward/backward shapes of
/// the FIG06 training stack, and degenerate extents (vector-matrix,
/// skinny reductions) that exercise the small bands.
pub const PINNED_SHAPES: &[(Op, usize, usize, usize)] = &[
    // perf_trajectory dense GEMM trio.
    (Op::Nn, 64, 288, 2048),
    (Op::Nn, 256, 256, 256),
    (Op::Nn, 64, 576, 512),
    // Larger square point for the big-band classes.
    (Op::Nn, 512, 512, 512),
    // Conv im2col products: dst [k_out, n·p·q] = w [k_out, c·r·s] · cols.
    (Op::Nn, 32, 27, 8192),
    (Op::Nn, 64, 288, 1024),
    // Vector-matrix (batch-1 inference row).
    (Op::Nn, 1, 512, 512),
    // fc forward y = x·Wᵀ and conv dW = dy·colsᵀ.
    (Op::Nt, 64, 2048, 288),
    (Op::Nt, 64, 512, 576),
    (Op::Nt, 8, 512, 256),
    (Op::Nt, 64, 256, 10),
    // fc dW = dyᵀ·x (Tn, skinny reduction over the batch).
    (Op::Tn, 256, 64, 512),
    (Op::Tn, 10, 64, 256),
    (Op::Tn, 512, 64, 2048),
];

/// The worker budgets the sweep and the `--measure` report cover: the
/// [`TBand`] representatives.
pub const THREAD_BUDGETS: &[usize] = &[1, 2, 4, 8];

/// Flat model cost of one threaded dispatch (publish the job, wake the
/// pool, join), in the same scaled units as [`model_cost`]. Together
/// with [`PER_WORKER_COST`] this puts the serial/threaded crossover
/// near a 128³ product.
pub const DISPATCH_COST: u128 = 6_000_000;

/// Additional model cost per participating worker: each packs its own
/// rhs panels and pays one condvar round-trip.
pub const PER_WORKER_COST: u128 = 500_000;

/// All packed-routine candidates the sweep ranks: the full-width
/// (`nr = 64`) register tiles crossed with the `kc` ladder, in both
/// the plain and the packed-lhs (`Tn`-only) variants.
///
/// Narrower tiles stay in [`SUPPORTED_TILES`] — they serve m-tails and
/// the tiny-problem fallback — but are excluded as primary strategies:
/// `--measure` shows the autovectorizer emits scalar code for their
/// inner loops on wide-SIMD hosts (4–6 GFLOP/s vs 40–57 for the
/// 64-wide tiles), so ranking them as if they vectorized would let the
/// model pick un-vectorized kernels.
pub fn candidates() -> Vec<Routine> {
    candidate_iter().collect()
}

/// The same candidate sequence as [`candidates`], allocation-free: the
/// selector's model fallback runs on the `kernel::gemm` hot path, whose
/// steady-state zero-allocation contract a collecting pool would break.
fn candidate_iter() -> impl Iterator<Item = Routine> {
    SUPPORTED_TILES
        .iter()
        .filter(|&&(mr, nr)| mr >= 2 && nr == 64)
        .flat_map(|&(mr, nr)| {
            [128u16, 256, 512].into_iter().flat_map(move |kc| {
                [
                    Routine::Packed { mr, nr, kc },
                    Routine::PackedLhs { mr, nr, kc },
                ]
            })
        })
}

/// Deterministic cost of serving `bp` with `r` on one thread, in
/// abstract integer units scaled by 100 (lower is better).
///
/// For packed routines the model charges the microkernel inner loop
/// (`W = ⌈nr/16⌉` SIMD lanes worth of FMA, lhs loads, and loop
/// overhead per reduction step per tile), multiplies in a graded
/// register-pressure penalty when the accumulator tile exceeds eight
/// vector registers (×1.3 for `mr·W > 8`, a further ×1.08 past 16) and
/// a ×1.5 penalty when the packed panel overflows L1
/// (`nr·kc·4 > 37 KB` — this is what steers Nt shapes, whose packing
/// reads are strided, to `kc = 128`), then adds memory traffic (pack
/// writes+reads, dst reload per extra k-block, lhs re-read per j-panel)
/// at a quarter-unit per element. On `Tn` the plain packed kernel's
/// lhs reads stride by `m` — one cache line per element — so its lhs
/// traffic is charged ×4; the packed-lhs variant instead pays a
/// one-time `4·m·k` pack (strided read + contiguous write) and reads
/// the panel contiguously thereafter, which is why it wins every
/// non-tiny `Tn` shape. The constants were calibrated against
/// `--measure` sweeps on an AVX-512 development host; only the induced
/// *ordering* matters, and it reproduces the measured ordering on the
/// pinned shapes (where measured differences exceed run-to-run noise).
pub fn model_cost(bp: &Blueprint, r: Routine) -> u128 {
    let (m, k, n) = (bp.m as u128, bp.k as u128, bp.n as u128);
    if m == 0 || n == 0 {
        return 0;
    }
    match r {
        // Streaming seed kernels: no pack, but a wider per-element cost
        // (they run ~2.5-3x slower than the best packed tiles at size).
        Routine::RowStream | Routine::NtRegTile => {
            let lanes = match r {
                Routine::RowStream => n.div_ceil(16),
                _ => n.div_ceil(8),
            };
            (m * k * lanes * 3 + m * n) * 100
        }
        Routine::Packed { mr, nr, kc } | Routine::PackedLhs { mr, nr, kc } => {
            let pack_lhs = matches!(r, Routine::PackedLhs { .. });
            let (mr, nr) = (mr as u128, nr as u128);
            let kc = (kc as u128).min(k.max(1));
            let w = nr.div_ceil(16);
            let tiles_i = m.div_ceil(mr);
            let panels_j = n.div_ceil(nr);
            let kblocks = k.max(1).div_ceil(kc);
            let micro = tiles_i * k * panels_j * (mr * w + mr + 2 + w);
            let mut scaled = micro * 100;
            if mr * w > 8 {
                scaled = scaled * 130 / 100;
            }
            if mr * w > 16 {
                scaled = scaled * 108 / 100;
            }
            if nr * kc * 4 > 37 * 1024 {
                scaled = scaled * 150 / 100;
            }
            let pack = 2 * panels_j * k * nr;
            let dst_traffic = m * n * (2 * kblocks - 1);
            let lhs_traffic = if pack_lhs {
                // One strided pack of the whole lhs, contiguous panel
                // reads per j-panel thereafter.
                4 * m * k + panels_j * m * k
            } else if bp.op == Op::Tn {
                // Strided lhs reads: one cache line touched per element.
                4 * panels_j * m * k
            } else {
                panels_j * m * k
            };
            scaled + (pack + dst_traffic + lhs_traffic) * 100 / 4
        }
    }
}

/// [`model_cost`] extended with the threaded tier: `workers > 1`
/// divides the serial cost across workers and adds the dispatch and
/// per-worker overhead charges.
pub fn plan_cost(bp: &Blueprint, r: Routine, workers: usize) -> u128 {
    let serial = model_cost(bp, r);
    if workers <= 1 {
        serial
    } else {
        let w = workers as u128;
        serial / w + DISPATCH_COST + w * PER_WORKER_COST
    }
}

/// The model's best serial routine for `bp` among [`candidates`] plus
/// the applicable seed kernel. Ties break toward the earlier candidate
/// in enumeration order, so the result is fully deterministic.
pub fn best_for(bp: &Blueprint) -> Routine {
    best_plan(&bp.with_threads(1)).routine
}

/// The model's best plan for `bp`: every candidate routine crossed
/// with every feasible worker count (1, the powers of two, and the
/// shape's clamped budget). Ties break toward the earlier candidate
/// and the smaller worker count, so the result is fully deterministic.
pub fn best_plan(bp: &Blueprint) -> Plan {
    let seed = match bp.op {
        Op::Nn if bp.zero_skip => Some(Routine::RowStream),
        Op::Nt if bp.zero_skip => Some(Routine::NtRegTile),
        _ => None,
    };
    let cap = thread::effective_workers(bp, bp.threads);
    let mut best: Option<(u128, Plan)> = None;
    for r in candidate_iter().chain(seed) {
        if !r.supports(bp) {
            continue;
        }
        for workers in 1..=cap {
            if !workers.is_power_of_two() && workers != cap {
                continue;
            }
            let c = plan_cost(bp, r, workers);
            if best.is_none_or(|(bc, _)| c < bc) {
                best = Some((
                    c,
                    Plan {
                        routine: r,
                        workers,
                    },
                ));
            }
        }
    }
    best.expect("candidate pool is never empty").1
}

/// The class → (routine, tier) triples the table commits: every
/// distinct [`ShapeClass`] of the pinned shapes crossed with every
/// [`TBand`], each tuned on the class's band representatives (not the
/// pinned extents), so a class maps to one entry no matter which
/// member shape nominated it. The committed tier is resolved back to a
/// concrete worker count from the caller's budget at call time.
pub fn table_entries() -> Vec<(ShapeClass, Routine, Tier)> {
    let mut entries: Vec<(ShapeClass, Routine, Tier)> = Vec::new();
    for &(op, m, k, n) in PINNED_SHAPES {
        for &budget in THREAD_BUDGETS {
            let class = Blueprint {
                m,
                k,
                n,
                op,
                zero_skip: true,
                threads: budget,
            }
            .class();
            if entries.iter().any(|(c, _, _)| *c == class) {
                continue;
            }
            let rep = Blueprint {
                m: class.m.representative(),
                k: class.k.representative(),
                n: class.n.representative(),
                op,
                zero_skip: true,
                threads: class.t.representative(),
            };
            let plan = best_plan(&rep);
            entries.push((class, plan.routine, plan.tier()));
        }
    }
    entries
}

fn render_band(b: Band) -> &'static str {
    match b {
        Band::B1 => "Band::B1",
        Band::B8 => "Band::B8",
        Band::B64 => "Band::B64",
        Band::B256 => "Band::B256",
        Band::B1024 => "Band::B1024",
        Band::BBig => "Band::BBig",
    }
}

fn render_tband(t: TBand) -> &'static str {
    match t {
        TBand::T1 => "TBand::T1",
        TBand::T2 => "TBand::T2",
        TBand::T4 => "TBand::T4",
        TBand::T8 => "TBand::T8",
    }
}

fn render_op(op: Op) -> &'static str {
    match op {
        Op::Nn => "Op::Nn",
        Op::Nt => "Op::Nt",
        Op::Tn => "Op::Tn",
    }
}

/// Renders the complete `table.rs` source text for the current
/// [`table_entries`]. Byte-stable: same code → same bytes, which is
/// what makes `kernel_autotune --verify` a meaningful merge gate.
pub fn render_table() -> String {
    let mut out = String::new();
    out.push_str(
        "//! GENERATED tile table — do not edit by hand.\n\
         //!\n\
         //! Regenerate with\n\
         //! `cargo run --release -p procrustes-tensor --bin kernel_autotune`;\n\
         //! CI runs the same bin with `--verify` and fails the build if this\n\
         //! file is not a fixed point of the generator. See\n\
         //! [`super::autotune`] for the deterministic cost model the entries\n\
         //! come from.\n\n\
         use super::blueprint::{Band, Op, ShapeClass, TBand};\n\
         use super::routine::{Routine, Tier};\n\n\
         /// Committed mapping from coarse problem classes (including the\n\
         /// worker-budget band) to tuned routines and tiers.\n\
         ///\n\
         /// Looked up linearly by [`super::selector::select`]; classes absent\n\
         /// here fall back to the shared cost model at call time. A\n\
         /// `Tier::Threaded` entry is resolved to a concrete worker count\n\
         /// from the caller's budget at call time; the tier never affects\n\
         /// result bytes (see [`super::thread`]), only wall-clock.\n\
         // One compact line per entry: `--verify` compares bytes, so the\n\
         // committed form must survive `cargo fmt` untouched.\n\
         #[rustfmt::skip]\n\
         pub const TILE_TABLE: &[(ShapeClass, Routine, Tier)] = &[\n",
    );
    for (class, routine, tier) in table_entries() {
        out.push_str(&format!(
            "    (\n        ShapeClass {{ op: {}, m: {}, k: {}, n: {}, t: {} }},\n        {},\n        {},\n    ),\n",
            render_op(class.op),
            render_band(class.m),
            render_band(class.k),
            render_band(class.n),
            render_tband(class.t),
            routine.render(),
            tier.render()
        ));
    }
    out.push_str("];\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_is_deterministic_and_positive() {
        let bp = Blueprint::nn(64, 288, 2048);
        for r in candidates() {
            if !r.supports(&bp) {
                continue;
            }
            let c = model_cost(&bp, r);
            assert!(c > 0);
            assert_eq!(c, model_cost(&bp, r));
        }
    }

    #[test]
    fn best_for_prefers_packed_at_size() {
        let r = best_for(&Blueprint::nn(512, 512, 512));
        assert!(matches!(r, Routine::Packed { .. }), "got {}", r.describe());
    }

    #[test]
    fn packed_lhs_wins_nontiny_tn() {
        let r = best_for(&Blueprint::tn(256, 64, 512));
        assert!(
            matches!(r, Routine::PackedLhs { .. }),
            "got {}",
            r.describe()
        );
    }

    #[test]
    fn threaded_crossover_sits_between_small_and_large() {
        // A 64³ product must stay serial even with a full budget; a
        // 512³ one must go wide.
        let small = best_plan(&Blueprint::nn(64, 64, 64).with_threads(8));
        assert_eq!(small.workers, 1, "64^3 should not amortize a dispatch");
        let large = best_plan(&Blueprint::nn(512, 512, 512).with_threads(8));
        assert!(large.workers > 1, "512^3 should go threaded");
        assert_eq!(large.tier(), Tier::Threaded);
    }

    #[test]
    fn plan_cost_charges_dispatch_overhead() {
        let bp = Blueprint::nn(256, 256, 256);
        let r = Routine::Packed {
            mr: 2,
            nr: 64,
            kc: 128,
        };
        let serial = plan_cost(&bp, r, 1);
        let wide = plan_cost(&bp, r, 4);
        assert_eq!(serial, model_cost(&bp, r));
        assert!(wide > serial / 4, "overhead must not be free");
        assert!(
            wide >= DISPATCH_COST + 4 * PER_WORKER_COST,
            "flat charges present"
        );
    }

    #[test]
    fn budget_one_never_plans_threads() {
        for &(op, m, k, n) in PINNED_SHAPES {
            let bp = Blueprint {
                m,
                k,
                n,
                op,
                zero_skip: true,
                threads: 1,
            };
            assert_eq!(best_plan(&bp).workers, 1);
        }
    }

    #[test]
    fn table_entries_are_unique_and_supported() {
        let entries = table_entries();
        assert!(!entries.is_empty());
        for (i, (class, routine, tier)) in entries.iter().enumerate() {
            assert!(
                !entries[..i].iter().any(|(c, _, _)| c == class),
                "duplicate class in table"
            );
            let bp = Blueprint {
                m: class.m.representative(),
                k: class.k.representative(),
                n: class.n.representative(),
                op: class.op,
                zero_skip: true,
                threads: class.t.representative(),
            };
            assert!(routine.supports(&bp), "{} unsupported", routine.describe());
            if *tier == Tier::Threaded {
                assert_ne!(class.t, TBand::T1, "T1 class committed a threaded tier");
            }
        }
    }

    #[test]
    fn table_covers_every_tband() {
        let entries = table_entries();
        for tb in [TBand::T1, TBand::T2, TBand::T4, TBand::T8] {
            assert!(
                entries.iter().any(|(c, _, _)| c.t == tb),
                "no {tb:?} entries"
            );
        }
    }

    #[test]
    fn rendered_table_is_stable() {
        assert_eq!(render_table(), render_table());
        assert!(render_table().contains("TILE_TABLE"));
    }

    #[test]
    fn committed_table_matches_generator() {
        // The in-repo copy of what `--verify` gates on: the committed
        // entries must equal the generator's output entry-for-entry.
        let generated = table_entries();
        assert_eq!(
            super::super::table::TILE_TABLE.len(),
            generated.len(),
            "table.rs entry count drifted — rerun kernel_autotune"
        );
        for ((cc, cr, ct), (gc, gr, gt)) in super::super::table::TILE_TABLE.iter().zip(&generated) {
            assert_eq!(cc, gc, "table.rs class drifted — rerun kernel_autotune");
            assert_eq!(cr, gr, "table.rs routine drifted — rerun kernel_autotune");
            assert_eq!(ct, gt, "table.rs tier drifted — rerun kernel_autotune");
        }
    }
}
