//! The offline autotune sweep behind the committed tile table.
//!
//! `cargo run --release -p procrustes-tensor --bin kernel_autotune`
//! regenerates `src/kernel/table.rs` from the logic here; CI re-runs it
//! with `--verify` and fails if the committed table is not a fixed
//! point.
//!
//! # Why a cost model and not a stopwatch
//!
//! The table is checked-in source verified on every merge, so its
//! contents must be reproducible on *any* machine — a wall-clock sweep
//! would bake one host's noise into the build. Selection therefore
//! ranks candidates with a deterministic integer cost model (micro-op
//! count plus memory traffic, with register-pressure and L1-overflow
//! penalties), calibrated once against measurements on the development
//! host. Wall-clock numbers remain available behind `--measure` as an
//! advisory report; they never influence the generated table.

use super::blueprint::{Band, Blueprint, Op, ShapeClass};
use super::routine::{Routine, SUPPORTED_TILES};

/// The pinned shapes the sweep covers: the `perf_trajectory` GEMM
/// shapes, the conv im2col products and fc forward/backward shapes of
/// the FIG06 training stack, and degenerate extents (vector-matrix,
/// skinny reductions) that exercise the small bands.
pub const PINNED_SHAPES: &[(Op, usize, usize, usize)] = &[
    // perf_trajectory dense GEMM trio.
    (Op::Nn, 64, 288, 2048),
    (Op::Nn, 256, 256, 256),
    (Op::Nn, 64, 576, 512),
    // Larger square point for the big-band classes.
    (Op::Nn, 512, 512, 512),
    // Conv im2col products: dst [k_out, n·p·q] = w [k_out, c·r·s] · cols.
    (Op::Nn, 32, 27, 8192),
    (Op::Nn, 64, 288, 1024),
    // Vector-matrix (batch-1 inference row).
    (Op::Nn, 1, 512, 512),
    // fc forward y = x·Wᵀ and conv dW = dy·colsᵀ.
    (Op::Nt, 64, 2048, 288),
    (Op::Nt, 64, 512, 576),
    (Op::Nt, 8, 512, 256),
    (Op::Nt, 64, 256, 10),
    // fc dW = dyᵀ·x (Tn, skinny reduction over the batch).
    (Op::Tn, 256, 64, 512),
    (Op::Tn, 10, 64, 256),
    (Op::Tn, 512, 64, 2048),
];

/// All packed-routine candidates the sweep ranks: the full-width
/// (`nr = 64`) register tiles crossed with the `kc` ladder.
///
/// Narrower tiles stay in [`SUPPORTED_TILES`] — they serve m-tails and
/// the tiny-problem fallback — but are excluded as primary strategies:
/// `--measure` shows the autovectorizer emits scalar code for their
/// inner loops on wide-SIMD hosts (4–6 GFLOP/s vs 40–57 for the
/// 64-wide tiles), so ranking them as if they vectorized would let the
/// model pick un-vectorized kernels.
pub fn candidates() -> Vec<Routine> {
    candidate_iter().collect()
}

/// The same candidate sequence as [`candidates`], allocation-free: the
/// selector's model fallback runs on the `kernel::gemm` hot path, whose
/// steady-state zero-allocation contract a collecting pool would break.
fn candidate_iter() -> impl Iterator<Item = Routine> {
    SUPPORTED_TILES
        .iter()
        .filter(|&&(mr, nr)| mr >= 2 && nr == 64)
        .flat_map(|&(mr, nr)| {
            [128u16, 256, 512]
                .into_iter()
                .map(move |kc| Routine::Packed { mr, nr, kc })
        })
}

/// Deterministic cost of serving `bp` with `r`, in abstract integer
/// units scaled by 100 (lower is better).
///
/// For packed routines the model charges the microkernel inner loop
/// (`W = ⌈nr/16⌉` SIMD lanes worth of FMA, lhs loads, and loop
/// overhead per reduction step per tile), multiplies in a graded
/// register-pressure penalty when the accumulator tile exceeds eight
/// vector registers (×1.3 for `mr·W > 8`, a further ×1.08 past 16) and
/// a ×1.5 penalty when the packed panel overflows L1
/// (`nr·kc·4 > 37 KB` — this is what steers Nt shapes, whose packing
/// reads are strided, to `kc = 128`), then adds memory traffic (pack
/// writes+reads, dst reload per extra k-block, lhs re-read per j-panel)
/// at a quarter-unit per element. The constants were calibrated against
/// `--measure` sweeps on an AVX-512 development host; only the induced
/// *ordering* matters, and it reproduces the measured ordering on the
/// pinned shapes (where measured differences exceed run-to-run noise).
pub fn model_cost(bp: &Blueprint, r: Routine) -> u128 {
    let (m, k, n) = (bp.m as u128, bp.k as u128, bp.n as u128);
    if m == 0 || n == 0 {
        return 0;
    }
    match r {
        // Streaming seed kernels: no pack, but a wider per-element cost
        // (they run ~2.5-3x slower than the best packed tiles at size).
        Routine::RowStream | Routine::NtRegTile => {
            let lanes = match r {
                Routine::RowStream => n.div_ceil(16),
                _ => n.div_ceil(8),
            };
            (m * k * lanes * 3 + m * n) * 100
        }
        Routine::Packed { mr, nr, kc } => {
            let (mr, nr) = (mr as u128, nr as u128);
            let kc = (kc as u128).min(k.max(1));
            let w = nr.div_ceil(16);
            let tiles_i = m.div_ceil(mr);
            let panels_j = n.div_ceil(nr);
            let kblocks = k.max(1).div_ceil(kc);
            let micro = tiles_i * k * panels_j * (mr * w + mr + 2 + w);
            let mut scaled = micro * 100;
            if mr * w > 8 {
                scaled = scaled * 130 / 100;
            }
            if mr * w > 16 {
                scaled = scaled * 108 / 100;
            }
            if nr * kc * 4 > 37 * 1024 {
                scaled = scaled * 150 / 100;
            }
            let pack = 2 * panels_j * k * nr;
            let dst_traffic = m * n * (2 * kblocks - 1);
            let lhs_traffic = panels_j * m * k;
            scaled + (pack + dst_traffic + lhs_traffic) * 100 / 4
        }
    }
}

/// The model's best candidate for `bp` among [`candidates`] plus the
/// applicable seed kernel. Ties break toward the earlier candidate in
/// enumeration order, so the result is fully deterministic.
pub fn best_for(bp: &Blueprint) -> Routine {
    let seed = match bp.op {
        Op::Nn if bp.zero_skip => Some(Routine::RowStream),
        Op::Nt if bp.zero_skip => Some(Routine::NtRegTile),
        _ => None,
    };
    let mut best = None;
    for r in candidate_iter().chain(seed) {
        if !r.supports(bp) {
            continue;
        }
        let c = model_cost(bp, r);
        if best.is_none_or(|(bc, _)| c < bc) {
            best = Some((c, r));
        }
    }
    best.expect("candidate pool is never empty").1
}

/// The class → routine pairs the table commits: every distinct
/// [`ShapeClass`] of the pinned shapes, each tuned on the class's band
/// representatives (not the pinned extents), so a class maps to one
/// routine no matter which member shape nominated it.
pub fn table_entries() -> Vec<(ShapeClass, Routine)> {
    let mut entries: Vec<(ShapeClass, Routine)> = Vec::new();
    for &(op, m, k, n) in PINNED_SHAPES {
        let class = Blueprint {
            m,
            k,
            n,
            op,
            zero_skip: true,
        }
        .class();
        if entries.iter().any(|(c, _)| *c == class) {
            continue;
        }
        let rep = Blueprint {
            m: class.m.representative(),
            k: class.k.representative(),
            n: class.n.representative(),
            op,
            zero_skip: true,
        };
        entries.push((class, best_for(&rep)));
    }
    entries
}

fn render_band(b: Band) -> &'static str {
    match b {
        Band::B1 => "Band::B1",
        Band::B8 => "Band::B8",
        Band::B64 => "Band::B64",
        Band::B256 => "Band::B256",
        Band::B1024 => "Band::B1024",
        Band::BBig => "Band::BBig",
    }
}

fn render_op(op: Op) -> &'static str {
    match op {
        Op::Nn => "Op::Nn",
        Op::Nt => "Op::Nt",
        Op::Tn => "Op::Tn",
    }
}

/// Renders the complete `table.rs` source text for the current
/// [`table_entries`]. Byte-stable: same code → same bytes, which is
/// what makes `kernel_autotune --verify` a meaningful merge gate.
pub fn render_table() -> String {
    let mut out = String::new();
    out.push_str(
        "//! GENERATED tile table — do not edit by hand.\n\
         //!\n\
         //! Regenerate with\n\
         //! `cargo run --release -p procrustes-tensor --bin kernel_autotune`;\n\
         //! CI runs the same bin with `--verify` and fails the build if this\n\
         //! file is not a fixed point of the generator. See\n\
         //! [`super::autotune`] for the deterministic cost model the entries\n\
         //! come from.\n\n\
         use super::blueprint::{Band, Op, ShapeClass};\n\
         use super::routine::Routine;\n\n\
         /// Committed mapping from coarse problem classes to tuned routines.\n\
         ///\n\
         /// Looked up linearly by [`super::selector::select`]; classes absent\n\
         /// here fall back to the shared cost model at call time.\n\
         // One compact line per entry: `--verify` compares bytes, so the\n\
         // committed form must survive `cargo fmt` untouched.\n\
         #[rustfmt::skip]\n\
         pub const TILE_TABLE: &[(ShapeClass, Routine)] = &[\n",
    );
    for (class, routine) in table_entries() {
        out.push_str(&format!(
            "    (\n        ShapeClass {{ op: {}, m: {}, k: {}, n: {} }},\n        {},\n    ),\n",
            render_op(class.op),
            render_band(class.m),
            render_band(class.k),
            render_band(class.n),
            routine.render()
        ));
    }
    out.push_str("];\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_is_deterministic_and_positive() {
        let bp = Blueprint::nn(64, 288, 2048);
        for r in candidates() {
            let c = model_cost(&bp, r);
            assert!(c > 0);
            assert_eq!(c, model_cost(&bp, r));
        }
    }

    #[test]
    fn best_for_prefers_packed_at_size() {
        let r = best_for(&Blueprint::nn(512, 512, 512));
        assert!(matches!(r, Routine::Packed { .. }), "got {}", r.describe());
    }

    #[test]
    fn table_entries_are_unique_and_supported() {
        let entries = table_entries();
        assert!(!entries.is_empty());
        for (i, (class, routine)) in entries.iter().enumerate() {
            assert!(
                !entries[..i].iter().any(|(c, _)| c == class),
                "duplicate class in table"
            );
            let bp = Blueprint {
                m: class.m.representative(),
                k: class.k.representative(),
                n: class.n.representative(),
                op: class.op,
                zero_skip: true,
            };
            assert!(routine.supports(&bp), "{} unsupported", routine.describe());
        }
    }

    #[test]
    fn rendered_table_is_stable() {
        assert_eq!(render_table(), render_table());
        assert!(render_table().contains("TILE_TABLE"));
    }

    #[test]
    fn committed_table_matches_generator() {
        // The in-repo copy of what `--verify` gates on: the committed
        // entries must equal the generator's output entry-for-entry.
        let generated = table_entries();
        assert_eq!(
            super::super::table::TILE_TABLE.len(),
            generated.len(),
            "table.rs entry count drifted — rerun kernel_autotune"
        );
        for ((cc, cr), (gc, gr)) in super::super::table::TILE_TABLE.iter().zip(&generated) {
            assert_eq!(cc, gc, "table.rs class drifted — rerun kernel_autotune");
            assert_eq!(cr, gr, "table.rs routine drifted — rerun kernel_autotune");
        }
    }
}
