//! The layered GEMM kernel subsystem: blueprint → selector → routine.
//!
//! Every dense matrix product in the workspace flows through this
//! module. The layers, bottom-up:
//!
//! - [`blueprint`] — a plain-data key describing a GEMM problem
//!   ([`Blueprint`]: extents, operand layout, zero-skip eligibility)
//!   and its coarse [`ShapeClass`] for table lookup.
//! - [`routine`] — the executable kernels ([`Routine`]): the seed
//!   streaming loops and a family of register-tiled microkernels over
//!   packed rhs panels staged through the [`Scratch`] pool.
//! - [`selector`] — the policy mapping blueprints to routines: a
//!   committed tile [`table`] (generated offline by the
//!   `kernel_autotune` bin and drift-gated in CI), with a deterministic
//!   cost-model fallback for uncovered classes.
//! - [`autotune`] — the offline sweep and cost model the table is
//!   generated from.
//! - [`thread`] — the threaded tier: a long-lived worker pool that
//!   splits one product's *output* (j-panels, or m-tiles for wide-m /
//!   narrow-n shapes) across workers. Selected per class through the
//!   same table/model path; bitwise-identical to the serial tier at
//!   every worker count.
//!
//! [`gemm`] is the one entry point callers use; `crate::gemm_into` and
//! `crate::gemm_nt_into` remain as thin compatibility wrappers over it.
//!
//! # The accumulation-order contract
//!
//! All routines produce bitwise-identical `f32` results to
//! [`crate::reference::matmul_ikj`]: per output element, partial
//! products are accumulated left-to-right in ascending reduction index,
//! starting from `0.0`, with lhs-zero terms skippable (see
//! [`crate::gemm`] for the full statement). The selector may therefore
//! switch routines — and tiers, and worker counts — freely across
//! shapes, machines, or table revisions without perturbing a single
//! training run.

pub mod autotune;
pub mod blueprint;
pub mod routine;
pub mod selector;
pub mod table;
pub mod thread;

pub use blueprint::{Band, Blueprint, Op, ShapeClass, TBand};
pub use routine::{Routine, Tier};
pub use selector::{explain, select, Plan};
pub use thread::default_threads;

use crate::scratch::Scratch;

/// Computes the product described by `bp` into `dst`, letting the
/// selector pick the routine and tier.
///
/// `dst` is overwritten entirely (stale contents permitted). Packing
/// buffers are taken from and recycled into `scratch` (each pool
/// worker owns its own scratch), so steady-state callers allocate
/// nothing here. A blueprint with `threads > 1` *permits* the threaded
/// tier; whether it is used is the selector's per-class decision, and
/// either way the result bytes are identical.
///
/// # Panics
///
/// Panics if a slice length disagrees with the blueprint.
///
/// # Examples
///
/// ```
/// use procrustes_tensor::kernel::{gemm, Blueprint};
/// use procrustes_tensor::Scratch;
/// let a = [1.0, 2.0, 3.0, 4.0]; // [2, 2]
/// let b = [1.0, 0.0, 0.0, 1.0]; // identity
/// let mut dst = [0.0f32; 4];
/// gemm(&Blueprint::nn(2, 2, 2), &mut dst, &a, &b, &mut Scratch::new());
/// assert_eq!(dst, a);
/// ```
pub fn gemm(bp: &Blueprint, dst: &mut [f32], lhs: &[f32], rhs: &[f32], scratch: &mut Scratch) {
    let plan = selector::select(bp);
    if plan.workers > 1 {
        thread::run(plan.routine, bp, plan.workers, dst, lhs, rhs, scratch);
    } else {
        routine::execute(plan.routine, bp, dst, lhs, rhs, scratch);
    }
}
