//! The threaded tier: a small long-lived worker pool that splits one
//! GEMM's output across threads.
//!
//! # Why splitting the output preserves bitwise equality
//!
//! The kernel contract (see [`crate::gemm`]) fixes each output
//! element's reduction: ascending `p`, sequential, starting from `0.0`.
//! This tier partitions the *output space* — disjoint
//! [`Slab`](super::routine::Slab)s of j-panels (or m-tiles for wide-m /
//! narrow-n shapes like the fc weight-update `Tn` problems) — and runs
//! the ordinary serial kernel on each slab. No reduction is ever split
//! across workers, so there is no cross-lane combine step whose order
//! could vary: every element's float sequence is *identical* to the
//! serial tier's, at every worker count, by construction. (Kraken's PE
//! partitioning motivates the same shape of split in hardware.)
//!
//! # Determinism of the partition
//!
//! Chunk assignment is **static**: worker `w` of a `workers`-wide job
//! always computes chunk `w` of that blueprint, and [`chunk`] is a pure
//! function of `(blueprint, workers, w)`. Results do not depend on this
//! (any disjoint partition gives the same bytes), but static assignment
//! makes each worker's scratch *warm sizes* reproducible, which is what
//! lets the counting-allocator test pin zero steady-state allocations
//! for the threaded tier too.
//!
//! # Pool shape
//!
//! Workers are spawned lazily on first threaded dispatch and then live
//! for the process lifetime, parked on a condvar between jobs. Each
//! owns a private [`Scratch`] pool, so packing buffers are reused
//! across jobs without cross-thread traffic. A dispatch publishes one
//! job under a mutex, the caller computes chunk 0 itself (with its own
//! scratch), and the pool's remaining participants compute chunks
//! `1..workers`; a second mutex serializes concurrent dispatching
//! callers so at most one job is in flight.

use super::blueprint::Blueprint;
use super::routine::{execute_slab, Routine, Slab};
use crate::scratch::Scratch;
use std::sync::{Condvar, Mutex, OnceLock};

/// Hard ceiling on workers per job (including the calling thread).
/// Matches the largest [`TBand`](super::blueprint::TBand)
/// representative; budgets above it are clamped.
pub const MAX_WORKERS: usize = 8;

/// Environment variable overriding [`default_threads`] — CI pins a
/// non-default worker count through it to catch thread-count-sensitive
/// regressions (there should be none: results are bitwise-equal at
/// every count).
pub const THREADS_ENV: &str = "PROCRUSTES_KERNEL_THREADS";

/// The worker budget hot-path callers grant the selector: the
/// [`THREADS_ENV`] override if set and parseable, else the machine's
/// available parallelism, clamped to `1..=`[`MAX_WORKERS`]. Cached
/// after the first call.
pub fn default_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        if let Some(t) = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            return t.clamp(1, MAX_WORKERS);
        }
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(MAX_WORKERS)
    })
}

/// Row-split granularity: m is chunked in units of 8 rows (a full
/// register tile for every supported `mr`).
pub(crate) const M_UNIT: usize = 8;

/// Column-split granularity: n is chunked in units of 64 columns — a
/// multiple of every supported `nr`, so interior chunk boundaries never
/// create ragged packed panels.
pub(crate) const N_UNIT: usize = 64;

/// Whether this shape splits by rows (m-tiles) instead of columns
/// (j-panels): wide-m / narrow-n problems — the fc weight-update `Tn`
/// shapes — have too few column units to feed the pool.
pub(crate) fn split_rows(bp: &Blueprint) -> bool {
    bp.m >= 2 * bp.n
}

/// The number of split units the shape offers along its split axis.
fn units(bp: &Blueprint) -> usize {
    if split_rows(bp) {
        bp.m.div_ceil(M_UNIT)
    } else {
        bp.n.div_ceil(N_UNIT)
    }
}

/// Clamps a worker budget to what the shape can actually feed: at most
/// [`MAX_WORKERS`], and at most one worker per split unit so no chunk
/// is empty. A result of 1 means the problem stays serial.
pub fn effective_workers(bp: &Blueprint, budget: usize) -> usize {
    budget.min(MAX_WORKERS).min(units(bp).max(1)).max(1)
}

/// Balanced partition of `units` units across `workers`: worker `idx`
/// gets the half-open unit range returned. The first `units % workers`
/// workers take one extra unit.
fn part(units: usize, workers: usize, idx: usize) -> (usize, usize) {
    let base = units / workers;
    let extra = units % workers;
    let u0 = idx * base + idx.min(extra);
    (u0, u0 + base + usize::from(idx < extra))
}

/// The output slab worker `idx` of a `workers`-wide job computes. Pure
/// in its arguments; chunks of one job tile the output disjointly.
pub(crate) fn chunk(bp: &Blueprint, workers: usize, idx: usize) -> Slab {
    debug_assert!(idx < workers);
    if split_rows(bp) {
        let (u0, u1) = part(units(bp), workers, idx);
        Slab {
            i0: (u0 * M_UNIT).min(bp.m),
            i1: (u1 * M_UNIT).min(bp.m),
            j0: 0,
            j1: bp.n,
        }
    } else {
        let (u0, u1) = part(units(bp), workers, idx);
        Slab {
            i0: 0,
            i1: bp.m,
            j0: (u0 * N_UNIT).min(bp.n),
            j1: (u1 * N_UNIT).min(bp.n),
        }
    }
}

/// One published unit of work: the problem plus raw views of the
/// caller's buffers. Workers reconstruct slices from these pointers for
/// exactly the duration of the dispatch (see the safety argument on
/// [`run`]).
#[derive(Clone, Copy)]
struct Job {
    dst: *mut f32,
    dst_len: usize,
    lhs: *const f32,
    lhs_len: usize,
    rhs: *const f32,
    rhs_len: usize,
    bp: Blueprint,
    routine: Routine,
    workers: usize,
}

// SAFETY: a Job only crosses threads while the dispatching caller is
// blocked inside `run`, which keeps the borrows behind these pointers
// alive; workers write disjoint dst slabs (see `run`).
#[allow(unsafe_code)]
unsafe impl Send for Job {}

struct State {
    /// Monotone job counter: workers run a job at most once by
    /// comparing against the last sequence number they observed.
    seq: u64,
    job: Option<Job>,
    /// Helper workers still to finish the current job (the caller's own
    /// chunk is not counted).
    pending: usize,
}

struct Pool {
    state: Mutex<State>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The dispatching caller parks here until `pending == 0`.
    done_cv: Condvar,
    /// Serializes dispatching callers; holds the spawned-helper count.
    dispatch: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State {
            seq: 0,
            job: None,
            pending: 0,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        dispatch: Mutex::new(0),
    })
}

/// Executes the caller-side view of one chunk.
///
/// # Safety
///
/// `job`'s pointers must be live and sized as recorded, and no other
/// thread may touch the dst elements inside this chunk's slab for the
/// duration of the call. `run` upholds this: slabs of one job are
/// disjoint by construction and the caller's buffers outlive the
/// dispatch.
#[allow(unsafe_code)]
unsafe fn run_chunk(job: &Job, idx: usize, scratch: &mut Scratch) {
    // SAFETY: per the function contract — pointers live for the whole
    // dispatch, lengths as recorded at publication. The dst slice
    // nominally spans the full output, but this worker writes (and
    // reads) only the elements inside its disjoint slab.
    let dst = unsafe { std::slice::from_raw_parts_mut(job.dst, job.dst_len) };
    let lhs = unsafe { std::slice::from_raw_parts(job.lhs, job.lhs_len) };
    let rhs = unsafe { std::slice::from_raw_parts(job.rhs, job.rhs_len) };
    let slab = chunk(&job.bp, job.workers, idx);
    execute_slab(job.routine, &job.bp, dst, lhs, rhs, scratch, slab);
}

/// Helper-thread body: wait for a job with a fresh sequence number,
/// compute chunk `idx` if this worker participates, repeat forever.
fn worker_loop(idx: usize) {
    let p = pool();
    let mut scratch = Scratch::new();
    let mut last_seen = 0u64;
    loop {
        let job = {
            let mut st = p.state.lock().expect("kernel pool poisoned");
            loop {
                if st.seq > last_seen {
                    last_seen = st.seq;
                    if let Some(job) = st.job.filter(|j| idx < j.workers) {
                        break job;
                    }
                }
                st = p.work_cv.wait(st).expect("kernel pool poisoned");
            }
        };
        // SAFETY: the dispatching caller is blocked in `run` until this
        // worker decrements `pending` below, so the buffers behind the
        // job's pointers are live; slab disjointness per `chunk`.
        #[allow(unsafe_code)]
        unsafe {
            run_chunk(&job, idx, &mut scratch)
        };
        let mut st = p.state.lock().expect("kernel pool poisoned");
        st.pending -= 1;
        if st.pending == 0 {
            p.done_cv.notify_all();
        }
    }
}

/// Runs `routine` on `bp` across `workers` threads (the caller plus
/// `workers - 1` pool helpers), bitwise-identically to the serial tier.
///
/// The caller computes chunk 0 with its own `scratch` and blocks until
/// every helper finishes its chunk, so on return `dst` is fully
/// written and no worker retains a reference into the caller's
/// buffers. Helper threads are spawned on first use (the only
/// allocation this tier performs after its scratch pools are warm).
///
/// # Panics
///
/// Panics if `workers` exceeds what [`effective_workers`] allows for
/// `bp` — the selector never produces such a plan.
pub(crate) fn run(
    routine: Routine,
    bp: &Blueprint,
    workers: usize,
    dst: &mut [f32],
    lhs: &[f32],
    rhs: &[f32],
    scratch: &mut Scratch,
) {
    assert!(
        workers >= 2 && workers == effective_workers(bp, workers),
        "kernel: invalid worker count {workers} for {}x{}x{}",
        bp.m,
        bp.k,
        bp.n
    );
    assert_eq!(lhs.len(), bp.lhs_len(), "kernel: lhs length != m*k");
    assert_eq!(rhs.len(), bp.rhs_len(), "kernel: rhs length != k*n");
    assert_eq!(dst.len(), bp.m * bp.n, "kernel: dst length != m*n");
    let p = pool();
    // One job in flight at a time: concurrent callers queue here.
    let mut spawned = p.dispatch.lock().expect("kernel pool poisoned");
    while *spawned < workers - 1 {
        *spawned += 1;
        let idx = *spawned;
        std::thread::Builder::new()
            .name(format!("procrustes-kernel-{idx}"))
            .spawn(move || worker_loop(idx))
            .expect("kernel: failed to spawn pool worker");
    }
    let job = Job {
        dst: dst.as_mut_ptr(),
        dst_len: dst.len(),
        lhs: lhs.as_ptr(),
        lhs_len: lhs.len(),
        rhs: rhs.as_ptr(),
        rhs_len: rhs.len(),
        bp: *bp,
        routine,
        workers,
    };
    {
        let mut st = p.state.lock().expect("kernel pool poisoned");
        st.job = Some(job);
        st.pending = workers - 1;
        st.seq += 1;
        p.work_cv.notify_all();
    }
    // SAFETY: dst/lhs/rhs are borrowed for this whole call; chunk 0 is
    // disjoint from every helper's chunk.
    #[allow(unsafe_code)]
    unsafe {
        run_chunk(&job, 0, scratch)
    };
    let mut st = p.state.lock().expect("kernel pool poisoned");
    while st.pending != 0 {
        st = p.done_cv.wait(st).expect("kernel pool poisoned");
    }
    // Keep `spawned` (the dispatch guard) alive until the job fully
    // drained so the next caller cannot republish over a live job.
    drop(st);
    drop(spawned);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_tile_the_output_disjointly() {
        for &(m, n) in &[(64, 2048), (512, 64), (1, 300), (100, 100), (7, 65)] {
            let bp = Blueprint::nn(m, 128, n);
            for workers in 1..=MAX_WORKERS {
                let w = effective_workers(&bp, workers);
                let mut covered = vec![0u8; m * n];
                for idx in 0..w {
                    let s = chunk(&bp, w, idx);
                    for i in s.i0..s.i1 {
                        for j in s.j0..s.j1 {
                            covered[i * n + j] += 1;
                        }
                    }
                }
                assert!(
                    covered.iter().all(|&c| c == 1),
                    "m={m} n={n} workers={w}: output not tiled exactly once"
                );
            }
        }
    }

    #[test]
    fn wide_m_narrow_n_splits_rows() {
        let dw = Blueprint::tn(512, 64, 64);
        assert!(split_rows(&dw));
        let s = chunk(&dw, 4, 1);
        assert_eq!((s.j0, s.j1), (0, 64), "row split keeps full columns");
        let fwd = Blueprint::nn(64, 64, 512);
        assert!(!split_rows(&fwd));
        let s = chunk(&fwd, 4, 1);
        assert_eq!((s.i0, s.i1), (0, 64), "column split keeps full rows");
    }

    #[test]
    fn effective_workers_clamps_to_units_and_ceiling() {
        // 100 columns = 2 units of 64 → at most 2 workers.
        assert_eq!(effective_workers(&Blueprint::nn(4, 4, 100), 8), 2);
        // Degenerate output: stays serial.
        assert_eq!(effective_workers(&Blueprint::nn(0, 4, 0), 8), 1);
        assert_eq!(
            effective_workers(&Blueprint::nn(4096, 4, 4096), 64),
            MAX_WORKERS
        );
        assert_eq!(effective_workers(&Blueprint::nn(4096, 4, 4096), 0), 1);
    }

    #[test]
    fn chunk_is_static_per_worker() {
        // The same (blueprint, workers, idx) always yields the same
        // slab — the property the alloc test's warm-size argument needs.
        let bp = Blueprint::nn(256, 256, 1024);
        for idx in 0..4 {
            assert_eq!(chunk(&bp, 4, idx), chunk(&bp, 4, idx));
        }
    }

    #[test]
    fn threaded_run_matches_serial_bitwise() {
        let routine = Routine::Packed {
            mr: 4,
            nr: 64,
            kc: 128,
        };
        let bp = Blueprint::nn(48, 96, 640);
        let lhs: Vec<f32> = (0..bp.lhs_len()).map(|i| (i as f32).sin()).collect();
        let rhs: Vec<f32> = (0..bp.rhs_len()).map(|i| (i as f32).cos()).collect();
        let mut scratch = Scratch::new();
        let mut serial = vec![f32::NAN; bp.m * bp.n];
        super::super::routine::execute(routine, &bp, &mut serial, &lhs, &rhs, &mut scratch);
        for workers in 2..=4 {
            let mut threaded = vec![f32::NAN; bp.m * bp.n];
            run(
                routine,
                &bp,
                workers,
                &mut threaded,
                &lhs,
                &rhs,
                &mut scratch,
            );
            assert!(
                serial
                    .iter()
                    .zip(&threaded)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threaded ({workers}) != serial"
            );
        }
    }
}
