//! The routine layer: the executable GEMM kernels a blueprint can be
//! served by.
//!
//! A [`Routine`] is a concrete compute strategy — a plain-data value
//! naming one of the kernels below plus its blocking parameters. The
//! [selector](super::selector) picks one per [`Blueprint`]; [`execute`]
//! runs it. Three families exist:
//!
//! - **`RowStream`** — the seed panelled-ikj kernel (no packing,
//!   accumulates in `dst` memory). Cheapest for tiny `Nn` problems
//!   where packing overhead cannot amortize.
//! - **`NtRegTile`** — the seed 4×8 register-tile kernel over
//!   transposed-rhs rows. Cheapest for tiny `Nt` problems.
//! - **`Packed`** — the register-tiled workhorse: rhs is packed one
//!   `kc×NR` panel at a time into [`Scratch`]-pooled, ping-pong
//!   (double-buffered) staging buffers, and each `MR×NR` output tile is
//!   accumulated in a register-resident array the autovectorizer maps
//!   onto SIMD lanes. The packed panel is reused across every i-tile of
//!   the current j-panel, which is where the ≥2× throughput over the
//!   seed kernel comes from.
//!
//! # Bitwise equality
//!
//! All routines honour the accumulation-order contract from
//! [`crate::gemm`]: per output element, partial products are reduced
//! left-to-right in ascending `p`, starting from `0.0`. The `Packed`
//! kernels split `p` into `kc`-sized blocks, but blocks are visited in
//! ascending order and each accumulator is carried through memory
//! between blocks — no element's sum ever re-associates. Lhs zeros are
//! skipped when the blueprint allows it (bitwise-neutral on finite
//! data); `zero_skip == false` compiles the branch-free strict variant
//! of the same loop.

use super::blueprint::{Blueprint, Op};
use crate::scratch::Scratch;

/// A concrete kernel choice: strategy plus blocking parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Routine {
    /// Seed panelled-ikj kernel (`Nn` only): streams rhs rows against an
    /// `MR`-row output panel held in `dst` memory. No packing, no
    /// scratch use.
    RowStream,
    /// Seed 4×8 register-tile kernel (`Nt` only): walks contiguous rows
    /// of both operands. No packing, no scratch use.
    NtRegTile,
    /// Register-tiled kernel over packed rhs panels (all ops).
    Packed {
        /// Output-tile rows held in registers per microkernel call.
        mr: u8,
        /// Output-tile columns (= packed panel width).
        nr: u8,
        /// Reduction block: rhs is packed and consumed `kc` rows at a
        /// time so the active panel stays cache-resident.
        kc: u16,
    },
}

/// The `(mr, nr)` register-tile geometries the dispatcher can
/// instantiate. `kc` is a runtime parameter; these pairs are the
/// compile-time monomorphizations. The autotune candidate sweep draws
/// from exactly this list, so a committed table can never name a tile
/// the dispatcher lacks.
pub const SUPPORTED_TILES: &[(u8, u8)] = &[
    (1, 16),
    (2, 16),
    (4, 16),
    (6, 16),
    (8, 16),
    (1, 32),
    (2, 32),
    (4, 32),
    (6, 32),
    (8, 32),
    (1, 64),
    (2, 64),
    (4, 64),
    (6, 64),
];

impl Routine {
    /// Whether this routine can serve the given blueprint.
    ///
    /// The seed kernels hard-code the lhs zero-skip, so they are only
    /// eligible when the blueprint permits skipping; `Packed` serves
    /// every op in both skip and strict modes.
    pub fn supports(&self, bp: &Blueprint) -> bool {
        match self {
            Routine::RowStream => bp.op == Op::Nn && bp.zero_skip,
            Routine::NtRegTile => bp.op == Op::Nt && bp.zero_skip,
            Routine::Packed { mr, nr, kc } => *kc > 0 && SUPPORTED_TILES.contains(&(*mr, *nr)),
        }
    }

    /// Human-readable tag for benchmark attribution, e.g.
    /// `packed-4x32/kc256`.
    pub fn describe(&self) -> String {
        match self {
            Routine::RowStream => "row-stream".to_string(),
            Routine::NtRegTile => "nt-reg-tile".to_string(),
            Routine::Packed { mr, nr, kc } => format!("packed-{mr}x{nr}/kc{kc}"),
        }
    }

    /// Renders this routine as the Rust expression the generated tile
    /// table embeds.
    pub fn render(&self) -> String {
        match self {
            Routine::RowStream => "Routine::RowStream".to_string(),
            Routine::NtRegTile => "Routine::NtRegTile".to_string(),
            Routine::Packed { mr, nr, kc } => {
                format!("Routine::Packed {{ mr: {mr}, nr: {nr}, kc: {kc} }}")
            }
        }
    }
}

/// Runs `routine` on the problem described by `bp`.
///
/// `dst` is overwritten entirely (stale contents are permitted). The
/// packed kernels stage rhs panels through `scratch`, so a caller that
/// recycles its buffers sees zero steady-state allocations here.
///
/// # Panics
///
/// Panics if a slice length disagrees with the blueprint, or if the
/// routine does not [support](Routine::supports) the blueprint (the
/// selector never produces such a pairing; reaching it means a
/// hand-edited table).
pub fn execute(
    routine: Routine,
    bp: &Blueprint,
    dst: &mut [f32],
    lhs: &[f32],
    rhs: &[f32],
    scratch: &mut Scratch,
) {
    assert_eq!(lhs.len(), bp.lhs_len(), "kernel: lhs length != m*k");
    assert_eq!(rhs.len(), bp.rhs_len(), "kernel: rhs length != k*n");
    assert_eq!(dst.len(), bp.m * bp.n, "kernel: dst length != m*n");
    assert!(
        routine.supports(bp),
        "kernel: routine {} cannot serve op={} zero_skip={}",
        routine.describe(),
        bp.op.tag(),
        bp.zero_skip
    );
    match routine {
        Routine::RowStream => row_stream(dst, lhs, rhs, bp.m, bp.k, bp.n),
        Routine::NtRegTile => nt_reg_tile(dst, lhs, rhs, bp.m, bp.k, bp.n),
        Routine::Packed { mr, nr, kc } => {
            dispatch_packed(mr, nr, kc as usize, bp, dst, lhs, rhs, scratch)
        }
    }
}

/// Monomorphization dispatch: maps the runtime `(mr, nr)` pair onto the
/// matching const-generic instantiation, and `zero_skip` onto the
/// skip/strict variant.
#[allow(clippy::too_many_arguments)]
fn dispatch_packed(
    mr: u8,
    nr: u8,
    kc: usize,
    bp: &Blueprint,
    dst: &mut [f32],
    lhs: &[f32],
    rhs: &[f32],
    scratch: &mut Scratch,
) {
    macro_rules! go {
        ($mr:literal, $nr:literal) => {
            if bp.zero_skip {
                run_packed::<$mr, $nr, true>(dst, lhs, rhs, bp, kc, scratch)
            } else {
                run_packed::<$mr, $nr, false>(dst, lhs, rhs, bp, kc, scratch)
            }
        };
    }
    match (mr, nr) {
        (1, 16) => go!(1, 16),
        (2, 16) => go!(2, 16),
        (4, 16) => go!(4, 16),
        (6, 16) => go!(6, 16),
        (8, 16) => go!(8, 16),
        (1, 32) => go!(1, 32),
        (2, 32) => go!(2, 32),
        (4, 32) => go!(4, 32),
        (6, 32) => go!(6, 32),
        (8, 32) => go!(8, 32),
        (1, 64) => go!(1, 64),
        (2, 64) => go!(2, 64),
        (4, 64) => go!(4, 64),
        (6, 64) => go!(6, 64),
        other => unreachable!("kernel: tile {other:?} not in SUPPORTED_TILES"),
    }
}

/// The packed register-tiled kernel.
///
/// Loop structure (outer to inner): j-panels of `NR` columns → k-blocks
/// of `kc` (rhs panel packed once per block, reused by every i-tile) →
/// i-tiles of `MR` rows (`MR=1` tail). Accumulators live in a
/// `[[f32; NR]; MR]` array; the first k-block stores them directly
/// (never reading stale `dst`), later blocks reload and continue, so
/// each output element sees its terms in ascending `p` exactly once.
fn run_packed<const MR: usize, const NR: usize, const SKIP: bool>(
    dst: &mut [f32],
    lhs: &[f32],
    rhs: &[f32],
    bp: &Blueprint,
    kc_blk: usize,
    scratch: &mut Scratch,
) {
    let (m, k, n) = (bp.m, bp.k, bp.n);
    if k == 0 {
        dst.fill(0.0);
        return;
    }
    // Lhs element (row, p) lives at row*rs + p*cs: row-major [m, k] for
    // Nn/Nt, column-walked [k, m] for Tn (the untransposed view).
    let (rs, cs) = match bp.op {
        Op::Tn => (1, m),
        Op::Nn | Op::Nt => (k, 1),
    };
    let kc_blk = kc_blk.min(k).max(1);
    // Ping-pong staging: two pooled panels, alternated per packed
    // block, so the pack of one panel never overwrites the lines the
    // previous block's tail tiles are still streaming from.
    let mut panels = [scratch.take_any(kc_blk * NR), scratch.take_any(kc_blk * NR)];
    let mut which = 0usize;
    let mut j = 0;
    while j < n {
        let jw = NR.min(n - j);
        let mut k0 = 0;
        while k0 < k {
            let kc = kc_blk.min(k - k0);
            let panel = &mut panels[which];
            which ^= 1;
            match bp.op {
                Op::Nt => pack_rhs_t::<NR>(panel, rhs, k0, kc, j, jw, k),
                Op::Nn | Op::Tn => pack_rhs_n::<NR>(panel, rhs, k0, kc, j, jw, n),
            }
            let first = k0 == 0;
            let mut i = 0;
            while i + MR <= m {
                tile::<MR, NR, SKIP>(dst, lhs, rs, cs, i, j, jw, n, k0, kc, panel, first);
                i += MR;
            }
            while i < m {
                tile::<1, NR, SKIP>(dst, lhs, rs, cs, i, j, jw, n, k0, kc, panel, first);
                i += 1;
            }
            k0 += kc;
        }
        j += NR;
    }
    let [p0, p1] = panels;
    scratch.recycle_vec(p0);
    scratch.recycle_vec(p1);
}

/// One `MR×NR` output tile: load (unless first k-block), accumulate the
/// block, store.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn tile<const MR: usize, const NR: usize, const SKIP: bool>(
    dst: &mut [f32],
    lhs: &[f32],
    rs: usize,
    cs: usize,
    i: usize,
    j: usize,
    jw: usize,
    n: usize,
    k0: usize,
    kc: usize,
    panel: &[f32],
    first: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for (mi, accm) in acc.iter_mut().enumerate() {
            accm[..jw].copy_from_slice(&dst[(i + mi) * n + j..(i + mi) * n + j + jw]);
        }
    }
    micro::<MR, NR, SKIP>(&mut acc, lhs, rs, cs, i, k0, kc, panel);
    for (mi, accm) in acc.iter().enumerate() {
        dst[(i + mi) * n + j..(i + mi) * n + j + jw].copy_from_slice(&accm[..jw]);
    }
}

/// The innermost loop: `kc` reduction steps over an `MR×NR` register
/// tile against a packed panel. Written so the `jr` loop vectorizes to
/// full-width fused loads/FMAs; the lhs operand is read directly with
/// strided indexing (packing lhs measurably defeats the
/// autovectorizer).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro<const MR: usize, const NR: usize, const SKIP: bool>(
    acc: &mut [[f32; NR]; MR],
    lhs: &[f32],
    rs: usize,
    cs: usize,
    i: usize,
    k0: usize,
    kc: usize,
    panel: &[f32],
) {
    for p in 0..kc {
        let bpp = &panel[p * NR..(p + 1) * NR];
        for (mi, accm) in acc.iter_mut().enumerate() {
            let av = lhs[(i + mi) * rs + (k0 + p) * cs];
            if !SKIP || av != 0.0 {
                for (slot, &bv) in accm.iter_mut().zip(bpp) {
                    *slot += av * bv;
                }
            }
        }
    }
}

/// Packs a `kc×jw` slab of a row-major `[k, n]` rhs into `[kc][NR]`
/// layout, zero-padding columns `jw..NR`.
fn pack_rhs_n<const NR: usize>(
    panel: &mut [f32],
    b: &[f32],
    k0: usize,
    kc: usize,
    j: usize,
    jw: usize,
    n: usize,
) {
    for p in 0..kc {
        let src = &b[(k0 + p) * n + j..(k0 + p) * n + j + jw];
        let dst = &mut panel[p * NR..p * NR + NR];
        dst[..jw].copy_from_slice(src);
        dst[jw..].fill(0.0);
    }
}

/// Packs a `kc×jw` slab of a transposed rhs (`bt: [n, k]`, so
/// `b[p][j+jr] = bt[j+jr][p]`) into the same `[kc][NR]` layout —
/// reading `bt` along its contiguous rows.
fn pack_rhs_t<const NR: usize>(
    panel: &mut [f32],
    bt: &[f32],
    k0: usize,
    kc: usize,
    j: usize,
    jw: usize,
    k: usize,
) {
    for jr in 0..NR {
        if jr < jw {
            let src = &bt[(j + jr) * k + k0..(j + jr) * k + k0 + kc];
            for (p, &v) in src.iter().enumerate() {
                panel[p * NR + jr] = v;
            }
        } else {
            for p in 0..kc {
                panel[p * NR + jr] = 0.0;
            }
        }
    }
}

/// Seed panelled-ikj kernel (see [`crate::gemm`] for the original):
/// `Nn`, lhs zero-skip, accumulates in `dst` memory.
fn row_stream(dst: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    const NB: usize = 256;
    const MR: usize = 4;
    dst.fill(0.0);
    let mut j = 0;
    while j < n {
        let jw = NB.min(n - j);
        let mut i = 0;
        while i < m {
            let mr = MR.min(m - i);
            for p in 0..k {
                let brow = &b[p * n + j..p * n + j + jw];
                for mi in 0..mr {
                    let av = a[(i + mi) * k + p];
                    if av != 0.0 {
                        let orow = &mut dst[(i + mi) * n + j..(i + mi) * n + j + jw];
                        for (o, &bv) in orow.iter_mut().zip(brow) {
                            *o += av * bv;
                        }
                    }
                }
            }
            i += mr;
        }
        j += NB;
    }
}

/// Seed 4×8 register-tile kernel for `Nt` (`bt: [n, k]`): both operands
/// walked along contiguous rows, lhs zero-skip.
fn nt_reg_tile(dst: &mut [f32], a: &[f32], bt: &[f32], m: usize, k: usize, n: usize) {
    const MR: usize = 4;
    const NR: usize = 8;
    let empty: &[f32] = &[];
    let mut j = 0;
    while j + NR <= n {
        let mut btr = [empty; NR];
        for (nj, slot) in btr.iter_mut().enumerate() {
            *slot = &bt[(j + nj) * k..(j + nj + 1) * k];
        }
        let mut i = 0;
        while i + MR <= m {
            let mut acc = [[0.0f32; NR]; MR];
            for p in 0..k {
                for (mi, accm) in acc.iter_mut().enumerate() {
                    let av = a[(i + mi) * k + p];
                    if av != 0.0 {
                        for (slot, brow) in accm.iter_mut().zip(&btr) {
                            *slot += av * brow[p];
                        }
                    }
                }
            }
            for (mi, accm) in acc.iter().enumerate() {
                dst[(i + mi) * n + j..(i + mi) * n + j + NR].copy_from_slice(accm);
            }
            i += MR;
        }
        while i < m {
            let mut acc = [0.0f32; NR];
            for p in 0..k {
                let av = a[i * k + p];
                if av != 0.0 {
                    for (slot, brow) in acc.iter_mut().zip(&btr) {
                        *slot += av * brow[p];
                    }
                }
            }
            dst[i * n + j..i * n + j + NR].copy_from_slice(&acc);
            i += 1;
        }
        j += NR;
    }
    while j < n {
        let brow = &bt[j * k..(j + 1) * k];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                if av != 0.0 {
                    acc += av * bv;
                }
            }
            dst[i * n + j] = acc;
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::matmul_ikj;
    use procrustes_prng::{UniformRng, Xorshift64};

    fn sparse_mat(len: usize, keep: f64, seed: u64) -> Vec<f32> {
        let mut rng = Xorshift64::new(seed);
        (0..len)
            .map(|_| {
                if rng.next_f64() < keep {
                    rng.next_f32() * 2.0 - 1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    fn reference_for(bp: &Blueprint, lhs: &[f32], rhs: &[f32]) -> Vec<f32> {
        // Materialize untransposed operands and run the naive loop.
        let (m, k, n) = (bp.m, bp.k, bp.n);
        let a: Vec<f32> = match bp.op {
            Op::Tn => {
                let mut a = vec![0.0f32; m * k];
                for p in 0..k {
                    for i in 0..m {
                        a[i * k + p] = lhs[p * m + i];
                    }
                }
                a
            }
            _ => lhs.to_vec(),
        };
        let b: Vec<f32> = match bp.op {
            Op::Nt => {
                let mut b = vec![0.0f32; k * n];
                for jj in 0..n {
                    for p in 0..k {
                        b[p * n + jj] = rhs[jj * k + p];
                    }
                }
                b
            }
            _ => rhs.to_vec(),
        };
        matmul_ikj(&a, &b, m, k, n)
    }

    #[test]
    fn every_supported_tile_matches_reference_bitwise() {
        let mut scratch = Scratch::new();
        for &(m, k, n) in &[(5, 7, 17), (13, 21, 40), (4, 3, 16), (9, 33, 65), (1, 5, 3)] {
            for op in [Op::Nn, Op::Nt, Op::Tn] {
                let bp = Blueprint {
                    m,
                    k,
                    n,
                    op,
                    zero_skip: true,
                };
                let lhs = sparse_mat(bp.lhs_len(), 0.5, (m * 31 + n) as u64);
                let rhs = sparse_mat(bp.rhs_len(), 0.9, (k * 17 + n + 1) as u64);
                let want = reference_for(&bp, &lhs, &rhs);
                for &(mr, nr) in SUPPORTED_TILES {
                    for kc in [4u16, 16, 256] {
                        let r = Routine::Packed { mr, nr, kc };
                        let mut got = vec![f32::NAN; m * n];
                        execute(r, &bp, &mut got, &lhs, &rhs, &mut scratch);
                        assert_eq!(got, want, "{} op={}", r.describe(), op.tag());
                        // Strict variant agrees on finite data.
                        let mut strict = vec![f32::NAN; m * n];
                        execute(r, &bp.strict(), &mut strict, &lhs, &rhs, &mut scratch);
                        assert_eq!(strict, want, "{} strict op={}", r.describe(), op.tag());
                    }
                }
            }
        }
    }

    #[test]
    fn seed_routines_match_reference() {
        let mut scratch = Scratch::new();
        let (m, k, n) = (13, 21, 40);
        let bp = Blueprint::nn(m, k, n);
        let lhs = sparse_mat(bp.lhs_len(), 0.4, 3);
        let rhs = sparse_mat(bp.rhs_len(), 0.9, 4);
        let mut got = vec![f32::NAN; m * n];
        execute(Routine::RowStream, &bp, &mut got, &lhs, &rhs, &mut scratch);
        assert_eq!(got, reference_for(&bp, &lhs, &rhs));

        let bp = Blueprint::nt(m, k, n);
        let rhs_t = sparse_mat(bp.rhs_len(), 0.9, 5);
        execute(
            Routine::NtRegTile,
            &bp,
            &mut got,
            &lhs,
            &rhs_t,
            &mut scratch,
        );
        assert_eq!(got, reference_for(&bp, &lhs, &rhs_t));
    }

    #[test]
    fn k_zero_zeroes_dst() {
        let mut scratch = Scratch::new();
        let bp = Blueprint::nn(3, 0, 5);
        let mut dst = vec![f32::NAN; 15];
        execute(
            Routine::Packed {
                mr: 4,
                nr: 32,
                kc: 256,
            },
            &bp,
            &mut dst,
            &[],
            &[],
            &mut scratch,
        );
        assert_eq!(dst, vec![0.0; 15]);
    }

    #[test]
    fn strict_propagates_nonfinite_rhs_under_zero_lhs() {
        // 0·inf = NaN must survive in strict mode and be elided in skip
        // mode — the one observable difference between the variants.
        let mut scratch = Scratch::new();
        let bp = Blueprint::nn(1, 1, 1);
        let lhs = [0.0f32];
        let rhs = [f32::INFINITY];
        let r = Routine::Packed {
            mr: 2,
            nr: 16,
            kc: 16,
        };
        let mut dst = [f32::NAN; 1];
        execute(r, &bp, &mut dst, &lhs, &rhs, &mut scratch);
        assert_eq!(dst, [0.0]);
        execute(r, &bp.strict(), &mut dst, &lhs, &rhs, &mut scratch);
        assert!(dst[0].is_nan());
    }

    #[test]
    fn supports_gates_seed_kernels_on_op_and_skip() {
        assert!(Routine::RowStream.supports(&Blueprint::nn(4, 4, 4)));
        assert!(!Routine::RowStream.supports(&Blueprint::nt(4, 4, 4)));
        assert!(!Routine::RowStream.supports(&Blueprint::nn(4, 4, 4).strict()));
        assert!(Routine::NtRegTile.supports(&Blueprint::nt(4, 4, 4)));
        assert!(!Routine::NtRegTile.supports(&Blueprint::tn(4, 4, 4)));
        let p = Routine::Packed {
            mr: 4,
            nr: 32,
            kc: 128,
        };
        assert!(p.supports(&Blueprint::tn(4, 4, 4).strict()));
        assert!(!Routine::Packed {
            mr: 3,
            nr: 32,
            kc: 128
        }
        .supports(&Blueprint::nn(4, 4, 4)));
    }
}
