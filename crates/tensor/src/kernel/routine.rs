//! The routine layer: the executable GEMM kernels a blueprint can be
//! served by.
//!
//! A [`Routine`] is a concrete compute strategy — a plain-data value
//! naming one of the kernels below plus its blocking parameters. The
//! [selector](super::selector) picks one per [`Blueprint`]; [`execute`]
//! runs it. Three families exist:
//!
//! - **`RowStream`** — the seed panelled-ikj kernel (no packing,
//!   accumulates in `dst` memory). Cheapest for tiny `Nn` problems
//!   where packing overhead cannot amortize.
//! - **`NtRegTile`** — the seed 4×8 register-tile kernel over
//!   transposed-rhs rows. Cheapest for tiny `Nt` problems.
//! - **`Packed`** — the register-tiled workhorse: rhs is packed one
//!   `kc×NR` panel at a time into [`Scratch`]-pooled, ping-pong
//!   (double-buffered) staging buffers, and each `MR×NR` output tile is
//!   accumulated in a register-resident array the autovectorizer maps
//!   onto SIMD lanes. The packed panel is reused across every i-tile of
//!   the current j-panel, which is where the ≥2× throughput over the
//!   seed kernel comes from.
//!
//! # Bitwise equality
//!
//! All routines honour the accumulation-order contract from
//! [`crate::gemm`]: per output element, partial products are reduced
//! left-to-right in ascending `p`, starting from `0.0`. The `Packed`
//! kernels split `p` into `kc`-sized blocks, but blocks are visited in
//! ascending order and each accumulator is carried through memory
//! between blocks — no element's sum ever re-associates. Lhs zeros are
//! skipped when the blueprint allows it (bitwise-neutral on finite
//! data); `zero_skip == false` compiles the branch-free strict variant
//! of the same loop.

use super::blueprint::{Blueprint, Op};
use crate::scratch::Scratch;

/// Whether a plan runs on the calling thread alone or fans the output
/// across the kernel worker pool (see [`super::thread`]).
///
/// The tier never changes a result byte — each output element's `k`
/// reduction stays strictly sequential on one worker — so the committed
/// table may flip a class between tiers freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// The whole product runs on the calling thread.
    Serial,
    /// The output is split into per-worker j-panels (or m-tiles) and
    /// dispatched to the long-lived worker pool.
    Threaded,
}

impl Tier {
    /// Short lowercase tag (`serial` | `threaded`) for reports and the
    /// generated table.
    pub fn tag(self) -> &'static str {
        match self {
            Tier::Serial => "serial",
            Tier::Threaded => "threaded",
        }
    }

    /// Renders this tier as the Rust expression the generated tile
    /// table embeds.
    pub fn render(self) -> &'static str {
        match self {
            Tier::Serial => "Tier::Serial",
            Tier::Threaded => "Tier::Threaded",
        }
    }
}

/// A concrete kernel choice: strategy plus blocking parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Routine {
    /// Seed panelled-ikj kernel (`Nn` only): streams rhs rows against an
    /// `MR`-row output panel held in `dst` memory. No packing, no
    /// scratch use.
    RowStream,
    /// Seed 4×8 register-tile kernel (`Nt` only): walks contiguous rows
    /// of both operands. No packing, no scratch use.
    NtRegTile,
    /// Register-tiled kernel over packed rhs panels (all ops).
    Packed {
        /// Output-tile rows held in registers per microkernel call.
        mr: u8,
        /// Output-tile columns (= packed panel width).
        nr: u8,
        /// Reduction block: rhs is packed and consumed `kc` rows at a
        /// time so the active panel stays cache-resident.
        kc: u16,
    },
    /// Register-tiled kernel over packed rhs panels **and** a packed
    /// `[kc][mr]` lhs (`Tn` only).
    ///
    /// The `Tn` layout stores lhs as `at: [k, m]`, so the plain
    /// [`Routine::Packed`] microkernel reads it with stride `m` — one
    /// cache line touched per element on the fc weight-update shapes.
    /// This variant pre-packs the full-`mr` row tiles once per call
    /// into `[kc][mr]` panels the microkernel walks contiguously;
    /// `m % mr` tail rows keep the strided path. Same reduction order,
    /// bitwise-identical results.
    PackedLhs {
        /// Output-tile rows held in registers per microkernel call.
        mr: u8,
        /// Output-tile columns (= packed panel width).
        nr: u8,
        /// Reduction block shared by the lhs and rhs packs.
        kc: u16,
    },
}

/// The `(mr, nr)` register-tile geometries the dispatcher can
/// instantiate. `kc` is a runtime parameter; these pairs are the
/// compile-time monomorphizations. The autotune candidate sweep draws
/// from exactly this list, so a committed table can never name a tile
/// the dispatcher lacks.
pub const SUPPORTED_TILES: &[(u8, u8)] = &[
    (1, 16),
    (2, 16),
    (4, 16),
    (6, 16),
    (8, 16),
    (1, 32),
    (2, 32),
    (4, 32),
    (6, 32),
    (8, 32),
    (1, 64),
    (2, 64),
    (4, 64),
    (6, 64),
];

impl Routine {
    /// Whether this routine can serve the given blueprint.
    ///
    /// The seed kernels hard-code the lhs zero-skip, so they are only
    /// eligible when the blueprint permits skipping; `Packed` serves
    /// every op in both skip and strict modes.
    pub fn supports(&self, bp: &Blueprint) -> bool {
        match self {
            Routine::RowStream => bp.op == Op::Nn && bp.zero_skip,
            Routine::NtRegTile => bp.op == Op::Nt && bp.zero_skip,
            Routine::Packed { mr, nr, kc } => *kc > 0 && SUPPORTED_TILES.contains(&(*mr, *nr)),
            Routine::PackedLhs { mr, nr, kc } => {
                bp.op == Op::Tn && *kc > 0 && SUPPORTED_TILES.contains(&(*mr, *nr))
            }
        }
    }

    /// Human-readable tag for benchmark attribution, e.g.
    /// `packed-4x32/kc256`.
    pub fn describe(&self) -> String {
        match self {
            Routine::RowStream => "row-stream".to_string(),
            Routine::NtRegTile => "nt-reg-tile".to_string(),
            Routine::Packed { mr, nr, kc } => format!("packed-{mr}x{nr}/kc{kc}"),
            Routine::PackedLhs { mr, nr, kc } => format!("packed-lhs-{mr}x{nr}/kc{kc}"),
        }
    }

    /// Renders this routine as the Rust expression the generated tile
    /// table embeds.
    pub fn render(&self) -> String {
        match self {
            Routine::RowStream => "Routine::RowStream".to_string(),
            Routine::NtRegTile => "Routine::NtRegTile".to_string(),
            Routine::Packed { mr, nr, kc } => {
                format!("Routine::Packed {{ mr: {mr}, nr: {nr}, kc: {kc} }}")
            }
            Routine::PackedLhs { mr, nr, kc } => {
                format!("Routine::PackedLhs {{ mr: {mr}, nr: {nr}, kc: {kc} }}")
            }
        }
    }
}

/// A rectangular region of the output a single worker computes:
/// rows `i0..i1` × columns `j0..j1` of the `[m, n]` destination.
///
/// The serial tier always runs the full slab; the threaded tier (see
/// [`super::thread`]) hands each worker a disjoint slab. Every kernel
/// below touches only the `dst` elements inside its slab and reduces
/// each of them in ascending `p` exactly as the full-problem loop
/// would, so slab boundaries never perturb a result bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Slab {
    pub(crate) i0: usize,
    pub(crate) i1: usize,
    pub(crate) j0: usize,
    pub(crate) j1: usize,
}

impl Slab {
    /// The whole output of `bp` — what the serial tier runs.
    pub(crate) fn full(bp: &Blueprint) -> Self {
        Self {
            i0: 0,
            i1: bp.m,
            j0: 0,
            j1: bp.n,
        }
    }
}

/// Runs `routine` on the problem described by `bp`.
///
/// `dst` is overwritten entirely (stale contents are permitted). The
/// packed kernels stage rhs panels through `scratch`, so a caller that
/// recycles its buffers sees zero steady-state allocations here.
///
/// # Panics
///
/// Panics if a slice length disagrees with the blueprint, or if the
/// routine does not [support](Routine::supports) the blueprint (the
/// selector never produces such a pairing; reaching it means a
/// hand-edited table).
pub fn execute(
    routine: Routine,
    bp: &Blueprint,
    dst: &mut [f32],
    lhs: &[f32],
    rhs: &[f32],
    scratch: &mut Scratch,
) {
    execute_slab(routine, bp, dst, lhs, rhs, scratch, Slab::full(bp));
}

/// [`execute`] restricted to one output slab — the worker-side entry
/// point of the threaded tier. The full slab reproduces `execute`
/// exactly; a partial slab writes only its own `dst` region.
pub(crate) fn execute_slab(
    routine: Routine,
    bp: &Blueprint,
    dst: &mut [f32],
    lhs: &[f32],
    rhs: &[f32],
    scratch: &mut Scratch,
    slab: Slab,
) {
    assert_eq!(lhs.len(), bp.lhs_len(), "kernel: lhs length != m*k");
    assert_eq!(rhs.len(), bp.rhs_len(), "kernel: rhs length != k*n");
    assert_eq!(dst.len(), bp.m * bp.n, "kernel: dst length != m*n");
    assert!(
        routine.supports(bp),
        "kernel: routine {} cannot serve op={} zero_skip={}",
        routine.describe(),
        bp.op.tag(),
        bp.zero_skip
    );
    debug_assert!(
        slab.i1 <= bp.m && slab.j1 <= bp.n,
        "kernel: slab exceeds output"
    );
    match routine {
        Routine::RowStream => row_stream(dst, lhs, rhs, bp.k, bp.n, slab),
        Routine::NtRegTile => nt_reg_tile(dst, lhs, rhs, bp.k, bp.n, slab),
        Routine::Packed { mr, nr, kc } => {
            dispatch_packed(mr, nr, kc as usize, false, bp, dst, lhs, rhs, scratch, slab)
        }
        Routine::PackedLhs { mr, nr, kc } => {
            dispatch_packed(mr, nr, kc as usize, true, bp, dst, lhs, rhs, scratch, slab)
        }
    }
}

/// Zeroes exactly the slab's `dst` region (the `k == 0` product).
fn zero_slab(dst: &mut [f32], n: usize, slab: Slab) {
    for i in slab.i0..slab.i1 {
        dst[i * n + slab.j0..i * n + slab.j1].fill(0.0);
    }
}

/// Monomorphization dispatch: maps the runtime `(mr, nr)` pair onto the
/// matching const-generic instantiation, `zero_skip` onto the
/// skip/strict variant, and `pack_lhs` onto the packed-lhs `Tn` kernel.
#[allow(clippy::too_many_arguments)]
fn dispatch_packed(
    mr: u8,
    nr: u8,
    kc: usize,
    pack_lhs: bool,
    bp: &Blueprint,
    dst: &mut [f32],
    lhs: &[f32],
    rhs: &[f32],
    scratch: &mut Scratch,
    slab: Slab,
) {
    macro_rules! go {
        ($mr:literal, $nr:literal) => {
            match (pack_lhs, bp.zero_skip) {
                (false, true) => run_packed::<$mr, $nr, true>(dst, lhs, rhs, bp, kc, scratch, slab),
                (false, false) => {
                    run_packed::<$mr, $nr, false>(dst, lhs, rhs, bp, kc, scratch, slab)
                }
                (true, true) => {
                    run_packed_lhs::<$mr, $nr, true>(dst, lhs, rhs, bp, kc, scratch, slab)
                }
                (true, false) => {
                    run_packed_lhs::<$mr, $nr, false>(dst, lhs, rhs, bp, kc, scratch, slab)
                }
            }
        };
    }
    match (mr, nr) {
        (1, 16) => go!(1, 16),
        (2, 16) => go!(2, 16),
        (4, 16) => go!(4, 16),
        (6, 16) => go!(6, 16),
        (8, 16) => go!(8, 16),
        (1, 32) => go!(1, 32),
        (2, 32) => go!(2, 32),
        (4, 32) => go!(4, 32),
        (6, 32) => go!(6, 32),
        (8, 32) => go!(8, 32),
        (1, 64) => go!(1, 64),
        (2, 64) => go!(2, 64),
        (4, 64) => go!(4, 64),
        (6, 64) => go!(6, 64),
        other => unreachable!("kernel: tile {other:?} not in SUPPORTED_TILES"),
    }
}

/// The packed register-tiled kernel.
///
/// Loop structure (outer to inner): j-panels of `NR` columns → k-blocks
/// of `kc` (rhs panel packed once per block, reused by every i-tile) →
/// i-tiles of `MR` rows (`MR=1` tail). Accumulators live in a
/// `[[f32; NR]; MR]` array; the first k-block stores them directly
/// (never reading stale `dst`), later blocks reload and continue, so
/// each output element sees its terms in ascending `p` exactly once.
fn run_packed<const MR: usize, const NR: usize, const SKIP: bool>(
    dst: &mut [f32],
    lhs: &[f32],
    rhs: &[f32],
    bp: &Blueprint,
    kc_blk: usize,
    scratch: &mut Scratch,
    slab: Slab,
) {
    let (m, k, n) = (bp.m, bp.k, bp.n);
    if k == 0 {
        zero_slab(dst, n, slab);
        return;
    }
    // Lhs element (row, p) lives at row*rs + p*cs: row-major [m, k] for
    // Nn/Nt, column-walked [k, m] for Tn (the untransposed view).
    let (rs, cs) = match bp.op {
        Op::Tn => (1, m),
        Op::Nn | Op::Nt => (k, 1),
    };
    let kc_blk = kc_blk.min(k).max(1);
    // Ping-pong staging: two pooled panels, alternated per packed
    // block, so the pack of one panel never overwrites the lines the
    // previous block's tail tiles are still streaming from.
    let mut panels = [scratch.take_any(kc_blk * NR), scratch.take_any(kc_blk * NR)];
    let mut which = 0usize;
    let mut j = slab.j0;
    while j < slab.j1 {
        let jw = NR.min(slab.j1 - j);
        let mut k0 = 0;
        while k0 < k {
            let kc = kc_blk.min(k - k0);
            let panel = &mut panels[which];
            which ^= 1;
            match bp.op {
                Op::Nt => pack_rhs_t::<NR>(panel, rhs, k0, kc, j, jw, k),
                Op::Nn | Op::Tn => pack_rhs_n::<NR>(panel, rhs, k0, kc, j, jw, n),
            }
            let first = k0 == 0;
            let mut i = slab.i0;
            while i + MR <= slab.i1 {
                tile::<MR, NR, SKIP>(dst, lhs, rs, cs, i, j, jw, n, k0, kc, panel, first);
                i += MR;
            }
            while i < slab.i1 {
                tile::<1, NR, SKIP>(dst, lhs, rs, cs, i, j, jw, n, k0, kc, panel, first);
                i += 1;
            }
            k0 += kc;
        }
        j += NR;
    }
    let [p0, p1] = panels;
    scratch.recycle_vec(p0);
    scratch.recycle_vec(p1);
}

/// One `MR×NR` output tile: load (unless first k-block), accumulate the
/// block, store.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn tile<const MR: usize, const NR: usize, const SKIP: bool>(
    dst: &mut [f32],
    lhs: &[f32],
    rs: usize,
    cs: usize,
    i: usize,
    j: usize,
    jw: usize,
    n: usize,
    k0: usize,
    kc: usize,
    panel: &[f32],
    first: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for (mi, accm) in acc.iter_mut().enumerate() {
            accm[..jw].copy_from_slice(&dst[(i + mi) * n + j..(i + mi) * n + j + jw]);
        }
    }
    micro::<MR, NR, SKIP>(&mut acc, lhs, rs, cs, i, k0, kc, panel);
    for (mi, accm) in acc.iter().enumerate() {
        dst[(i + mi) * n + j..(i + mi) * n + j + jw].copy_from_slice(&accm[..jw]);
    }
}

/// The innermost loop: `kc` reduction steps over an `MR×NR` register
/// tile against a packed panel. Written so the `jr` loop vectorizes to
/// full-width fused loads/FMAs; the lhs operand is read directly with
/// strided indexing (packing lhs measurably defeats the
/// autovectorizer).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro<const MR: usize, const NR: usize, const SKIP: bool>(
    acc: &mut [[f32; NR]; MR],
    lhs: &[f32],
    rs: usize,
    cs: usize,
    i: usize,
    k0: usize,
    kc: usize,
    panel: &[f32],
) {
    for p in 0..kc {
        let bpp = &panel[p * NR..(p + 1) * NR];
        for (mi, accm) in acc.iter_mut().enumerate() {
            let av = lhs[(i + mi) * rs + (k0 + p) * cs];
            if !SKIP || av != 0.0 {
                for (slot, &bv) in accm.iter_mut().zip(bpp) {
                    *slot += av * bv;
                }
            }
        }
    }
}

/// The packed-lhs `Tn` kernel: [`run_packed`]'s loop structure plus a
/// one-time pre-pack of every full-`MR` lhs tile.
///
/// The `Tn` lhs is `at: [k, m]`, so the strided microkernel touches one
/// cache line per element. Here the full-`MR` row tiles are packed once
/// per call into `[kblock][tile][p][MR]` panels (each block padded to
/// `kc_blk` reduction rows so the per-block stride is uniform; the
/// padding is never read — every consumer stops at the block's true
/// `kc`), and the microkernel walks them contiguously. `m % MR` tail
/// rows keep the strided path. Reduction order is unchanged —
/// k-blocks ascend and each accumulator is carried through `dst`
/// between blocks — so results are bitwise-identical to
/// [`Routine::Packed`].
fn run_packed_lhs<const MR: usize, const NR: usize, const SKIP: bool>(
    dst: &mut [f32],
    lhs: &[f32],
    rhs: &[f32],
    bp: &Blueprint,
    kc_blk: usize,
    scratch: &mut Scratch,
    slab: Slab,
) {
    debug_assert_eq!(bp.op, Op::Tn);
    let (m, k, n) = (bp.m, bp.k, bp.n);
    if k == 0 {
        zero_slab(dst, n, slab);
        return;
    }
    let kc_blk = kc_blk.min(k).max(1);
    // Only this slab's rows are packed: tile t covers rows
    // slab.i0 + t*MR .. + MR, so per-worker pack cost scales with the
    // slab, not the full problem.
    let tiles = (slab.i1 - slab.i0) / MR;
    let kblocks = k.div_ceil(kc_blk);
    let mut apack = scratch.take_any(kblocks * tiles * kc_blk * MR);
    for kb in 0..kblocks {
        let k0 = kb * kc_blk;
        let kc = kc_blk.min(k - k0);
        for t in 0..tiles {
            let base = (kb * tiles + t) * kc_blk * MR;
            for p in 0..kc {
                let row = (k0 + p) * m + slab.i0 + t * MR;
                apack[base + p * MR..base + (p + 1) * MR].copy_from_slice(&lhs[row..row + MR]);
            }
        }
    }
    let mut panels = [scratch.take_any(kc_blk * NR), scratch.take_any(kc_blk * NR)];
    let mut which = 0usize;
    let mut j = slab.j0;
    while j < slab.j1 {
        let jw = NR.min(slab.j1 - j);
        let mut k0 = 0;
        let mut kb = 0;
        while k0 < k {
            let kc = kc_blk.min(k - k0);
            let panel = &mut panels[which];
            which ^= 1;
            // Tn rhs is row-major [k, n], same pack as Nn.
            pack_rhs_n::<NR>(panel, rhs, k0, kc, j, jw, n);
            let first = k0 == 0;
            for t in 0..tiles {
                let apanel = &apack[(kb * tiles + t) * kc_blk * MR..][..kc * MR];
                tile_lhs::<MR, NR, SKIP>(dst, apanel, slab.i0 + t * MR, j, jw, n, kc, panel, first);
            }
            let mut i = slab.i0 + tiles * MR;
            while i < slab.i1 {
                tile::<1, NR, SKIP>(dst, lhs, 1, m, i, j, jw, n, k0, kc, panel, first);
                i += 1;
            }
            k0 += kc;
            kb += 1;
        }
        j += NR;
    }
    let [p0, p1] = panels;
    scratch.recycle_vec(p0);
    scratch.recycle_vec(p1);
    scratch.recycle_vec(apack);
}

/// One `MR×NR` output tile against a packed `[p][MR]` lhs panel:
/// [`tile`] with the strided lhs reads replaced by contiguous panel
/// reads.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn tile_lhs<const MR: usize, const NR: usize, const SKIP: bool>(
    dst: &mut [f32],
    apanel: &[f32],
    i: usize,
    j: usize,
    jw: usize,
    n: usize,
    kc: usize,
    panel: &[f32],
    first: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for (mi, accm) in acc.iter_mut().enumerate() {
            accm[..jw].copy_from_slice(&dst[(i + mi) * n + j..(i + mi) * n + j + jw]);
        }
    }
    for p in 0..kc {
        let bpp = &panel[p * NR..(p + 1) * NR];
        let app = &apanel[p * MR..(p + 1) * MR];
        for (mi, accm) in acc.iter_mut().enumerate() {
            let av = app[mi];
            if !SKIP || av != 0.0 {
                for (slot, &bv) in accm.iter_mut().zip(bpp) {
                    *slot += av * bv;
                }
            }
        }
    }
    for (mi, accm) in acc.iter().enumerate() {
        dst[(i + mi) * n + j..(i + mi) * n + j + jw].copy_from_slice(&accm[..jw]);
    }
}

/// Packs a `kc×jw` slab of a row-major `[k, n]` rhs into `[kc][NR]`
/// layout, zero-padding columns `jw..NR`.
fn pack_rhs_n<const NR: usize>(
    panel: &mut [f32],
    b: &[f32],
    k0: usize,
    kc: usize,
    j: usize,
    jw: usize,
    n: usize,
) {
    for p in 0..kc {
        let src = &b[(k0 + p) * n + j..(k0 + p) * n + j + jw];
        let dst = &mut panel[p * NR..p * NR + NR];
        dst[..jw].copy_from_slice(src);
        dst[jw..].fill(0.0);
    }
}

/// Packs a `kc×jw` slab of a transposed rhs (`bt: [n, k]`, so
/// `b[p][j+jr] = bt[j+jr][p]`) into the same `[kc][NR]` layout —
/// reading `bt` along its contiguous rows.
fn pack_rhs_t<const NR: usize>(
    panel: &mut [f32],
    bt: &[f32],
    k0: usize,
    kc: usize,
    j: usize,
    jw: usize,
    k: usize,
) {
    for jr in 0..NR {
        if jr < jw {
            let src = &bt[(j + jr) * k + k0..(j + jr) * k + k0 + kc];
            for (p, &v) in src.iter().enumerate() {
                panel[p * NR + jr] = v;
            }
        } else {
            for p in 0..kc {
                panel[p * NR + jr] = 0.0;
            }
        }
    }
}

/// Seed panelled-ikj kernel (see [`crate::gemm`] for the original):
/// `Nn`, lhs zero-skip, accumulates in `dst` memory.
fn row_stream(dst: &mut [f32], a: &[f32], b: &[f32], k: usize, n: usize, slab: Slab) {
    const NB: usize = 256;
    const MR: usize = 4;
    zero_slab(dst, n, slab);
    let mut j = slab.j0;
    while j < slab.j1 {
        let jw = NB.min(slab.j1 - j);
        let mut i = slab.i0;
        while i < slab.i1 {
            let mr = MR.min(slab.i1 - i);
            for p in 0..k {
                let brow = &b[p * n + j..p * n + j + jw];
                for mi in 0..mr {
                    let av = a[(i + mi) * k + p];
                    if av != 0.0 {
                        let orow = &mut dst[(i + mi) * n + j..(i + mi) * n + j + jw];
                        for (o, &bv) in orow.iter_mut().zip(brow) {
                            *o += av * bv;
                        }
                    }
                }
            }
            i += mr;
        }
        j += NB;
    }
}

/// Seed 4×8 register-tile kernel for `Nt` (`bt: [n, k]`): both operands
/// walked along contiguous rows, lhs zero-skip.
fn nt_reg_tile(dst: &mut [f32], a: &[f32], bt: &[f32], k: usize, n: usize, slab: Slab) {
    const MR: usize = 4;
    const NR: usize = 8;
    let empty: &[f32] = &[];
    let mut j = slab.j0;
    while j + NR <= slab.j1 {
        let mut btr = [empty; NR];
        for (nj, slot) in btr.iter_mut().enumerate() {
            *slot = &bt[(j + nj) * k..(j + nj + 1) * k];
        }
        let mut i = slab.i0;
        while i + MR <= slab.i1 {
            let mut acc = [[0.0f32; NR]; MR];
            for p in 0..k {
                for (mi, accm) in acc.iter_mut().enumerate() {
                    let av = a[(i + mi) * k + p];
                    if av != 0.0 {
                        for (slot, brow) in accm.iter_mut().zip(&btr) {
                            *slot += av * brow[p];
                        }
                    }
                }
            }
            for (mi, accm) in acc.iter().enumerate() {
                dst[(i + mi) * n + j..(i + mi) * n + j + NR].copy_from_slice(accm);
            }
            i += MR;
        }
        while i < slab.i1 {
            let mut acc = [0.0f32; NR];
            for p in 0..k {
                let av = a[i * k + p];
                if av != 0.0 {
                    for (slot, brow) in acc.iter_mut().zip(&btr) {
                        *slot += av * brow[p];
                    }
                }
            }
            dst[i * n + j..i * n + j + NR].copy_from_slice(&acc);
            i += 1;
        }
        j += NR;
    }
    while j < slab.j1 {
        let brow = &bt[j * k..(j + 1) * k];
        for i in slab.i0..slab.i1 {
            let arow = &a[i * k..(i + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                if av != 0.0 {
                    acc += av * bv;
                }
            }
            dst[i * n + j] = acc;
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::matmul_ikj;
    use procrustes_prng::{UniformRng, Xorshift64};

    fn sparse_mat(len: usize, keep: f64, seed: u64) -> Vec<f32> {
        let mut rng = Xorshift64::new(seed);
        (0..len)
            .map(|_| {
                if rng.next_f64() < keep {
                    rng.next_f32() * 2.0 - 1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    fn reference_for(bp: &Blueprint, lhs: &[f32], rhs: &[f32]) -> Vec<f32> {
        // Materialize untransposed operands and run the naive loop.
        let (m, k, n) = (bp.m, bp.k, bp.n);
        let a: Vec<f32> = match bp.op {
            Op::Tn => {
                let mut a = vec![0.0f32; m * k];
                for p in 0..k {
                    for i in 0..m {
                        a[i * k + p] = lhs[p * m + i];
                    }
                }
                a
            }
            _ => lhs.to_vec(),
        };
        let b: Vec<f32> = match bp.op {
            Op::Nt => {
                let mut b = vec![0.0f32; k * n];
                for jj in 0..n {
                    for p in 0..k {
                        b[p * n + jj] = rhs[jj * k + p];
                    }
                }
                b
            }
            _ => rhs.to_vec(),
        };
        matmul_ikj(&a, &b, m, k, n)
    }

    #[test]
    fn every_supported_tile_matches_reference_bitwise() {
        let mut scratch = Scratch::new();
        for &(m, k, n) in &[(5, 7, 17), (13, 21, 40), (4, 3, 16), (9, 33, 65), (1, 5, 3)] {
            for op in [Op::Nn, Op::Nt, Op::Tn] {
                let bp = Blueprint {
                    m,
                    k,
                    n,
                    op,
                    zero_skip: true,
                    threads: 1,
                };
                let lhs = sparse_mat(bp.lhs_len(), 0.5, (m * 31 + n) as u64);
                let rhs = sparse_mat(bp.rhs_len(), 0.9, (k * 17 + n + 1) as u64);
                let want = reference_for(&bp, &lhs, &rhs);
                for &(mr, nr) in SUPPORTED_TILES {
                    for kc in [4u16, 16, 256] {
                        let mut routines = vec![Routine::Packed { mr, nr, kc }];
                        if op == Op::Tn {
                            routines.push(Routine::PackedLhs { mr, nr, kc });
                        }
                        for r in routines {
                            let mut got = vec![f32::NAN; m * n];
                            execute(r, &bp, &mut got, &lhs, &rhs, &mut scratch);
                            assert_eq!(got, want, "{} op={}", r.describe(), op.tag());
                            // Strict variant agrees on finite data.
                            let mut strict = vec![f32::NAN; m * n];
                            execute(r, &bp.strict(), &mut strict, &lhs, &rhs, &mut scratch);
                            assert_eq!(strict, want, "{} strict op={}", r.describe(), op.tag());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn seed_routines_match_reference() {
        let mut scratch = Scratch::new();
        let (m, k, n) = (13, 21, 40);
        let bp = Blueprint::nn(m, k, n);
        let lhs = sparse_mat(bp.lhs_len(), 0.4, 3);
        let rhs = sparse_mat(bp.rhs_len(), 0.9, 4);
        let mut got = vec![f32::NAN; m * n];
        execute(Routine::RowStream, &bp, &mut got, &lhs, &rhs, &mut scratch);
        assert_eq!(got, reference_for(&bp, &lhs, &rhs));

        let bp = Blueprint::nt(m, k, n);
        let rhs_t = sparse_mat(bp.rhs_len(), 0.9, 5);
        execute(
            Routine::NtRegTile,
            &bp,
            &mut got,
            &lhs,
            &rhs_t,
            &mut scratch,
        );
        assert_eq!(got, reference_for(&bp, &lhs, &rhs_t));
    }

    #[test]
    fn k_zero_zeroes_dst() {
        let mut scratch = Scratch::new();
        let bp = Blueprint::nn(3, 0, 5);
        let mut dst = vec![f32::NAN; 15];
        execute(
            Routine::Packed {
                mr: 4,
                nr: 32,
                kc: 256,
            },
            &bp,
            &mut dst,
            &[],
            &[],
            &mut scratch,
        );
        assert_eq!(dst, vec![0.0; 15]);
    }

    #[test]
    fn strict_propagates_nonfinite_rhs_under_zero_lhs() {
        // 0·inf = NaN must survive in strict mode and be elided in skip
        // mode — the one observable difference between the variants.
        let mut scratch = Scratch::new();
        let bp = Blueprint::nn(1, 1, 1);
        let lhs = [0.0f32];
        let rhs = [f32::INFINITY];
        let r = Routine::Packed {
            mr: 2,
            nr: 16,
            kc: 16,
        };
        let mut dst = [f32::NAN; 1];
        execute(r, &bp, &mut dst, &lhs, &rhs, &mut scratch);
        assert_eq!(dst, [0.0]);
        execute(r, &bp.strict(), &mut dst, &lhs, &rhs, &mut scratch);
        assert!(dst[0].is_nan());
    }

    #[test]
    fn supports_gates_seed_kernels_on_op_and_skip() {
        assert!(Routine::RowStream.supports(&Blueprint::nn(4, 4, 4)));
        assert!(!Routine::RowStream.supports(&Blueprint::nt(4, 4, 4)));
        assert!(!Routine::RowStream.supports(&Blueprint::nn(4, 4, 4).strict()));
        assert!(Routine::NtRegTile.supports(&Blueprint::nt(4, 4, 4)));
        assert!(!Routine::NtRegTile.supports(&Blueprint::tn(4, 4, 4)));
        let p = Routine::Packed {
            mr: 4,
            nr: 32,
            kc: 128,
        };
        assert!(p.supports(&Blueprint::tn(4, 4, 4).strict()));
        assert!(!Routine::Packed {
            mr: 3,
            nr: 32,
            kc: 128
        }
        .supports(&Blueprint::nn(4, 4, 4)));
        let pl = Routine::PackedLhs {
            mr: 4,
            nr: 32,
            kc: 128,
        };
        assert!(pl.supports(&Blueprint::tn(4, 4, 4)));
        assert!(pl.supports(&Blueprint::tn(4, 4, 4).strict()));
        assert!(!pl.supports(&Blueprint::nn(4, 4, 4)));
        assert!(!pl.supports(&Blueprint::nt(4, 4, 4)));
    }
}
