//! Tensor shapes: dimension lists and row-major index arithmetic.

use std::fmt;

/// Maximum tensor rank supported by [`Shape`].
///
/// Shapes store their extents inline (no heap allocation) so that
/// constructing a [`Tensor`](crate::Tensor) view over a pooled buffer is
/// allocation-free — a requirement of the zero-allocation training hot
/// loop. Six covers everything the paper's workloads need (NCHW plus
/// slack).
pub const MAX_RANK: usize = 6;

/// The shape of a [`Tensor`](crate::Tensor): a list of dimension extents
/// with row-major (C-order) linearization.
///
/// # Examples
///
/// ```
/// use procrustes_tensor::Shape;
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.linear(&[1, 2, 3]), 1 * 12 + 2 * 4 + 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    // Unused trailing slots stay 0, so derived equality/hashing over the
    // whole array agrees with equality over `dims()`.
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero (zero-sized tensors are never
    /// meaningful in this workspace and are almost always a bug) or if
    /// the rank exceeds [`MAX_RANK`].
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "Shape::new: zero-sized dimension in {dims:?}"
        );
        assert!(
            dims.len() <= MAX_RANK,
            "Shape::new: rank {} exceeds MAX_RANK {MAX_RANK}",
            dims.len()
        );
        let mut inline = [0usize; MAX_RANK];
        inline[..dims.len()].copy_from_slice(dims);
        Self {
            dims: inline,
            rank: dims.len() as u8,
        }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// Always false: zero-sized dimensions are rejected at construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims()[axis]
    }

    /// Row-major linear offset of the multi-index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds in any
    /// dimension (debug-quality message identifying the axis).
    pub fn linear(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.rank(),
            "index rank {} != shape rank {}",
            idx.len(),
            self.rank()
        );
        let mut off = 0;
        for (axis, (&i, &d)) in idx.iter().zip(self.dims()).enumerate() {
            assert!(
                i < d,
                "index {i} out of bounds for axis {axis} (extent {d})"
            );
            off = off * d + i;
        }
        off
    }

    /// Inverse of [`Shape::linear`]: the multi-index of linear offset `off`.
    ///
    /// # Panics
    ///
    /// Panics if `off >= len()`.
    pub fn unlinear(&self, mut off: usize) -> Vec<usize> {
        assert!(
            off < self.len(),
            "offset {off} out of bounds ({})",
            self.len()
        );
        let mut idx = vec![0; self.rank()];
        for axis in (0..self.rank()).rev() {
            idx[axis] = off % self.dims[axis];
            off /= self.dims[axis];
        }
        idx
    }

    /// Returns true if `other` has identical extents.
    pub fn same_as(&self, other: &Shape) -> bool {
        self == other
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_and_unlinear_roundtrip() {
        let s = Shape::new(&[3, 4, 5]);
        for off in 0..s.len() {
            assert_eq!(s.linear(&s.unlinear(off)), off);
        }
    }

    #[test]
    fn linear_is_row_major() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.linear(&[0, 0]), 0);
        assert_eq!(s.linear(&[0, 2]), 2);
        assert_eq!(s.linear(&[1, 0]), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds for axis 1")]
    fn out_of_bounds_index_names_axis() {
        Shape::new(&[2, 3]).linear(&[0, 3]);
    }

    #[test]
    #[should_panic(expected = "zero-sized dimension")]
    fn zero_dim_rejected() {
        Shape::new(&[2, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_RANK")]
    fn over_max_rank_rejected() {
        Shape::new(&[1, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Shape::new(&[2, 3, 4]).to_string(), "[2×3×4]");
    }

    #[test]
    fn from_array_and_slice() {
        let a: Shape = [2usize, 3].into();
        let b = Shape::from(&[2usize, 3][..]);
        assert!(a.same_as(&b));
    }

    #[test]
    fn equality_ignores_unused_slots() {
        // Shapes of different rank with a shared prefix must differ.
        assert_ne!(Shape::new(&[2, 3]), Shape::new(&[2, 3, 1]));
        assert_eq!(Shape::new(&[2, 3]), Shape::new(&[2, 3]));
    }
}
