//! Offline autotune driver for the committed GEMM tile table.
//!
//! Modes:
//!
//! - **(default)** — regenerate `src/kernel/table.rs` from the
//!   deterministic cost model and report what changed.
//! - **`--verify`** — merge gate: re-render the table (including the
//!   threaded-tier entries), byte-compare it against the committed
//!   file, and spot-check that the selector's plan matches
//!   `reference::matmul_ikj` bit-for-bit on every pinned shape at
//!   every worker budget (1/2/4/8). Exits nonzero on any drift or
//!   mismatch. Fully deterministic — safe to run on any machine.
//! - **`--measure`** — advisory wall-clock sweep of the candidate
//!   routines over the pinned shapes (best-of-5 GFLOP/s), plus a
//!   per-tier sweep of the selected plan across worker budgets. Never
//!   touches the table; use it to re-calibrate the cost model and to
//!   catch the "only 64-wide inner loops vectorize" footgun on
//!   threaded tiles too.

use std::process::ExitCode;
use std::time::Instant;

use procrustes_prng::{UniformRng, Xorshift64};
use procrustes_tensor::kernel::{self, autotune, routine, selector, Blueprint, Op};
use procrustes_tensor::reference::matmul_ikj;
use procrustes_tensor::Scratch;

fn table_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src/kernel/table.rs")
}

/// Operands with `zero_frac` exact zeros: sparse for equality spot
/// checks (exercises the skip path), dense for timing (matches the
/// `perf_trajectory` bench data and keeps the skip branch predictable).
fn seeded_operands(bp: &Blueprint, seed: u64, zero_frac: f64) -> (Vec<f32>, Vec<f32>) {
    let mut rng = Xorshift64::new(seed);
    let mut fill = |len: usize| -> Vec<f32> {
        (0..len)
            .map(|_| {
                if rng.next_f64() < zero_frac {
                    0.0
                } else {
                    rng.next_f32() * 2.0 - 1.0
                }
            })
            .collect()
    };
    (fill(bp.lhs_len()), fill(bp.rhs_len()))
}

/// Naive reference for any op: materialize untransposed operands, run
/// the seed ikj loop.
fn reference_for(bp: &Blueprint, lhs: &[f32], rhs: &[f32]) -> Vec<f32> {
    let (m, k, n) = (bp.m, bp.k, bp.n);
    let a: Vec<f32> = match bp.op {
        Op::Tn => {
            let mut a = vec![0.0f32; m * k];
            for p in 0..k {
                for i in 0..m {
                    a[i * k + p] = lhs[p * m + i];
                }
            }
            a
        }
        _ => lhs.to_vec(),
    };
    let b: Vec<f32> = match bp.op {
        Op::Nt => {
            let mut b = vec![0.0f32; k * n];
            for j in 0..n {
                for p in 0..k {
                    b[p * n + j] = rhs[j * k + p];
                }
            }
            b
        }
        _ => rhs.to_vec(),
    };
    matmul_ikj(&a, &b, m, k, n)
}

/// Every pinned shape, at every worker budget, through the public
/// `kernel::gemm` entry point: the result must be bitwise-equal to the
/// naive reference, which simultaneously checks the serial routines,
/// the threaded table entries, and the tier dispatch itself.
fn spot_check() -> Result<(), String> {
    let mut scratch = Scratch::new();
    for &(op, m, k, n) in autotune::PINNED_SHAPES {
        let base = Blueprint {
            m,
            k,
            n,
            op,
            zero_skip: true,
            threads: 1,
        };
        let (lhs, rhs) = seeded_operands(&base, (m * 1_000_003 + k * 1_009 + n) as u64, 0.3);
        let want = reference_for(&base, &lhs, &rhs);
        for &budget in autotune::THREAD_BUDGETS {
            let bp = base.with_threads(budget);
            let plan = selector::select(&bp);
            let mut got = vec![f32::NAN; m * n];
            kernel::gemm(&bp, &mut got, &lhs, &rhs, &mut scratch);
            if got
                .iter()
                .zip(&want)
                .any(|(g, w)| g.to_bits() != w.to_bits())
            {
                return Err(format!(
                    "equality violation: {} on {}x{}x{} ({}) at budget {}",
                    plan.describe(),
                    m,
                    k,
                    n,
                    op.tag(),
                    budget
                ));
            }
        }
    }
    Ok(())
}

fn verify() -> ExitCode {
    let path = table_path();
    let committed = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "kernel_autotune --verify: cannot read {}: {e}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let generated = autotune::render_table();
    if committed != generated {
        eprintln!(
            "kernel_autotune --verify: {} has drifted from the generator.\n\
             Regenerate it with `cargo run --release -p procrustes-tensor --bin kernel_autotune`\n\
             and commit the result.",
            path.display()
        );
        return ExitCode::FAILURE;
    }
    if let Err(msg) = spot_check() {
        eprintln!("kernel_autotune --verify: {msg}");
        return ExitCode::FAILURE;
    }
    println!(
        "kernel_autotune --verify: table is a fixed point ({} entries), all pinned shapes bitwise-equal to reference at budgets {:?}",
        autotune::table_entries().len(),
        autotune::THREAD_BUDGETS
    );
    ExitCode::SUCCESS
}

fn regenerate() -> ExitCode {
    let path = table_path();
    let generated = autotune::render_table();
    let old = std::fs::read_to_string(&path).unwrap_or_default();
    if let Err(e) = std::fs::write(&path, &generated) {
        eprintln!("kernel_autotune: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    if let Err(msg) = spot_check() {
        eprintln!("kernel_autotune: table written but spot check failed: {msg}");
        return ExitCode::FAILURE;
    }
    println!(
        "kernel_autotune: wrote {} ({} entries, {})",
        path.display(),
        autotune::table_entries().len(),
        if old == generated {
            "unchanged"
        } else {
            "updated"
        }
    );
    for (class, r, tier) in autotune::table_entries() {
        println!(
            "  {}:{:?}/{:?}/{:?}@{:?} -> {} [{}]",
            class.op.tag(),
            class.m,
            class.k,
            class.n,
            class.t,
            r.describe(),
            tier.tag()
        );
    }
    ExitCode::SUCCESS
}

fn measure() -> ExitCode {
    let mut scratch = Scratch::new();
    println!("advisory wall-clock sweep (best of 5, GFLOP/s); never affects the table");
    for &(op, m, k, n) in autotune::PINNED_SHAPES {
        let bp = Blueprint {
            m,
            k,
            n,
            op,
            zero_skip: true,
            threads: 1,
        };
        let (lhs, rhs) = seeded_operands(&bp, (m * 7 + k * 11 + n * 13) as u64, 0.0);
        let flops = bp.flops() as f64;
        println!("shape {}x{}x{} ({}):", m, k, n, op.tag());
        let mut pool = autotune::candidates();
        match op {
            Op::Nn => pool.push(routine::Routine::RowStream),
            Op::Nt => pool.push(routine::Routine::NtRegTile),
            Op::Tn => {}
        }
        let selected = selector::select(&bp).routine;
        for r in pool {
            if !r.supports(&bp) {
                continue;
            }
            let mut dst = vec![0.0f32; m * n];
            let mut best = f64::MAX;
            for _ in 0..5 {
                let t = Instant::now();
                routine::execute(r, &bp, &mut dst, &lhs, &rhs, &mut scratch);
                best = best.min(t.elapsed().as_secs_f64());
            }
            std::hint::black_box(&dst);
            println!(
                "  {:20} {:8.2}{}",
                r.describe(),
                flops / best / 1e9,
                if r == selected { "   <- selected" } else { "" }
            );
        }
        // Per-tier sweep: the plan the selector resolves at each worker
        // budget, timed through the real `kernel::gemm` dispatch so
        // threaded timings include pool overhead.
        println!("  tier sweep:");
        for &budget in autotune::THREAD_BUDGETS {
            let wide = bp.with_threads(budget);
            let plan = selector::select(&wide);
            let mut dst = vec![0.0f32; m * n];
            let mut best = f64::MAX;
            for _ in 0..5 {
                let t = Instant::now();
                kernel::gemm(&wide, &mut dst, &lhs, &rhs, &mut scratch);
                best = best.min(t.elapsed().as_secs_f64());
            }
            std::hint::black_box(&dst);
            println!(
                "    budget {budget}: {:32} {:8.2}",
                plan.describe(),
                flops / best / 1e9
            );
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => regenerate(),
        Some("--verify") => verify(),
        Some("--measure") => measure(),
        Some(other) => {
            eprintln!("kernel_autotune: unknown flag {other} (expected --verify or --measure)");
            ExitCode::FAILURE
        }
    }
}
