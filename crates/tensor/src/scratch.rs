//! A reusable buffer pool for the training hot loop.
//!
//! Every forward/backward pass needs short-lived `f32` buffers: im2col
//! column matrices, GEMM outputs, permuted gradients, layer outputs.
//! Allocating them fresh each step is pure overhead once shapes have
//! stabilized, so the layers and trainers thread a [`Scratch`] through
//! the hot path instead: buffers are taken from the pool, wrapped in
//! [`Tensor`]s, and recycled when the consumer is done with them. After
//! a warm-up step every `take` is served from the pool and a
//! steady-state training step performs **zero heap allocations** in
//! tensor code (pinned by `steady_state_alloc.rs` in
//! `procrustes-dropback`).

use crate::Tensor;

/// A pool of reusable `f32` buffers.
///
/// `take` hands out zero-filled buffers (best-fit by capacity so the
/// same request sequence maps onto the same buffers every step);
/// `recycle` returns them. Buffers that are never recycled are simply
/// reallocated next step — correctness never depends on pooling.
///
/// # Examples
///
/// ```
/// use procrustes_tensor::Scratch;
/// let mut scratch = Scratch::new();
/// let t = scratch.take_tensor(&[2, 3]);
/// assert_eq!(t.data(), &[0.0; 6]);
/// scratch.recycle(t);
/// assert_eq!(scratch.pooled_buffers(), 1);
/// let _again = scratch.take(6); // served from the pool
/// assert_eq!(scratch.pooled_buffers(), 0);
/// ```
#[derive(Default)]
pub struct Scratch {
    pool: Vec<Vec<f32>>,
}

impl Scratch {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a zero-filled buffer of exactly `len` elements, reusing the
    /// smallest pooled buffer whose capacity suffices.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_any(len);
        buf.fill(0.0);
        buf
    }

    /// Takes a buffer of exactly `len` elements with **unspecified
    /// contents** (stale data from a previous user is possible) — for
    /// consumers that fully overwrite it, e.g. GEMM destinations, which
    /// would otherwise pay a redundant zeroing pass per step.
    pub fn take_any(&mut self, len: usize) -> Vec<f32> {
        let mut best: Option<(usize, usize)> = None;
        for (i, buf) in self.pool.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        let mut buf = match best {
            Some((i, _)) => self.pool.swap_remove(i),
            None => Vec::with_capacity(len),
        };
        if buf.len() > len {
            buf.truncate(len);
        } else {
            buf.resize(len, 0.0);
        }
        buf
    }

    /// Takes a zero-filled tensor of the given dimensions.
    pub fn take_tensor(&mut self, dims: &[usize]) -> Tensor {
        let len = dims.iter().product();
        Tensor::from_vec(dims, self.take(len))
    }

    /// Takes a tensor with **unspecified contents** (see
    /// [`take_any`](Self::take_any)).
    pub fn take_tensor_any(&mut self, dims: &[usize]) -> Tensor {
        let len = dims.iter().product();
        Tensor::from_vec(dims, self.take_any(len))
    }

    /// Returns a buffer to the pool.
    pub fn recycle_vec(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Returns a tensor's buffer to the pool.
    pub fn recycle(&mut self, t: Tensor) {
        self.recycle_vec(t.into_vec());
    }

    /// Number of buffers currently pooled (diagnostics).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.len()
    }

    /// Total pooled capacity in bytes (diagnostics).
    pub fn pooled_bytes(&self) -> usize {
        self.pool
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<f32>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zero_filled_even_after_recycle() {
        let mut s = Scratch::new();
        let mut buf = s.take(4);
        buf.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        s.recycle_vec(buf);
        assert_eq!(s.take(4), vec![0.0; 4]);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut s = Scratch::new();
        s.recycle_vec(Vec::with_capacity(100));
        s.recycle_vec(Vec::with_capacity(10));
        let buf = s.take(8);
        assert_eq!(buf.capacity(), 10, "should pick the tight fit");
        assert_eq!(s.pooled_buffers(), 1);
    }

    #[test]
    fn take_tensor_roundtrips_through_pool() {
        let mut s = Scratch::new();
        let t = s.take_tensor(&[3, 4]);
        assert_eq!(t.shape().dims(), &[3, 4]);
        s.recycle(t);
        assert_eq!(s.pooled_buffers(), 1);
        assert!(s.pooled_bytes() >= 12 * 4);
    }

    #[test]
    fn oversized_requests_allocate_fresh() {
        let mut s = Scratch::new();
        s.recycle_vec(Vec::with_capacity(2));
        let buf = s.take(16);
        assert_eq!(buf.len(), 16);
        assert_eq!(s.pooled_buffers(), 1, "small buffer stays pooled");
    }
}
